"""Tests for partition registers and share arithmetic."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.partition import clamp_shares, grid_size, share_grid, shift_shares
from repro.pipeline.config import SMTConfig
from repro.pipeline.resources import PartitionRegisters, equal_shares


def make_registers(num_threads=2):
    return PartitionRegisters(SMTConfig.tiny(), num_threads)


class TestPartitionRegisters:
    def test_unpartitioned_by_default(self):
        registers = make_registers()
        assert not registers.partitioned
        assert registers.limit_int_rename == [32, 32]

    def test_set_shares(self):
        registers = make_registers()
        registers.set_shares([8, 24])
        assert registers.partitioned
        assert registers.limit_int_rename == [8, 24]

    def test_proportional_iq_and_rob(self):
        registers = make_registers()
        registers.set_shares([8, 24])
        config = registers.config
        assert sum(registers.limit_int_iq) == config.iq_int_size
        assert sum(registers.limit_rob) == config.rob_size
        assert registers.limit_rob[1] > registers.limit_rob[0]
        assert registers.limit_int_iq[1] > registers.limit_int_iq[0]

    def test_clear(self):
        registers = make_registers()
        registers.set_shares([8, 24])
        registers.clear()
        assert not registers.partitioned
        assert registers.limit_rob == [64, 64]

    def test_wrong_thread_count_rejected(self):
        with pytest.raises(ValueError):
            make_registers().set_shares([32])

    def test_wrong_sum_rejected(self):
        with pytest.raises(ValueError):
            make_registers().set_shares([8, 8])

    def test_below_minimum_rejected(self):
        with pytest.raises(ValueError):
            make_registers().set_shares([1, 31])

    def test_direct_limits(self):
        registers = make_registers()
        registers.set_limits_directly(int_rename=[10, 20], int_iq=[4, 8],
                                      rob=[30, 30])
        assert registers.limit_int_rename == [10, 20]
        assert registers.limit_int_iq == [4, 8]
        assert registers.limit_rob == [30, 30]
        assert not registers.partitioned  # direct caps are not shares

    def test_snapshot_roundtrip(self):
        registers = make_registers()
        registers.set_shares([8, 24])
        state = registers.snapshot()
        registers.clear()
        registers.restore(state)
        assert registers.shares == [8, 24]
        assert registers.limit_int_rename == [8, 24]

    def test_four_threads(self):
        registers = make_registers(4)
        registers.set_shares([8, 8, 8, 8])
        assert sum(registers.limit_rob) == registers.config.rob_size


class TestEqualShares:
    def test_exact_division(self):
        assert equal_shares(SMTConfig.tiny(), 2) == [16, 16]

    def test_remainder_distributed(self):
        shares = equal_shares(SMTConfig.tiny(), 3)
        assert sum(shares) == 32
        assert max(shares) - min(shares) <= 1


class TestClampShares:
    def test_identity_when_legal(self):
        assert clamp_shares([10, 22], 32, 2) == [10, 22]

    def test_raises_when_infeasible(self):
        with pytest.raises(ValueError):
            clamp_shares([1, 1], 32, 17)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            clamp_shares([], 32, 2)

    def test_clamps_below_minimum(self):
        result = clamp_shares([0, 32], 32, 4)
        assert result[0] >= 4
        assert sum(result) == 32

    def test_deficit_taken_from_largest(self):
        result = clamp_shares([30, 30], 32, 2)
        assert sum(result) == 32
        assert min(result) >= 2


class TestShiftShares:
    def test_favored_gains(self):
        result = shift_shares([16, 16], favored=0, delta=4, total=32, minimum=2)
        assert result == [20, 12]

    def test_multi_thread_shift(self):
        result = shift_shares([8, 8, 8, 8], favored=2, delta=2, total=32,
                              minimum=2)
        assert result == [6, 6, 14, 6]

    def test_respects_minimum(self):
        result = shift_shares([4, 28], favored=1, delta=4, total=32, minimum=4)
        assert result[0] >= 4
        assert sum(result) == 32


class TestShareGrid:
    def test_two_thread_grid(self):
        grid = list(share_grid(2, 32, 2, 8))
        assert all(sum(shares) == 32 for shares in grid)
        assert all(min(shares) >= 2 for shares in grid)
        assert [shares[0] for shares in grid] == [2, 10, 18, 26]

    def test_grid_size_matches(self):
        assert grid_size(2, 32, 2, 8) == 4

    def test_three_thread_grid_covers_space(self):
        grid = list(share_grid(3, 32, 4, 8))
        assert grid
        for shares in grid:
            assert sum(shares) == 32
            assert min(shares) >= 4

    def test_bad_stride_rejected(self):
        with pytest.raises(ValueError):
            list(share_grid(2, 32, 2, 0))

    def test_infeasible_rejected(self):
        with pytest.raises(ValueError):
            list(share_grid(4, 8, 4, 2))


@settings(max_examples=100, deadline=None)
@given(
    shares=st.lists(st.integers(-50, 300), min_size=2, max_size=6),
    minimum=st.integers(1, 8),
)
def test_property_clamp_always_legal(shares, minimum):
    total = 128
    if total < minimum * len(shares):
        return
    result = clamp_shares(shares, total, minimum)
    assert sum(result) == total
    assert all(share >= minimum for share in result)
    assert len(result) == len(shares)


@settings(max_examples=100, deadline=None)
@given(
    count=st.integers(2, 5),
    favored=st.integers(0, 4),
    delta=st.integers(1, 16),
)
def test_property_shift_preserves_total(count, favored, delta):
    if favored >= count:
        return
    anchor = equal_shares(SMTConfig.fast(), count)
    result = shift_shares(anchor, favored, delta, 128, 4)
    assert sum(result) == 128
    assert all(share >= 4 for share in result)
    # the favored thread never loses
    assert result[favored] >= anchor[favored]


@settings(max_examples=50, deadline=None)
@given(stride=st.integers(1, 32))
def test_property_grid_deterministic_and_legal(stride):
    first = list(share_grid(2, 128, 4, stride))
    second = list(share_grid(2, 128, 4, stride))
    assert first == second
    assert all(sum(shares) == 128 for shares in first)
