"""Call-graph layer tests: resolution rules and async witness paths."""

from repro.analysis.lint.callgraph import build_callgraph

SRC = '''\
import asyncio


def helper():
    inner_target = 1

    def inner():
        return inner_target
    return inner()


def shared():
    return helper()


class Service:
    def __init__(self):
        self.state = {}

    def journal(self, record):
        shared()

    async def handle(self, record):
        self.journal(record)

    async def tick(self):
        self.journal(None)


def make_service():
    return Service()
'''


def graph():
    return build_callgraph("mod.py", SRC)


def test_functions_and_coroutines_are_collected():
    g = graph()
    assert "helper" in g.functions
    assert "helper.inner" in g.functions
    assert "Service.handle" in g.functions
    assert g.functions["Service.handle"].is_async
    assert not g.functions["Service.journal"].is_async
    assert g.functions["Service.journal"].class_name == "Service"


def test_bare_name_resolves_to_nested_then_module_level():
    g = graph()
    edges = {(e.caller, e.callee) for e in g.edges}
    assert ("helper", "helper.inner") in edges       # nested sibling wins
    assert ("shared", "helper") in edges             # module-level function
    assert ("make_service", "Service.__init__") in edges  # constructor


def test_self_method_calls_resolve_within_class():
    g = graph()
    edges = {(e.caller, e.callee) for e in g.edges}
    assert ("Service.handle", "Service.journal") in edges
    assert ("Service.journal", "shared") in edges


def test_async_paths_give_shortest_deterministic_witness():
    paths = graph().async_paths()
    # both coroutines are roots
    assert paths["Service.handle"] == ("Service.handle",)
    assert paths["Service.tick"] == ("Service.tick",)
    # journal is reachable from either; sorted BFS picks Service.handle
    assert paths["Service.journal"] == ("Service.handle", "Service.journal")
    # transitive reach through sync helpers
    assert paths["shared"] == ("Service.handle", "Service.journal", "shared")
    assert paths["helper"][-1] == "helper"
    # a function nobody async-reaches is absent
    assert "make_service" not in paths


def test_unresolvable_calls_drop_edges_not_crash():
    src = ("async def run(queue, obj):\n"
           "    await queue.get()\n"
           "    obj.method().chained()\n"
           "    unknown_name()\n")
    g = build_callgraph("mod.py", src)
    assert g.calls_from("run") == ()
    assert g.async_paths() == {"run": ("run",)}
