"""Determinism linter tests: exact rule codes and line numbers against
the seeded violations in ``tests/fixtures/lintpkg/nondet.py``."""

import os

from repro.analysis.lint.determinism import scan_file, scan_source

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
PKG_ROOT = os.path.join(FIXTURES, "lintpkg")

#: (rule, line) for every seeded violation in nondet.py, in file order.
EXPECTED = [
    ("ND101", 11),   # time.time()
    ("ND101", 12),   # perf_counter() imported from time
    ("ND102", 13),   # os.urandom(4)
    ("ND103", 14),   # random.random()
    ("ND103", 15),   # randint() imported from random
    ("ND104", 16),   # Random() with no seed
    ("ND105", 17),   # random.Random(1234) without an allow marker
    ("ND106", 19),   # dict literal keyed by id(...)
    ("ND106", 20),   # subscript store keyed by id(...)
    ("ND107", 22),   # for item in {3, 1, 2}
    ("ND107", 24),   # comprehension over set((1, 2, 3))
]


def test_nondet_fixture_exact_findings():
    findings = scan_file(PKG_ROOT, "nondet.py")
    got = [(f.rule, f.line) for f in findings]
    assert got == EXPECTED
    assert all(f.path == "nondet.py" for f in findings)


def test_allowlisted_line_is_suppressed():
    findings = scan_file(PKG_ROOT, "nondet.py")
    assert not any(f.line == 18 for f in findings)  # allow-nondeterminism


def test_clean_module_has_no_findings():
    assert scan_file(PKG_ROOT, "base.py") == []


def test_seeded_rng_not_flagged_when_allowlisted():
    src = ("import random\n"
           "rng = random.Random(3)"
           "  # repro: allow-nondeterminism[ND105]\n")
    assert scan_source("mod.py", src) == []


def test_multiple_codes_in_one_marker():
    src = ("import time, random\n"
           "x = (time.time(), random.Random(1))"
           "  # repro: allow-nondeterminism[ND101, ND105]\n")
    assert scan_source("mod.py", src) == []


def test_marker_for_other_rule_does_not_suppress():
    src = ("import time\n"
           "x = time.time()  # repro: allow-nondeterminism[ND105]\n")
    findings = scan_source("mod.py", src)
    assert [(f.rule, f.line) for f in findings] == [("ND101", 2)]


def test_datetime_now_flagged():
    src = ("import datetime\n"
           "stamp = datetime.datetime.now()\n")
    assert [(f.rule, f.line) for f in scan_source("mod.py", src)] \
        == [("ND101", 2)]


def test_sorted_set_iteration_is_fine():
    src = "total = sum(x for x in sorted({3, 1, 2}))\n"
    assert scan_source("mod.py", src) == []
