"""Import-graph builder tests over the ``tests/fixtures/lintpkg`` tree."""

import os

import pytest

from repro.analysis.lint.importgraph import build_graph, closure_files

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
PKG_ROOT = os.path.join(FIXTURES, "lintpkg")


@pytest.fixture(scope="module")
def graph():
    return build_graph(PKG_ROOT, "lintpkg")


def edge_map(graph):
    return {(e.src, e.dst): e for e in graph.edges}


def test_files_enumerated(graph):
    assert "runner.py" in graph.files
    assert "__init__.py" in graph.files
    assert all(rel.endswith(".py") for rel in graph.files)


def test_eager_import_edge(graph):
    edge = edge_map(graph)[("helper.py", "extra.py")]
    assert not edge.lazy
    assert not edge.via_init
    assert edge.dispatch is None


def test_lazy_import_edge(graph):
    edge = edge_map(graph)[("runner.py", "extra.py")]
    assert edge.lazy


def test_relative_import_resolves_submodule(graph):
    # ``from . import good`` in runner.py
    assert ("runner.py", "good.py") in edge_map(graph)
    # ``from .base import BasePolicy`` in fam_a.py
    edge = edge_map(graph)[("fam_a.py", "base.py")]
    assert not edge.via_init


def test_reexport_import_marks_via_init(graph):
    edge = edge_map(graph)[("reexport_user.py", "__init__.py")]
    assert edge.via_init
    assert edge.symbol == "BasePolicy"


def test_dispatch_marker_recorded(graph):
    edge = edge_map(graph)[("runner.py", "fam_a.py")]
    assert edge.lazy
    assert edge.dispatch == "A"
    assert edge_map(graph)[("lazy.py", "afdep.py")].dispatch == "GHOST"


def test_closure_skips_dispatch_edges(graph):
    closure = graph.closure(("runner.py",))
    assert "fam_a.py" not in closure
    assert "afdep.py" not in closure


def test_closure_includes_init_without_traversing_it(graph):
    closure = graph.closure(("runner.py",))
    # __init__.py enters as an ancestor/re-export target ...
    assert "__init__.py" in closure
    # ... but its own import of base.py is not followed; base.py is
    # present only because good.py imports it directly.
    assert closure == frozenset({
        "__init__.py", "runner.py", "helper.py", "extra.py",
        "good.py", "base.py",
    })


def test_family_closure_adds_entry_and_deps(graph):
    closure = graph.closure(("runner.py", "fam_a.py"))
    assert {"fam_a.py", "afdep.py"} <= closure


def test_closure_files_helper():
    files = closure_files(PKG_ROOT, "lintpkg", ("runner.py", "fam_a.py"))
    assert files == tuple(sorted(files))
    assert "afdep.py" in files


def test_closure_files_rejects_unknown_entry():
    with pytest.raises(ValueError):
        closure_files(PKG_ROOT, "lintpkg", ("missing.py",))
