"""Unit tests for the fast-forward core plumbing: core selection,
quiescence proofs, bulk skips, and the ``charge_stall`` event-shift
contract the fast path depends on."""

import pickle

import pytest

from repro.pipeline.config import SMTConfig
from repro.pipeline.fastpath import (
    CORE_MODES,
    apply_skip,
    core_mode,
    forced_core,
    quiescent_horizon,
)
from repro.pipeline.processor import SMTProcessor
from repro.policies.icount import ICountPolicy
from repro.workloads.mixes import get_workload


def make_proc(warm_cycles=0):
    workload = get_workload("art-mcf")
    proc = SMTProcessor(SMTConfig.tiny(), workload.profiles, seed=0,
                        policy=ICountPolicy())
    if warm_cycles:
        proc.run(warm_cycles)
    return proc


class TestCoreSelection:
    def test_default_is_fast(self, monkeypatch):
        monkeypatch.delenv("REPRO_CORE", raising=False)
        assert core_mode() == "fast"

    def test_env_selects_reference(self, monkeypatch):
        monkeypatch.setenv("REPRO_CORE", "reference")
        assert core_mode() == "reference"

    def test_env_selects_batched(self, monkeypatch):
        monkeypatch.setenv("REPRO_CORE", "batched")
        assert core_mode() == "batched"

    def test_forced_core_shadows_even_invalid_env(self, monkeypatch):
        """An explicit forced_core never consults the environment, so a
        bad REPRO_CORE cannot break code that pinned its core."""
        monkeypatch.setenv("REPRO_CORE", "turbo")
        with forced_core("batched"):
            assert core_mode() == "batched"

    def test_unknown_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_CORE", "turbo")
        with pytest.raises(ValueError, match="REPRO_CORE must be one of"):
            core_mode()

    def test_forced_core_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CORE", "reference")
        with forced_core("fast"):
            assert core_mode() == "fast"
        assert core_mode() == "reference"

    def test_forced_core_nests_and_restores(self, monkeypatch):
        monkeypatch.delenv("REPRO_CORE", raising=False)
        with forced_core("reference"):
            with forced_core("fast"):
                assert core_mode() == "fast"
            assert core_mode() == "reference"
        assert core_mode() == "fast"

    def test_forced_core_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with forced_core("reference"):
                raise RuntimeError("boom")
        assert core_mode() == "fast"

    def test_forced_core_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="core mode must be one of"):
            forced_core("turbo")


class TestChargeStall:
    """``charge_stall`` must shift every pending event and future fetch
    block by exactly the stall length — otherwise work would complete
    "for free" during the frozen stretch, and the fast core's event
    horizon (read from the same heaps) would come unstuck from the
    reference loop's behaviour."""

    STALL = 137

    def test_events_shift_by_stall_length(self):
        proc = make_proc(warm_cycles=100)
        for __ in range(500):  # stop at a cycle with in-flight events
            if proc._completions or proc._detections:
                break
            proc.run(1)
        assert proc._completions or proc._detections, \
            "warmup should leave in-flight events"
        completions = list(proc._completions)
        detections = list(proc._detections)
        cycle = proc.cycle
        cycles = proc.stats.cycles
        proc.charge_stall(self.STALL)
        assert proc.cycle == cycle + self.STALL
        assert proc.stats.cycles == cycles + self.STALL
        assert proc._completions == [
            (when + self.STALL, order, instr, gen)
            for when, order, instr, gen in completions]
        assert proc._detections == [
            (when + self.STALL, order, instr, gen)
            for when, order, instr, gen in detections]

    def test_future_fetch_block_shifts_stale_does_not(self):
        proc = make_proc(warm_cycles=300)
        future = proc.cycle + 50
        stale = proc.cycle - 10
        proc.threads[0].fetch_blocked_until = future
        proc.threads[1].fetch_blocked_until = stale
        proc.charge_stall(self.STALL)
        assert proc.threads[0].fetch_blocked_until == future + self.STALL
        assert proc.threads[1].fetch_blocked_until == stale

    def test_zero_stall_is_noop(self):
        proc = make_proc(warm_cycles=100)
        before = pickle.dumps(proc)
        proc.charge_stall(0)
        assert pickle.dumps(proc) == before

    def test_stall_between_runs_identical_across_cores(self):
        """A stall injected between two run windows (the hill climber's
        pattern) must leave both cores on the same trajectory."""
        states = {}
        for core in CORE_MODES:
            with forced_core(core):
                proc = make_proc()
                proc.run(300)
                proc.charge_stall(self.STALL)
                proc.run(400)
            states[core] = pickle.dumps(proc,
                                        protocol=pickle.HIGHEST_PROTOCOL)
        assert states["fast"] == states["reference"]


class TestQuiescence:
    def test_active_machine_has_no_horizon(self):
        proc = make_proc()  # fresh front end: fetch would make progress
        assert quiescent_horizon(proc, proc.cycle + 1000) is None

    def test_blocked_machine_horizon_is_unblock_time(self):
        proc = make_proc()
        unblock = proc.cycle + 500
        for thread in proc.threads:
            thread.fetch_blocked_until = unblock
        assert quiescent_horizon(proc, proc.cycle + 1000) == unblock

    def test_horizon_capped_at_window_end(self):
        proc = make_proc()
        for thread in proc.threads:
            thread.fetch_blocked_until = proc.cycle + 500
        assert quiescent_horizon(proc, proc.cycle + 200) == proc.cycle + 200

    def test_pending_completion_bounds_horizon(self):
        proc = make_proc(warm_cycles=300)
        for thread in proc.threads:
            thread.fetch_blocked_until = proc.cycle + 10 ** 6
        horizon = quiescent_horizon(proc, proc.cycle + 10 ** 6)
        if horizon is not None and proc._completions:
            assert horizon <= proc._completions[0][0]

    def test_apply_skip_advances_cycle_and_stats(self):
        proc = make_proc()
        for thread in proc.threads:
            thread.fetch_blocked_until = proc.cycle + 500
        start = proc.cycle
        cycles = proc.stats.cycles
        horizon = quiescent_horizon(proc, start + 1000)
        skipped = apply_skip(proc, horizon)
        assert skipped == horizon - start
        assert proc.cycle == horizon
        assert proc.stats.cycles == cycles + skipped

    def test_run_skips_blocked_stretch(self):
        """End-to-end: a fully blocked machine fast-forwards to the
        unblock time instead of grinding cycle by cycle."""
        proc = make_proc()
        proc.profile = None
        for thread in proc.threads:
            thread.fetch_blocked_until = proc.cycle + 400
        from repro.pipeline.profile import CoreProfile

        proc.profile = profile = CoreProfile()
        with forced_core("fast"):
            proc.run(1000)
        assert profile.skipped_cycles >= 400
        assert profile.total_cycles == 1000
