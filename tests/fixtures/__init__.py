"""Fixture trees for the ``repro lint`` self-tests (never imported)."""
