"""Leaf module: the seeded closure gap for the fingerprint tests."""

EXTRA = 7
