"""Async-safety fixture: seeded AS301–AS304 violations with known line
numbers (tests/test_lint_asyncsafety.py asserts them exactly)."""

import asyncio
import time

# repro: guarded-state[tasks, queue]


def helper_blocks():
    time.sleep(0.1)                              # AS301 via call graph


class Daemon:
    def __init__(self):
        self.tasks = {}
        self.queue = []
        self._lock = asyncio.Lock()
        self._tick_task = None
        self._bg = None

    async def tick(self):
        time.sleep(0.1)                          # AS301 (direct)

    async def submit(self, record):
        self._journal(record)                    # -> AS301 inside _journal

    def _journal(self, record):
        with open("journal.jsonl", "a") as handle:
            handle.write(str(record) + "\n")

    async def spawn_orphan(self):
        asyncio.create_task(self.tick())         # AS302 (handle dropped)

    async def spawn_unread(self):
        self._bg = asyncio.ensure_future(self.tick())   # AS302 (never read)

    async def start(self):
        self._tick_task = asyncio.ensure_future(self.tick())   # clean

    def stop(self):
        self._tick_task.cancel()

    async def torn(self, key):
        self.tasks[key] = "leased"
        await asyncio.sleep(0)                   # AS303 (torn section)
        self.queue.append(key)

    async def locked(self, key):
        async with self._lock:
            self.tasks[key] = "leased"
            await asyncio.sleep(0)               # clean (lock held)
            self.queue.append(key)

    async def sanctioned(self):
        time.sleep(0)  # repro: allow-async[AS301] bounded test stub
        time.sleep(0)  # repro: allow-async[AS301]
