"""Eager helper; drags ``extra.py`` into every closure."""

from lintpkg.extra import EXTRA


def helper_value():
    return EXTRA
