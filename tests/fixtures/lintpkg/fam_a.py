"""Family-A policy entry (reached only via the dispatch import)."""

from .base import BasePolicy
from lintpkg.afdep import AF_CONST


class FamAPolicy(BasePolicy):
    name = "FAM-A"

    def plan_epoch(self, proc, epoch_id):
        return AF_CONST
