"""Batched-lane fixture: seeded MC401–MC405 mirror-contract violations
with known line numbers (tests/test_lint_mirrors.py asserts them)."""

import numpy as np


class MiniBatch:
    def __init__(self, cells):
        self._orphan = np.zeros(cells)           # MC401 (no declaration)
        # repro: mirror[_occ <- Machine.occ]
        self._occ = np.zeros(cells)
        # repro: mirror[_stale <- Machine.gone]
        self._stale = np.zeros(cells)            # MC402 (unknown source)
        # repro: mirror[_lim <- Machine.limit]
        self._lim = np.zeros(cells)              # MC403 (never refreshed)
        # repro: mirror[_ghost <- Machine.occ]   MC405 (never allocated)

    def _refresh(self, machines):  # repro: mirror-refresh
        for index, machine in enumerate(machines):
            self._occ[index] = machine.occ
            self._stale[index] = 0

    def poke(self, index):
        self._occ[index] = 99                    # MC404 (write outside)
