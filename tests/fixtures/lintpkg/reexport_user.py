"""Imports a re-exported symbol through the package __init__ (FP005)."""

from lintpkg import BasePolicy

REEXPORTED = BasePolicy
