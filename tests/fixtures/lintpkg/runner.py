"""Fixture sweep entry: eager, lazy, re-export and dispatch imports."""

from lintpkg import BasePolicy  # repro: allow-reexport[FP005]
from lintpkg.helper import helper_value

from . import good


def make(name):
    from lintpkg.fam_a import FamAPolicy  # repro: dispatch[A]

    if name == "lazy":
        import lintpkg.extra as extra

        return extra
    return FamAPolicy, BasePolicy, helper_value, good
