"""Seeded determinism violations; the tests assert these exact lines."""

import os
import random
import time
from random import Random, randint
from time import perf_counter


def sample():
    stamp = time.time()
    tick = perf_counter()
    noise = os.urandom(4)
    coin = random.random()
    roll = randint(0, 3)
    rng = Random()
    rng2 = random.Random(1234)
    rng3 = random.Random(7)  # repro: allow-nondeterminism[ND105]
    table = {id(rng): 1}
    table[id(rng2)] = 2
    total = 0
    for item in {3, 1, 2}:
        total += item
    squares = [value * value for value in set((1, 2, 3))]
    return (stamp, tick, noise, coin, roll, rng, rng2, rng3, table,
            total, squares)
