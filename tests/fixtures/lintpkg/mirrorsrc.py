"""Scalar source fixture for the mirror-coverage tests: the class whose
fields mirrormod.py's declarations must resolve against."""


class Machine:
    def __init__(self):
        self.occ = 0
        self.limit = 4

    def step(self):
        self.occ += 1
