"""A clean subclass: hook overrides match the contract exactly."""

from lintpkg.base import BasePolicy


class GoodPolicy(BasePolicy):
    name = "GOOD"

    def on_epoch_end(self, proc, epoch):
        proc.partitions = epoch

    def on_cycle(self, proc):
        self._internal = proc  # private write on self is fine

    @property
    def on_demand(self):
        return 0  # hook-shaped name, but a property: exempt


class VariadicPolicy(BasePolicy):
    def on_epoch_end(self, *args):
        pass  # *args overrides are exempt from arity checks
