"""Seeded contract violations; the tests assert these exact lines."""

from lintpkg.good import GoodPolicy


class BadPolicy(GoodPolicy):
    name = "BAD"

    def on_epoch_ends(self, proc, epoch):
        pass

    def on_cycle(self, proc, extra):
        pass

    def attach(self, proc):
        proc._cycle = 0
        proc.partitions._shares = None
        proc.stats._counts["x"] += 1

    plan_epoch = None

    def fetch_priority(self, proc, eligible):
        proc._order = eligible  # repro: allow-contract[PC203]
        return eligible
