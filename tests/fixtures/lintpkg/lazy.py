"""Dispatch-marked lazy import attributed to family GHOST."""


def load():
    from lintpkg.afdep import AF_CONST  # repro: dispatch[GHOST]

    return AF_CONST
