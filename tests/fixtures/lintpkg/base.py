"""Fixture base class mirroring the ``policies/base.py`` hook API."""


class BasePolicy:
    name = "BASE"
    wants_miss_detection = False

    def attach(self, proc):
        pass

    def fetch_priority(self, proc, eligible):
        return eligible

    def on_cycle(self, proc):
        pass

    def on_epoch_end(self, proc, epoch):
        pass

    def plan_epoch(self, proc, epoch_id):
        return None
