"""Fixture package with seeded lint violations (analysed, never run).

Line numbers in these files are asserted exactly by the lint tests —
edit with care and update ``tests/test_lint_*.py`` to match.
"""

from lintpkg.base import BasePolicy
