"""Dependency of the family-A entry."""

AF_CONST = 3
