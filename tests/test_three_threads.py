"""Three-hardware-context coverage (the Figure 2 configuration): odd
thread counts must work across the whole stack."""

import pytest

from repro.core.controller import EpochController
from repro.core.hill_climbing import HillClimbingPolicy
from repro.core.metrics import AvgIPC
from repro.core.offline import OfflineExhaustiveLearner
from repro.pipeline.config import SMTConfig
from repro.pipeline.processor import SMTProcessor
from repro.pipeline.resources import equal_shares
from repro.policies.dcra import DCRAPolicy
from repro.policies.static_partition import StaticPartitionPolicy
from repro.workloads.spec2000 import get_profile

TRIO = ("mesa", "vortex", "fma3d")  # the paper's Figure 2 threads


def make_proc(policy, seed=1):
    profiles = [get_profile(name) for name in TRIO]
    return SMTProcessor(SMTConfig.tiny(), profiles, seed=seed, policy=policy)


class TestThreeThreads:
    def test_equal_shares_conserve_total(self):
        shares = equal_shares(SMTConfig.tiny(), 3)
        assert sum(shares) == SMTConfig.tiny().rename_int
        assert max(shares) - min(shares) <= 1

    def test_static_partition_runs(self):
        proc = make_proc(StaticPartitionPolicy())
        proc.run(6000)
        assert all(count > 0 for count in proc.stats.committed)
        assert proc.check_invariants()

    def test_hill_climbing_runs(self):
        policy = HillClimbingPolicy(metric=AvgIPC(), sample_period=None,
                                    software_cost=0)
        proc = make_proc(policy)
        controller = EpochController(proc, epoch_size=512)
        controller.run(9)  # three full rounds
        assert sum(policy.anchor) == proc.config.rename_int
        assert len(policy.anchor) == 3

    def test_hill_trials_rotate_all_three(self):
        policy = HillClimbingPolicy(metric=AvgIPC(), sample_period=None,
                                    software_cost=0)
        proc = make_proc(policy)
        controller = EpochController(proc, epoch_size=256)
        favored = []
        for __ in range(6):
            shares = proc.partitions.shares
            favored.append(max(range(3), key=lambda tid: shares[tid]))
            controller.run_epoch()
        assert set(favored[:3]) == {0, 1, 2}

    def test_offline_grid_covers_three_dims(self):
        proc = make_proc(StaticPartitionPolicy())
        proc.run(1500)
        learner = OfflineExhaustiveLearner(proc, 512, metric=AvgIPC(),
                                           stride=8)
        epoch = learner.run_epoch()
        assert all(len(shares) == 3 for shares, __, __ in epoch.curve)
        assert sum(epoch.best_shares) == proc.config.rename_int

    def test_dcra_three_way_caps(self):
        proc = make_proc(DCRAPolicy(update_interval=1))
        proc.run(3000)
        limits = proc.partitions.limit_int_rename
        assert len(limits) == 3
        assert sum(limits) <= proc.config.rename_int
        assert proc.check_invariants()
