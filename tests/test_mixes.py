"""Tests for the 42 Table 3 multiprogrammed workloads."""

import pytest

from repro.workloads.mixes import (
    GROUPS,
    WORKLOADS,
    get_workload,
    workload_names,
    workloads_in_group,
)
from repro.workloads.spec2000 import PROFILES


class TestTable3:
    def test_42_workloads(self):
        assert len(WORKLOADS) == 42

    def test_six_groups_of_seven(self):
        for group in GROUPS:
            assert len(workloads_in_group(group)) == 7, group

    def test_thread_counts(self):
        for workload in WORKLOADS.values():
            expected = 2 if workload.group.endswith("2") else 4
            assert workload.num_threads == expected, workload.name

    def test_members_are_known_benchmarks(self):
        for workload in WORKLOADS.values():
            for benchmark in workload.benchmarks:
                assert benchmark in PROFILES, (workload.name, benchmark)

    def test_ilp_groups_contain_only_ilp(self):
        for group in ("ILP2", "ILP4"):
            for workload in workloads_in_group(group):
                for profile in workload.profiles:
                    assert profile.ctype == "ILP", (workload.name, profile.name)

    def test_mem_groups_are_memory_dominated(self):
        # The paper's own Table 3 places parser (an ILP benchmark) in two
        # MEM4 workloads, so MEM groups are dominated by — not purely —
        # memory-intensive members.
        for group in ("MEM2", "MEM4"):
            for workload in workloads_in_group(group):
                mem_count = sum(
                    1 for profile in workload.profiles if profile.ctype == "MEM"
                )
                assert mem_count >= workload.num_threads - 1, workload.name
        for workload in workloads_in_group("MEM2"):
            assert all(profile.ctype == "MEM" for profile in workload.profiles)

    def test_mix_groups_contain_both(self):
        for group in ("MIX2", "MIX4"):
            for workload in workloads_in_group(group):
                ctypes = {profile.ctype for profile in workload.profiles}
                assert ctypes == {"ILP", "MEM"}, workload.name

    def test_paper_rsc_sums_spot_checks(self):
        # Table 3 lists the summed per-application Rsc values.
        assert get_workload("apsi-eon").rsc_sum == 209
        assert get_workload("gzip-vortex").rsc_sum == 185  # 83 + 102
        assert get_workload("art-mcf").rsc_sum == 273      # 176 + 97
        assert get_workload("ammp-applu-art-mcf").rsc_sum == 173 + 112 + 176 + 97

    def test_large_flag_uses_thread_count_threshold(self):
        assert get_workload("art-mcf").is_large          # 273 > 256
        assert not get_workload("apsi-eon").is_large     # 209 <= 256
        assert get_workload("ammp-applu-art-mcf").is_large  # 558 > 440

    def test_profiles_in_context_order(self):
        workload = get_workload("art-mcf")
        assert [profile.name for profile in workload.profiles] == ["art", "mcf"]

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            get_workload("quake-doom")

    def test_workload_names_filters_by_group(self):
        assert len(workload_names()) == 42
        assert len(workload_names("MEM2")) == 7
        assert all("-" in name for name in workload_names("ILP4"))

    def test_art_mcf_is_in_mem2(self):
        assert get_workload("art-mcf").group == "MEM2"

    def test_no_duplicate_workloads(self):
        names = workload_names()
        assert len(names) == len(set(names))
