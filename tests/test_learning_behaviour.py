"""Behavioural tests of the learning stack: does hill-climbing actually
climb when the environment has a clear, learnable gradient?

These tests build *synthetic feedback environments* (bypassing the
simulator) so convergence properties can be asserted deterministically.
"""

import pytest

from repro.core.controller import EpochResult
from repro.core.hill_climbing import HillClimbingPolicy
from repro.core.metrics import AvgIPC
from repro.pipeline.config import SMTConfig
from repro.pipeline.processor import SMTProcessor
from repro.workloads.spec2000 import get_profile


def make_policy(num_threads=2, delta=4):
    policy = HillClimbingPolicy(metric=AvgIPC(), delta=delta,
                                software_cost=0, sample_period=None)
    profiles = [get_profile("gzip")] * num_threads
    proc = SMTProcessor(SMTConfig.fast(), profiles, seed=0, policy=policy,
                        warm_caches=False)
    return policy, proc


def drive(policy, proc, value_of_shares, epochs):
    """Feed the policy synthetic per-epoch performance computed from the
    trial partition it programmed."""
    for epoch_id in range(epochs):
        shares = proc.partitions.shares
        value = value_of_shares(shares)
        result = EpochResult(
            epoch_id=epoch_id, kind="normal",
            committed=[int(1000 * value / len(shares))] * len(shares),
            cycles=1000,
            ipcs=[value / len(shares)] * len(shares),
            shares=list(shares),
        )
        policy.on_epoch_end(proc, result)


class TestConvergence:
    def test_climbs_to_an_asymmetric_peak(self):
        """Peak at shares[0]=96 on a clean quadratic hill: the climber must
        get most of the way there from the equal split (64)."""
        policy, proc = make_policy()

        def hill(shares):
            return 1.0 - ((shares[0] - 96) / 128.0) ** 2

        drive(policy, proc, hill, epochs=40)
        assert policy.anchor[0] >= 84

    def test_climbs_the_other_way_too(self):
        policy, proc = make_policy()

        def hill(shares):
            return 1.0 - ((shares[0] - 24) / 128.0) ** 2

        drive(policy, proc, hill, epochs=40)
        assert policy.anchor[0] <= 40

    def test_stays_near_a_central_peak(self):
        policy, proc = make_policy()

        def hill(shares):
            return 1.0 - ((shares[0] - 64) / 128.0) ** 2

        drive(policy, proc, hill, epochs=40)
        assert 48 <= policy.anchor[0] <= 80

    def test_four_thread_convergence(self):
        """Thread 2 is the valuable one; its share must grow."""
        policy, proc = make_policy(num_threads=4)

        def hill(shares):
            return shares[2] / 128.0

        drive(policy, proc, hill, epochs=60)
        assert policy.anchor[2] > 32  # grew past the equal split

    def test_tracks_a_moving_peak(self):
        """When the peak jumps, the climber re-converges (the TS -> TL
        dynamics of Figure 12)."""
        policy, proc = make_policy()
        state = {"peak": 90}

        def hill(shares):
            return 1.0 - ((shares[0] - state["peak"]) / 128.0) ** 2

        drive(policy, proc, hill, epochs=30)
        first = policy.anchor[0]
        assert first >= 78
        state["peak"] = 30
        drive(policy, proc, hill, epochs=40)
        assert policy.anchor[0] <= 48

    def test_flat_landscape_drifts_by_tiebreak(self):
        """Figure 8 property: on exact ties, argmax picks the lowest thread
        index, so a perfectly flat landscape drifts the anchor toward
        thread 0 at Delta per round until clamped.  (Real landscapes are
        never exactly flat; jitter breaks the ties — the paper's JL case.)"""
        policy, proc = make_policy()
        drive(policy, proc, lambda shares: 1.0, epochs=40)
        assert policy.anchor[0] == \
            proc.config.rename_int - proc.config.min_partition

    def test_larger_delta_converges_faster(self):
        def hill(shares):
            return 1.0 - ((shares[0] - 104) / 128.0) ** 2

        slow_policy, slow_proc = make_policy(delta=2)
        drive(slow_policy, slow_proc, hill, epochs=16)
        fast_policy, fast_proc = make_policy(delta=8)
        drive(fast_policy, fast_proc, hill, epochs=16)
        assert fast_policy.anchor[0] >= slow_policy.anchor[0]


class TestPhaseHillBehaviour:
    def test_phase_memory_restores_learned_anchor(self):
        """After learning phase A's peak, a visit to phase B and back to A
        must restore A's anchor instantly."""
        from repro.core.phase_hill import PhaseHillPolicy

        policy = PhaseHillPolicy(metric=AvgIPC(), software_cost=0,
                                 sample_period=None)
        profiles = [get_profile("gzip")] * 2
        proc = SMTProcessor(SMTConfig.fast(), profiles, seed=0,
                            policy=policy, warm_caches=False)

        class ScriptedTable:
            def __init__(self):
                self.script = []

            def classify(self, signature):
                return self.script.pop(0)

        table = ScriptedTable()
        policy.phase_table = table

        def hill(shares):
            return 1.0 - ((shares[0] - 100) / 128.0) ** 2

        # Learn in phase 0 for 30 epochs.
        table.script = [0] * 30
        drive(policy, proc, hill, epochs=30)
        learned = policy.phase_anchor[0][0]
        assert learned >= 84
        # One epoch in phase 1 perturbs the live anchor...
        table.script = [1]
        drive(policy, proc, lambda shares: 0.5, epochs=1)
        # ...and returning to phase 0 restores the banked anchor.
        table.script = [0]
        drive(policy, proc, hill, epochs=1)
        assert abs(policy.phase_anchor[0][0] - learned) <= 2 * policy.delta
        assert policy.phase_reuses >= 1
