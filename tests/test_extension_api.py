"""Adoption-path tests: the extension points a downstream user relies on
(custom profiles, custom policies, custom metrics) work through the public
API without touching library internals."""

from repro import (
    EpochController,
    ResourcePolicy,
    SMTConfig,
    SMTProcessor,
)
from repro.core.hill_climbing import HillClimbingPolicy
from repro.core.metrics import PerformanceMetric
from repro.pipeline.resources import equal_shares
from repro.workloads.profile import BenchmarkProfile, PhaseParams, PhaseVariation


def custom_profile():
    """A user-defined benchmark, not part of the Table 2 suite."""
    return BenchmarkProfile(
        name="userbench", ctype="MEM", is_fp=False, rsc_hint=123,
        freq=PhaseVariation.NONE,
        phase_a=PhaseParams(dep_distance=9.0, serial_frac=0.1,
                            mem_frac=0.05, l2_frac=0.05, miss_burst=2.0,
                            burst_gap=10.0),
        load_frac=0.3,
    )


class RoundRobinPolicy(ResourcePolicy):
    """A user-defined fetch policy: strict round-robin, no partitioning."""

    name = "USER-RR"

    def __init__(self):
        self._turn = 0

    def fetch_priority(self, proc, eligible):
        self._turn += 1
        offset = self._turn % max(1, len(eligible))
        return eligible[offset:] + eligible[:offset]


class MinIPCMetric(PerformanceMetric):
    """A user-defined objective: maximize the worst thread's IPC."""

    name = "min_ipc"

    def value(self, ipcs, single_ipcs=None):
        return min(ipcs)


class TestCustomProfile:
    def test_runs_alongside_builtin_benchmarks(self):
        from repro import get_profile

        proc = SMTProcessor(SMTConfig.tiny(),
                            [custom_profile(), get_profile("gzip")],
                            seed=1)
        proc.run(4000)
        assert all(count > 0 for count in proc.stats.committed)
        assert proc.check_invariants()


class TestCustomPolicy:
    def test_round_robin_policy_runs(self):
        from repro import get_workload

        workload = get_workload("art-gzip")
        proc = SMTProcessor(SMTConfig.tiny(), workload.profiles, seed=1,
                            policy=RoundRobinPolicy())
        controller = EpochController(proc, epoch_size=512)
        controller.run(4)
        assert sum(controller.totals()[0]) > 0

    def test_custom_policy_with_partitioning(self):
        from repro import get_workload

        class HalfAndHalf(ResourcePolicy):
            name = "USER-HALF"

            def attach(self, proc):
                proc.partitions.set_shares(
                    equal_shares(proc.config, proc.num_threads))

        workload = get_workload("art-gzip")
        proc = SMTProcessor(SMTConfig.tiny(), workload.profiles, seed=1,
                            policy=HalfAndHalf())
        proc.run(2000)
        assert proc.partitions.partitioned


class TestCustomMetric:
    def test_hill_climbs_a_user_metric(self):
        from repro import get_workload

        workload = get_workload("art-gzip")
        policy = HillClimbingPolicy(metric=MinIPCMetric(),
                                    sample_period=None, software_cost=0)
        proc = SMTProcessor(SMTConfig.tiny(), workload.profiles, seed=1,
                            policy=policy)
        controller = EpochController(proc, epoch_size=512)
        controller.run(6)
        assert policy.feedback([0.5, 2.0]) == 0.5
        assert sum(policy.anchor) == proc.config.rename_int

    def test_metric_name_flows_into_policy_name(self):
        policy = HillClimbingPolicy(metric=MinIPCMetric())
        assert policy.name == "HILL-min_ipc"
