"""Unit tests for the branch-prediction substrate."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.branch.bimodal import BimodalPredictor, COUNTER_MAX
from repro.branch.btb import BranchTargetBuffer
from repro.branch.gshare import GsharePredictor
from repro.branch.hybrid import HybridPredictor
from repro.branch.ras import ReturnAddressStack


class TestBimodal:
    def test_initial_prediction_is_taken(self):
        assert BimodalPredictor(64).predict(0) is True

    def test_learns_not_taken(self):
        predictor = BimodalPredictor(64)
        predictor.update(0, False)
        predictor.update(0, False)
        assert predictor.predict(0) is False

    def test_counter_saturates(self):
        predictor = BimodalPredictor(64)
        for __ in range(10):
            predictor.update(0, True)
        assert predictor.table[predictor._index(0)] == COUNTER_MAX

    def test_hysteresis(self):
        predictor = BimodalPredictor(64)
        for __ in range(4):
            predictor.update(0, True)
        predictor.update(0, False)  # one reversal does not flip
        assert predictor.predict(0) is True

    def test_pcs_alias_by_table_size(self):
        predictor = BimodalPredictor(4)
        predictor.update(0, False)
        predictor.update(0, False)
        assert predictor.predict(4 * 4) is False  # same index

    def test_snapshot_roundtrip(self):
        predictor = BimodalPredictor(64)
        predictor.update(8, False)
        state = predictor.snapshot()
        predictor.update(8, True)
        predictor.restore(state)
        assert predictor.table == list(state)

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            BimodalPredictor(0)


class TestGshare:
    def test_history_shifts(self):
        predictor = GsharePredictor(256)
        predictor.shift_history(True)
        predictor.shift_history(False)
        assert predictor.history == 0b10

    def test_history_masked(self):
        predictor = GsharePredictor(16)  # 4 bits of history
        for __ in range(10):
            predictor.shift_history(True)
        assert predictor.history == 0b1111

    def test_learns_history_pattern(self):
        """Alternating branch is perfectly predictable through history."""
        predictor = GsharePredictor(1024)
        outcome = True
        for __ in range(200):
            predictor.update(64, outcome)
            predictor.shift_history(outcome)
            outcome = not outcome
        correct = 0
        for __ in range(40):
            if predictor.predict(64) == outcome:
                correct += 1
            predictor.update(64, outcome)
            predictor.shift_history(outcome)
            outcome = not outcome
        assert correct >= 36

    def test_update_with_recorded_history(self):
        predictor = GsharePredictor(256)
        history = predictor.history
        predictor.shift_history(True)  # speculate past it
        predictor.update(0, False, history_at_predict=history)
        index = ((0 >> 2) ^ history) % 256
        assert predictor.table[index] == 1  # decremented from weakly-taken

    def test_snapshot_roundtrip(self):
        predictor = GsharePredictor(64)
        predictor.update(0, False)
        predictor.shift_history(True)
        state = predictor.snapshot()
        predictor.shift_history(True)
        predictor.restore(state)
        assert predictor.history == state[1]


class TestHybrid:
    def test_prediction_token_carries_history(self):
        predictor = HybridPredictor(64, 64, 64)
        token = predictor.predict(0)
        assert token.history_at_predict == 0
        # history shifted speculatively
        assert predictor.gshare.history == int(token.taken)

    def test_learns_biased_site(self):
        predictor = HybridPredictor(256, 256, 256)
        for __ in range(50):
            token = predictor.predict(40)
            predictor.update(40, False, token)
        token = predictor.predict(40)
        assert token.taken is False

    def test_meta_chooser_moves_toward_better_component(self):
        predictor = HybridPredictor(256, 256, 256)
        rng = random.Random(7)
        # Strongly biased site: bimodal is reliable, gshare suffers from a
        # noisy history another site injects.
        for __ in range(300):
            noisy = rng.random() < 0.5
            token = predictor.predict(80)
            predictor.update(80, True, token)
            predictor.gshare.shift_history(noisy)
        token = predictor.predict(80)
        assert token.taken is True

    def test_mispredict_rate_tracked(self):
        predictor = HybridPredictor(64, 64, 64)
        token = predictor.predict(0)
        predictor.update(0, not token.taken, token)
        assert predictor.mispredicts == 1
        assert predictor.mispredict_rate == 1.0

    def test_repair_history(self):
        predictor = HybridPredictor(64, 64, 64)
        predictor.predict(0)
        predictor.predict(4)
        predictor.repair_history(0b1)
        assert predictor.gshare.history == 0b1

    def test_snapshot_roundtrip(self):
        predictor = HybridPredictor(64, 64, 64)
        token = predictor.predict(0)
        predictor.update(0, True, token)
        state = predictor.snapshot()
        token = predictor.predict(8)
        predictor.update(8, False, token)
        predictor.restore(state)
        assert predictor.lookups == 1
        assert predictor.meta == list(state[2])


class TestBTB:
    def test_miss_returns_none(self):
        assert BranchTargetBuffer(64, 4).lookup(0) is None

    def test_insert_then_hit(self):
        btb = BranchTargetBuffer(64, 4)
        btb.insert(0, 1234)
        assert btb.lookup(0) == 1234

    def test_lru_within_set(self):
        btb = BranchTargetBuffer(8, 2)  # 4 sets, 2 ways
        stride = 4 * 4  # same set
        btb.insert(0 * stride, 1)
        btb.insert(1 * stride, 2)
        btb.insert(2 * stride, 3)  # evicts the first
        assert btb.lookup(0) is None
        assert btb.lookup(stride) == 2

    def test_update_existing_entry(self):
        btb = BranchTargetBuffer(64, 4)
        btb.insert(0, 1)
        btb.insert(0, 2)
        assert btb.lookup(0) == 2

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(10, 4)

    def test_snapshot_roundtrip(self):
        btb = BranchTargetBuffer(64, 4)
        btb.insert(0, 1)
        state = btb.snapshot()
        btb.insert(4, 2)
        btb.restore(state)
        assert btb.lookup(4) is None
        assert btb.lookup(0) == 1


class TestRAS:
    def test_push_pop(self):
        ras = ReturnAddressStack(8)
        ras.push(100)
        ras.push(200)
        assert ras.pop() == 200
        assert ras.pop() == 100

    def test_empty_pop_returns_none(self):
        assert ReturnAddressStack(8).pop() is None

    def test_overflow_wraps(self):
        ras = ReturnAddressStack(4)
        for value in range(6):
            ras.push(value)
        # Stack holds the 4 most recent; oldest were overwritten.
        assert ras.pop() == 5
        assert ras.pop() == 4
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_len(self):
        ras = ReturnAddressStack(4)
        ras.push(1)
        ras.push(2)
        assert len(ras) == 2
        ras.pop()
        assert len(ras) == 1

    def test_snapshot_roundtrip(self):
        ras = ReturnAddressStack(4)
        ras.push(1)
        state = ras.snapshot()
        ras.pop()
        ras.restore(state)
        assert ras.pop() == 1


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1000), max_size=30))
def test_property_ras_is_lifo_within_capacity(values):
    ras = ReturnAddressStack(64)
    for value in values:
        ras.push(value)
    for value in reversed(values):
        assert ras.pop() == value
    assert ras.pop() is None


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 1 << 16), st.booleans()),
                min_size=1, max_size=200))
def test_property_hybrid_counts_consistent(events):
    predictor = HybridPredictor(128, 128, 128)
    for pc, taken in events:
        token = predictor.predict(pc)
        predictor.update(pc, taken, token)
    assert predictor.lookups == len(events)
    assert 0 <= predictor.mispredicts <= predictor.lookups
