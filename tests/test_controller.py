"""Tests for the epoch controller."""

import pytest

from repro.core.controller import EpochController, EpochResult
from repro.pipeline.config import SMTConfig
from repro.pipeline.processor import SMTProcessor
from repro.policies.base import ResourcePolicy
from repro.policies.icount import ICountPolicy
from repro.workloads.spec2000 import get_profile


def make_controller(policy=None, epoch_size=512, benchmarks=("gzip", "eon")):
    profiles = [get_profile(name) for name in benchmarks]
    proc = SMTProcessor(SMTConfig.tiny(), profiles, seed=1,
                        policy=policy or ICountPolicy())
    return EpochController(proc, epoch_size=epoch_size)


class RecordingPolicy(ResourcePolicy):
    """Test double: records controller callbacks."""

    name = "RECORDER"

    def __init__(self, solo_at=()):
        self.solo_at = set(solo_at)
        self.epochs_seen = []
        self.plans = []

    def plan_epoch(self, proc, epoch_id):
        self.plans.append(epoch_id)
        if epoch_id in self.solo_at:
            return 0
        return None

    def on_epoch_end(self, proc, epoch):
        self.epochs_seen.append(epoch)


class TestEpochLoop:
    def test_epoch_result_shape(self):
        controller = make_controller()
        result = controller.run_epoch()
        assert isinstance(result, EpochResult)
        assert result.epoch_id == 0
        assert result.kind == "normal"
        assert result.cycles == 512
        assert len(result.committed) == 2
        assert len(result.ipcs) == 2

    def test_epoch_ids_increment(self):
        controller = make_controller()
        results = controller.run(3)
        assert [result.epoch_id for result in results] == [0, 1, 2]

    def test_history_accumulates(self):
        controller = make_controller()
        controller.run(4)
        assert len(controller.history) == 4

    def test_ipcs_derived_from_committed(self):
        controller = make_controller()
        result = controller.run_epoch()
        for ipc, committed in zip(result.ipcs, result.committed):
            assert ipc == pytest.approx(committed / result.cycles)

    def test_policy_callbacks_invoked(self):
        policy = RecordingPolicy()
        controller = make_controller(policy=policy)
        controller.run(3)
        assert policy.plans == [0, 1, 2]
        assert len(policy.epochs_seen) == 3

    def test_invalid_epoch_size(self):
        profiles = [get_profile("gzip")]
        proc = SMTProcessor(SMTConfig.tiny(), profiles, policy=ICountPolicy())
        with pytest.raises(ValueError):
            EpochController(proc, epoch_size=0)


class TestSoloEpochs:
    def test_solo_epoch_marks_kind(self):
        policy = RecordingPolicy(solo_at={1})
        controller = make_controller(policy=policy)
        results = controller.run(3)
        assert results[0].kind == "normal"
        assert results[1].kind == "solo"
        assert results[1].solo_thread == 0
        assert results[2].kind == "normal"

    def test_solo_epoch_starves_other_thread(self):
        policy = RecordingPolicy(solo_at={2})
        controller = make_controller(policy=policy, epoch_size=1024)
        results = controller.run(3)
        solo = results[2]
        assert solo.committed[0] > 0
        assert solo.committed[1] < solo.committed[0] / 2

    def test_all_threads_reenabled_after_solo(self):
        policy = RecordingPolicy(solo_at={0})
        controller = make_controller(policy=policy, epoch_size=1024)
        controller.run(3)
        assert controller.proc.enabled == {0, 1}
        assert controller.history[2].committed[1] > 0


class TestTotals:
    def test_totals_match_history_without_stalls(self):
        controller = make_controller()
        controller.run(4)
        committed, cycles = controller.totals()
        assert cycles == 4 * 512
        history_sum = [0, 0]
        for result in controller.history:
            for tid, count in enumerate(result.committed):
                history_sum[tid] += count
        assert committed == history_sum

    def test_totals_include_interepoch_stalls(self):
        class StallingPolicy(ResourcePolicy):
            name = "STALLER"

            def on_epoch_end(self, proc, epoch):
                proc.charge_stall(100)

        controller = make_controller(policy=StallingPolicy())
        controller.run(4)
        __, cycles = controller.totals()
        assert cycles == 4 * 512 + 4 * 100

    def test_overall_ipcs_positive(self):
        controller = make_controller()
        controller.run(4)
        assert all(ipc > 0 for ipc in controller.overall_ipcs())

    def test_overall_ipcs_zero_before_running(self):
        controller = make_controller()
        assert controller.overall_ipcs() == [0.0, 0.0]
