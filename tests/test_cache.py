"""Unit tests for the set-associative cache substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.cache import Cache, CacheStats


def make_cache(size=1024, block=64, assoc=2, latency=1):
    return Cache("T", size, block, assoc, latency)


class TestGeometry:
    def test_num_sets(self):
        cache = make_cache(size=1024, block=64, assoc=2)
        assert cache.num_sets == 8

    def test_direct_mapped(self):
        cache = make_cache(size=512, block=64, assoc=1)
        assert cache.num_sets == 8

    def test_fully_associative(self):
        cache = make_cache(size=512, block=64, assoc=8)
        assert cache.num_sets == 1

    def test_non_power_of_two_block_rejected(self):
        with pytest.raises(ValueError):
            make_cache(block=48)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            make_cache(size=64, block=64, assoc=2)


class TestAccess:
    def test_first_access_misses(self):
        cache = make_cache()
        assert cache.access(0)[0] is False

    def test_second_access_hits(self):
        cache = make_cache()
        cache.access(0)
        assert cache.access(0)[0] is True

    def test_same_block_hits(self):
        cache = make_cache(block=64)
        cache.access(128)
        assert cache.access(128 + 63)[0] is True

    def test_adjacent_block_misses(self):
        cache = make_cache(block=64)
        cache.access(0)
        assert cache.access(64)[0] is False

    def test_lru_eviction(self):
        cache = make_cache(size=256, block=64, assoc=2)  # 2 sets
        set_stride = 2 * 64  # same set every 2 blocks
        a, b, c = 0, set_stride, 2 * set_stride
        cache.access(a)
        cache.access(b)
        cache.access(c)           # evicts a (LRU)
        assert cache.probe(a) is False
        assert cache.probe(b) is True
        assert cache.probe(c) is True

    def test_lru_updated_on_hit(self):
        cache = make_cache(size=256, block=64, assoc=2)
        set_stride = 2 * 64
        a, b, c = 0, set_stride, 2 * set_stride
        cache.access(a)
        cache.access(b)
        cache.access(a)           # a becomes MRU
        cache.access(c)           # evicts b
        assert cache.probe(a) is True
        assert cache.probe(b) is False

    def test_probe_does_not_allocate(self):
        cache = make_cache()
        cache.probe(0)
        assert cache.access(0)[0] is False

    def test_probe_does_not_count(self):
        cache = make_cache()
        cache.probe(0)
        assert cache.stats.accesses == 0

    def test_flush_invalidates(self):
        cache = make_cache()
        cache.access(0)
        cache.flush()
        assert cache.access(0)[0] is False

    def test_occupancy_never_exceeds_assoc(self):
        cache = make_cache(size=256, block=64, assoc=2)
        for addr in range(0, 64 * 64, 64):
            cache.access(addr)
        for cache_set in cache._sets:
            assert len(cache_set) <= cache.assoc


class TestStats:
    def test_counts(self):
        cache = make_cache()
        cache.access(0)
        cache.access(0)
        cache.access(64)
        assert cache.stats.accesses == 3
        assert cache.stats.misses == 2
        assert cache.stats.hits == 1

    def test_miss_rate(self):
        cache = make_cache()
        cache.access(0)
        cache.access(0)
        assert cache.stats.miss_rate == pytest.approx(0.5)

    def test_empty_miss_rate(self):
        assert CacheStats().miss_rate == 0.0

    def test_copy_is_independent(self):
        stats = CacheStats(10, 5)
        clone = stats.copy()
        clone.misses = 0
        assert stats.misses == 5


class TestSnapshot:
    def test_roundtrip_preserves_contents(self):
        cache = make_cache()
        for addr in (0, 64, 512):
            cache.access(addr)
        state = cache.snapshot()
        cache.access(4096)
        cache.flush()
        cache.restore(state)
        assert cache.probe(0) and cache.probe(64) and cache.probe(512)

    def test_roundtrip_preserves_stats(self):
        cache = make_cache()
        cache.access(0)
        cache.access(0)
        state = cache.snapshot()
        cache.access(64)
        cache.restore(state)
        assert cache.stats.accesses == 2
        assert cache.stats.misses == 1

    def test_snapshot_isolated_from_later_accesses(self):
        cache = make_cache()
        cache.access(0)
        state = cache.snapshot()
        cache.access(12345 * 64)
        restored = make_cache()
        restored.restore(state)
        assert restored.probe(12345 * 64) is False

    def test_replay_determinism(self):
        cache = make_cache(size=256, block=64, assoc=2)
        addrs = [i * 64 * 3 % 4096 for i in range(40)]
        for addr in addrs[:20]:
            cache.access(addr)
        state = cache.snapshot()
        first = [cache.access(addr)[0] for addr in addrs[20:]]
        cache.restore(state)
        second = [cache.access(addr)[0] for addr in addrs[20:]]
        assert first == second


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1,
                max_size=200))
def test_property_hits_plus_misses_equals_accesses(addrs):
    cache = make_cache(size=512, block=64, assoc=2)
    for addr in addrs:
        cache.access(addr)
    assert cache.stats.hits + cache.stats.misses == cache.stats.accesses
    assert cache.stats.misses >= 1  # first access always misses


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1,
                max_size=100))
def test_property_immediate_repeat_always_hits(addrs):
    cache = make_cache()
    for addr in addrs:
        cache.access(addr)
        assert cache.access(addr)[0] is True
