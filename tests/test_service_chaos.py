"""Service-level chaos presets: every fault converges byte-identically.

These run the real thing — an in-process daemon, ``repro worker``
subprocesses, SIGKILLs, floods, torn uploads — so they are the slowest
tests in the suite.  Each preset's report must say ``ok`` (merged JSON
byte-identical to the fault-free serial reference, zero quarantined)
plus the preset-specific evidence that the fault actually fired.
"""

import pytest

from repro.service.chaos import SERVICE_CHAOS_PRESETS, run_service_chaos


class TestPresetTable:
    def test_presets_have_descriptions(self):
        assert sorted(SERVICE_CHAOS_PRESETS) == [
            "kill-worker", "queue-flood", "slow-client", "split-result",
            "worker-storm"]
        for description in SERVICE_CHAOS_PRESETS.values():
            assert len(description) > 20

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError):
            run_service_chaos("unplug-the-datacenter")


class TestServiceChaosPresets:
    def _run(self, preset):
        report = run_service_chaos(preset, epochs=2)
        assert report["identical"], report
        assert report["quarantined"] == report["expected_quarantined"] \
            == 0, report
        assert report["ok"], report
        return report

    def test_kill_worker_survivor_finishes(self):
        report = self._run("kill-worker")
        assert report["lease_expiries"] >= 1

    def test_worker_storm_converges(self):
        report = self._run("worker-storm")
        assert report["lease_expiries"] >= 1

    def test_slow_client_blocks_only_itself(self):
        self._run("slow-client")

    def test_queue_flood_throttles_and_converges(self):
        report = self._run("queue-flood")
        assert report["throttled"] >= 1

    def test_split_result_rejected_before_the_cache(self):
        report = self._run("split-result")
        assert report["invalid_results"] >= 1
        assert report["retries"] >= 1
