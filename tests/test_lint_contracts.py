"""Policy-contract checker tests: the seeded violations in
``tests/fixtures/lintpkg/bad_policy.py`` at exact lines, and the clean
subclasses staying clean."""

import os

import pytest

from repro.analysis.lint.contracts import check_tree, parse_base_contract

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
PKG_ROOT = os.path.join(FIXTURES, "lintpkg")
ALL_MODULES = ("base.py", "good.py", "bad_policy.py")


def run(rels=ALL_MODULES):
    return check_tree(PKG_ROOT, tuple(rels), "base.py", "BasePolicy")


def test_contract_extraction():
    contract = parse_base_contract(PKG_ROOT, "base.py", "BasePolicy")
    assert set(contract.hooks) == {"attach", "fetch_priority", "on_cycle",
                                   "on_epoch_end", "plan_epoch"}
    assert contract.hooks["on_epoch_end"].arity == 3
    assert contract.hooks["on_cycle"].params == ("self", "proc")
    assert {"name", "wants_miss_detection"} <= contract.class_attrs


def test_missing_base_class_raises():
    with pytest.raises(ValueError):
        parse_base_contract(PKG_ROOT, "base.py", "NoSuchClass")


def test_bad_policy_exact_findings():
    findings = [f for f in run() if f.path == "bad_policy.py"]
    got = sorted((f.rule, f.line) for f in findings)
    assert got == [
        ("PC201", 9),    # on_epoch_ends: typo'd hook name
        ("PC202", 12),   # on_cycle with an extra parameter
        ("PC203", 16),   # proc._cycle = 0
        ("PC203", 17),   # proc.partitions._shares = None
        ("PC203", 18),   # proc.stats._counts["x"] += 1
        ("PC204", 20),   # plan_epoch = None
    ]


def test_allowlisted_private_write_suppressed():
    findings = [f for f in run() if f.path == "bad_policy.py"]
    assert not any(f.line == 23 for f in findings)


def test_transitive_subclass_is_discovered():
    # BadPolicy subclasses GoodPolicy, not BasePolicy directly; leaving
    # good.py out of the scan set breaks the chain.
    assert [f for f in run(("base.py", "bad_policy.py"))] == []


def test_good_policies_are_clean():
    assert [f for f in run() if f.path == "good.py"] == []


def test_property_with_hook_shaped_name_is_exempt():
    # GoodPolicy.on_demand is a @property; no PC201.
    findings = run()
    assert not any(f.rule == "PC201" and f.path == "good.py"
                   for f in findings)


def test_unrelated_class_is_ignored():
    # nondet.py defines no policy subclass; scanning it adds nothing.
    findings = run(ALL_MODULES + ("nondet.py",))
    assert not any(f.path == "nondet.py" for f in findings)
