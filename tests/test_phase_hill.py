"""Tests for phase-based hill-climbing (Section 5)."""

from repro.core.controller import EpochController
from repro.core.metrics import AvgIPC
from repro.core.phase_hill import PhaseHillPolicy
from repro.pipeline.config import SMTConfig
from repro.pipeline.processor import SMTProcessor
from repro.workloads.spec2000 import get_profile


def make_proc(policy, benchmarks=("gzip", "mcf"), seed=1):
    profiles = [get_profile(name) for name in benchmarks]
    return SMTProcessor(SMTConfig.tiny(), profiles, seed=seed, policy=policy,
                        phase_period=400)


class TestPhaseHill:
    def test_attach_installs_bbv_collector(self):
        policy = PhaseHillPolicy(metric=AvgIPC(), sample_period=None)
        proc = make_proc(policy)
        assert proc.bbv is not None
        assert proc.bbv.num_threads == 2

    def test_runs_and_learns_phases(self):
        policy = PhaseHillPolicy(metric=AvgIPC(), sample_period=None,
                                 software_cost=0)
        proc = make_proc(policy)
        proc.run(1500)
        controller = EpochController(proc, epoch_size=512)
        controller.run(10)
        assert policy.current_phase is not None
        assert len(policy.phase_anchor) >= 1
        assert len(policy.phase_table) >= 1

    def test_phase_anchor_stored_per_phase(self):
        policy = PhaseHillPolicy(metric=AvgIPC(), sample_period=None,
                                 software_cost=0)
        proc = make_proc(policy)
        proc.run(1500)
        controller = EpochController(proc, epoch_size=512)
        controller.run(8)
        for anchor in policy.phase_anchor.values():
            assert sum(anchor) == proc.config.rename_int

    def test_phase_reuse_restores_anchor(self):
        policy = PhaseHillPolicy(metric=AvgIPC(), sample_period=None,
                                 software_cost=0)
        proc = make_proc(policy)
        # Manufacture a revisit: classify phase A, then B, then A again.
        policy.current_phase = 5
        policy.phase_anchor[7] = [20, 12]

        class FakeTable:
            def classify(self, signature):
                return 7

        policy.phase_table = FakeTable()
        from repro.core.controller import EpochResult
        result = EpochResult(epoch_id=0, kind="normal", committed=[10, 10],
                             cycles=100, shares=[16, 16])
        policy.on_epoch_end(proc, result)
        assert policy.phase_reuses == 1
        assert policy.current_phase == 7

    def test_name_distinct_from_plain_hill(self):
        policy = PhaseHillPolicy()
        assert policy.name.startswith("PHASE-")

    def test_solo_epoch_passthrough(self):
        policy = PhaseHillPolicy(metric=AvgIPC(), sample_period=None,
                                 software_cost=0)
        proc = make_proc(policy)
        from repro.core.controller import EpochResult
        result = EpochResult(epoch_id=0, kind="solo", committed=[50, 0],
                             cycles=100, solo_thread=0, shares=[16, 16])
        policy.on_epoch_end(proc, result)  # must not touch phase state
        assert policy.current_phase is None
