"""Tests for the Figure 2 distribution surface."""

import pytest

from repro.analysis.surface import distribution_surface
from repro.pipeline.config import SMTConfig
from repro.pipeline.processor import SMTProcessor
from repro.policies.static_partition import StaticPartitionPolicy
from repro.workloads.spec2000 import get_profile


def make_3thread_proc():
    profiles = [get_profile(name) for name in ("mesa", "vortex", "fma3d")]
    proc = SMTProcessor(SMTConfig.tiny(), profiles, seed=1,
                        policy=StaticPartitionPolicy())
    proc.run(2000)
    return proc


class TestSurface:
    def test_requires_three_threads(self):
        profiles = [get_profile("gzip"), get_profile("eon")]
        proc = SMTProcessor(SMTConfig.tiny(), profiles,
                            policy=StaticPartitionPolicy())
        with pytest.raises(ValueError):
            distribution_surface(proc, 256)

    def test_surface_feasible_points_only(self):
        proc = make_3thread_proc()
        surface = distribution_surface(proc, 512, step=8)
        total = proc.config.rename_int
        minimum = proc.config.min_partition
        for (share0, share1) in surface.ipc:
            assert share0 + share1 <= total - minimum

    def test_peak_is_argmax(self):
        proc = make_3thread_proc()
        surface = distribution_surface(proc, 512, step=8)
        assert surface.peak_ipc == max(surface.ipc.values())
        share0, share1, share2 = surface.peak_shares
        assert surface.ipc[(share0, share1)] == surface.peak_ipc
        assert share0 + share1 + share2 == proc.config.rename_int

    def test_source_machine_untouched(self):
        proc = make_3thread_proc()
        cycle = proc.cycle
        distribution_surface(proc, 256, step=16)
        assert proc.cycle == cycle

    def test_rows_view(self):
        proc = make_3thread_proc()
        surface = distribution_surface(proc, 256, step=16)
        rows = surface.rows()
        assert rows
        for share0, row in rows:
            assert share0 in surface.share_axis
            for share1, value in row:
                assert surface.ipc[(share0, share1)] == value

    def test_deterministic(self):
        a = distribution_surface(make_3thread_proc(), 256, step=16)
        b = distribution_surface(make_3thread_proc(), 256, step=16)
        assert a.ipc == b.ipc
