"""The parallel sweep engine: determinism, caching, invalidation, resume.

The acceptance contract of docs/PARALLEL.md, as tests:

* ``jobs=4`` merged JSON is byte-identical to ``jobs=1``;
* a warm re-run is pure cache hits and returns equal results;
* cache keys shift when the machine config, the epoch schedule, or the
  policy family's source code changes — and only for the affected family;
* a sweep killed mid-cell resumes from its per-epoch checkpoints and
  finishes with metrics identical to an uninterrupted run.
"""

import json
import os
import time

import pytest

from repro.experiments import parallel
from repro.experiments.parallel import (
    ResultCache,
    SweepCell,
    SweepEngine,
    cache_key,
    canonical_policy,
    clear_fingerprint_memo,
    code_fingerprint,
    grid_cells,
    merged_json,
    pool_map,
)
from repro.experiments.runner import ExperimentScale

WORKLOADS = ("art-mcf", "apsi-eon")
POLICIES = ("ICOUNT", "HILL")


@pytest.fixture
def scale():
    return ExperimentScale.smoke()


def small_grid():
    return grid_cells(workloads=WORKLOADS, policies=POLICIES)


# -- grids and policy names -------------------------------------------------


class TestGrid:
    def test_grid_is_workload_major_and_canonical(self):
        cells = small_grid()
        assert [cell.label for cell in cells] == [
            "art-mcf/ICOUNT/s0", "art-mcf/HILL-WIPC/s0",
            "apsi-eon/ICOUNT/s0", "apsi-eon/HILL-WIPC/s0",
        ]

    def test_equivalent_spellings_share_cells(self, scale):
        assert canonical_policy("hill") == "HILL-WIPC"
        a = SweepCell(workload="art-mcf", policy=canonical_policy("HILL"))
        b = SweepCell(workload="art-mcf",
                      policy=canonical_policy("hill-wipc"))
        assert cache_key(a, scale) == cache_key(b, scale)

    def test_unknown_names_fail_fast(self):
        with pytest.raises(ValueError):
            canonical_policy("GRADIENT-DESCENT")
        with pytest.raises(KeyError):
            grid_cells(workloads=("no-such-workload",))

    def test_groups_and_limit(self):
        cells = grid_cells(groups=("MEM2",), policies=("ICOUNT",),
                           workloads_per_group=2)
        assert len(cells) == 2


# -- determinism ------------------------------------------------------------


class TestDeterminism:
    def test_parallel_merged_json_byte_identical_to_serial(self, scale,
                                                           tmp_path):
        cells = small_grid()
        serial = SweepEngine(scale, jobs=1,
                             cache_dir=str(tmp_path / "c1"))
        fanned = SweepEngine(scale, jobs=4,
                             cache_dir=str(tmp_path / "c4"))
        doc1 = merged_json(cells, serial.run_cells(cells), scale)
        doc4 = merged_json(cells, fanned.run_cells(cells), scale)
        assert doc1 == doc4
        assert serial.stats["misses"] == fanned.stats["misses"] == 4

    def test_results_follow_request_order_not_completion_order(self, scale,
                                                               tmp_path):
        cells = small_grid()
        engine = SweepEngine(scale, jobs=2, cache_dir=str(tmp_path / "c"))
        results = engine.run_cells(cells)
        again = engine.run_cells(list(reversed(cells)))
        assert results == list(reversed(again))

    def test_cached_results_carry_no_execution_metadata(self, scale,
                                                        tmp_path):
        engine = SweepEngine(scale, cache_dir=str(tmp_path / "c"),
                             resume_dir=str(tmp_path / "r"))
        (result,) = engine.run_cells([small_grid()[0]])
        assert result.reliability is None


# -- the cache --------------------------------------------------------------


class TestCache:
    def test_warm_rerun_is_all_hits_and_fast(self, scale, tmp_path):
        cells = small_grid()
        cache_dir = str(tmp_path / "cache")
        cold = SweepEngine(scale, jobs=1, cache_dir=cache_dir)
        t0 = time.time()
        first = cold.run_cells(cells)
        cold_wall = time.time() - t0

        warm = SweepEngine(scale, jobs=1, cache_dir=cache_dir)
        t0 = time.time()
        second = warm.run_cells(cells)
        warm_wall = time.time() - t0

        assert warm.stats == {"hits": len(cells), "misses": 0, "resumed": 0}
        assert merged_json(cells, first, scale) == \
            merged_json(cells, second, scale)
        # The ISSUE acceptance bar is <10% of cold wall-clock; in practice
        # a warm read is a handful of JSON loads.
        assert warm_wall < 0.5 * cold_wall

    def test_key_depends_on_config_and_schedule(self, scale):
        cell = small_grid()[0]
        base = cache_key(cell, scale)
        assert cache_key(cell, scale.with_overrides(epoch_size=2048)) != base
        bigger = scale.with_overrides(
            config=scale.config.with_overrides(rename_int=64))
        assert cache_key(cell, bigger) != base
        assert cache_key(cell, ExperimentScale.smoke()) == base
        seeded = SweepCell(workload=cell.workload, policy=cell.policy,
                           seed=7)
        assert cache_key(seeded, scale) != base

    def test_code_fingerprint_invalidates_only_its_family(self, scale,
                                                          tmp_path,
                                                          monkeypatch):
        fake = tmp_path / "fake_policy.py"
        fake.write_text("TUNING = 1\n")
        monkeypatch.setitem(parallel._POLICY_SOURCES, "DCRA",
                            ("policies/dcra.py",
                             os.path.relpath(str(fake),
                                             parallel._package_root())))
        # Drop memo entries built from the patched source map, even if an
        # assertion below fails — later tests hash the real tree.
        try:
            clear_fingerprint_memo()
            dcra = SweepCell(workload="art-mcf", policy="DCRA")
            icount = SweepCell(workload="art-mcf", policy="ICOUNT")
            dcra_before = cache_key(dcra, scale)
            icount_before = cache_key(icount, scale)

            fake.write_text("TUNING = 2\n")
            clear_fingerprint_memo()
            assert cache_key(dcra, scale) != dcra_before
            assert cache_key(icount, scale) == icount_before
        finally:
            clear_fingerprint_memo()

    def test_corrupt_entries_count_as_misses(self, scale, tmp_path):
        cell = small_grid()[0]
        cache_dir = str(tmp_path / "cache")
        engine = SweepEngine(scale, cache_dir=cache_dir)
        (result,) = engine.run_cells([cell])

        cache = ResultCache(cache_dir)
        path = cache._path(cache_key(cell, scale))
        with open(path, "w") as handle:
            handle.write("{torn")
        assert cache.get(cache_key(cell, scale)) is None

        retry = SweepEngine(scale, cache_dir=cache_dir)
        (again,) = retry.run_cells([cell])
        assert retry.stats["misses"] == 1
        assert again.to_dict() == result.to_dict()

    def test_info_and_clear(self, scale, tmp_path):
        cache_dir = str(tmp_path / "cache")
        engine = SweepEngine(scale, cache_dir=cache_dir)
        engine.run_cells(small_grid())
        cache = ResultCache(cache_dir)
        stats = cache.info()
        assert stats.entries == 4 and stats.bytes > 0
        assert cache.clear() == 4
        assert cache.info().entries == 0

    def test_use_cache_false_writes_nothing(self, scale, tmp_path):
        cache_dir = str(tmp_path / "cache")
        engine = SweepEngine(scale, cache_dir=cache_dir, use_cache=False)
        engine.run_cells([small_grid()[0]])
        assert ResultCache(cache_dir).info().entries == 0


# -- kill and resume --------------------------------------------------------


class TestResume:
    def test_killed_cell_resumes_with_identical_metrics(self, scale,
                                                        tmp_path):
        from repro.reliability.guard import (RunInterrupted,
                                             run_policy_resilient, run_slug)
        from repro.workloads.mixes import get_workload

        cell = SweepCell(workload="art-mcf",
                         policy=canonical_policy("HILL"))
        resume_dir = str(tmp_path / "resume")
        cell_dir = os.path.join(
            resume_dir, run_slug(cell.workload, cell.policy, cell.seed))

        # Simulate the kill: the same resilient run the worker would do,
        # stopped deterministically after 3 epochs with state on disk.
        factory = parallel.policy_factory(cell.policy, scale)
        with pytest.raises(RunInterrupted):
            run_policy_resilient(get_workload(cell.workload), factory(),
                                 scale, run_dir=cell_dir, resume=True,
                                 sanitize_partitions=False, stop_after=3)
        assert os.path.isdir(cell_dir)

        engine = SweepEngine(scale, cache_dir=str(tmp_path / "cache"),
                             resume_dir=resume_dir)
        (resumed,) = engine.run_cells([cell])
        assert engine.stats["resumed"] == 1

        fresh_engine = SweepEngine(scale,
                                   cache_dir=str(tmp_path / "cache2"))
        (fresh,) = fresh_engine.run_cells([cell])
        assert resumed.to_dict() == fresh.to_dict()

    def test_finished_cells_come_from_cache_after_a_kill(self, scale,
                                                         tmp_path):
        cells = small_grid()
        cache_dir = str(tmp_path / "cache")
        first = SweepEngine(scale, cache_dir=cache_dir)
        first.run_cells(cells[:2])  # "the sweep died after two cells"

        second = SweepEngine(scale, cache_dir=cache_dir)
        second.run_cells(cells)
        assert second.stats == {"hits": 2, "misses": 2, "resumed": 0}


# -- events and pool_map ----------------------------------------------------


class TestEventsAndPool:
    def test_event_stream_shape(self, scale, tmp_path):
        events_path = str(tmp_path / "logs" / "events.jsonl")
        engine = SweepEngine(scale, jobs=2,
                             cache_dir=str(tmp_path / "cache"),
                             events_path=events_path)
        cells = small_grid()
        engine.run_cells(cells)
        # A fresh engine's warm pass reads the disk cache and logs it;
        # (re-running on the same engine serves the in-memory map, which
        # is not an event).
        warm = SweepEngine(scale, jobs=2,
                           cache_dir=str(tmp_path / "cache"),
                           events_path=events_path)
        warm.run_cells(cells)

        with open(events_path) as handle:
            events = [json.loads(line) for line in handle]
        kinds = [event["event"] for event in events]
        assert kinds[0] == "sweep-start"
        assert kinds.count("cell-start") == len(cells)
        assert kinds.count("cell-done") == len(cells)
        assert kinds.count("cell-cached") == len(cells)
        assert kinds.count("sweep-done") == 2
        done = [e for e in events if e["event"] == "cell-done"]
        assert done[-1]["done"] == done[-1]["total"] == len(cells)
        assert all("ts" in event for event in events)
        assert any("eta_s" in event for event in done)

    def test_pool_map_preserves_order(self):
        tasks = [(value,) for value in range(7)]
        assert pool_map(_square, tasks, jobs=3) == \
            pool_map(_square, tasks, jobs=1) == \
            [value * value for value in range(7)]

    def test_jobs_must_be_positive(self, scale):
        with pytest.raises(ValueError):
            SweepEngine(scale, jobs=0)


def _square(value):
    return value * value


class TestFingerprint:
    def test_families_share_substrate_but_differ(self):
        icount = code_fingerprint("ICOUNT")
        dcra = code_fingerprint("DCRA")
        hill = code_fingerprint("HILL")
        assert len({icount, dcra, hill}) == 3
        assert code_fingerprint("HILL-IPC") == hill
        assert code_fingerprint("hill") == hill


# -- supervision satellites -------------------------------------------------


class TestCacheCorruptionHandling:
    def test_corrupt_entry_is_moved_aside_with_a_warning(self, scale,
                                                         tmp_path, capsys):
        cell = small_grid()[0]
        cache_dir = str(tmp_path / "cache")
        SweepEngine(scale, cache_dir=cache_dir).run_cells([cell])

        cache = ResultCache(cache_dir)
        key = cache_key(cell, scale)
        path = cache._path(key)
        with open(path, "w") as handle:
            handle.write('{"result": "not a dict"}')

        assert cache.get(key) is None
        err = capsys.readouterr().err
        assert "corrupt cache entry" in err
        assert "treated as a miss" in err
        assert not os.path.exists(path)
        assert os.path.exists(path[:-len(".json")] + ".corrupt")
        # The moved-aside entry can never shadow the re-simulated result.
        assert cache.get(key) is None

    def test_info_counts_corrupt_entries_and_clear_can_target_them(
            self, scale, tmp_path, capsys):
        cells = small_grid()[:2]
        cache_dir = str(tmp_path / "cache")
        SweepEngine(scale, cache_dir=cache_dir).run_cells(cells)
        cache = ResultCache(cache_dir)
        key = cache_key(cells[0], scale)
        with open(cache._path(key), "w") as handle:
            handle.write("not json")
        assert cache.get(key) is None  # sidelines it as .corrupt
        capsys.readouterr()

        stats = cache.info()
        assert stats.entries == 1
        assert stats.corrupt == 1
        assert stats.corrupt_bytes > 0

        # --corrupt-only removes the sidelined entry, keeps the result.
        assert cache.clear(corrupt_only=True) == 1
        stats = cache.info()
        assert (stats.entries, stats.corrupt, stats.corrupt_bytes) \
            == (1, 0, 0)
        assert cache.get(cache_key(cells[1], scale)) is not None

        # A plain clear removes valid and sidelined entries alike.
        with open(cache._path(key), "w") as handle:
            handle.write("still not json")
        assert cache.get(key) is None
        capsys.readouterr()
        assert cache.clear() == 2
        assert cache.info().entries == 0


class TestCacheConcurrency:
    def test_put_survives_a_racing_clear(self, scale, tmp_path):
        import shutil

        cell = small_grid()[0]
        cache_dir = str(tmp_path / "cache")
        SweepEngine(scale, cache_dir=cache_dir).run_cells([cell])
        cache = ResultCache(cache_dir)
        key = cache_key(cell, scale)
        result = cache.get(key)
        assert result is not None

        # A concurrent engine's clear() can rip the bucket directory out
        # from under a put(); put recreates it instead of raising.
        shutil.rmtree(cache.objects_dir)
        cache.put(key, cell, result)
        assert cache.get(key) == result

    def test_duplicate_put_on_the_same_key_is_a_silent_noop(
            self, scale, tmp_path):
        cell = small_grid()[0]
        cache_dir = str(tmp_path / "cache")
        SweepEngine(scale, cache_dir=cache_dir).run_cells([cell])
        cache = ResultCache(cache_dir)
        key = cache_key(cell, scale)
        result = cache.get(key)
        cache.put(key, cell, result)
        cache.put(key, cell, result)
        assert cache.info().entries == 1
        assert cache.get(key) == result


class TestPureCacheMerge:
    def test_empty_task_list_short_circuits(self):
        assert pool_map(_square, [], jobs=4) == []

    def test_fully_cached_sweep_never_builds_a_pool(self, scale, tmp_path,
                                                    monkeypatch):
        cells = small_grid()
        cache_dir = str(tmp_path / "cache")
        SweepEngine(scale, jobs=1, cache_dir=cache_dir).run_cells(cells)

        def boom(*args, **kwargs):
            raise AssertionError("a fully cached sweep built a pool")

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", boom)
        warm = SweepEngine(scale, jobs=4, cache_dir=cache_dir)
        results = warm.run_cells(cells)
        assert warm.stats == {"hits": len(cells), "misses": 0,
                              "resumed": 0}
        assert all(result is not None for result in results)


class TestMergedQuarantineSection:
    def test_quarantined_key_is_always_present(self, scale, tmp_path):
        cells = small_grid()[:1]
        engine = SweepEngine(scale, cache_dir=str(tmp_path / "c"))
        results = engine.run_cells(cells)
        doc = json.loads(merged_json(cells, results, scale))
        assert doc["quarantined"] == []
