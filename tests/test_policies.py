"""Tests for the baseline resource-distribution policies."""

import pytest

from repro.pipeline.config import SMTConfig
from repro.pipeline.processor import SMTProcessor
from repro.policies.base import ResourcePolicy
from repro.policies.dcra import DCRAPolicy
from repro.policies.flush import FlushPolicy
from repro.policies.icount import ICountPolicy
from repro.policies.stall import StallPolicy
from repro.policies.static_partition import StaticPartitionPolicy
from repro.policies import BASELINE_POLICIES
from repro.workloads.spec2000 import get_profile


def make_proc(policy, benchmarks=("art", "gzip"), seed=1, config=None):
    profiles = [get_profile(name) for name in benchmarks]
    return SMTProcessor(config or SMTConfig.tiny(), profiles, seed=seed,
                        policy=policy)


class TestBasePolicy:
    def test_default_fetch_priority_is_icount(self):
        proc = make_proc(ICountPolicy())
        proc.run(1000)
        threads = proc.threads
        order = proc.policy.fetch_priority(proc, [0, 1])
        counts = [threads[tid].icount for tid in order]
        assert counts == sorted(counts)

    def test_registry_contains_all(self):
        assert set(BASELINE_POLICIES) == {
            "ICOUNT", "FPG", "STALL", "FLUSH", "STALL-FLUSH", "DG", "PDG",
            "DCRA", "STATIC",
        }

    def test_every_registered_policy_runs(self):
        for name, factory in BASELINE_POLICIES.items():
            proc = make_proc(factory(), benchmarks=("art", "gzip"))
            proc.run(3000)
            assert sum(proc.stats.committed) > 0, name
            assert proc.check_invariants(), name

    def test_repr(self):
        assert "ICOUNT" in repr(ICountPolicy())


class TestICount:
    def test_no_partitioning(self):
        proc = make_proc(ICountPolicy())
        assert not proc.partitions.partitioned
        assert proc.partitions.limit_rob[0] == proc.config.rob_size

    def test_runs(self):
        proc = make_proc(ICountPolicy())
        proc.run(4000)
        assert all(count > 0 for count in proc.stats.committed)


class TestFlush:
    def test_flushes_on_l2_miss(self):
        proc = make_proc(FlushPolicy(), benchmarks=("art", "mcf"))
        proc.run(6000)
        assert sum(proc.stats.flushes) > 0

    def test_locks_then_unlocks(self):
        proc = make_proc(FlushPolicy(), benchmarks=("art", "gzip"))
        saw_locked = False
        for __ in range(60):
            proc.run(100)
            if any(thread.policy_locked for thread in proc.threads):
                saw_locked = True
        assert saw_locked
        # locks always clear once misses return
        proc.policy._waiting.clear()
        for thread in proc.threads:
            thread.policy_locked = False
        proc.run(500)
        assert proc.check_invariants()

    def test_lock_cycles_counted(self):
        proc = make_proc(FlushPolicy(), benchmarks=("art", "mcf"))
        proc.run(8000)
        assert sum(proc.stats.lock_cycles) > 0

    def test_ilp_workload_rarely_flushes(self):
        proc = make_proc(FlushPolicy(), benchmarks=("gzip", "eon"))
        proc.run(4000)
        assert sum(proc.stats.flushes) <= sum(proc.stats.l2_misses)

    def test_no_deadlock_long_run(self):
        proc = make_proc(FlushPolicy(), benchmarks=("art", "mcf"))
        before = 0
        for __ in range(8):
            proc.run(2000)
            now = sum(proc.stats.committed)
            assert now > before  # forward progress every window
            before = now


class TestStall:
    def test_locks_without_flushing(self):
        proc = make_proc(StallPolicy(), benchmarks=("art", "mcf"))
        proc.run(8000)
        assert sum(proc.stats.lock_cycles) > 0
        assert sum(proc.stats.flushes) == 0

    def test_forward_progress(self):
        proc = make_proc(StallPolicy(), benchmarks=("art", "mcf"))
        proc.run(6000)
        assert all(count > 0 for count in proc.stats.committed)


class TestDCRA:
    def test_caps_sum_to_capacity(self):
        proc = make_proc(DCRAPolicy(update_interval=1))
        for __ in range(20):
            proc.run(100)
            limits = proc.partitions
            assert sum(limits.limit_int_rename) <= proc.config.rename_int
            assert sum(limits.limit_rob) <= proc.config.rob_size

    def test_slow_thread_gets_bigger_cap(self):
        proc = make_proc(DCRAPolicy(update_interval=1),
                         benchmarks=("art", "gzip"))
        saw_asymmetry = False
        for __ in range(80):
            proc.run(100)
            limits = proc.partitions.limit_int_rename
            if limits[0] > limits[1]:
                saw_asymmetry = True
                break
        assert saw_asymmetry  # art (missing) gets the larger partition

    def test_slow_weight_validation(self):
        with pytest.raises(ValueError):
            DCRAPolicy(slow_weight=0.5)
        with pytest.raises(ValueError):
            DCRAPolicy(update_interval=0)

    def test_update_interval_limits_recompute_rate(self):
        calls = []
        policy = DCRAPolicy(update_interval=50)
        original = policy._recompute

        def counting(proc, classes):
            calls.append(proc.cycle)
            return original(proc, classes)

        policy._recompute = counting
        proc = make_proc(policy, benchmarks=("art", "mcf"))
        proc.run(500)
        gaps = [b - a for a, b in zip(calls, calls[1:])]
        assert all(gap >= 50 for gap in gaps)

    def test_all_fast_equal_caps(self):
        policy = DCRAPolicy()
        proc = make_proc(policy, benchmarks=("gzip", "eon"))
        policy._recompute(proc, (False, False))
        limits = proc.partitions.limit_int_rename
        assert limits[0] == limits[1]


class TestStaticPartition:
    def test_equal_by_default(self):
        proc = make_proc(StaticPartitionPolicy())
        assert proc.partitions.shares == [16, 16]

    def test_custom_shares(self):
        proc = make_proc(StaticPartitionPolicy([8, 24]))
        assert proc.partitions.shares == [8, 24]

    def test_shares_fixed_over_time(self):
        proc = make_proc(StaticPartitionPolicy([8, 24]))
        proc.run(4000)
        assert proc.partitions.shares == [8, 24]


class TestFPG:
    def test_no_partitioning(self):
        from repro.policies.fpg import FPGPolicy

        proc = make_proc(FPGPolicy())
        assert not proc.partitions.partitioned

    def test_goodness_tracks_accuracy(self):
        from repro.policies.fpg import FPGPolicy

        policy = FPGPolicy()
        # crafty mispredicts much more than gzip; its goodness should fall
        # behind after a while.
        proc = make_proc(policy, benchmarks=("crafty", "gzip"))
        proc.run(8000)
        assert policy.goodness[1] >= policy.goodness[0] - 0.05

    def test_priority_prefers_good_threads(self):
        from repro.policies.fpg import FPGPolicy

        policy = FPGPolicy()
        proc = make_proc(policy)
        policy.goodness = [0.5, 0.95]
        assert policy.fetch_priority(proc, [0, 1])[0] == 1

    def test_smoothing_validation(self):
        from repro.policies.fpg import FPGPolicy

        with pytest.raises(ValueError):
            FPGPolicy(smoothing=0.0)


class TestDGAndPDG:
    def test_dg_locks_on_outstanding_misses(self):
        from repro.policies.dg import DGPolicy

        proc = make_proc(DGPolicy(threshold=1), benchmarks=("art", "mcf"))
        saw_lock = False
        for __ in range(60):
            proc.run(100)
            if any(thread.policy_locked for thread in proc.threads):
                saw_lock = True
                break
        assert saw_lock

    def test_dg_threshold_validation(self):
        from repro.policies.dg import DGPolicy

        with pytest.raises(ValueError):
            DGPolicy(threshold=0)

    def test_pdg_trains_predictor(self):
        from repro.policies.dg import PDGPolicy

        policy = PDGPolicy(table_size=64)
        proc = make_proc(policy, benchmarks=("art", "mcf"))
        proc.run(6000)
        assert any(counter != 1 for counter in policy._tables[0])

    def test_pdg_forward_progress(self):
        from repro.policies.dg import PDGPolicy

        proc = make_proc(PDGPolicy(), benchmarks=("art", "mcf"))
        proc.run(6000)
        assert all(count > 0 for count in proc.stats.committed)

    def test_pdg_validation(self):
        from repro.policies.dg import PDGPolicy

        with pytest.raises(ValueError):
            PDGPolicy(table_size=0)


class TestStallFlush:
    def test_flushes_less_than_pure_flush(self):
        from repro.policies.stall_flush import StallFlushPolicy

        hybrid = make_proc(StallFlushPolicy(), benchmarks=("art", "mcf"))
        hybrid.run(8000)
        pure = make_proc(FlushPolicy(), benchmarks=("art", "mcf"))
        pure.run(8000)
        assert sum(hybrid.stats.flushes) <= sum(pure.stats.flushes)

    def test_locks_like_stall(self):
        from repro.policies.stall_flush import StallFlushPolicy

        proc = make_proc(StallFlushPolicy(), benchmarks=("art", "mcf"))
        proc.run(8000)
        assert sum(proc.stats.lock_cycles) > 0

    def test_pressure_validation(self):
        from repro.policies.stall_flush import StallFlushPolicy

        with pytest.raises(ValueError):
            StallFlushPolicy(pressure=0.0)

    def test_forward_progress(self):
        from repro.policies.stall_flush import StallFlushPolicy

        proc = make_proc(StallFlushPolicy(), benchmarks=("art", "mcf"))
        before = 0
        for __ in range(6):
            proc.run(2000)
            now = sum(proc.stats.committed)
            assert now > before
            before = now


class TestPolicyHooksInterface:
    def test_base_hooks_are_noops(self):
        policy = ResourcePolicy()
        proc = make_proc(ICountPolicy())
        policy.on_cycle(proc)
        policy.on_l2_miss_detected(proc, None)
        policy.on_load_complete(proc, None)
        policy.on_squash(proc, 0, 0)
        policy.on_epoch_end(proc, None)
        assert policy.plan_epoch(proc, 0) is None
