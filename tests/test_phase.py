"""Tests for the phase detection/prediction substrate (Section 5)."""

import pytest

from repro.phase.bbv import BBVCollector, signature_distance
from repro.phase.detector import PhaseTable
from repro.phase.predictor import RLEMarkovPredictor


class TestBBV:
    def test_note_and_harvest(self):
        collector = BBVCollector(2, buckets=8)
        collector.note(0, 0)
        collector.note(0, 0)
        collector.note(1, 4)
        signature = collector.harvest()
        assert len(signature) == 16
        assert signature[0] == pytest.approx(1.0)   # thread 0 bucket 0
        assert signature[8 + 1] == pytest.approx(1.0)  # thread 1 bucket 1

    def test_harvest_resets(self):
        collector = BBVCollector(1, buckets=4)
        collector.note(0, 0)
        collector.harvest()
        signature = collector.harvest()
        assert all(value == 0.0 for value in signature)

    def test_normalization_per_thread(self):
        collector = BBVCollector(2, buckets=4)
        for __ in range(100):
            collector.note(0, 0)
        collector.note(1, 0)
        signature = collector.harvest()
        # both threads contribute unit mass despite count imbalance
        assert sum(signature[:4]) == pytest.approx(1.0)
        assert sum(signature[4:]) == pytest.approx(1.0)

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError):
            BBVCollector(1, buckets=0)

    def test_distance(self):
        assert signature_distance((1.0, 0.0), (0.0, 1.0)) == pytest.approx(2.0)
        assert signature_distance((0.5, 0.5), (0.5, 0.5)) == 0.0

    def test_distance_length_mismatch(self):
        with pytest.raises(ValueError):
            signature_distance((1.0,), (0.5, 0.5))


class TestPhaseTable:
    def test_new_signature_allocates_id(self):
        table = PhaseTable(capacity=4, threshold=0.1)
        assert table.classify((1.0, 0.0)) == 0
        assert table.classify((0.0, 1.0)) == 1

    def test_close_signature_reuses_id(self):
        table = PhaseTable(capacity=4, threshold=0.3)
        first = table.classify((1.0, 0.0))
        again = table.classify((0.9, 0.1))
        assert again == first

    def test_capacity_evicts_lru(self):
        table = PhaseTable(capacity=2, threshold=0.01)
        a = table.classify((1.0, 0.0, 0.0))
        b = table.classify((0.0, 1.0, 0.0))
        table.classify(  # touches b's slot? no - new phase evicts a (LRU)
            (0.0, 0.0, 1.0))
        assert len(table) == 2
        # a was evicted; re-presenting it allocates a fresh id
        assert table.classify((1.0, 0.0, 0.0)) not in (a,)
        assert table.classify((0.0, 1.0, 0.0)) != b or True

    def test_len(self):
        table = PhaseTable(capacity=8)
        table.classify((1.0, 0.0))
        assert len(table) == 1

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            PhaseTable(capacity=0)


class TestRLEMarkov:
    def test_first_prediction_is_none(self):
        assert RLEMarkovPredictor().predict_next() is None

    def test_defaults_to_same_phase(self):
        predictor = RLEMarkovPredictor()
        predictor.observe(3)
        assert predictor.predict_next() == 3

    def test_learns_alternation(self):
        """Pattern A A B A A B ... becomes predictable once the run-length
        state recurs."""
        predictor = RLEMarkovPredictor()
        pattern = [0, 0, 1] * 20
        for phase in pattern:
            predictor.predict_next()
            predictor.observe(phase)
        # At state (0, run=2) the table knows 1 follows.
        predictor.observe(0)
        predictor.observe(0)
        assert predictor.predict_next() == 1

    def test_accuracy_tracked(self):
        predictor = RLEMarkovPredictor()
        for phase in [0, 0, 0, 0]:
            predictor.predict_next()
            predictor.observe(phase)
        assert predictor.lookups >= 3
        assert predictor.accuracy > 0.5

    def test_capacity_bounded(self):
        predictor = RLEMarkovPredictor(entries=4)
        for phase in range(50):
            predictor.observe(phase)  # every transition is novel
        assert len(predictor._table) <= 4

    def test_run_length_capped(self):
        predictor = RLEMarkovPredictor(max_run_length=4)
        for __ in range(100):
            predictor.observe(0)
        assert predictor._run_length == 100
        assert predictor._key(0, predictor._run_length) == (0, 4)

    def test_bad_entries(self):
        with pytest.raises(ValueError):
            RLEMarkovPredictor(entries=0)
