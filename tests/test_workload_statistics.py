"""Statistical verification of the synthetic streams: the realized event
rates must match the profile parameters they claim to implement (this is
the evidence behind the DESIGN.md substitution argument)."""

import statistics

import pytest

from repro.workloads.generator import OpClass, SyntheticStream
from repro.workloads.spec2000 import PROFILES, get_profile

SAMPLE = 30000


def stream_events(name, count=SAMPLE, seed=1):
    stream = SyntheticStream(get_profile(name), 0, seed=seed)
    return [stream.next_instruction() for __ in range(count)]


def far_positions(instructions):
    return [
        index for index, instr in enumerate(instructions)
        if instr.op == OpClass.LOAD and (instr.addr & 0x2000_0000)
    ]


class TestEventRates:
    @pytest.mark.parametrize("name", ["gzip", "eon", "apsi"])
    def test_ilp_mix_matches_profile(self, name):
        profile = get_profile(name)
        instructions = stream_events(name)
        loads = sum(1 for instr in instructions if instr.op == OpClass.LOAD)
        stores = sum(1 for instr in instructions if instr.op == OpClass.STORE)
        assert loads / len(instructions) == pytest.approx(
            profile.load_frac, abs=0.02)
        assert stores / len(instructions) == pytest.approx(
            profile.store_frac, abs=0.02)

    @pytest.mark.parametrize("name", ["art", "swim", "mcf"])
    def test_far_miss_rate_scales_with_mem_frac_and_burst(self, name):
        """One far group = 1 trigger + ``burst`` members, every
        (1/mem_frac idle + burst*gap in-burst) data accesses; loads are
        load_frac/(load_frac+store_frac) of those accesses."""
        profile = get_profile(name)
        instructions = stream_events(name)
        far = len(far_positions(instructions))
        accesses = sum(1 for instr in instructions if instr.is_mem)
        params = profile.phase_a
        group_period = 1.0 / params.mem_frac + params.miss_burst * params.burst_gap
        far_per_access = (1 + params.miss_burst) / group_period
        load_share = profile.load_frac / (profile.load_frac + profile.store_frac)
        expected = far_per_access * load_share * accesses
        assert far == pytest.approx(expected, rel=0.25)

    def test_lucas_has_no_bursts(self):
        instructions = stream_events("lucas")
        positions = far_positions(instructions)
        gaps = [b - a for a, b in zip(positions, positions[1:])]
        # Without bursts, far misses are debt-scheduled and roughly evenly
        # spaced at 1/(mem_frac * access_rate).
        assert statistics.median(gaps) > 15

    def test_burst_spacing_matches_gap(self):
        """art's in-burst far misses are ~burst_gap data accesses apart."""
        profile = get_profile("art")
        instructions = stream_events("art")
        positions = far_positions(instructions)
        gaps = [b - a for a, b in zip(positions, positions[1:])]
        in_burst = [gap for gap in gaps if gap < 3 * profile.phase_a.burst_gap]
        assert in_burst, "expected burst-internal gaps"
        expected_instr_gap = profile.phase_a.burst_gap / (
            profile.load_frac + profile.store_frac)
        assert statistics.median(in_burst) == pytest.approx(
            expected_instr_gap, rel=0.5)

    def test_branch_taken_rate_is_mixed(self):
        instructions = stream_events("gzip")
        branches = [instr for instr in instructions
                    if instr.op == OpClass.BRANCH]
        taken = sum(1 for instr in branches if instr.taken)
        rate = taken / len(branches)
        assert 0.2 < rate < 0.8  # biased sites split both ways

    @pytest.mark.parametrize("name", sorted(PROFILES))
    def test_every_profile_rates_are_sane(self, name):
        instructions = stream_events(name, count=8000)
        ops = {}
        for instr in instructions:
            ops[instr.op] = ops.get(instr.op, 0) + 1
        assert ops.get(OpClass.IALU, 0) > 0
        assert ops.get(OpClass.LOAD, 0) > 0
        assert ops.get(OpClass.BRANCH, 0) > 0
        profile = get_profile(name)
        if profile.is_fp:
            assert ops.get(OpClass.FADD, 0) + ops.get(OpClass.FMUL, 0) > 0


class TestDependenceStructure:
    def test_mean_dependence_distance_tracks_profile(self):
        """gap (dep 26) has much longer producer distances than mcf (dep 8
        with heavy serial chaining)."""

        def mean_distance(name):
            distances = []
            for instr in stream_events(name, count=15000):
                for src in instr.srcs:
                    distances.append(instr.seq - src)
            return statistics.mean(distances)

        assert mean_distance("gap") > 2 * mean_distance("mcf")

    def test_serial_fraction_visible(self):
        """mcf's serial chains: many distance-1 dependences."""
        chains = 0
        total = 0
        for instr in stream_events("mcf", count=15000):
            if instr.srcs:
                total += 1
                if instr.seq - instr.srcs[0] == 1:
                    chains += 1
        assert chains / total > 0.15
