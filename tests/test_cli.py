"""Tests for the command-line interface."""

import pytest

from repro.cli import _policy_factory, build_parser, main
from repro.experiments.runner import ExperimentScale


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_workloads(self, capsys):
        main(["list-workloads", "--group", "ILP2"])
        out = capsys.readouterr().out
        assert "apsi-eon" in out
        assert out.count("ILP2") == 7

    def test_list_workloads_all(self, capsys):
        main(["list-workloads"])
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 42 + 2  # header + rule

    def test_list_benchmarks(self, capsys):
        main(["list-benchmarks"])
        out = capsys.readouterr().out
        assert "mcf" in out and "wupwise" in out

    def test_solo(self, capsys):
        main(["solo", "--benchmark", "gzip", "--scale", "smoke"])
        out = capsys.readouterr().out
        assert "stand-alone IPC" in out

    def test_run_smoke(self, capsys):
        main(["run", "--workload", "art-mcf", "--policy", "ICOUNT",
              "--scale", "smoke", "--epochs", "2"])
        out = capsys.readouterr().out
        assert "weighted IPC" in out

    def test_compare_smoke(self, capsys):
        main(["compare", "--workload", "art-mcf", "--scale", "smoke",
              "--epochs", "2", "--policies", "ICOUNT", "STATIC"])
        out = capsys.readouterr().out
        assert "ICOUNT" in out and "STATIC" in out


class TestPolicyFactory:
    def test_baselines(self):
        scale = ExperimentScale.smoke()
        for name in ("ICOUNT", "flush", "Dcra", "STALL-FLUSH", "PDG"):
            policy = _policy_factory(name, scale)()
            assert hasattr(policy, "fetch_priority")

    def test_hill_variants(self):
        scale = ExperimentScale.smoke()
        assert _policy_factory("HILL", scale)().metric.name == "weighted_ipc"
        assert _policy_factory("HILL-IPC", scale)().metric.name == "avg_ipc"
        assert _policy_factory("HILL-HWIPC", scale)().metric.name == \
            "harmonic_weighted_ipc"

    def test_phase_hill(self):
        scale = ExperimentScale.smoke()
        policy = _policy_factory("PHASE-HILL", scale)()
        assert policy.name.startswith("PHASE-")

    def test_unknown_rejected(self):
        with pytest.raises(SystemExit):
            _policy_factory("MAGIC", ExperimentScale.smoke())


class TestBadNames:
    """Unknown names exit with status 2 and a one-line error listing the
    valid choices, instead of a traceback."""

    def test_unknown_workload(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--workload", "nope-nope", "--policy", "ICOUNT",
                  "--scale", "smoke"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "nope-nope" in err
        assert "art-mcf" in err  # valid choices listed

    def test_unknown_benchmark(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["solo", "--benchmark", "quake3", "--scale", "smoke"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "quake3" in err
        assert "mcf" in err

    def test_unknown_policy(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--workload", "art-mcf", "--policy", "MAGIC",
                  "--scale", "smoke"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "MAGIC" in err
        assert "ICOUNT" in err

    def test_unknown_policy_in_compare(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["compare", "--workload", "art-mcf", "--scale", "smoke",
                  "--policies", "ICOUNT", "BOGUS"])
        assert excinfo.value.code == 2
        assert "BOGUS" in capsys.readouterr().err


class TestProfileCommand:
    def test_profile_smoke(self, capsys, tmp_path):
        out = tmp_path / "profile.json"
        main(["profile", "--workload", "art-mcf", "--policy", "FLUSH",
              "--scale", "smoke", "--out", str(out)])
        text = capsys.readouterr().out
        assert "KIPS" in text and "skip ratio" in text
        assert "fast-core speedup" in text
        import json

        records = json.loads(out.read_text())["records"]
        assert set(records) == {"fast", "reference"}
        # Both cores simulated the identical window.
        assert records["fast"]["cycles"] == records["reference"]["cycles"]
        assert records["fast"]["committed"] == \
            records["reference"]["committed"]
        assert records["reference"]["skip_events"] == 0

    def test_profile_single_core(self, capsys):
        main(["profile", "--workload", "art-mcf", "--scale", "smoke",
              "--cores", "fast"])
        text = capsys.readouterr().out
        assert "fast" in text
        assert "speedup" not in text

    def test_unknown_policy_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["profile", "--workload", "art-mcf", "--policy", "WARP",
                  "--scale", "smoke"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "WARP" in err

    def test_unknown_workload_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["profile", "--workload", "quake3", "--scale", "smoke"])
        assert excinfo.value.code == 2
        assert "quake3" in capsys.readouterr().err

    def test_unknown_core_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["profile", "--workload", "art-mcf", "--scale", "smoke",
                  "--cores", "turbo"])
        assert excinfo.value.code == 2


class TestCoreEnvValidation:
    """A bad REPRO_CORE fails fast with the standard exit-2 error on any
    simulation command, before any cycles run."""

    def test_run_rejects_bad_core(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CORE", "turbo")
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--workload", "art-mcf", "--policy", "ICOUNT",
                  "--scale", "smoke"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "REPRO_CORE" in err and "turbo" in err

    def test_profile_rejects_bad_core(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CORE", "turbo")
        with pytest.raises(SystemExit) as excinfo:
            main(["profile", "--workload", "art-mcf", "--scale", "smoke"])
        assert excinfo.value.code == 2
        assert "REPRO_CORE" in capsys.readouterr().err

    def test_sweep_rejects_bad_core(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CORE", "turbo")
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--workloads", "art-mcf", "--policies",
                  "ICOUNT", "--scale", "smoke", "--quiet",
                  "--cache-dir", str(tmp_path / "cache")])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "REPRO_CORE" in err and "turbo" in err

    def test_reference_core_accepted(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CORE", "reference")
        main(["run", "--workload", "art-mcf", "--policy", "ICOUNT",
              "--scale", "smoke", "--epochs", "2"])
        assert "weighted IPC" in capsys.readouterr().out

    def test_profile_help_lists_core_names(self, capsys):
        """``repro profile --help`` is where a user discovers the valid
        REPRO_CORE values, so every core name must appear there."""
        from repro.pipeline.fastpath import CORE_MODES

        with pytest.raises(SystemExit) as excinfo:
            main(["profile", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for core in CORE_MODES:
            assert core in out


class TestSweepSupervisionCLI:
    """The supervised-sweep flags and their failure modes."""

    def test_cell_timeout_must_be_positive(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--workloads", "art-mcf", "--scale", "smoke",
                  "--cell-timeout", "0"])
        assert excinfo.value.code == 2
        assert "--cell-timeout" in capsys.readouterr().err

    def test_max_attempts_must_be_at_least_one(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--workloads", "art-mcf", "--scale", "smoke",
                  "--max-attempts", "0"])
        assert excinfo.value.code == 2
        assert "--max-attempts" in capsys.readouterr().err

    def test_worker_bootstrap_failure_exits_2_with_one_line(self, capsys,
                                                            tmp_path,
                                                            monkeypatch):
        from repro.experiments import parallel

        def broken_factory(policy, scale):
            raise ImportError("No module named 'repro.policies.fancy'")

        monkeypatch.setattr(parallel, "policy_factory", broken_factory)
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--workloads", "art-mcf", "--policies",
                  "ICOUNT", "--scale", "smoke", "--jobs", "1", "--quiet",
                  "--cache-dir", str(tmp_path / "cache")])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err.strip()
        assert err.startswith("error:")
        assert len(err.splitlines()) == 1
        assert "cannot construct cell" in err

    def test_quarantined_sweep_exits_1_with_partial_output(self, capsys,
                                                           tmp_path,
                                                           monkeypatch):
        from repro.experiments import parallel
        from repro.reliability.chaos import ChaosPlan, PoisonCell

        import os as _os

        real_init = parallel.SweepEngine.__init__

        def poisoned_init(self, *args, **kwargs):
            kwargs["fault_plan"] = ChaosPlan(
                [PoisonCell(("art-mcf/ICOUNT/s0",))],
                parent_pid=_os.getpid())
            real_init(self, *args, **kwargs)

        monkeypatch.setattr(parallel.SweepEngine, "__init__",
                            poisoned_init)
        out_path = tmp_path / "merged.json"
        code = main(["sweep", "--workloads", "art-mcf", "--policies",
                     "ICOUNT", "HILL", "--scale", "smoke", "--jobs", "1",
                     "--quiet", "--max-attempts", "2",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--out", str(out_path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "quarantined after repeated failures" in out
        assert "art-mcf/ICOUNT/s0" in out

        import json as _json

        doc = _json.loads(out_path.read_text())
        assert [rec["policy"] for rec in doc["cells"]] == ["HILL-WIPC"]
        (dropped,) = doc["quarantined"]
        assert dropped["policy"] == "ICOUNT"
        assert dropped["attempts"] == 2


class TestBatchedSweepCLI:
    """The ``sweep --batch-cells`` surface: the shared batch_cells
    validation message, supervision composing with packing, and an
    end-to-end packed sweep whose output is byte-identical to the
    serial engine's."""

    def test_batch_cells_must_be_positive(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--workloads", "art-mcf", "--scale", "smoke",
                  "--batch-cells", "0"])
        assert excinfo.value.code == 2
        # The one batch_cells message, shared with pack_cells/SweepEngine
        # (repro.reliability.packsup.validate_batch_cells).
        assert "batch_cells must be an integer >= 1" \
            in capsys.readouterr().err

    def test_batch_cells_composes_with_supervision(self, capsys, tmp_path):
        """--resume-dir and --cell-timeout used to be exit-2
        incompatibilities with --batch-cells; packed sweeps now run
        under the PackSupervisor, so the combination works and stays
        byte-identical to the serial engine."""
        outputs = {}
        for label, extra in (
                ("serial", []),
                ("packed", ["--batch-cells", "4",
                            "--cell-timeout", "120",
                            "--resume-dir", str(tmp_path / "resume")])):
            out_path = tmp_path / (label + ".json")
            code = main(["sweep", "--workloads", "art-mcf", "art-twolf",
                         "--policies", "ICOUNT", "FLUSH",
                         "--scale", "smoke", "--jobs", "1", "--quiet",
                         "--no-cache", "--out", str(out_path)] + extra)
            assert code in (0, None)
            outputs[label] = out_path.read_text()
        capsys.readouterr()
        assert outputs["packed"] == outputs["serial"]

    def test_worker_batch_cells_must_be_positive(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["worker", "--server", "http://127.0.0.1:1",
                  "--batch-cells", "0"])
        assert excinfo.value.code == 2
        assert "batch_cells must be an integer >= 1" \
            in capsys.readouterr().err

    def test_batched_sweep_matches_serial(self, capsys, tmp_path):
        import json as _json

        outputs = {}
        for label, extra in (("serial", []),
                             ("batched", ["--batch-cells", "8"])):
            out_path = tmp_path / (label + ".json")
            code = main(["sweep", "--workloads", "art-mcf", "art-twolf",
                         "--policies", "ICOUNT", "FLUSH",
                         "--scale", "smoke", "--jobs", "1", "--quiet",
                         "--no-cache", "--out", str(out_path)] + extra)
            assert code in (0, None)
            outputs[label] = out_path.read_text()
        assert outputs["batched"] == outputs["serial"]
        doc = _json.loads(outputs["batched"])
        assert len(doc["cells"]) == 4


class TestChaosCLI:
    def test_validation_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["chaos", "--max-attempts", "0"])
        assert excinfo.value.code == 2
        assert "--max-attempts" in capsys.readouterr().err

    def test_flaky_preset_smoke(self, capsys):
        code = main(["chaos", "--preset", "flaky-cells", "--jobs", "2",
                     "--epochs", "3", "--quiet"])
        out = capsys.readouterr().out
        assert code == 0
        assert "[chaos] OK" in out
        assert "quarantined: 0 (expected 0)" in out


class TestCacheCLI:
    def _fake_cache(self, tmp_path):
        bucket = tmp_path / "cache" / "objects" / "ab"
        bucket.mkdir(parents=True)
        (bucket / ("ab" + "0" * 62 + ".json")).write_text('{"ok": 1}')
        (bucket / ("ab" + "1" * 62 + ".corrupt")).write_text("garbage!")
        return str(tmp_path / "cache")

    def test_info_reports_corrupt_entries(self, tmp_path, capsys):
        cache_dir = self._fake_cache(tmp_path)
        main(["cache", "info", "--cache-dir", cache_dir])
        out = capsys.readouterr().out
        assert "entries          1" in out
        assert "corrupt entries  1" in out

    def test_clear_corrupt_only_keeps_valid_entries(self, tmp_path,
                                                    capsys):
        cache_dir = self._fake_cache(tmp_path)
        main(["cache", "clear", "--corrupt-only", "--cache-dir",
              cache_dir])
        assert "removed 1 corrupt sidelined result(s)" \
            in capsys.readouterr().out
        main(["cache", "info", "--cache-dir", cache_dir])
        out = capsys.readouterr().out
        assert "entries          1" in out
        assert "corrupt entries  0" in out


class TestServiceCLI:
    def test_worker_rejects_bad_fault_spec(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["worker", "--server", "http://127.0.0.1:1",
                  "--fault", "explode-randomly"])
        assert excinfo.value.code == 2
        assert "unknown worker fault" in capsys.readouterr().err

    def test_worker_poll_interval_must_be_positive(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["worker", "--server", "http://127.0.0.1:1",
                  "--poll-interval", "0"])
        assert excinfo.value.code == 2
        assert "--poll-interval" in capsys.readouterr().err

    def test_submit_needs_a_grid(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["submit", "--server", "http://127.0.0.1:1"])
        assert excinfo.value.code == 2
        assert "--workloads or --groups" in capsys.readouterr().err

    def test_serve_validates_limits(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--queue-limit", "0"])
        assert excinfo.value.code == 2
        assert "queue_limit" in capsys.readouterr().err

    def test_loadtest_validates_counts(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["loadtest", "--clients", "0"])
        assert excinfo.value.code == 2
        assert "--clients" in capsys.readouterr().err

    def test_submit_against_a_live_daemon(self, tmp_path, capsys):
        from repro.service.server import ServiceConfig, ServiceHandle

        handle = ServiceHandle(ServiceConfig(
            state_dir=str(tmp_path / "state"),
            cache_dir=str(tmp_path / "cache"))).start()
        worker = None
        try:
            import threading

            from repro.service.worker import run_worker

            worker = threading.Thread(
                target=run_worker,
                kwargs=dict(server_url=handle.url, max_cells=1),
                daemon=True)
            worker.start()
            out_path = tmp_path / "merged.json"
            code = main(["submit", "--server", handle.url,
                         "--workloads", "art-mcf",
                         "--policies", "ICOUNT", "--scale", "smoke",
                         "--epochs", "2", "--quiet",
                         "--out", str(out_path)])
            assert code == 0
            assert "merged results written" in capsys.readouterr().out
            doc_text = out_path.read_text()
            assert doc_text.endswith("\n")

            from repro.experiments.parallel import (
                SweepEngine,
                grid_cells,
                merged_json,
            )

            # submit's --epochs is a scale override, like sweep's.
            cells = grid_cells(workloads=["art-mcf"],
                               policies=["ICOUNT"])
            scale = ExperimentScale.smoke().with_overrides(epochs=2)
            engine = SweepEngine(scale, jobs=1,
                                 cache_dir=str(tmp_path / "ref"))
            assert doc_text == merged_json(
                cells, engine.run_cells(cells), scale)
        finally:
            if worker is not None:
                worker.join(timeout=30.0)
            handle.stop(drain=False)
