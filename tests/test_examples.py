"""Every example script must at least run (with reduced arguments where
supported) and produce plausible output."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "art-mcf", "4")
        assert "ICOUNT" in out
        assert "learned partition" in out

    def test_trace_pipeline(self):
        out = run_example("trace_pipeline.py", "art-gzip")
        assert "fair split" in out
        assert "starved" in out
        assert "|" in out

    def test_qualitative_cases_subset(self):
        out = run_example("qualitative_cases.py", "art", "lucas")
        assert "art" in out and "lucas" in out
        assert "deep gain" in out

    @pytest.mark.slow
    def test_offline_limit(self):
        out = run_example("offline_limit.py", "art-mcf", "4", timeout=420)
        assert "OFF-LINE" in out
        assert "best" in out

    def test_all_examples_have_docstrings_and_main(self):
        for path in sorted(EXAMPLES.glob("*.py")):
            source = path.read_text()
            assert source.lstrip().startswith(('#!/usr/bin/env python', '"""')), path
            assert '__main__' in source, path
