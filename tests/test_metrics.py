"""Tests for the Section 3.1.1 performance metrics (Equations 1-3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.metrics import (
    AvgIPC,
    HarmonicMeanWeightedIPC,
    PerformanceMetric,
    WeightedIPC,
    metric_by_name,
)


class TestAvgIPC:
    def test_equation_1(self):
        assert AvgIPC().value([1.0, 2.0, 3.0]) == pytest.approx(6.0)

    def test_ignores_single_ipcs(self):
        assert AvgIPC().value([1.0, 1.0], [0.5, 2.0]) == pytest.approx(2.0)

    def test_does_not_need_single(self):
        assert AvgIPC().needs_single_ipc is False


class TestWeightedIPC:
    def test_equation_2(self):
        # (1.0/2.0 + 0.5/1.0) / 2 = 0.5
        assert WeightedIPC().value([1.0, 0.5], [2.0, 1.0]) == pytest.approx(0.5)

    def test_perfect_scaling_gives_one(self):
        assert WeightedIPC().value([2.0, 3.0], [2.0, 3.0]) == pytest.approx(1.0)

    def test_defaults_to_unit_single(self):
        assert WeightedIPC().value([1.0, 3.0]) == pytest.approx(2.0)

    def test_none_entries_default_to_one(self):
        assert WeightedIPC().value([1.0, 1.0], [None, 2.0]) == pytest.approx(
            (1.0 + 0.5) / 2)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            WeightedIPC().value([1.0, 1.0], [1.0])

    def test_needs_single(self):
        assert WeightedIPC().needs_single_ipc is True


class TestHarmonicMean:
    def test_equation_3(self):
        # 2 / (2/1 + 1/0.5) = 0.5
        assert HarmonicMeanWeightedIPC().value(
            [1.0, 0.5], [2.0, 1.0]) == pytest.approx(0.5)

    def test_starved_thread_scores_zero(self):
        assert HarmonicMeanWeightedIPC().value([0.0, 5.0], [1.0, 1.0]) == 0.0

    def test_fairness_preference(self):
        """Equal relative progress beats skewed progress with the same
        weighted-IPC sum (the fairness property of Equation 3)."""
        balanced = HarmonicMeanWeightedIPC().value([0.5, 0.5], [1.0, 1.0])
        skewed = HarmonicMeanWeightedIPC().value([0.9, 0.1], [1.0, 1.0])
        assert WeightedIPC().value([0.5, 0.5], [1.0, 1.0]) == pytest.approx(
            WeightedIPC().value([0.9, 0.1], [1.0, 1.0]))
        assert balanced > skewed


class TestLookup:
    def test_by_name(self):
        assert metric_by_name("avg_ipc").name == "avg_ipc"
        assert metric_by_name("weighted_ipc").name == "weighted_ipc"
        assert metric_by_name(
            "harmonic_weighted_ipc").name == "harmonic_weighted_ipc"

    def test_aliases(self):
        assert metric_by_name("ipc").name == "avg_ipc"
        assert metric_by_name("WIPC").name == "weighted_ipc"
        assert metric_by_name("hwipc").name == "harmonic_weighted_ipc"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            metric_by_name("bogomips")

    def test_base_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            PerformanceMetric().value([1.0])


positive_ipcs = st.lists(st.floats(0.01, 10.0), min_size=1, max_size=8)


@settings(max_examples=100, deadline=None)
@given(ipcs=positive_ipcs)
def test_property_harmonic_le_arithmetic_weighted(ipcs):
    """AM-HM inequality: harmonic mean of weighted IPC never exceeds the
    average weighted IPC for the same run."""
    singles = [1.0] * len(ipcs)
    harmonic = HarmonicMeanWeightedIPC().value(ipcs, singles)
    weighted = WeightedIPC().value(ipcs, singles)
    assert harmonic <= weighted + 1e-9


@settings(max_examples=100, deadline=None)
@given(ipcs=positive_ipcs, factor=st.floats(0.1, 5.0))
def test_property_metrics_scale_linearly(ipcs, factor):
    singles = [1.0] * len(ipcs)
    for metric in (AvgIPC(), WeightedIPC(), HarmonicMeanWeightedIPC()):
        base = metric.value(ipcs, singles)
        scaled = metric.value([ipc * factor for ipc in ipcs], singles)
        assert scaled == pytest.approx(base * factor, rel=1e-6)


@settings(max_examples=100, deadline=None)
@given(ipcs=positive_ipcs)
def test_property_monotonic_in_each_thread(ipcs):
    singles = [1.0] * len(ipcs)
    improved = list(ipcs)
    improved[0] *= 2
    for metric in (AvgIPC(), WeightedIPC(), HarmonicMeanWeightedIPC()):
        assert metric.value(improved, singles) >= metric.value(ipcs, singles)
