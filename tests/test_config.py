"""Tests for the machine configuration."""

import pytest

from repro.pipeline.config import CacheConfig, SMTConfig


class TestPresets:
    def test_paper_matches_table1(self):
        config = SMTConfig.paper()
        assert config.fetch_width == 8
        assert config.issue_width == 8
        assert config.commit_width == 8
        assert config.ifq_size == 32
        assert config.iq_int_size == 80
        assert config.iq_fp_size == 80
        assert config.lsq_size == 256
        assert config.rename_int == 256
        assert config.rename_fp == 256
        assert config.rob_size == 512
        assert config.fu_int_alu == 6
        assert config.fu_int_mul == 3
        assert config.fu_mem_port == 4
        assert config.fu_fp_add == 3
        assert config.fu_fp_mul == 3
        assert config.bp_gshare_entries == 8192
        assert config.bp_bimodal_entries == 2048
        assert config.bp_meta_entries == 8192
        assert config.btb_entries == 2048
        assert config.btb_assoc == 4
        assert config.ras_depth == 64
        assert config.il1 == CacheConfig(64 * 1024, 64, 2, 1)
        assert config.dl1 == CacheConfig(64 * 1024, 64, 2, 1)
        assert config.ul2 == CacheConfig(1024 * 1024, 64, 4, 20)
        assert config.mem_latency == 300

    def test_fast_is_half_scale(self):
        config = SMTConfig.fast()
        assert config.rename_int == 128
        assert config.rob_size == 256
        assert config.iq_int_size == 40

    def test_tiny_is_small(self):
        config = SMTConfig.tiny()
        assert config.rename_int <= 64
        assert config.rob_size <= 128

    def test_presets_are_valid(self):
        for config in (SMTConfig.paper(), SMTConfig.fast(), SMTConfig.tiny()):
            assert config.rename_int >= 2 * config.min_partition


class TestValidation:
    def test_min_partition_too_large(self):
        with pytest.raises(ValueError):
            SMTConfig(rename_int=8, min_partition=8)

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            SMTConfig(fetch_width=0)

    def test_with_overrides(self):
        config = SMTConfig.tiny().with_overrides(mem_latency=42)
        assert config.mem_latency == 42
        assert SMTConfig.tiny().mem_latency != 42

    def test_frozen(self):
        config = SMTConfig.tiny()
        with pytest.raises(Exception):
            config.mem_latency = 1

    def test_hashable(self):
        assert hash(SMTConfig.tiny()) == hash(SMTConfig.tiny())
