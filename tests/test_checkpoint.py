"""Tests for processor checkpointing — the foundation of the OFF-LINE and
RAND-HILL learners and the synchronized comparisons."""

from repro.pipeline.checkpoint import Checkpoint
from repro.pipeline.config import SMTConfig
from repro.pipeline.processor import SMTProcessor
from repro.policies.flush import FlushPolicy
from repro.policies.static_partition import StaticPartitionPolicy
from repro.workloads.spec2000 import get_profile


def make_proc(benchmarks=("art", "mcf"), policy=None, seed=2):
    profiles = [get_profile(name) for name in benchmarks]
    return SMTProcessor(SMTConfig.tiny(), profiles, seed=seed,
                        policy=policy or StaticPartitionPolicy())


def run_signature(proc, cycles):
    proc.run(cycles)
    stats = proc.stats
    return (
        tuple(stats.committed),
        tuple(stats.squashed),
        tuple(stats.mispredicts),
        tuple(stats.l2_misses),
        proc.cycle,
        proc.hierarchy.dl1.stats.misses,
    )


class TestCheckpointReplay:
    def test_replay_is_bit_identical(self):
        proc = make_proc()
        proc.run(3000)
        checkpoint = Checkpoint(proc)
        first = run_signature(checkpoint.materialize(), 3000)
        second = run_signature(checkpoint.materialize(), 3000)
        assert first == second

    def test_replay_matches_original_continuation(self):
        proc = make_proc()
        proc.run(3000)
        checkpoint = Checkpoint(proc)
        replay = run_signature(checkpoint.materialize(), 3000)
        original = run_signature(proc, 3000)
        assert replay == original

    def test_materializations_are_independent(self):
        proc = make_proc()
        proc.run(1000)
        checkpoint = Checkpoint(proc)
        a = checkpoint.materialize()
        b = checkpoint.materialize()
        a.run(2000)
        assert b.cycle == 1000
        assert b.stats.committed != a.stats.committed or \
            a.stats.committed == b.stats.committed  # b untouched
        assert b.stats.cycles == 1000

    def test_original_not_affected_by_checkpoint(self):
        proc = make_proc()
        proc.run(1000)
        cycle = proc.cycle
        Checkpoint(proc)
        assert proc.cycle == cycle

    def test_partition_divergence_after_restore(self):
        """Different partitions programmed on two materializations produce
        different executions — the OFF-LINE trial mechanism."""
        proc = make_proc()
        proc.run(3000)
        checkpoint = Checkpoint(proc)
        a = checkpoint.materialize()
        a.partitions.set_shares([6, 26])
        b = checkpoint.materialize()
        b.partitions.set_shares([26, 6])
        a.run(4000)
        b.run(4000)
        assert a.stats.committed != b.stats.committed

    def test_policy_state_travels_with_checkpoint(self):
        proc = make_proc(policy=FlushPolicy())
        proc.run(4000)
        checkpoint = Checkpoint(proc)
        restored = checkpoint.materialize()
        assert isinstance(restored.policy, FlushPolicy)
        first = run_signature(restored, 2000)
        second = run_signature(checkpoint.materialize(), 2000)
        assert first == second

    def test_size_bytes_positive(self):
        proc = make_proc()
        assert Checkpoint(proc).size_bytes > 0

    def test_invariants_after_restore(self):
        proc = make_proc()
        proc.run(2500)
        restored = Checkpoint(proc).materialize()
        restored.run(2500)
        assert restored.check_invariants()


class TestEpochControllerDeterminism:
    """Checkpoint determinism at the epoch-loop level: the controller (not
    just raw ``run``) must replay identically from a checkpoint."""

    @staticmethod
    def controller_signature(proc, epochs, epoch_size=1024):
        from repro.core.controller import EpochController

        controller = EpochController(proc, epoch_size=epoch_size)
        controller.run(epochs)
        return (
            tuple(tuple(result.ipcs) for result in controller.history),
            tuple(tuple(result.committed) for result in controller.history),
            controller.totals(),
            proc.cycle,
        )

    def test_two_materializations_run_identically(self):
        proc = make_proc()
        proc.run(2000)
        checkpoint = Checkpoint(proc)
        first = self.controller_signature(checkpoint.materialize(), 3)
        second = self.controller_signature(checkpoint.materialize(), 3)
        assert first == second

    def test_replay_does_not_perturb_original(self):
        proc = make_proc()
        proc.run(2000)
        cycle = proc.cycle
        committed = list(proc.stats.committed)
        checkpoint = Checkpoint(proc)
        self.controller_signature(checkpoint.materialize(), 2)
        assert proc.cycle == cycle
        assert list(proc.stats.committed) == committed
        # ...and the original continues exactly like a fresh replica.
        live = self.controller_signature(proc, 2)
        replica = self.controller_signature(checkpoint.materialize(), 2)
        assert live == replica

    def test_learning_policy_replays_identically(self):
        from repro.core.hill_climbing import make_hill_policy

        proc = make_proc(policy=make_hill_policy("ipc"))
        proc.run(2000)
        checkpoint = Checkpoint(proc)
        first = self.controller_signature(checkpoint.materialize(), 4)
        second = self.controller_signature(checkpoint.materialize(), 4)
        assert first == second
