"""Tests for the experiment runner machinery."""

import pytest

from repro.core.metrics import AvgIPC, WeightedIPC
from repro.experiments.runner import (
    SOLO_CACHE_MAXSIZE,
    ExperimentScale,
    _LRUCache,
    baseline_factories,
    clear_solo_cache,
    compare_policies,
    make_processor,
    run_policy,
    run_policy_multi,
    select_workloads,
    solo_cache_info,
    solo_ipc,
    solo_ipcs,
)
from repro.policies.icount import ICountPolicy
from repro.policies.static_partition import StaticPartitionPolicy
from repro.workloads.mixes import get_workload
from repro.workloads.spec2000 import get_profile


@pytest.fixture
def scale():
    return ExperimentScale.smoke()


class TestScale:
    def test_presets_build(self):
        for preset in (ExperimentScale.smoke(), ExperimentScale.bench(),
                       ExperimentScale.full()):
            assert preset.epoch_size > 0
            assert preset.epochs > 0

    def test_with_overrides(self, scale):
        assert scale.with_overrides(epochs=3).epochs == 3

    def test_hill_software_cost_scales(self):
        full = ExperimentScale.full()
        assert full.hill_software_cost == 200
        bench = ExperimentScale.bench()
        assert 1 <= bench.hill_software_cost < 200

    def test_hill_sample_period_is_papers(self):
        assert ExperimentScale.full().hill_sample_period == 40
        assert ExperimentScale.bench().hill_sample_period == 40
        assert ExperimentScale.smoke().hill_sample_period == 40


class TestScaleValidation:
    def test_rejects_bad_values(self, scale):
        for field, bad in (
            ("epoch_size", 0),
            ("epoch_size", -1024),
            ("epoch_size", 1024.0),
            ("epochs", 0),
            ("stride", -2),
            ("warmup", -1),
            ("workloads_per_group", 0),
            ("rand_hill_budget", 0),
        ):
            with pytest.raises(ValueError, match=field):
                scale.with_overrides(**{field: bad})

    def test_accepts_boundary_values(self, scale):
        assert scale.with_overrides(warmup=0).warmup == 0
        assert scale.with_overrides(workloads_per_group=None) \
            .workloads_per_group is None
        assert scale.with_overrides(workloads_per_group=1) \
            .workloads_per_group == 1


class TestSoloIPC:
    def test_cached(self, scale):
        clear_solo_cache()
        first = solo_ipc(get_profile("gzip"), scale)
        second = solo_ipc(get_profile("gzip"), scale)
        assert first == second
        assert first > 0

    def test_per_workload_vector(self, scale):
        workload = get_workload("art-mcf")
        singles = solo_ipcs(workload, scale)
        assert len(singles) == 2
        assert all(value > 0 for value in singles)

    def test_ilp_faster_than_mem(self, scale):
        assert solo_ipc(get_profile("gzip"), scale) > \
            solo_ipc(get_profile("mcf"), scale)

    def test_cache_info_counts_hits_and_misses(self, scale):
        clear_solo_cache()
        solo_ipc(get_profile("gzip"), scale)
        solo_ipc(get_profile("gzip"), scale)
        info = solo_cache_info()
        assert info.misses == 1
        assert info.hits == 1
        assert info.currsize == 1
        assert info.maxsize == SOLO_CACHE_MAXSIZE


class TestLRUCache:
    def test_bounded_with_lru_eviction(self):
        cache = _LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now LRU
        cache.put("c", 3)
        assert len(cache) == 2
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_info_counters(self):
        cache = _LRUCache(maxsize=1)
        assert cache.get("missing") is None
        cache.put("a", 1)
        cache.put("b", 2)  # evicts "a"
        cache.get("b")
        info = cache.info()
        assert info.misses == 1
        assert info.hits == 1
        assert info.evictions == 1
        assert info.currsize == 1

    def test_clear_resets(self):
        cache = _LRUCache(maxsize=4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.info() == (0, 0, 0, 4, 0)

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            _LRUCache(maxsize=0)


class TestRunPolicy:
    def test_result_shape(self, scale):
        workload = get_workload("art-mcf")
        result = run_policy(workload, ICountPolicy(), scale)
        assert result.workload == "art-mcf"
        assert result.policy == "ICOUNT"
        assert len(result.ipcs) == 2
        assert result.cycles >= scale.epochs * scale.epoch_size
        assert len(result.epoch_history) == scale.epochs
        assert len(result.single_ipcs) == 2

    def test_metric_properties(self, scale):
        result = run_policy(get_workload("art-mcf"), ICountPolicy(), scale)
        assert result.avg_ipc == pytest.approx(sum(result.ipcs))
        assert result.weighted_ipc > 0
        assert result.harmonic_weighted_ipc >= 0
        assert result.metric_value(AvgIPC()) == pytest.approx(result.avg_ipc)
        assert result.metric_value(WeightedIPC()) == pytest.approx(
            result.weighted_ipc)

    def test_epochs_override(self, scale):
        result = run_policy(get_workload("art-mcf"), ICountPolicy(), scale,
                            epochs=2)
        assert len(result.epoch_history) == 2

    def test_compare_policies_runs_each(self, scale):
        results = compare_policies(
            get_workload("art-mcf"),
            {"ICOUNT": ICountPolicy, "STATIC": StaticPartitionPolicy},
            scale,
        )
        assert set(results) == {"ICOUNT", "STATIC"}

    def test_deterministic(self, scale):
        a = run_policy(get_workload("art-mcf"), ICountPolicy(), scale)
        b = run_policy(get_workload("art-mcf"), ICountPolicy(), scale)
        assert a.ipcs == b.ipcs


class TestMultiSeed:
    def test_summary_shape(self, scale):
        results, summary = run_policy_multi(
            get_workload("art-mcf"), ICountPolicy, scale, seeds=(0, 1),
            epochs=2)
        assert len(results) == 2
        assert set(summary) == {"avg_ipc", "weighted_ipc",
                                "harmonic_weighted_ipc"}
        mean, spread = summary["avg_ipc"]
        assert mean > 0
        assert spread >= 0

    def test_seeds_actually_vary(self, scale):
        results, __ = run_policy_multi(
            get_workload("art-mcf"), ICountPolicy, scale, seeds=(0, 1),
            epochs=2)
        assert results[0].ipcs != results[1].ipcs

    def test_single_seed_zero_spread(self, scale):
        __, summary = run_policy_multi(
            get_workload("art-mcf"), ICountPolicy, scale, seeds=(0,),
            epochs=2)
        assert summary["avg_ipc"][1] == 0.0


class TestSelection:
    def test_select_workloads_subsets(self, scale):
        selected = select_workloads(("ILP2", "MEM2"), scale)
        assert len(selected) == 2 * scale.workloads_per_group

    def test_select_all_when_unlimited(self, scale):
        unlimited = scale.with_overrides(workloads_per_group=None)
        assert len(select_workloads(("ILP2",), unlimited)) == 7

    def test_baseline_factories(self):
        factories = baseline_factories()
        assert set(factories) == {"ICOUNT", "FLUSH", "DCRA"}
        for factory in factories.values():
            policy = factory()
            assert hasattr(policy, "fetch_priority")

    def test_make_processor_warm(self, scale):
        proc = make_processor(get_workload("art-mcf"), ICountPolicy(), scale)
        assert proc.cycle == scale.warmup
        cold = make_processor(get_workload("art-mcf"), ICountPolicy(), scale,
                              warm=False)
        assert cold.cycle == 0
