"""Tests for the RAND-HILL multi-start learner."""

import pytest

from repro.core.metrics import AvgIPC
from repro.core.rand_hill import RandHillLearner
from repro.pipeline.config import SMTConfig
from repro.pipeline.processor import SMTProcessor
from repro.policies.static_partition import StaticPartitionPolicy
from repro.workloads.spec2000 import get_profile


def make_learner(benchmarks=("art", "gzip", "mcf", "eon"), budget=10, seed=1,
                 epoch_size=512):
    profiles = [get_profile(name) for name in benchmarks]
    proc = SMTProcessor(SMTConfig.tiny(), profiles, seed=seed,
                        policy=StaticPartitionPolicy())
    proc.run(1500)
    return RandHillLearner(proc, epoch_size, metric=AvgIPC(), budget=budget,
                           seed=seed)


class TestSearch:
    def test_budget_respected(self):
        learner = make_learner(budget=10)
        epoch = learner.run_epoch()
        assert epoch.trials <= 10

    def test_best_shares_legal(self):
        learner = make_learner()
        epoch = learner.run_epoch()
        config = SMTConfig.tiny()
        assert sum(epoch.best_shares) == config.rename_int
        assert all(share >= config.min_partition
                   for share in epoch.best_shares)

    def test_advances_with_best(self):
        learner = make_learner()
        epoch = learner.run_epoch()
        assert learner.proc.partitions.shares == list(epoch.best_shares)

    def test_multiple_passes_when_budget_allows(self):
        learner = make_learner(budget=40)
        epoch = learner.run_epoch()
        assert epoch.passes >= 1
        assert epoch.trials <= 40

    def test_determinism(self):
        a = make_learner(seed=3).run_epoch()
        b = make_learner(seed=3).run_epoch()
        assert a.best_shares == b.best_shares
        assert a.best_value == pytest.approx(b.best_value)

    def test_two_thread_works_too(self):
        learner = make_learner(benchmarks=("art", "gzip"), budget=8)
        epoch = learner.run_epoch()
        assert len(epoch.best_shares) == 2

    def test_epochs_accumulate(self):
        learner = make_learner(budget=6)
        learner.run(2)
        assert len(learner.epochs) == 2
        assert learner.epochs[1].epoch_id == 1

    def test_overall_ipcs(self):
        learner = make_learner(budget=6)
        learner.run(2)
        assert all(ipc >= 0 for ipc in learner.overall_ipcs())
        assert sum(learner.overall_ipcs()) > 0

    def test_budget_validation(self):
        profiles = [get_profile("gzip")]
        proc = SMTProcessor(SMTConfig.tiny(), profiles,
                            policy=StaticPartitionPolicy())
        with pytest.raises(ValueError):
            RandHillLearner(proc, 512, budget=0)

    def test_best_value_is_max_of_evaluations(self):
        """Tracked best is monotone: re-running with a larger budget can
        only improve (same seed prefix of random anchors)."""
        small = make_learner(budget=4, seed=9).run_epoch()
        large = make_learner(budget=16, seed=9).run_epoch()
        assert large.best_value >= small.best_value - 1e-12
