"""Mirror-coverage pass tests: exact rule codes and line numbers against
the seeded violations in ``tests/fixtures/lintpkg/mirrormod.py``."""

import os

from repro.analysis.lint.mirrors import check_module, scan_sources

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
PKG_ROOT = os.path.join(FIXTURES, "lintpkg")

#: (rule, line) for every seeded violation in mirrormod.py, in file order.
EXPECTED = [
    ("MC401", 9),    # _orphan allocated with no declaration
    ("MC402", 12),   # _stale declares unknown source Machine.gone
    ("MC403", 14),   # _lim declared but _refresh never writes it
    ("MC405", 16),   # _ghost declared but never allocated
    ("MC404", 24),   # poke() writes _occ outside the refresh method
]


def fixture_findings():
    return check_module(PKG_ROOT, "mirrormod.py", ("mirrorsrc.py",))


def test_mirror_fixture_exact_findings():
    got = [(f.rule, f.line) for f in fixture_findings()]
    assert got == EXPECTED


def test_well_formed_mirror_is_clean():
    # _occ: declared, source resolves, refreshed, only _refresh writes it
    assert not any(f.line == 11 for f in fixture_findings())


def clean_module():
    return (
        "import numpy as np\n"
        "class Batch:\n"
        "    def __init__(self, n):\n"
        "        # repro: mirror[_occ <- Machine.occ]\n"
        "        self._occ = np.zeros(n)\n"
        "    def _refresh(self, ms):  # repro: mirror-refresh\n"
        "        for i, m in enumerate(ms):\n"
        "            self._occ[i] = m.occ\n")


SCALAR = ("class Machine:\n"
          "    def __init__(self):\n"
          "        self.occ = 0\n")


def test_clean_module_has_no_findings():
    assert scan_sources("b.py", clean_module(), {"s.py": SCALAR}) == []


def test_deleting_a_declaration_fails_closed():
    # strip the declaration comment: the allocation becomes MC401
    broken = clean_module().replace(
        "        # repro: mirror[_occ <- Machine.occ]\n", "")
    findings = scan_sources("b.py", broken, {"s.py": SCALAR})
    assert [f.rule for f in findings] == ["MC401"]


def test_renaming_the_scalar_field_fails_closed():
    # the drift catcher: scalar rename with a stale declaration -> MC402
    renamed = SCALAR.replace("self.occ", "self.occupancy")
    findings = scan_sources("b.py", clean_module(), {"s.py": renamed})
    assert [f.rule for f in findings] == ["MC402"]


def test_missing_refresh_marker_is_mc406():
    unmarked = clean_module().replace("  # repro: mirror-refresh", "")
    findings = scan_sources("b.py", unmarked, {"s.py": SCALAR})
    assert [f.rule for f in findings] == ["MC406"]
    assert "mirror-refresh" in findings[0].message


def test_two_refresh_markers_are_mc406():
    doubled = clean_module() + (
        "    def _refresh2(self, ms):  # repro: mirror-refresh\n"
        "        pass\n")
    findings = scan_sources("b.py", doubled, {"s.py": SCALAR})
    assert [f.rule for f in findings] == ["MC406"]


def test_multi_source_declaration_checks_every_source():
    multi = clean_module().replace(
        "mirror[_occ <- Machine.occ]",
        "mirror[_occ <- Machine.occ, Machine.gone]")
    findings = scan_sources("b.py", multi, {"s.py": SCALAR})
    assert [f.rule for f in findings] == ["MC402"]
    assert "Machine.gone" in findings[0].message


def test_class_without_mirrors_is_ignored():
    src = ("class Plain:\n"
           "    def __init__(self):\n"
           "        self.x = 1\n")
    assert scan_sources("p.py", src, {"s.py": SCALAR}) == []
