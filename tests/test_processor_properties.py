"""Property-based tests over the processor's core invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.partition import clamp_shares
from repro.pipeline.config import SMTConfig
from repro.pipeline.processor import SMTProcessor
from repro.policies.icount import ICountPolicy
from repro.policies.static_partition import StaticPartitionPolicy
from repro.workloads.spec2000 import PROFILES, get_profile

BENCH_NAMES = sorted(PROFILES)


@settings(max_examples=15, deadline=None)
@given(
    names=st.lists(st.sampled_from(BENCH_NAMES), min_size=1, max_size=4),
    seed=st.integers(0, 3),
    cycles=st.integers(200, 1500),
)
def test_property_invariants_hold_for_any_mix(names, seed, cycles):
    """Occupancy counters stay consistent for any workload mix."""
    profiles = [get_profile(name) for name in names]
    proc = SMTProcessor(SMTConfig.tiny(), profiles, seed=seed,
                        policy=ICountPolicy())
    proc.run(cycles)
    assert proc.check_invariants()


@settings(max_examples=15, deadline=None)
@given(
    raw=st.lists(st.integers(0, 64), min_size=2, max_size=2),
    seed=st.integers(0, 3),
)
def test_property_partition_limits_never_exceeded(raw, seed):
    """Whatever legal share vector is programmed, per-thread occupancy of
    the partitioned structures never exceeds the programmed limit."""
    config = SMTConfig.tiny()
    shares = clamp_shares(raw, config.rename_int, config.min_partition)
    proc = SMTProcessor(config, [get_profile("art"), get_profile("gzip")],
                        seed=seed, policy=StaticPartitionPolicy(shares))
    limits = proc.partitions
    for __ in range(8):
        proc.run(250)
        for thread in proc.threads:
            assert thread.ren_int <= limits.limit_int_rename[thread.tid]
            assert thread.iq_int <= limits.limit_int_iq[thread.tid]
            assert len(thread.rob) <= limits.limit_rob[thread.tid]


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 5), split=st.integers(300, 2500))
def test_property_run_split_is_equivalent(seed, split):
    """run(a); run(b) commits exactly what run(a+b) commits."""
    def build():
        return SMTProcessor(
            SMTConfig.tiny(),
            [get_profile("gzip"), get_profile("mcf")],
            seed=seed, policy=ICountPolicy(),
        )

    total = 3000
    one = build()
    one.run(total)
    two = build()
    two.run(split)
    two.run(total - split)
    assert one.stats.committed == two.stats.committed
    assert one.stats.squashed == two.stats.squashed


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 3))
def test_property_starving_a_thread_never_helps_it(seed):
    """A thread's own committed count is monotone-ish in its partition:
    the nearly-starved setting commits no more than the generous one."""
    config = SMTConfig.tiny()

    def run_with(shares):
        proc = SMTProcessor(
            config, [get_profile("art"), get_profile("gzip")], seed=seed,
            policy=StaticPartitionPolicy(shares))
        proc.run(4000)
        return proc.stats.committed[0]

    starved = run_with([config.min_partition,
                        config.rename_int - config.min_partition])
    generous = run_with([config.rename_int - config.min_partition,
                         config.min_partition])
    assert starved <= generous
