"""Unit-level tests for the ablation drivers (cheap smoke coverage is in
test_figures_smoke; these verify the sweep semantics)."""

import pytest

from repro.experiments import ablations
from repro.experiments.runner import ExperimentScale
from repro.workloads.mixes import get_workload


@pytest.fixture(scope="module")
def scale():
    return ExperimentScale.smoke().with_overrides(epochs=4)


@pytest.fixture(scope="module")
def workload():
    return get_workload("art-mcf")


class TestSweepSemantics:
    def test_epoch_size_sweep_holds_budget_constant(self, scale, workload):
        rows = ablations.epoch_size_sweep(workload, scale,
                                          epoch_sizes=(256, 512))
        assert [size for size, __ in rows] == [256, 512]
        assert all(value >= 0 for __, value in rows)

    def test_delta_sweep_distinct_runs(self, scale, workload):
        rows = ablations.delta_sweep(workload, scale, deltas=(2, 8))
        values = [value for __, value in rows]
        assert len(values) == 2

    def test_sample_period_none_supported(self, scale, workload):
        rows = ablations.sample_period_sweep(workload, scale,
                                             periods=(None,))
        assert rows[0][0] is None
        assert rows[0][1] > 0

    def test_software_cost_monotone_tendency(self, scale, workload):
        """An absurdly large stall must cost measurable throughput."""
        rows = dict(ablations.software_cost_sweep(
            workload, scale, costs=(0, 400)))
        # 400 cycles of stall per 1024-cycle epoch = ~40% of runtime.
        assert rows[400] < rows[0]

    def test_offline_stride_sweep_returns_all(self, scale, workload):
        rows = ablations.offline_stride_sweep(workload, scale,
                                              strides=(16, 8))
        assert [stride for stride, __ in rows] == [16, 8]
