"""End-to-end integration tests exercising the public API the way the
examples and the benchmark harness do."""

import pytest

from repro import (
    Checkpoint,
    DCRAPolicy,
    EpochController,
    FlushPolicy,
    HillClimbingPolicy,
    ICountPolicy,
    OfflineExhaustiveLearner,
    PhaseHillPolicy,
    RandHillLearner,
    SMTConfig,
    SMTProcessor,
    StaticPartitionPolicy,
    WeightedIPC,
    get_workload,
)


def build(policy, workload_name="art-gzip", seed=1, warmup=2000):
    workload = get_workload(workload_name)
    proc = SMTProcessor(SMTConfig.tiny(), workload.profiles, seed=seed,
                        policy=policy)
    proc.run(warmup)
    return proc


class TestPublicAPI:
    def test_quickstart_flow(self):
        proc = build(HillClimbingPolicy(sample_period=None))
        controller = EpochController(proc, epoch_size=1024)
        controller.run(8)
        ipcs = controller.overall_ipcs()
        assert len(ipcs) == 2
        assert all(ipc > 0 for ipc in ipcs)
        anchor = proc.policy.current_anchor
        assert sum(anchor) == proc.config.rename_int

    def test_every_policy_family_runs_on_one_workload(self):
        for policy in (ICountPolicy(), FlushPolicy(), DCRAPolicy(),
                       StaticPartitionPolicy(), HillClimbingPolicy(),
                       PhaseHillPolicy()):
            proc = build(policy)
            controller = EpochController(proc, epoch_size=512)
            controller.run(4)
            assert sum(controller.totals()[0]) > 0, policy.name
            assert proc.check_invariants()

    def test_offline_learner_integration(self):
        proc = build(StaticPartitionPolicy())
        learner = OfflineExhaustiveLearner(proc, 512, metric=WeightedIPC(),
                                           single_ipcs=[1.0, 1.0], stride=8)
        epochs = learner.run(2)
        assert len(epochs) == 2
        assert all(epoch.best_value > 0 for epoch in epochs)

    def test_rand_hill_integration(self):
        proc = build(StaticPartitionPolicy(),
                     workload_name="ammp-applu-art-mcf")
        learner = RandHillLearner(proc, 512, budget=6, seed=2)
        epoch = learner.run_epoch()
        assert len(epoch.best_shares) == 4

    def test_checkpoint_roundtrip_through_public_api(self):
        proc = build(ICountPolicy())
        checkpoint = Checkpoint(proc)
        clone = checkpoint.materialize()
        clone.run(1000)
        proc.run(1000)
        assert clone.stats.committed == proc.stats.committed

    def test_metric_switch_changes_learning_signal(self):
        from repro import AvgIPC, HarmonicMeanWeightedIPC

        for metric in (AvgIPC(), WeightedIPC(), HarmonicMeanWeightedIPC()):
            policy = HillClimbingPolicy(metric=metric, sample_period=None)
            proc = build(policy)
            controller = EpochController(proc, epoch_size=512)
            controller.run(4)
            assert sum(controller.totals()[0]) > 0

    def test_four_thread_workload_end_to_end(self):
        proc = build(HillClimbingPolicy(sample_period=None),
                     workload_name="art-mcf-swim-twolf")
        controller = EpochController(proc, epoch_size=1024)
        controller.run(8)
        assert len(controller.overall_ipcs()) == 4
        assert proc.check_invariants()

    def test_long_run_stability(self):
        """No deadlock, no counter drift, monotone commit over a long run
        with the most eventful policy (FLUSH on a MEM pair)."""
        proc = build(FlushPolicy(), workload_name="art-mcf")
        last = 0
        for __ in range(10):
            proc.run(2000)
            now = sum(proc.stats.committed)
            assert now > last
            last = now
            assert proc.check_invariants()


class TestDeterminismEndToEnd:
    def test_same_seed_same_learning_trajectory(self):
        def trajectory():
            policy = HillClimbingPolicy(sample_period=None)
            proc = build(policy, seed=9)
            controller = EpochController(proc, epoch_size=512)
            controller.run(6)
            return policy.current_anchor, controller.overall_ipcs()

        first = trajectory()
        second = trajectory()
        assert first[0] == second[0]
        assert first[1] == second[1]

    def test_version_exported(self):
        import repro

        assert repro.__version__
