"""Tests for the Figure 8 hill-climbing algorithm."""

import pytest

from repro.core.controller import EpochController, EpochResult
from repro.core.hill_climbing import HillClimbingPolicy, make_hill_policy
from repro.core.metrics import AvgIPC, WeightedIPC
from repro.pipeline.config import SMTConfig
from repro.pipeline.processor import SMTProcessor
from repro.workloads.spec2000 import get_profile


def make_proc(policy, benchmarks=("gzip", "eon"), seed=1):
    profiles = [get_profile(name) for name in benchmarks]
    return SMTProcessor(SMTConfig.tiny(), profiles, seed=seed, policy=policy)


def feed_epoch(policy, proc, epoch_id, ipcs, kind="normal", solo_thread=None):
    """Deliver a synthetic epoch result to the policy."""
    result = EpochResult(
        epoch_id=epoch_id, kind=kind,
        committed=[int(ipc * 1000) for ipc in ipcs], cycles=1000,
        ipcs=list(ipcs), shares=list(proc.partitions.shares or []),
        solo_thread=solo_thread,
    )
    policy.on_epoch_end(proc, result)
    return result


class TestAttachAndTrials:
    def test_attach_sets_equal_anchor(self):
        policy = HillClimbingPolicy(sample_period=None)
        make_proc(policy)
        assert policy.anchor == [16, 16]

    def test_first_trial_favors_thread_zero(self):
        policy = HillClimbingPolicy(sample_period=None)
        proc = make_proc(policy)
        assert proc.partitions.shares == [20, 12]  # +delta*(N-1) / -delta

    def test_trials_rotate_threads(self):
        policy = HillClimbingPolicy(sample_period=None, software_cost=0)
        proc = make_proc(policy)
        feed_epoch(policy, proc, 0, [1.0, 1.0])
        # learn_epoch now 1 -> trial favors thread 1
        assert proc.partitions.shares == [12, 20]

    def test_delta_validation(self):
        with pytest.raises(ValueError):
            HillClimbingPolicy(delta=0)

    def test_name_includes_metric(self):
        assert "weighted_ipc" in HillClimbingPolicy().name
        assert "avg_ipc" in HillClimbingPolicy(metric=AvgIPC()).name

    def test_make_hill_policy_by_name(self):
        assert make_hill_policy("ipc").metric.name == "avg_ipc"
        assert make_hill_policy("wipc").metric.name == "weighted_ipc"


class TestGradientMove:
    def test_anchor_moves_toward_best_direction(self):
        policy = HillClimbingPolicy(sample_period=None, software_cost=0,
                                    metric=AvgIPC())
        proc = make_proc(policy)
        # Round: direction 0 scores 1.0, direction 1 scores 3.0.
        feed_epoch(policy, proc, 0, [0.5, 0.5])
        feed_epoch(policy, proc, 1, [1.5, 1.5])
        assert policy.anchor == [12, 20]  # moved toward thread 1

    def test_anchor_unchanged_mid_round(self):
        policy = HillClimbingPolicy(sample_period=None, software_cost=0,
                                    metric=AvgIPC())
        proc = make_proc(policy)
        feed_epoch(policy, proc, 0, [0.5, 0.5])
        assert policy.anchor == [16, 16]

    def test_anchor_walks_repeatedly_in_consistent_direction(self):
        policy = HillClimbingPolicy(sample_period=None, software_cost=0,
                                    metric=AvgIPC())
        proc = make_proc(policy)
        epoch_id = 0
        for __ in range(3):  # 3 full rounds favoring thread 0
            feed_epoch(policy, proc, epoch_id, [2.0, 2.0])
            epoch_id += 1
            feed_epoch(policy, proc, epoch_id, [0.5, 0.5])
            epoch_id += 1
        assert policy.anchor[0] == 16 + 3 * policy.delta

    def test_anchor_respects_minimum(self):
        policy = HillClimbingPolicy(sample_period=None, software_cost=0,
                                    metric=AvgIPC(), delta=8)
        proc = make_proc(policy)
        epoch_id = 0
        for __ in range(12):  # walk hard toward thread 1
            feed_epoch(policy, proc, epoch_id, [0.1, 0.1])
            epoch_id += 1
            feed_epoch(policy, proc, epoch_id, [5.0, 5.0])
            epoch_id += 1
        minimum = proc.config.min_partition
        assert policy.anchor[0] >= minimum
        assert sum(policy.anchor) == proc.config.rename_int

    def test_stall_charged_per_normal_epoch(self):
        policy = HillClimbingPolicy(sample_period=None, software_cost=77)
        proc = make_proc(policy)
        cycles_before = proc.stats.cycles
        feed_epoch(policy, proc, 0, [1.0, 1.0])
        assert proc.stats.cycles == cycles_before + 77


class TestFeedbackMetrics:
    def test_avg_ipc_feedback(self):
        policy = HillClimbingPolicy(metric=AvgIPC(), sample_period=None)
        make_proc(policy)
        assert policy.feedback([1.0, 2.0]) == pytest.approx(3.0)

    def test_weighted_feedback_defaults_to_unity_singles(self):
        policy = HillClimbingPolicy(metric=WeightedIPC(), sample_period=None)
        make_proc(policy)
        assert policy.feedback([1.0, 2.0]) == pytest.approx(1.5)

    def test_weighted_feedback_uses_sampled_singles(self):
        policy = HillClimbingPolicy(metric=WeightedIPC(), sample_period=None)
        proc = make_proc(policy)
        policy.single_ipc = [2.0, 4.0]
        assert policy.feedback([1.0, 2.0]) == pytest.approx(0.5)


class TestSingleIPCSampling:
    def test_sampling_schedule(self):
        policy = HillClimbingPolicy(metric=WeightedIPC(), sample_period=5)
        proc = make_proc(policy)
        plans = [policy.plan_epoch(proc, epoch_id) for epoch_id in range(11)]
        assert plans[0] == 0       # first sample: thread 0
        assert plans[5] == 1       # second: thread 1 (rotation)
        assert plans[10] == 0
        assert all(plan is None for i, plan in enumerate(plans)
                   if i not in (0, 5, 10))

    def test_no_sampling_for_throughput_metric(self):
        policy = HillClimbingPolicy(metric=AvgIPC(), sample_period=5)
        proc = make_proc(policy)
        assert all(policy.plan_epoch(proc, epoch_id) is None
                   for epoch_id in range(12))

    def test_sampling_disabled_by_none(self):
        policy = HillClimbingPolicy(metric=WeightedIPC(), sample_period=None)
        proc = make_proc(policy)
        assert policy.plan_epoch(proc, 0) is None

    def test_solo_epoch_records_single_ipc(self):
        policy = HillClimbingPolicy(metric=WeightedIPC(), sample_period=5,
                                    software_cost=0)
        proc = make_proc(policy)
        feed_epoch(policy, proc, 0, [1.25, 0.0], kind="solo", solo_thread=0)
        assert policy.single_ipc[0] == pytest.approx(1.25)
        assert policy.single_ipc[1] is None

    def test_solo_epoch_not_a_learning_trial(self):
        policy = HillClimbingPolicy(metric=WeightedIPC(), sample_period=5,
                                    software_cost=0)
        proc = make_proc(policy)
        learn_before = policy.learn_epoch
        feed_epoch(policy, proc, 0, [1.0, 0.0], kind="solo", solo_thread=0)
        assert policy.learn_epoch == learn_before


class TestEndToEnd:
    def test_full_run_improves_or_holds_vs_start(self):
        policy = HillClimbingPolicy(sample_period=None, software_cost=0,
                                    metric=AvgIPC())
        proc = make_proc(policy, benchmarks=("art", "gzip"))
        proc.run(3000)
        controller = EpochController(proc, epoch_size=1024)
        controller.run(12)
        assert sum(policy.anchor) == proc.config.rename_int
        assert all(share >= proc.config.min_partition
                   for share in policy.anchor)

    def test_current_anchor_is_a_copy(self):
        policy = HillClimbingPolicy(sample_period=None)
        make_proc(policy)
        snapshot = policy.current_anchor
        snapshot[0] = 999
        assert policy.anchor[0] != 999
