"""DCRA behaviour with four hardware contexts (the Figure 9/11 setting)."""

import pytest

from repro.pipeline.config import SMTConfig
from repro.pipeline.processor import SMTProcessor
from repro.policies.dcra import DCRAPolicy
from repro.workloads.spec2000 import get_profile


def make_proc(policy, benchmarks=("art", "mcf", "gzip", "eon"), seed=1):
    profiles = [get_profile(name) for name in benchmarks]
    return SMTProcessor(SMTConfig.tiny(), profiles, seed=seed, policy=policy)


class TestDCRAFourThreads:
    def test_caps_partition_the_machine(self):
        policy = DCRAPolicy(update_interval=1)
        proc = make_proc(policy)
        for __ in range(40):
            proc.run(100)
            limits = proc.partitions
            assert sum(limits.limit_int_rename) <= proc.config.rename_int
            assert sum(limits.limit_rob) <= proc.config.rob_size
            assert all(limit >= 1 for limit in limits.limit_int_rename)

    def test_mixed_classification_shapes_caps(self):
        """With MEM and ILP threads co-scheduled, the missing threads'
        caps exceed the compute threads' caps whenever classification is
        split."""
        policy = DCRAPolicy(update_interval=1)
        proc = make_proc(policy)
        saw_split = False
        for __ in range(120):
            proc.run(50)
            classes = policy._last_classes
            if classes and any(classes) and not all(classes):
                limits = proc.partitions.limit_int_rename
                slow_caps = [limits[tid] for tid, slow in enumerate(classes)
                             if slow]
                fast_caps = [limits[tid] for tid, slow in enumerate(classes)
                             if not slow]
                assert min(slow_caps) >= max(fast_caps)
                saw_split = True
        assert saw_split

    def test_weight_parameter_controls_asymmetry(self):
        gentle = DCRAPolicy(slow_weight=1.0)
        proc_gentle = make_proc(gentle)
        gentle._recompute(proc_gentle, (True, False, False, False))
        aggressive = DCRAPolicy(slow_weight=4.0)
        proc_aggr = make_proc(aggressive)
        aggressive._recompute(proc_aggr, (True, False, False, False))
        gentle_limits = proc_gentle.partitions.limit_int_rename
        aggressive_limits = proc_aggr.partitions.limit_int_rename
        assert aggressive_limits[0] > gentle_limits[0]
        assert gentle_limits[0] == gentle_limits[1]  # weight 1.0 = equal

    def test_all_slow_equal_split(self):
        policy = DCRAPolicy()
        proc = make_proc(policy)
        policy._recompute(proc, (True, True, True, True))
        limits = proc.partitions.limit_int_rename
        assert len(set(limits)) == 1

    def test_progress_under_dcra_4t(self):
        proc = make_proc(DCRAPolicy())
        proc.run(8000)
        assert all(count > 0 for count in proc.stats.committed)
        assert proc.check_invariants()
