"""Tests for the hill-width analysis (Figures 6/7)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.hill_width import hill_width, hill_widths, peak_count


def triangle_curve(peak_at=64, total=128, step=8):
    """Symmetric single-peak curve over [0, total]."""
    return [
        (position, 1.0 - abs(position - peak_at) / total)
        for position in range(0, total + 1, step)
    ]


class TestHillWidth:
    def test_flat_curve_full_width(self):
        curve = [(position, 1.0) for position in range(0, 129, 8)]
        assert hill_width(curve, 0.95) == 128

    def test_sharp_spike_narrow_width(self):
        curve = [(position, 1.0 if position == 64 else 0.1)
                 for position in range(0, 129, 8)]
        assert hill_width(curve, 0.95) == 0

    def test_triangle_widths_scale_with_level(self):
        curve = triangle_curve()
        narrow = hill_width(curve, 0.99)
        wide = hill_width(curve, 0.90)
        assert narrow < wide

    def test_width_measured_in_position_units(self):
        curve = triangle_curve(step=8)
        assert hill_width(curve, 0.95) % 8 == 0

    def test_unsorted_input_accepted(self):
        curve = triangle_curve()
        assert hill_width(list(reversed(curve)), 0.95) == \
            hill_width(curve, 0.95)

    def test_level_validation(self):
        with pytest.raises(ValueError):
            hill_width(triangle_curve(), 0.0)
        with pytest.raises(ValueError):
            hill_width(triangle_curve(), 1.5)

    def test_short_curve_rejected(self):
        with pytest.raises(ValueError):
            hill_width([(0, 1.0)], 0.9)

    def test_duplicate_positions_rejected(self):
        with pytest.raises(ValueError):
            hill_width([(0, 1.0), (0, 0.5), (8, 0.2)], 0.9)

    def test_width_only_counts_contiguous_region(self):
        """A second high region disconnected from the peak does not widen
        the peak's hill."""
        curve = [(0, 0.99), (8, 0.2), (16, 1.0), (24, 0.2), (32, 0.99)]
        assert hill_width(curve, 0.95) == 0

    def test_hill_widths_levels(self):
        widths = hill_widths(triangle_curve())
        assert set(widths) == {0.99, 0.98, 0.97, 0.95, 0.90}
        values = [widths[level] for level in sorted(widths)]
        assert values == sorted(values, reverse=True)


class TestPeakCount:
    def test_single_peak(self):
        assert peak_count(triangle_curve()) == 1

    def test_two_peaks(self):
        curve = [(0, 0.2), (8, 1.0), (16, 0.3), (24, 0.9), (32, 0.2)]
        assert peak_count(curve) == 2

    def test_flat_curve_one_peak(self):
        curve = [(position, 1.0) for position in range(0, 33, 8)]
        assert peak_count(curve, prominence=0.02) <= 1

    def test_small_bumps_ignored_with_large_prominence(self):
        curve = [(0, 0.50), (8, 0.51), (16, 0.50), (24, 1.0), (32, 0.2)]
        assert peak_count(curve, prominence=0.10) == 1

    def test_zero_curve(self):
        curve = [(0, 0.0), (8, 0.0)]
        assert peak_count(curve) == 0


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(0.01, 1.0), min_size=3, max_size=40, unique=True))
def test_property_width_monotone_in_level(values):
    curve = list(enumerate(values))
    previous = None
    for level in (0.99, 0.95, 0.90, 0.80):
        width = hill_width(curve, level)
        if previous is not None:
            assert width >= previous
        previous = width


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(0.01, 1.0), min_size=3, max_size=40))
def test_property_width_bounded_by_span(values):
    curve = list(enumerate(values))
    span = len(values) - 1
    assert 0 <= hill_width(curve, 0.9) <= span
