"""Unit tests for the synthetic instruction-stream generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.generator import Instruction, OpClass, SyntheticStream
from repro.workloads.profile import BenchmarkProfile, PhaseParams, PhaseVariation
from repro.workloads.spec2000 import PROFILES, get_profile


def take(stream, count):
    return [stream.next_instruction() for __ in range(count)]


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = SyntheticStream(get_profile("gzip"), 0, seed=7)
        b = SyntheticStream(get_profile("gzip"), 0, seed=7)
        for x, y in zip(take(a, 500), take(b, 500)):
            assert (x.op, x.srcs, x.pc, x.taken, x.addr) == \
                   (y.op, y.srcs, y.pc, y.taken, y.addr)

    def test_different_seed_differs(self):
        a = take(SyntheticStream(get_profile("gzip"), 0, seed=1), 300)
        b = take(SyntheticStream(get_profile("gzip"), 0, seed=2), 300)
        assert any(x.op != y.op or x.addr != y.addr for x, y in zip(a, b))

    def test_different_thread_id_differs(self):
        a = take(SyntheticStream(get_profile("gzip"), 0, seed=1), 300)
        b = take(SyntheticStream(get_profile("gzip"), 1, seed=1), 300)
        assert any(x.op != y.op for x, y in zip(a, b))

    def test_thread_address_spaces_disjoint(self):
        a = SyntheticStream(get_profile("art"), 0, seed=1)
        b = SyntheticStream(get_profile("art"), 1, seed=1)
        addrs_a = {i.addr for i in take(a, 500) if i.addr is not None}
        addrs_b = {i.addr for i in take(b, 500) if i.addr is not None}
        assert addrs_a and addrs_b
        assert not (addrs_a & addrs_b)


class TestSnapshot:
    def test_snapshot_restore_replays_identically(self):
        stream = SyntheticStream(get_profile("art"), 0, seed=3)
        take(stream, 250)
        state = stream.snapshot()
        first = [(i.op, i.srcs, i.addr, i.taken) for i in take(stream, 250)]
        stream.restore(state)
        second = [(i.op, i.srcs, i.addr, i.taken) for i in take(stream, 250)]
        assert first == second

    def test_snapshot_preserves_seq(self):
        stream = SyntheticStream(get_profile("gzip"), 0, seed=3)
        take(stream, 100)
        state = stream.snapshot()
        take(stream, 50)
        stream.restore(state)
        assert stream.seq == 100


class TestStreamContents:
    def test_seq_monotonic(self):
        stream = SyntheticStream(get_profile("gzip"), 0, seed=1)
        seqs = [i.seq for i in take(stream, 100)]
        assert seqs == list(range(100))

    def test_sources_are_older(self):
        stream = SyntheticStream(get_profile("mcf"), 0, seed=1)
        for instr in take(stream, 2000):
            for src in instr.srcs:
                assert 0 <= src < instr.seq

    def test_mix_roughly_matches_profile(self):
        profile = get_profile("gzip")
        stream = SyntheticStream(profile, 0, seed=1)
        instrs = take(stream, 20000)
        loads = sum(1 for i in instrs if i.op == OpClass.LOAD)
        branches = sum(1 for i in instrs if i.op == OpClass.BRANCH)
        assert loads / len(instrs) == pytest.approx(profile.load_frac, abs=0.03)
        assert branches / len(instrs) == pytest.approx(
            profile.branch_frac, abs=0.04)

    def test_fp_profile_emits_fp_ops(self):
        stream = SyntheticStream(get_profile("apsi"), 0, seed=1)
        instrs = take(stream, 5000)
        assert any(i.op in OpClass.FP_OPS for i in instrs)

    def test_int_profile_emits_no_fp_ops(self):
        stream = SyntheticStream(get_profile("gzip"), 0, seed=1)
        instrs = take(stream, 5000)
        assert not any(i.op in OpClass.FP_OPS for i in instrs)

    def test_mem_ops_have_addresses(self):
        stream = SyntheticStream(get_profile("art"), 0, seed=1)
        for instr in take(stream, 2000):
            if instr.is_mem:
                assert instr.addr is not None
            else:
                assert instr.addr is None

    def test_calls_and_returns_balance_roughly(self):
        stream = SyntheticStream(get_profile("gzip"), 0, seed=1)
        depth = 0
        for instr in take(stream, 20000):
            if instr.op == OpClass.CALL:
                depth += 1
            elif instr.op == OpClass.RETURN:
                depth -= 1
            assert 0 <= depth <= 32

    def test_mem_profile_emits_far_accesses(self):
        stream = SyntheticStream(get_profile("art"), 0, seed=1)
        far = [i for i in take(stream, 5000)
               if i.op == OpClass.LOAD and (i.addr & 0x2000_0000)]
        assert len(far) > 20

    def test_ilp_profile_emits_no_far_accesses(self):
        stream = SyntheticStream(get_profile("gzip"), 0, seed=1)
        far = [i for i in take(stream, 5000)
               if i.op == OpClass.LOAD and i.addr and (i.addr & 0x2000_0000)]
        assert not far

    def test_burst_groups_chain_through_triggers(self):
        """Group heads pointer-chase each other; members depend on heads."""
        stream = SyntheticStream(get_profile("art"), 0, seed=1)
        far_loads = [i for i in take(stream, 8000)
                     if i.op == OpClass.LOAD and (i.addr & 0x2000_0000)]
        assert len(far_loads) >= 10
        far_seqs = {i.seq for i in far_loads}
        chained = sum(1 for i in far_loads
                      if i.srcs and i.srcs[0] in far_seqs)
        # Nearly all far loads depend on an earlier far load (their group
        # head or the previous head).
        assert chained >= 0.8 * (len(far_loads) - 1)


class TestPhases:
    def test_none_freq_params_never_change(self):
        stream = SyntheticStream(get_profile("bzip2"), 0, seed=1,
                                 phase_period=100)
        first = stream._current_params()
        take(stream, 1000)
        assert stream._current_params() == first

    def test_high_freq_alternates(self):
        stream = SyntheticStream(get_profile("gzip"), 0, seed=1,
                                 phase_period=100)
        seen = set()
        for __ in range(400):
            seen.add(stream._current_params().dep_distance)
            stream.next_instruction()
        assert len(seen) == 2

    def test_low_freq_alternates_slower(self):
        profile = get_profile("mcf")
        stream = SyntheticStream(profile, 0, seed=1, phase_period=100)
        boundary = 100 * profile.low_freq_multiple
        params_early = stream._current_params()
        take(stream, boundary + 10)
        assert stream._current_params() != params_early

    def test_phase_index(self):
        stream = SyntheticStream(get_profile("gzip"), 0, seed=1,
                                 phase_period=50)
        take(stream, 120)
        assert stream.phase_index == 2


class TestInstructionRecord:
    def test_reset_bumps_generation(self):
        instr = Instruction(0, 0, OpClass.IALU, False, (), 0)
        gen = instr.gen
        instr.dispatched = True
        instr.reset()
        assert instr.gen == gen + 1
        assert instr.dispatched is False

    def test_is_mem_and_ctrl(self):
        load = Instruction(0, 0, OpClass.LOAD, False, (), 0, addr=8)
        branch = Instruction(0, 1, OpClass.BRANCH, False, (), 0, taken=True)
        alu = Instruction(0, 2, OpClass.IALU, False, (), 0)
        assert load.is_mem and not load.is_ctrl
        assert branch.is_ctrl and not branch.is_mem
        assert not alu.is_mem and not alu.is_ctrl

    def test_repr(self):
        instr = Instruction(1, 5, OpClass.LOAD, False, (), 0, addr=8)
        assert "t1" in repr(instr) and "LOAD" in repr(instr)


@settings(max_examples=20, deadline=None)
@given(st.sampled_from(sorted(PROFILES)), st.integers(0, 5))
def test_property_any_profile_generates_valid_stream(name, seed):
    stream = SyntheticStream(get_profile(name), 0, seed=seed)
    for instr in take(stream, 300):
        assert instr.op in OpClass.ALL
        assert all(0 <= s < instr.seq for s in instr.srcs)
        if instr.is_mem:
            assert instr.addr is not None
        assert instr.pc >= 0
