"""``repro lint`` CLI behaviour: exit codes, formats, filters, --explain,
and drift between the rule registry and docs/ANALYSIS.md."""

import json
import os
import re

import pytest

from repro.analysis.lint import RULES
from repro.cli import main

DOCS = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "docs", "ANALYSIS.md")


def test_clean_tree_exits_zero(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_json_format(capsys):
    assert main(["lint", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload == {"schema_version": 1, "clean": True, "findings": []}


def test_select_and_ignore_filters(capsys):
    assert main(["lint", "--select", "PC"]) == 0
    assert main(["lint", "--ignore", "FP", "ND", "PC", "AS", "MC"]) == 0


def test_select_accepts_comma_separated_codes(capsys):
    assert main(["lint", "--select", "AS,MC"]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_findings_exit_one(capsys, monkeypatch):
    from repro.experiments import parallel

    doctored = dict(parallel._POLICY_SOURCES)
    doctored["HILL"] = ()
    monkeypatch.setattr(parallel, "_POLICY_SOURCES", doctored)
    assert main(["lint"]) == 1
    out = capsys.readouterr().out
    assert "[FP001]" in out and "core/hill_climbing.py" in out


def test_findings_json_payload(capsys, monkeypatch):
    from repro.experiments import parallel

    doctored = dict(parallel._POLICY_SOURCES)
    doctored["HILL"] = ()
    monkeypatch.setattr(parallel, "_POLICY_SOURCES", doctored)
    assert main(["lint", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is False
    assert payload["schema_version"] == 1
    assert {"rule", "path", "line", "message", "severity"} \
        <= set(payload["findings"][0])
    # deterministic (path, line, rule, message) order
    keys = [(f["path"], f["line"], f["rule"], f["message"])
            for f in payload["findings"]]
    assert keys == sorted(keys)


def test_explain_every_rule(capsys):
    for code in RULES:
        assert main(["lint", "--explain", code]) == 0
        out = capsys.readouterr().out
        assert out.startswith(code)


def test_explain_unknown_rule_exits_two(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["lint", "--explain", "XX999"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "unknown rule" in err
    assert err.count("\n") == 1  # one-line error


def test_explain_all_lists_every_rule(capsys):
    assert main(["lint", "--explain", "all"]) == 0
    out = capsys.readouterr().out
    for code in RULES:
        assert code in out


def test_internal_error_exits_two(capsys, monkeypatch):
    from repro.analysis.lint import engine

    def boom(**kwargs):
        raise RuntimeError("synthetic crash")

    monkeypatch.setattr(engine, "run_repo_lint", boom)
    with pytest.raises(SystemExit) as excinfo:
        main(["lint"])
    assert excinfo.value.code == 2
    assert "lint pass crashed" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Documentation drift
# ----------------------------------------------------------------------


def test_docs_catalogue_matches_registry():
    with open(DOCS, encoding="utf-8") as handle:
        text = handle.read()
    documented = set(re.findall(r"\b((?:FP|ND|PC|AS|MC)\d{3})\b", text))
    assert documented == set(RULES)


def test_docs_name_each_rule_consistently():
    from repro.analysis.lint import rule_doc

    with open(DOCS, encoding="utf-8") as handle:
        text = handle.read()
    for code, rule in RULES.items():
        # the --explain header line is "CODE (kebab-name)"; the doc table
        # must use the same kebab name next to the same code
        assert rule.name in text, \
            "docs/ANALYSIS.md is missing the name %r for %s" \
            % (rule.name, code)
        assert rule_doc(code).startswith("%s (%s)" % (code, rule.name))
