"""Documentation and packaging quality gates."""

import importlib
import pkgutil
from pathlib import Path

import pytest

import repro

ROOT = Path(__file__).resolve().parent.parent


class TestDocumentsExist:
    @pytest.mark.parametrize("name", [
        "README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/INTERNALS.md",
    ])
    def test_document_present_and_substantial(self, name):
        path = ROOT / name
        assert path.exists(), name
        assert len(path.read_text()) > 1500, name

    def test_design_lists_every_figure(self):
        text = (ROOT / "DESIGN.md").read_text()
        for figure in ("Fig. 2", "Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7",
                       "Fig. 9", "Fig. 10", "Fig. 11", "Fig. 12"):
            assert figure in text, figure
        for table in ("Table 1", "Table 2", "Table 3"):
            assert table in text, table

    def test_experiments_records_deviations(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        assert "deviation" in text.lower()
        assert "DCRA" in text

    def test_readme_quickstart_names_real_api(self):
        text = (ROOT / "README.md").read_text()
        for symbol in ("SMTProcessor", "EpochController",
                       "HillClimbingPolicy", "get_workload"):
            assert symbol in text, symbol
            assert hasattr(repro, symbol), symbol


class TestBenchCoverage:
    def test_every_table_and_figure_has_a_bench(self):
        benches = {path.name for path in (ROOT / "benchmarks").glob("bench_*.py")}
        expected = {
            "bench_table1_config.py", "bench_table2_characteristics.py",
            "bench_table3_workloads.py", "bench_fig2_surface.py",
            "bench_fig4_offline_limit.py", "bench_fig5_sync_timeline.py",
            "bench_fig6_hill_width_demo.py", "bench_fig7_hill_widths.py",
            "bench_fig9_hill_vs_baselines.py", "bench_fig10_metric_goals.py",
            "bench_fig11_vs_ideal.py", "bench_fig12_behaviors.py",
            "bench_sec5_phase_hill.py", "bench_qualitative.py",
            "bench_ablations.py",
        }
        assert expected <= benches

    def test_at_least_three_examples(self):
        examples = list((ROOT / "examples").glob("*.py"))
        assert len(examples) >= 3
        assert (ROOT / "examples" / "quickstart.py").exists()


class TestModuleDocstrings:
    def test_every_public_module_has_a_docstring(self):
        missing = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            if info.name.endswith("__main__"):
                continue  # importing it runs the CLI
            module = importlib.import_module(info.name)
            if not (module.__doc__ or "").strip():
                missing.append(info.name)
        assert not missing, missing

    def test_public_symbols_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_is_semver_ish(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)
