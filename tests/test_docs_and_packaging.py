"""Documentation and packaging quality gates.

Beyond presence/coverage checks, this module keeps the documentation
*executable*: every fenced code block in the user-facing docs whose info
string is exactly ``bash`` or ``python`` is run here, at smoke scale,
against a throwaway cache/runs/output directory (the docs parameterize
themselves with ``${REPRO_SCALE:-bench}``-style env defaults precisely so
the same text reads as the real workflow and runs as a fast test).
Blocks tagged with an extra word (```` ```bash setup ````,
```` ```bash full-scale ````, ...) are too expensive or environment-
mutating to run and are syntax-checked only.  Every ``python -m repro``
invocation in a bash block additionally has its flags validated against
the live ``--help`` of its subcommand, so the docs cannot drift from the
CLI.
"""

import importlib
import os
import pkgutil
import re
import shutil
import subprocess
import sys
from collections import namedtuple
from pathlib import Path

import pytest

import repro
from repro.reliability.supervisor import SWEEP_EVENTS
from repro.service.protocol import SERVICE_EVENTS

ROOT = Path(__file__).resolve().parent.parent

# -- fenced-block extraction ------------------------------------------------

DOC_FILES = ("README.md", "EXPERIMENTS.md", "docs/PARALLEL.md",
             "docs/RELIABILITY.md", "docs/ANALYSIS.md", "docs/SERVICE.md",
             "docs/PERFORMANCE.md")

Snippet = namedtuple("Snippet", "name lineno info body")


def _fenced_blocks(name):
    blocks = []
    info = None
    start = 0
    body = []
    for lineno, line in enumerate((ROOT / name).read_text().splitlines(), 1):
        stripped = line.strip()
        if info is None and stripped.startswith("```"):
            info = stripped[3:].strip()
            start = lineno
            body = []
        elif info is not None and stripped == "```":
            blocks.append(Snippet(name, start, info, "\n".join(body) + "\n"))
            info = None
        elif info is not None:
            body.append(line)
    assert info is None, "%s: unclosed fence at line %d" % (name, start)
    return blocks


ALL_SNIPPETS = [block for name in DOC_FILES for block in _fenced_blocks(name)]
CODE_SNIPPETS = [block for block in ALL_SNIPPETS
                 if block.info.split()[:1] in (["bash"], ["python"])]
EXECUTABLE = [block for block in CODE_SNIPPETS
              if block.info in ("bash", "python")]
TAGGED_ONLY = [block for block in CODE_SNIPPETS
               if block.info not in ("bash", "python")]

_ids = lambda block: "%s:%d" % (block.name, block.lineno)


class TestDocumentsExist:
    @pytest.mark.parametrize("name", [
        "README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/INTERNALS.md",
        "docs/PARALLEL.md", "docs/RELIABILITY.md", "docs/WORKLOADS.md",
        "docs/ANALYSIS.md", "docs/SERVICE.md", "docs/PERFORMANCE.md",
    ])
    def test_document_present_and_substantial(self, name):
        path = ROOT / name
        assert path.exists(), name
        assert len(path.read_text()) > 1500, name

    def test_design_lists_every_figure(self):
        text = (ROOT / "DESIGN.md").read_text()
        for figure in ("Fig. 2", "Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7",
                       "Fig. 9", "Fig. 10", "Fig. 11", "Fig. 12"):
            assert figure in text, figure
        for table in ("Table 1", "Table 2", "Table 3"):
            assert table in text, table

    def test_experiments_records_deviations(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        assert "deviation" in text.lower()
        assert "DCRA" in text

    def test_readme_quickstart_names_real_api(self):
        text = (ROOT / "README.md").read_text()
        for symbol in ("SMTProcessor", "EpochController",
                       "HillClimbingPolicy", "get_workload"):
            assert symbol in text, symbol
            assert hasattr(repro, symbol), symbol


class TestBenchCoverage:
    def test_every_table_and_figure_has_a_bench(self):
        benches = {path.name for path in (ROOT / "benchmarks").glob("bench_*.py")}
        expected = {
            "bench_table1_config.py", "bench_table2_characteristics.py",
            "bench_table3_workloads.py", "bench_fig2_surface.py",
            "bench_fig4_offline_limit.py", "bench_fig5_sync_timeline.py",
            "bench_fig6_hill_width_demo.py", "bench_fig7_hill_widths.py",
            "bench_fig9_hill_vs_baselines.py", "bench_fig10_metric_goals.py",
            "bench_fig11_vs_ideal.py", "bench_fig12_behaviors.py",
            "bench_sec5_phase_hill.py", "bench_qualitative.py",
            "bench_ablations.py",
        }
        assert expected <= benches

    def test_at_least_three_examples(self):
        examples = list((ROOT / "examples").glob("*.py"))
        assert len(examples) >= 3
        assert (ROOT / "examples" / "quickstart.py").exists()


class TestModuleDocstrings:
    def test_every_public_module_has_a_docstring(self):
        missing = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            if info.name.endswith("__main__"):
                continue  # importing it runs the CLI
            module = importlib.import_module(info.name)
            if not (module.__doc__ or "").strip():
                missing.append(info.name)
        assert not missing, missing

    def test_public_symbols_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_is_semver_ish(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)


class TestEventTableDrift:
    """The docs carry the canonical event-name tables between HTML
    sentinel comments; each block must list *exactly* the code table,
    in order, so prose and code can never disagree about the sweep
    event vocabulary."""

    @staticmethod
    def _sentinel_names(doc, tag):
        text = (ROOT / doc).read_text()
        match = re.search(
            r"<!-- %s:begin -->(.*?)<!-- %s:end -->" % (tag, tag),
            text, re.S)
        assert match, "%s: missing %s sentinel block" % (doc, tag)
        return re.findall(r"`([a-z][a-z-]*)`", match.group(1))

    def test_parallel_md_lists_exactly_the_sweep_events(self):
        names = self._sentinel_names("docs/PARALLEL.md", "sweep-events")
        assert names == list(SWEEP_EVENTS)

    def test_service_md_lists_exactly_the_service_events(self):
        names = self._sentinel_names("docs/SERVICE.md", "service-events")
        assert names == list(SERVICE_EVENTS)

    def test_the_two_tables_do_not_overlap(self):
        assert not set(SWEEP_EVENTS) & set(SERVICE_EVENTS)

    def test_performance_md_lists_exactly_the_core_lanes(self):
        """docs/PERFORMANCE.md's lane table is the canonical statement
        of which run-loop cores exist; it must match CORE_MODES exactly,
        in order, so a new core cannot land undocumented."""
        from repro.pipeline.fastpath import CORE_MODES

        names = self._sentinel_names("docs/PERFORMANCE.md", "core-lanes")
        assert names == list(CORE_MODES)


# -- executable documentation ----------------------------------------------


def _base_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(ROOT / "src")] + ([env["PYTHONPATH"]]
                               if env.get("PYTHONPATH") else []))
    return env


@pytest.fixture(scope="module")
def snippet_env(tmp_path_factory):
    """Environment for doc snippets: smoke scale, 2 jobs, throwaway
    cache/runs/output dirs shared across snippets (so the sweep examples
    exercise warm-cache behaviour the way the docs describe)."""
    tmp = tmp_path_factory.mktemp("doc-snippets")
    env = _base_env()
    env.update({
        "REPRO_SCALE": "smoke",
        "REPRO_BENCH_SCALE": "smoke",
        "REPRO_JOBS": "2",
        "REPRO_BENCH_JOBS": "2",
        "REPRO_RUNS": str(tmp / "runs"),
        "REPRO_OUT": str(tmp / "out"),
        "REPRO_CACHE_DIR": str(tmp / "cache"),
    })
    return env


def _run(argv, env=None, snippet_input=None):
    return subprocess.run(
        argv, input=snippet_input, env=env or _base_env(), cwd=str(ROOT),
        timeout=600, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)


class TestDocSnippetsRun:
    def test_docs_have_executable_snippets(self):
        # The conventions above only mean something if plain blocks exist.
        assert len(EXECUTABLE) >= 6
        assert {block.name for block in EXECUTABLE} == set(DOC_FILES)

    @pytest.mark.parametrize(
        "block", [b for b in EXECUTABLE if b.info == "bash"], ids=_ids)
    def test_bash_snippet_runs(self, block, snippet_env):
        if shutil.which("bash") is None:
            pytest.skip("no bash on PATH")
        script = "set -eu -o pipefail\n" + block.body
        proc = _run(["bash", "-c", script], snippet_env)
        assert proc.returncode == 0, "%s line %d failed:\n%s" % (
            block.name, block.lineno, proc.stdout)

    @pytest.mark.parametrize(
        "block", [b for b in EXECUTABLE if b.info == "python"], ids=_ids)
    def test_python_snippet_runs(self, block, snippet_env):
        proc = _run([sys.executable, "-"], snippet_env,
                    snippet_input=block.body)
        assert proc.returncode == 0, "%s line %d failed:\n%s" % (
            block.name, block.lineno, proc.stdout)

    @pytest.mark.parametrize("block", TAGGED_ONLY, ids=_ids)
    def test_tagged_snippet_is_at_least_well_formed(self, block):
        if block.info.startswith("python"):
            compile(block.body, "%s:%d" % (block.name, block.lineno), "exec")
        elif shutil.which("bash") is not None:
            proc = _run(["bash", "-n", "-c", block.body], None)
            assert proc.returncode == 0, proc.stdout


class TestDocCliFlagsExist:
    """Every documented `python -m repro <cmd> --flag` must be a real
    flag of that subcommand's parser."""

    @staticmethod
    def _invocations():
        calls = []
        for block in CODE_SNIPPETS:
            if not block.info.startswith("bash"):
                continue
            joined = block.body.replace("\\\n", " ")
            for line in joined.splitlines():
                words = line.split("#")[0].split()
                if "-m" not in words:
                    continue
                at = words.index("-m")
                if words[at + 1:at + 2] != ["repro"]:
                    continue
                rest = words[at + 2:]
                if not rest or rest[0].startswith("-"):
                    continue
                # `repro cache clear --corrupt-only`: flags live on the
                # sub-subparser, so keep one leading bare word to ask
                # `repro cache clear --help` rather than `cache --help`.
                sub = tuple(word for word in rest[1:2]
                            if not word.startswith("-"))
                flags = [word.split("=")[0] for word in rest[1:]
                         if word.startswith("--")]
                calls.append((block, rest[0], sub, tuple(flags)))
        return calls

    def test_docs_actually_document_the_cli(self):
        commands = {command for __, command, __, __ in self._invocations()}
        assert {"sweep", "cache", "run", "verify", "serve", "worker",
                "submit", "chaos", "loadtest"} <= commands

    def test_documented_flags_exist(self):
        help_texts = {}
        for block, command, sub, flags in self._invocations():
            key = (command,) + sub
            if key not in help_texts:
                proc = _run([sys.executable, "-m", "repro"] + list(key)
                            + ["--help"], None)
                assert proc.returncode == 0, (key, proc.stdout)
                help_texts[key] = proc.stdout
            for flag in flags:
                assert flag in help_texts[key], (
                    "%s line %d documents %s %s, unknown to --help"
                    % (block.name, block.lineno, " ".join(key), flag))
