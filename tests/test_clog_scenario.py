"""The paper's motivating scenario as a test: resource clog and what the
policy families do about it (the examples/memory_clog.py story, asserted).
"""

import pytest

from repro.core.controller import EpochController
from repro.pipeline.config import SMTConfig
from repro.pipeline.processor import SMTProcessor
from repro.policies.dcra import DCRAPolicy
from repro.policies.flush import FlushPolicy
from repro.policies.icount import ICountPolicy
from repro.policies.static_partition import StaticPartitionPolicy
from repro.workloads.spec2000 import get_profile

WARMUP = 4000
WINDOW = 16000


@pytest.fixture(scope="module")
def results():
    outcome = {}
    for policy_factory in (ICountPolicy, FlushPolicy, StaticPartitionPolicy,
                           DCRAPolicy):
        policy = policy_factory()
        proc = SMTProcessor(SMTConfig.fast(),
                            [get_profile("art"), get_profile("gzip")],
                            seed=0, policy=policy)
        proc.run(WARMUP)
        before = proc.stats.copy()
        proc.run(WINDOW)
        committed, cycles = proc.stats.delta_since(before)
        outcome[policy.name] = {
            "ipcs": [count / cycles for count in committed],
            "stats": proc.stats,
            "proc": proc,
        }
    return outcome


class TestResourceClog:
    def test_icount_lets_the_mem_thread_clog(self, results):
        """Under ICOUNT the memory thread (art) grabs a dominant share of
        the machine, crushing the compute thread relative to what explicit
        partitioning gives it."""
        icount_gzip = results["ICOUNT"]["ipcs"][1]
        static_gzip = results["STATIC"]["ipcs"][1]
        assert static_gzip > 1.3 * icount_gzip

    def test_partitioning_beats_icount_on_total_throughput(self, results):
        icount_total = sum(results["ICOUNT"]["ipcs"])
        static_total = sum(results["STATIC"]["ipcs"])
        dcra_total = sum(results["DCRA"]["ipcs"])
        assert static_total > icount_total
        assert dcra_total > icount_total

    def test_flush_protects_the_compute_thread(self, results):
        flush_gzip = results["FLUSH"]["ipcs"][1]
        icount_gzip = results["ICOUNT"]["ipcs"][1]
        assert flush_gzip > icount_gzip

    def test_flush_actually_flushed(self, results):
        assert sum(results["FLUSH"]["stats"].flushes) > 0

    def test_partition_stalls_recorded_for_partitioned_policies(self, results):
        assert sum(results["STATIC"]["stats"].partition_stall_cycles) > 0

    def test_art_survives_everywhere(self, results):
        for name, data in results.items():
            assert data["ipcs"][0] > 0.05, name
