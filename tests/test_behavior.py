"""Tests for the TS/SS/TL/SL/JL behaviour classifier (Figure 12)."""

import pytest

from repro.analysis.behavior import BehaviorClass, classify_behavior
from repro.core.controller import EpochResult
from repro.core.offline import OfflineEpoch

TOTAL = 128


def make_epoch(epoch_id, curve_values, best_index):
    """Build a synthetic OfflineEpoch from a value list over the grid."""
    positions = [4 + 8 * index for index in range(len(curve_values))]
    assert positions[-1] < TOTAL
    curve = [
        ((position, TOTAL - position), value, [value / 2, value / 2])
        for position, value in zip(positions, curve_values)
    ]
    best_pos = positions[best_index]
    result = EpochResult(epoch_id=epoch_id, kind="normal",
                         committed=[10, 10], cycles=100)
    return OfflineEpoch(
        epoch_id=epoch_id, curve=curve,
        best_shares=(best_pos, TOTAL - best_pos),
        best_value=curve_values[best_index], result=result,
    )


def sharp_values(peak_index, count=15):
    return [1.0 - 0.08 * abs(index - peak_index) for index in range(count)]


def flat_values(peak_index, count=15):
    return [1.0 - 0.005 * abs(index - peak_index) for index in range(count)]


def bimodal_values(count=15):
    values = [0.3] * count
    values[3] = 1.0
    values[4] = 0.6
    values[11] = 0.95
    return values


class TestClassification:
    def test_temporally_stable(self):
        epochs = [make_epoch(i, sharp_values(7), 7) for i in range(10)]
        assert classify_behavior(epochs, TOTAL) == \
            BehaviorClass.TEMPORALLY_STABLE

    def test_spatially_stable(self):
        """Best moves every epoch, but hills are wide/flat."""
        epochs = [
            make_epoch(i, flat_values(2 + 10 * (i % 2)), 2 + 10 * (i % 2))
            for i in range(10)
        ]
        assert classify_behavior(epochs, TOTAL) == \
            BehaviorClass.SPATIALLY_STABLE

    def test_jitter_limited(self):
        """Best jumps rapidly across sharp hills."""
        epochs = [
            make_epoch(i, sharp_values(2 + 10 * (i % 2)), 2 + 10 * (i % 2))
            for i in range(10)
        ]
        assert classify_behavior(epochs, TOTAL) == \
            BehaviorClass.JITTER_LIMITED

    def test_temporally_limited(self):
        """Long stable regimes separated by one large persistent change."""
        peaks = [2] * 8 + [12] * 8
        epochs = [make_epoch(i, sharp_values(peak), peak)
                  for i, peak in enumerate(peaks)]
        assert classify_behavior(epochs, TOTAL) == \
            BehaviorClass.TEMPORALLY_LIMITED

    def test_spatially_limited(self):
        """Stable best over persistent multi-peak curves."""
        epochs = [make_epoch(i, bimodal_values(), 3) for i in range(10)]
        assert classify_behavior(epochs, TOTAL) == \
            BehaviorClass.SPATIALLY_LIMITED

    def test_needs_three_epochs(self):
        epochs = [make_epoch(0, sharp_values(7), 7)]
        with pytest.raises(ValueError):
            classify_behavior(epochs, TOTAL)

    def test_enum_values_match_paper_labels(self):
        assert {behavior.value for behavior in BehaviorClass} == \
            {"TS", "SS", "TL", "SL", "JL"}
