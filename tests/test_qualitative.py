"""Tests for the Section 3.3.2 qualitative analysis."""

import pytest

from repro.analysis.qualitative import (
    WindowUtility,
    classify_threads,
    miss_clustering_gain,
    window_utility,
)
from repro.pipeline.config import SMTConfig
from repro.workloads.spec2000 import get_profile


class TestWindowUtilityRecord:
    def test_gain(self):
        utility = WindowUtility("x", shallow_ipc=1.0, deep_ipc=2.0,
                                l2_misses_per_kilo=0.0)
        assert utility.gain == pytest.approx(2.0)

    def test_gain_zero_shallow(self):
        utility = WindowUtility("x", 0.0, 2.0, 0.0)
        assert utility.gain == 1.0

    def test_memory_intensive_threshold(self):
        assert WindowUtility("x", 1, 1, 10.0).is_memory_intensive
        assert not WindowUtility("x", 1, 1, 1.0).is_memory_intensive

    def test_low_ilp_compute(self):
        assert WindowUtility("x", 1.0, 1.1, 1.0).is_low_ilp_compute
        assert not WindowUtility("x", 1.0, 2.0, 1.0).is_low_ilp_compute
        assert not WindowUtility("x", 1.0, 1.1, 20.0).is_low_ilp_compute


@pytest.mark.slow
class TestMeasured:
    def test_bursty_mem_thread_shows_clustering_gain(self):
        """art's clustered misses reward a deep window."""
        gain = miss_clustering_gain(get_profile("art"), SMTConfig.tiny(),
                                    warmup=3000, window=8000)
        assert gain > 1.15

    def test_ilp_thread_measured(self):
        utility = window_utility(get_profile("gzip"), SMTConfig.tiny(),
                                 warmup=3000, window=8000)
        assert utility.deep_ipc > 0
        assert utility.l2_misses_per_kilo < 10.0

    def test_classification_buckets(self):
        profiles = [get_profile(name) for name in ("art", "gzip")]
        buckets = classify_threads(profiles, SMTConfig.tiny(),
                                   warmup=3000, window=8000)
        names = {
            bucket: [utility.benchmark for utility in utilities]
            for bucket, utilities in buckets.items()
        }
        all_names = sum(names.values(), [])
        assert sorted(all_names) == ["art", "gzip"]
        assert "art" in names["clustering"] or "art" in names["other"]
