"""Pack-level supervision for the batched sweep lane.

The PackSupervisor's contract, as tests:

* bad ``batch_cells`` values raise one consistent message at every
  layer (CLI, engine, pack layer, service worker);
* a poisoned cell in an 8-cell pack is isolated by deterministic
  bisection in at most 3 pack re-runs, quarantined alone, and every
  innocent packmate's result lands byte-identical to serial;
* a hung pack is reaped by the pack heartbeat timeout;
* the runtime mirror audit (``REPRO_AUDIT=mirror``/``--audit-mirrors``)
  is inert on clean runs — identical merged JSON, identical cache
  bytes, zero evictions — and evicts a mirror-corrupted cell to the
  scalar lane with zero quarantines;
* a supervised ``--batch-cells`` sweep SIGKILLed mid-pack resumes via
  ``--resume-dir`` to byte-identical merged JSON (the batched mirror
  of the serial kill-resume scenario);
* the batched chaos presets converge (the harness's own ``ok``);
* the result cache verifies stored payload digests and sidelines
  mismatches to ``.corrupt``.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.experiments.parallel import (
    ResultCache,
    SweepEngine,
    grid_cells,
    merged_json,
)
from repro.experiments.runner import ExperimentScale
from repro.reliability.chaos import (
    BATCHED_CHAOS_PRESETS,
    CHAOS_PRESETS,
    ChaosPlan,
    MirrorCorrupt,
    PoisonCell,
    build_plan,
    run_chaos,
)
from repro.reliability.packsup import (
    AUDIT_MODES,
    PackSupervisor,
    audit_mode,
    forced_audit,
    validate_batch_cells,
)
from repro.reliability.supervisor import QuarantineLedger, Supervision


@pytest.fixture
def scale():
    return ExperimentScale.smoke()


def eight_cells(epochs=3):
    return grid_cells(workloads=("art-mcf", "apsi-eon"),
                      policies=("ICOUNT", "FLUSH", "DCRA", "HILL"),
                      epochs=epochs)


def four_cells(epochs=3):
    return grid_cells(workloads=("art-mcf", "apsi-eon"),
                      policies=("ICOUNT", "FLUSH"), epochs=epochs)


def _supervision(**overrides):
    kwargs = dict(max_attempts=3, retry_base_delay=0.0, seed=0,
                  poll_interval=0.05)
    kwargs.update(overrides)
    return Supervision(**kwargs)


# -- shared validation and the audit switch ---------------------------------


class TestValidation:
    def test_one_message_for_every_bad_value(self):
        for bad in (0, -2, True, False, 1.5, "4", None):
            with pytest.raises(ValueError,
                               match=r"batch_cells must be an integer >= 1"):
                validate_batch_cells(bad)

    def test_valid_values_pass_through(self):
        assert validate_batch_cells(1) == 1
        assert validate_batch_cells(8) == 8

    def test_engine_and_pack_layer_share_the_message(self, scale):
        from repro.experiments.batchrun import pack_cells

        with pytest.raises(ValueError,
                           match=r"batch_cells must be an integer >= 1"):
            SweepEngine(scale, batch_cells=0)
        with pytest.raises(ValueError,
                           match=r"batch_cells must be an integer >= 1"):
            list(pack_cells([], 0))


class TestAuditMode:
    def test_defaults_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        assert audit_mode() == "off"

    def test_env_selects_mirror(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "mirror")
        assert audit_mode() == "mirror"

    def test_bad_env_fails_fast(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "paranoid")
        with pytest.raises(ValueError, match="REPRO_AUDIT"):
            audit_mode()

    def test_forced_audit_wins_and_nests(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "off")
        with forced_audit("mirror"):
            assert audit_mode() == "mirror"
            with forced_audit("off"):
                assert audit_mode() == "off"
            assert audit_mode() == "mirror"
        assert audit_mode() == "off"

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            forced_audit("paranoid")
        assert AUDIT_MODES == ("off", "mirror")


# -- the supervisor, without simulations ------------------------------------


def _list_args(pack, attempt):
    return (list(pack), attempt)


def _hang_forever(pack, attempt):
    time.sleep(120)


class TestPackSupervisorUnit:
    def test_bisection_isolates_the_poison_uncharged(self):
        events = []

        def worker(pack, attempt):
            if "poison" in pack:
                raise RuntimeError("injected")
            return ["ok:%s" % item for item in pack]

        supervisor = PackSupervisor(
            worker, _list_args, jobs=1,
            config=_supervision(max_attempts=1),
            emit=lambda event, **fields: events.append((event, fields)))
        items = ["a", "b", "c", "poison", "e", "f", "g", "h"]
        results = supervisor.run([items])

        assert sorted(results) == sorted(set(items) - {"poison"})
        # 8 -> 4 -> 2 -> 1: three splits, never more.
        assert supervisor.bisections == 3
        assert [fields["cells"] for event, fields in events
                if event == "pack-bisect"] == [8, 4, 2]
        assert list(supervisor.quarantined) == ["poison"]
        assert supervisor.deferred == [] and supervisor.evicted == []
        # No innocent cell was charged an attempt by the splits.
        assert all(supervisor.attempts[item] == 0 for item in results)

    def test_retryable_single_cell_defers_to_the_scalar_lane(self):
        def worker(pack, attempt):
            if "flaky" in pack:
                raise RuntimeError("injected")
            return list(pack)

        supervisor = PackSupervisor(worker, _list_args, jobs=1,
                                    config=_supervision(max_attempts=3))
        results = supervisor.run([["flaky", "b"]])
        assert sorted(results) == ["b"]
        assert supervisor.deferred == ["flaky"]
        assert supervisor.attempts["flaky"] == 1
        assert supervisor.quarantined == {}

    def test_none_payload_slots_are_evicted_uncharged(self):
        def worker(pack, attempt):
            return [None if item == "diverged" else item for item in pack]

        supervisor = PackSupervisor(worker, _list_args, jobs=1,
                                    config=_supervision())
        results = supervisor.run([["a", "diverged"]])
        assert sorted(results) == ["a"]
        assert supervisor.evicted == ["diverged"]
        assert supervisor.attempts["diverged"] == 0
        assert supervisor.quarantined == {}

    def test_malformed_payload_is_contained_by_bisection(self):
        def worker(pack, attempt):
            if len(pack) > 1:
                return "garbage"
            return list(pack)

        supervisor = PackSupervisor(worker, _list_args, jobs=1,
                                    config=_supervision())
        results = supervisor.run([["a", "b"]])
        assert sorted(results) == ["a", "b"]
        assert supervisor.bisections == 1

    def test_stale_pack_heartbeat_reaps_the_pack(self, tmp_path):
        heartbeat = str(tmp_path / "pack.hb")
        events = []
        supervisor = PackSupervisor(
            _hang_forever, _list_args, jobs=1,
            config=_supervision(cell_timeout=0.5),
            pack_heartbeat=lambda pack: heartbeat,
            emit=lambda event, **fields: events.append(event))
        results = supervisor.run([["solo"]])
        assert results == {}
        assert supervisor.timeouts == 1
        assert supervisor.deferred == ["solo"]
        assert supervisor.attempts["solo"] == 1
        assert "cell-timeout" in events


# -- the engine's supervised batched lane -----------------------------------


class TestBatchedEngine:
    def test_poisoned_pack_cell_bisected_and_isolated(self, scale,
                                                      tmp_path):
        # The ISSUE acceptance scenario: one poisoned cell in an 8-cell
        # pack must be isolated by bisection in <= 3 pack re-runs and
        # quarantined alone, while the other 7 cells' results land.
        cells = eight_cells()
        victim = sorted(cell.label for cell in cells)[0]
        events = []
        engine = SweepEngine(
            scale, jobs=1, use_cache=False,
            resume_dir=str(tmp_path / "resume"),
            supervision=_supervision(max_attempts=1),
            fault_plan=ChaosPlan([PoisonCell((victim,))],
                                 parent_pid=os.getpid()),
            batch_cells=8, on_event=events.append)
        results = engine.run_cells(cells)

        by_label = dict(zip((cell.label for cell in cells), results))
        assert by_label[victim] is None
        assert sum(result is not None for result in results) == 7
        assert engine.supervisor_stats["bisections"] <= 3
        assert [cell.label for cell in engine.quarantined] == [victim]
        (entry,) = QuarantineLedger(engine.quarantine_path).entries()
        assert entry["cell"] == victim
        assert [e["event"] for e in events].count("pack-bisect") \
            == engine.supervisor_stats["bisections"]

        reference = SweepEngine(scale, jobs=1, use_cache=False)
        for cell, got, want in zip(cells, results,
                                   reference.run_cells(cells)):
            if cell.label != victim:
                assert got.to_dict() == want.to_dict()

    def test_audit_mirrors_is_inert_on_a_clean_run(self, scale, tmp_path):
        # REPRO_AUDIT=mirror must change nothing on a clean run: same
        # merged bytes, same cache keys, same cached bytes, no
        # evictions.
        cells = four_cells()
        docs, caches = {}, {}
        for label, audit in (("off", False), ("on", True)):
            cache_dir = str(tmp_path / ("cache-" + label))
            engine = SweepEngine(scale, jobs=1, cache_dir=cache_dir,
                                 supervision=_supervision(),
                                 batch_cells=4, audit_mirrors=audit)
            docs[label] = merged_json(cells, engine.run_cells(cells),
                                      scale,
                                      quarantined=engine.quarantined)
            assert engine.supervisor_stats["evicted"] == 0
            snapshot = {}
            for dirpath, _dirnames, filenames in os.walk(cache_dir):
                for name in filenames:
                    path = os.path.join(dirpath, name)
                    with open(path) as handle:
                        snapshot[os.path.relpath(path, cache_dir)] = \
                            handle.read()
            caches[label] = snapshot
        assert docs["on"] == docs["off"]
        assert caches["on"] == caches["off"]
        assert caches["on"]  # the comparison compared something

    def test_mirror_corruption_evicts_to_the_scalar_lane(self, scale,
                                                         tmp_path):
        cells = four_cells()
        victim = sorted(cell.label for cell in cells)[0]
        engine = SweepEngine(
            scale, jobs=1, use_cache=False,
            resume_dir=str(tmp_path / "resume"),
            supervision=_supervision(),
            fault_plan=ChaosPlan(
                [MirrorCorrupt((victim,), attempts=(1,), at_epoch=1)],
                parent_pid=os.getpid()),
            batch_cells=4, audit_mirrors=True)
        results = engine.run_cells(cells)
        assert all(result is not None for result in results)
        assert engine.supervisor_stats["evicted"] == 1
        assert engine.quarantined == {}

        reference = SweepEngine(scale, jobs=1, use_cache=False)
        assert merged_json(cells, results, scale,
                           quarantined=engine.quarantined) \
            == merged_json(cells, reference.run_cells(cells), scale)


# -- SIGKILL mid-pack, resume via --resume-dir ------------------------------


def _sweep_command(out, resume_dir, cache_dir):
    return [sys.executable, "-m", "repro", "sweep",
            "--workloads", "art-mcf", "apsi-eon",
            "--policies", "ICOUNT", "FLUSH",
            "--scale", "smoke", "--epochs", "6", "--jobs", "1",
            "--batch-cells", "4", "--cell-timeout", "120",
            "--resume-dir", resume_dir, "--cache-dir", cache_dir,
            "--quiet", "--out", out]


def _subprocess_env():
    src_root = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "src")
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root + (os.pathsep + existing
                                    if existing else "")
    return env


class TestKilledPackResumes:
    def test_sigkilled_pack_sweep_resumes_to_identical_bytes(
            self, scale, tmp_path):
        # The batched mirror of the serial kill-resume scenario: a
        # supervised --batch-cells sweep is SIGKILLed mid-pack, then
        # re-run with the same --resume-dir; the merged JSON must be
        # byte-identical to a fault-free serial sweep.
        resume_dir = str(tmp_path / "resume")
        out = str(tmp_path / "packed.json")
        command = _sweep_command(out, resume_dir,
                                 str(tmp_path / "cache"))
        env = _subprocess_env()

        proc = subprocess.Popen(command, stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL, env=env)
        # Kill as soon as the pack has checkpointed at least one epoch
        # (mid-pack by construction: checkpoints are written per epoch
        # while the pack is still stepping).
        deadline = time.monotonic() + 60  # repro: allow-nondeterminism[ND101] (harness deadline, not results)
        def checkpoints():
            for dirpath, _dirnames, filenames in os.walk(resume_dir):
                if any(name.startswith("ckpt_") for name in filenames):
                    return True
            return False
        while time.monotonic() < deadline:  # repro: allow-nondeterminism[ND101] (harness deadline, not results)
            if proc.poll() is not None or checkpoints():
                break
            time.sleep(0.05)
        if proc.poll() is None:
            os.kill(proc.pid, signal.SIGKILL)
        proc.wait()

        rerun = subprocess.run(command, env=env,
                               stdout=subprocess.DEVNULL,
                               stderr=subprocess.DEVNULL)
        assert rerun.returncode == 0
        with open(out) as handle:
            packed = handle.read()

        cells = four_cells(epochs=None)
        serial_scale = scale.with_overrides(epochs=6)
        reference = SweepEngine(serial_scale, jobs=1, use_cache=False)
        assert packed == merged_json(cells,
                                     reference.run_cells(cells),
                                     serial_scale)


# -- the batched chaos presets ----------------------------------------------


class TestBatchedChaosPresets:
    def test_presets_are_registered(self):
        assert BATCHED_CHAOS_PRESETS \
            == {"poison-pack-cell", "hang-pack", "mirror-corrupt"}
        assert BATCHED_CHAOS_PRESETS <= set(CHAOS_PRESETS)

    def test_build_plan_shapes(self, scale):
        cells = four_cells()
        plan, expected, timeout = build_plan("poison-pack-cell", cells)
        assert expected == 1 and timeout is None
        plan, expected, timeout = build_plan("hang-pack", cells)
        assert expected == 0 and timeout == 5.0
        plan, expected, timeout = build_plan("mirror-corrupt", cells)
        assert expected == 0 and timeout is None
        assert isinstance(plan.faults[0], MirrorCorrupt)

    def test_poison_pack_cell_converges(self, scale, tmp_path):
        workdir = str(tmp_path / "chaos")
        report = run_chaos("poison-pack-cell", scale, jobs=1, epochs=3,
                           work_dir=workdir, keep=True)
        assert report["ok"], report
        assert report["batch_cells"] == len(report["cells"])
        assert report["bisections"] >= 1
        assert len(report["quarantined"]) == 1
        entries = QuarantineLedger(report["quarantine_path"]).entries()
        assert [entry["cell"] for entry in entries] \
            == report["quarantined"]

    def test_hang_pack_converges(self, scale):
        report = run_chaos("hang-pack", scale, jobs=1, epochs=3,
                           cell_timeout=2.0)
        assert report["ok"], report
        assert report["timeouts"] >= 1
        assert report["quarantined"] == []

    def test_mirror_corrupt_is_evicted_not_quarantined(self, scale):
        report = run_chaos("mirror-corrupt", scale, jobs=1, epochs=3)
        assert report["ok"], report
        assert report["evicted"] == 1
        assert report["bisections"] == 0
        assert report["quarantined"] == []


# -- cache payload digests --------------------------------------------------


class TestCacheDigest:
    def _seed_cache(self, scale, tmp_path):
        cache_dir = str(tmp_path / "cache")
        (cell,) = grid_cells(workloads=("art-mcf",),
                             policies=("ICOUNT",), epochs=2)
        engine = SweepEngine(scale, jobs=1, cache_dir=cache_dir)
        engine.run_cells([cell])
        cache = ResultCache(cache_dir)
        (path,) = [os.path.join(dirpath, name)
                   for dirpath, _dirnames, names in
                   os.walk(cache.objects_dir)
                   for name in names if name.endswith(".json")]
        return cache, cell, path

    def test_tampered_payload_is_sidelined(self, scale, tmp_path,
                                           capsys):
        cache, cell, path = self._seed_cache(scale, tmp_path)
        with open(path) as handle:
            document = json.load(handle)
        key = document["key"]
        assert cache.get(key) is not None  # digest verifies clean

        document["result"]["avg_ipc"] = 99.0  # the payload lies now
        with open(path, "w") as handle:
            json.dump(document, handle)
        assert cache.get(key) is None
        err = capsys.readouterr().err
        assert "corrupt cache entry" in err
        assert "does not match payload digest" in err
        assert os.path.exists(path[:-len(".json")] + ".corrupt")
        info = cache.info()
        assert info.entries == 0 and info.corrupt == 1

    def test_entry_filed_under_wrong_key_is_sidelined(self, scale,
                                                      tmp_path, capsys):
        cache, cell, path = self._seed_cache(scale, tmp_path)
        with open(path) as handle:
            document = json.load(handle)
        key = document["key"]
        document["key"] = "0" * 64  # filed under someone else's name
        with open(path, "w") as handle:
            json.dump(document, handle)
        assert cache.get(key) is None
        assert "filed under key" in capsys.readouterr().err
        assert cache.info().corrupt == 1
