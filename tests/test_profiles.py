"""Tests for the Table 2 benchmark profiles."""

import pytest

from repro.workloads.profile import BenchmarkProfile, PhaseParams, PhaseVariation
from repro.workloads.spec2000 import PROFILES, get_profile, profile_names

PAPER_TABLE2 = {
    # name: (type is fp, ctype, rsc, freq)
    "bzip2": (False, "ILP", 72, "No"),
    "perlbmk": (False, "ILP", 59, "No"),
    "eon": (False, "ILP", 82, "No"),
    "vortex": (False, "ILP", 102, "High"),
    "gzip": (False, "ILP", 83, "High"),
    "parser": (False, "ILP", 90, "High"),
    "gap": (False, "ILP", 208, "No"),
    "crafty": (False, "ILP", 125, "High"),
    "gcc": (False, "ILP", 112, "High"),
    "apsi": (True, "ILP", 127, "No"),
    "fma3d": (True, "ILP", 72, "No"),
    "wupwise": (True, "ILP", 161, "No"),
    "mesa": (True, "ILP", 110, "No"),
    "equake": (True, "MEM", 100, "No"),
    "vpr": (False, "MEM", 180, "High"),
    "mcf": (False, "MEM", 97, "Low"),
    "twolf": (False, "MEM", 184, "High"),
    "art": (True, "MEM", 176, "No"),
    "lucas": (True, "MEM", 64, "No"),
    "ammp": (True, "MEM", 173, "High"),
    "swim": (True, "MEM", 213, "No"),
    "applu": (True, "MEM", 112, "No"),
}


class TestTable2Fidelity:
    def test_all_22_benchmarks_present(self):
        assert set(PROFILES) == set(PAPER_TABLE2)

    @pytest.mark.parametrize("name", sorted(PAPER_TABLE2))
    def test_profile_matches_paper_row(self, name):
        is_fp, ctype, rsc, freq = PAPER_TABLE2[name]
        profile = get_profile(name)
        assert profile.is_fp == is_fp
        assert profile.ctype == ctype
        assert profile.rsc_hint == rsc
        assert profile.freq.value == freq

    def test_mem_profiles_access_memory(self):
        for name, (__, ctype, __, __) in PAPER_TABLE2.items():
            profile = get_profile(name)
            if ctype == "MEM":
                assert profile.phase_a.mem_frac > 0, name
            else:
                assert profile.phase_a.mem_frac == 0, name

    def test_high_and_low_freq_have_distinct_phase_b(self):
        for profile in PROFILES.values():
            if profile.freq is not PhaseVariation.NONE:
                assert profile.phase_b != profile.phase_a, profile.name

    def test_rsc_ordering_reflected_in_appetite(self):
        """Wider-Rsc ILP benchmarks have wider dependence structure."""
        assert (get_profile("gap").phase_a.dep_distance
                > get_profile("perlbmk").phase_a.dep_distance)
        assert (get_profile("wupwise").phase_a.dep_distance
                > get_profile("fma3d").phase_a.dep_distance)

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            get_profile("doom3")

    def test_profile_names_order(self):
        assert len(profile_names()) == 22


class TestProfileValidation:
    def test_bad_ctype_rejected(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(name="x", ctype="BAD", is_fp=False, rsc_hint=1,
                             freq=PhaseVariation.NONE, phase_a=PhaseParams())

    def test_phase_b_defaults_to_phase_a(self):
        profile = BenchmarkProfile(
            name="x", ctype="ILP", is_fp=False, rsc_hint=1,
            freq=PhaseVariation.NONE, phase_a=PhaseParams(dep_distance=3.0))
        assert profile.phase_b == profile.phase_a

    def test_with_overrides(self):
        profile = get_profile("gzip").with_overrides(branch_sites=8)
        assert profile.branch_sites == 8
        assert get_profile("gzip").branch_sites != 8

    def test_has_phases(self):
        assert get_profile("gzip").has_phases
        assert not get_profile("bzip2").has_phases
