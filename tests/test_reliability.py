"""Tests for the reliability subsystem: invariant checking, fault
injection, partition sanitizing, and the guarded/resumable runner."""

import json
import os

import pytest

from repro.core.controller import EpochController, EpochResult
from repro.core.hill_climbing import make_hill_policy
from repro.experiments.runner import ExperimentScale, run_policy
from repro.pipeline.resources import sanitize_shares
from repro.policies.icount import ICountPolicy
from repro.policies.static_partition import StaticPartitionPolicy
from repro.reliability.faults import (
    FaultInjector,
    MemoryLatencySpike,
    MisbehavingPolicy,
    PartitionScramble,
    RNGDesync,
    TransientFetchStall,
)
from repro.reliability.guard import (
    BudgetExceeded,
    LivelockDetected,
    RunInterrupted,
    RunStore,
    Watchdog,
    compare_policies_resilient,
    run_policy_resilient,
)
from repro.reliability.invariants import InvariantChecker, InvariantViolation
from repro.reliability.verify import run_verification
from repro.workloads.mixes import get_workload


@pytest.fixture
def scale():
    return ExperimentScale.smoke()


@pytest.fixture
def workload():
    return get_workload("art-mcf")


def hill_factory(scale):
    return lambda: make_hill_policy(
        "wipc", software_cost=scale.hill_software_cost,
        sample_period=scale.hill_sample_period)


# ----------------------------------------------------------------------
# Invariant checking
# ----------------------------------------------------------------------


class TestInvariantChecker:
    def test_clean_runs_pass(self, scale, workload):
        for factory in (ICountPolicy, StaticPartitionPolicy,
                        hill_factory(scale)):
            checker = InvariantChecker(fidelity_period=3)
            run_policy(workload, factory(), scale, checker=checker)
            assert checker.checks_run == scale.epochs
            assert checker.fidelity_checks_run == 2

    def test_occupancy_corruption_detected(self, scale, workload):
        from repro.experiments.runner import make_processor

        proc = make_processor(workload, ICountPolicy(), scale)
        checker = InvariantChecker()
        controller = EpochController(proc, epoch_size=scale.epoch_size,
                                     checker=checker)
        controller.run_epoch()
        proc.threads[0].iq_int += 1  # break conservation
        with pytest.raises(InvariantViolation) as excinfo:
            controller.run_epoch()
        assert excinfo.value.invariant == "resource-conservation"
        assert excinfo.value.epoch_id == 1
        assert excinfo.value.to_dict()["invariant"] == "resource-conservation"

    def test_partition_corruption_detected(self, scale, workload):
        from repro.experiments.runner import make_processor

        proc = make_processor(workload, StaticPartitionPolicy(), scale)
        checker = InvariantChecker()
        controller = EpochController(proc, epoch_size=scale.epoch_size,
                                     checker=checker)
        proc.partitions.shares[0] += 5  # non-conserving
        with pytest.raises(InvariantViolation) as excinfo:
            controller.run_epoch()
        assert excinfo.value.invariant == "partition-legality"

    def test_monotone_counter_violation_detected(self, scale, workload):
        from repro.experiments.runner import make_processor

        proc = make_processor(workload, ICountPolicy(), scale)
        checker = InvariantChecker()
        controller = EpochController(proc, epoch_size=scale.epoch_size,
                                     checker=checker)
        controller.run_epoch()
        # The checker samples at epoch boundaries, so push the counter
        # further back than one epoch can recover.
        proc.stats.committed[0] -= 10 ** 9
        with pytest.raises(InvariantViolation) as excinfo:
            controller.run_epoch()
        assert excinfo.value.invariant == "monotone-counters"

    def test_structured_context(self):
        violation = InvariantViolation("x", "boom", epoch_id=3, cycle=99,
                                       details={"a": 1})
        assert "epoch 3" in str(violation)
        assert "cycle 99" in str(violation)
        assert violation.to_dict()["details"] == {"a": "1"}


# ----------------------------------------------------------------------
# Partition sanitizing
# ----------------------------------------------------------------------


class TestSanitize:
    def test_sanitize_shares_clamps_and_conserves(self):
        assert sum(sanitize_shares([-5, 100], 32, 8, 2)) == 32
        assert sanitize_shares([-5, 100], 32, 8, 2)[0] >= 8
        assert sanitize_shares([16, 16, 7], 32, 8, 2) == [16, 16]

    def test_sanitize_shares_garbage_falls_back_to_equal(self):
        assert sanitize_shares(None, 32, 8, 2) == [16, 16]
        assert sanitize_shares(["x", object()], 32, 8, 2) == [16, 16]
        assert sanitize_shares([1], 33, 8, 2) == [17, 16]

    def test_sanitize_preserves_preference_order(self):
        result = sanitize_shares([30, 10], 32, 8, 2)
        assert sum(result) == 32
        assert result[0] > result[1]

    def test_registers_repair(self, scale, workload):
        from repro.experiments.runner import make_processor

        proc = make_processor(workload, StaticPartitionPolicy(), scale,
                              warm=False)
        partitions = proc.partitions
        assert partitions.sanitize() is None          # legal: no-op
        assert partitions.repair_count == 0
        partitions.shares = [-3, 999]
        partitions.limit_int_rename = [-3, 999]
        description = partitions.sanitize()
        assert description is not None
        assert partitions.repair_count == 1
        assert partitions.legality_error() is None
        assert sum(partitions.shares) == proc.config.rename_int

    def test_wrong_length_lists_repaired(self, scale, workload):
        from repro.experiments.runner import make_processor

        proc = make_processor(workload, StaticPartitionPolicy(), scale,
                              warm=False)
        proc.partitions.shares = [4, 4, 4]
        proc.partitions.limit_int_rename = [4]
        assert proc.partitions.sanitize() is not None
        assert len(proc.partitions.limit_int_rename) == proc.num_threads
        assert proc.partitions.legality_error() is None


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------


class TestFaults:
    def run_with_faults(self, scale, workload, faults, policy=None,
                        seed=7):
        injector = FaultInjector(faults, seed=seed)
        result = run_policy(
            workload, policy or hill_factory(scale)(), scale,
            injector=injector, sanitize_partitions=True)
        return result, injector

    def test_memory_latency_spike_degrades_and_recovers(self, scale,
                                                        workload):
        fault = MemoryLatencySpike(extra_latency=500, burst_probability=1.0,
                                   burst_epochs=2)
        result, injector = self.run_with_faults(scale, workload, [fault],
                                                policy=ICountPolicy())
        assert injector.summary()["mem-latency-spike"] >= 1
        clean = run_policy(workload, ICountPolicy(), scale)
        assert result.avg_ipc < clean.avg_ipc

    def test_transient_fetch_stall_logged(self, scale, workload):
        fault = TransientFetchStall(stall_cycles=400, probability=1.0)
        result, injector = self.run_with_faults(scale, workload, [fault])
        assert injector.summary()["transient-fetch-stall"] == scale.epochs
        assert result.cycles > 0

    def test_rng_desync_diverges_from_clean_twin(self, scale, workload):
        fault = RNGDesync(probability=1.0)
        result, __ = self.run_with_faults(scale, workload, [fault],
                                          policy=ICountPolicy())
        clean = run_policy(workload, ICountPolicy(), scale)
        assert result.committed != clean.committed

    def test_partition_scramble_is_repaired(self, scale, workload):
        fault = PartitionScramble(probability=1.0)
        injector = FaultInjector([fault], seed=3)
        from repro.experiments.runner import make_processor

        proc = make_processor(workload, hill_factory(scale)(), scale)
        controller = EpochController(
            proc, epoch_size=scale.epoch_size, injector=injector,
            sanitize_partitions=True,
            checker=InvariantChecker())  # checker passes: repairs precede it
        controller.run(scale.epochs)
        assert injector.summary()["partition-scramble"] >= 1
        assert len(controller.repairs) >= 1
        assert proc.partitions.legality_error() is None

    def test_misbehaving_policy_clamped_not_crashed(self, scale, workload):
        policy = MisbehavingPolicy(hill_factory(scale)(), probability=1.0,
                                   seed=11)
        result = run_policy(workload, policy, scale,
                            sanitize_partitions=True,
                            checker=InvariantChecker())
        assert policy.corruptions >= scale.epochs - 1
        assert result.cycles > 0

    def test_misbehaving_policy_detected_without_sanitizing(self, scale,
                                                            workload):
        policy = MisbehavingPolicy(hill_factory(scale)(), probability=1.0,
                                   seed=11)
        with pytest.raises(InvariantViolation) as excinfo:
            run_policy(workload, policy, scale,
                       checker=InvariantChecker())
        assert excinfo.value.invariant == "partition-legality"

    def test_faults_are_checkpoint_safe(self, scale, workload):
        """Fidelity replays must still pass with every fault active:
        all fault effects live inside the checkpointed state."""
        faults = [MemoryLatencySpike(burst_probability=0.5),
                  TransientFetchStall(), RNGDesync(),
                  PartitionScramble()]
        injector = FaultInjector(faults, seed=5)
        run_policy(workload,
                   MisbehavingPolicy(hill_factory(scale)(), seed=6),
                   scale, injector=injector, sanitize_partitions=True,
                   checker=InvariantChecker(fidelity_period=2))


# ----------------------------------------------------------------------
# Watchdog + guard
# ----------------------------------------------------------------------


def _epoch(epoch_id, committed):
    return EpochResult(epoch_id=epoch_id, kind="normal",
                       committed=committed, cycles=100)


class TestWatchdog:
    def test_livelock_detected_after_streak(self):
        watchdog = Watchdog(livelock_epochs=3)
        watchdog.observe(_epoch(0, [0, 0]))
        watchdog.observe(_epoch(1, [0, 0]))
        with pytest.raises(LivelockDetected) as excinfo:
            watchdog.observe(_epoch(2, [0, 0]))
        assert excinfo.value.epochs == 3

    def test_progress_resets_streak(self):
        watchdog = Watchdog(livelock_epochs=2)
        watchdog.observe(_epoch(0, [0, 0]))
        watchdog.observe(_epoch(1, [5, 0]))
        watchdog.observe(_epoch(2, [0, 0]))  # streak back to 1: no raise


class TestResilientRunner:
    def test_matches_plain_run_policy(self, scale, workload):
        factory = hill_factory(scale)
        straight = run_policy(workload, factory(), scale)
        guarded = run_policy_resilient(workload, factory(), scale)
        assert guarded.ipcs == straight.ipcs
        assert guarded.committed == straight.committed
        assert guarded.cycles == straight.cycles
        assert guarded.reliability["retries"] == 0

    def test_interrupt_and_resume_identical(self, tmp_path, scale, workload):
        factory = hill_factory(scale)
        straight = run_policy(workload, factory(), scale)
        run_dir = str(tmp_path / "run")
        with pytest.raises(RunInterrupted):
            run_policy_resilient(workload, factory(), scale,
                                 run_dir=run_dir, stop_after=2)
        resumed = run_policy_resilient(workload, factory(), scale,
                                       run_dir=run_dir, resume=True)
        assert resumed.reliability["resumed_from"] == 2
        assert resumed.ipcs == straight.ipcs
        assert resumed.committed == straight.committed
        assert resumed.cycles == straight.cycles
        # A second resume short-circuits to the stored result.
        again = run_policy_resilient(workload, factory(), scale,
                                     run_dir=run_dir, resume=True)
        assert again.ipcs == straight.ipcs

    def test_budget_exceeded_is_structured_and_resumable(self, tmp_path,
                                                         scale, workload):
        run_dir = str(tmp_path / "run")
        with pytest.raises(BudgetExceeded):
            run_policy_resilient(workload, hill_factory(scale)(), scale,
                                 run_dir=run_dir, max_cycles=1)
        resumed = run_policy_resilient(workload, hill_factory(scale)(),
                                       scale, run_dir=run_dir, resume=True)
        straight = run_policy(workload, hill_factory(scale)(), scale)
        assert resumed.ipcs == straight.ipcs

    def test_retry_after_injected_violation(self, scale, workload,
                                            monkeypatch):
        """A one-shot failure is retried from the last good epoch and the
        run completes."""
        calls = {"n": 0}
        original = EpochController.run_epoch

        def flaky(self):
            calls["n"] += 1
            if calls["n"] == 3:
                raise InvariantViolation("test-fault", "injected once")
            return original(self)

        monkeypatch.setattr(EpochController, "run_epoch", flaky)
        result = run_policy_resilient(workload, ICountPolicy(), scale,
                                      max_retries=2)
        assert result.reliability["retries"] == 1
        assert "test-fault" in result.reliability["failures"][0]

    def test_retries_exhausted_reraises(self, scale, workload, monkeypatch):
        def always_fails(self):
            raise InvariantViolation("test-fault", "permanent")

        monkeypatch.setattr(EpochController, "run_epoch", always_fails)
        with pytest.raises(InvariantViolation):
            run_policy_resilient(workload, ICountPolicy(), scale,
                                 max_retries=2)

    def test_compare_resilient_resume_dir_layout(self, tmp_path, scale,
                                                 workload):
        factories = {"ICOUNT": ICountPolicy,
                     "STATIC": StaticPartitionPolicy}
        results = compare_policies_resilient(
            workload, factories, scale, str(tmp_path))
        assert set(results) == {"ICOUNT", "STATIC"}
        subdirs = sorted(os.listdir(str(tmp_path)))
        assert len(subdirs) == 2
        for subdir in subdirs:
            assert (tmp_path / subdir / "result.json").exists()


class TestRunStore:
    def test_checkpoint_pruning_keeps_two(self, tmp_path):
        store = RunStore(str(tmp_path))
        for epoch in range(5):
            store.save_checkpoint(epoch, b"\x80\x04N.")  # pickled None
        names = sorted(name for name in os.listdir(str(tmp_path))
                       if name.startswith("ckpt_"))
        assert names == ["ckpt_000003.pkl", "ckpt_000004.pkl"]

    def test_latest_checkpoint_skips_corrupt(self, tmp_path):
        store = RunStore(str(tmp_path))
        store.save_checkpoint(1, b"\x80\x04N.")
        with open(str(tmp_path / "ckpt_000002.pkl"), "wb") as handle:
            handle.write(b"torn-write-garbage")
        epochs_done, blob = store.latest_checkpoint()
        assert epochs_done == 1

    def test_manifest_tolerates_torn_tail(self, tmp_path):
        store = RunStore(str(tmp_path))
        store.append_manifest({"epoch_id": 0})
        with open(store.manifest_path, "a") as handle:
            handle.write('{"epoch_id": 1, "trunc')
        assert store.manifest_records() == [{"epoch_id": 0}]

    def test_result_roundtrip_exact(self, tmp_path, scale, workload):
        result = run_policy(workload, ICountPolicy(), scale)
        store = RunStore(str(tmp_path))
        store.save_result(result)
        loaded = store.load_result()
        assert loaded.ipcs == result.ipcs
        assert loaded.committed == result.committed
        assert loaded.cycles == result.cycles
        assert loaded.single_ipcs == result.single_ipcs
        assert loaded.avg_ipc == result.avg_ipc
        assert loaded.weighted_ipc == result.weighted_ipc
        assert len(loaded.epoch_history) == len(result.epoch_history)
        assert loaded.epoch_history[0].committed == \
            result.epoch_history[0].committed


# ----------------------------------------------------------------------
# The verify suite
# ----------------------------------------------------------------------


class TestVerifySuite:
    def test_smoke_verification_passes(self, scale):
        lines = []
        code = run_verification(scale, out=lines.append,
                                fidelity_period=3)
        assert code == 0, "\n".join(lines)
        text = "\n".join(lines)
        assert "verify: PASS" in text
        assert text.count("PASS  ") == 3
        assert "TOLERATED" in text or "REPORTED" in text
        assert "FAIL" not in text
