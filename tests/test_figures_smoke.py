"""Smoke tests: every per-figure/table driver runs at smoke scale and
returns structurally valid results.  Numeric shape assertions live in the
benchmark harness; here we verify the drivers compose.
"""

import pytest

from repro.experiments import ablations, figures, tables
from repro.experiments.runner import ExperimentScale
from repro.workloads.mixes import get_workload


@pytest.fixture(scope="module")
def scale():
    return ExperimentScale.smoke().with_overrides(epochs=4)


@pytest.fixture(scope="module")
def one_workload():
    return [get_workload("art-mcf")]


class TestFigureDrivers:
    def test_fig2_surface(self, scale):
        surface = figures.fig2_surface(scale, interval=512)
        assert surface.ipc
        assert surface.peak_ipc > 0

    def test_fig4_offline_limit(self, scale, one_workload):
        result = figures.fig4_offline_limit(scale, workloads=one_workload)
        assert len(result["rows"]) == 1
        __, __, values = result["rows"][0]
        assert set(values) == {"ICOUNT", "FLUSH", "DCRA", "OFF-LINE"}
        assert set(result["gains"]) == {"ICOUNT", "FLUSH", "DCRA"}

    def test_fig5_sync_timeline(self, scale):
        result = figures.fig5_sync_timeline(scale)
        assert set(result["offline_win_rates"]) == {"ICOUNT", "FLUSH", "DCRA"}
        assert len(result["timeline"].series["OFF-LINE"]) == scale.epochs

    def test_fig6_hill_width_demo(self, scale):
        result = figures.fig6_hill_width_demo(scale)
        assert result["curve"]
        assert set(result["widths"]) == {0.99, 0.98, 0.97, 0.95, 0.90}

    def test_fig7_hill_widths(self, scale, one_workload):
        result = figures.fig7_hill_widths(scale, workloads=one_workload)
        assert len(result["rows"]) == 1
        __, __, widths = result["rows"][0]
        assert all(width >= 0 for width in widths.values())

    def test_fig9_hill_vs_baselines(self, scale, one_workload):
        result = figures.fig9_hill_vs_baselines(scale, workloads=one_workload)
        __, __, values = result["rows"][0]
        assert set(values) == {"ICOUNT", "FLUSH", "DCRA", "HILL"}
        assert "MEM2" in result["group_gains"]

    def test_fig10_metric_goals(self, scale, one_workload):
        result = figures.fig10_metric_goals(scale, workloads=one_workload)
        assert set(result["summary"]) == {
            "weighted_ipc", "avg_ipc", "harmonic_weighted_ipc"}
        for per_policy in result["summary"].values():
            assert "HILL-WIPC" in per_policy

    def test_fig11_vs_ideal(self, scale):
        result = figures.fig11_vs_ideal(
            scale,
            workloads2=[get_workload("art-mcf")],
            workloads4=[get_workload("art-mcf-swim-twolf")],
        )
        assert len(result["rows2"]) == 1
        assert len(result["rows4"]) == 1
        assert result["hill_fraction_of_offline"] > 0
        assert result["hill_fraction_of_rand_hill"] > 0

    def test_fig12_behaviors(self, scale, one_workload):
        result = figures.fig12_behaviors(scale, workloads=one_workload)
        row = result["rows"][0]
        assert row["behavior"] in {"TS", "SS", "TL", "SL", "JL"}
        assert len(row["offline_best_shares"]) == scale.epochs

    def test_sec5_phase_hill(self, scale, one_workload):
        result = figures.sec5_phase_hill(scale, workloads=one_workload)
        __, __, values = result["rows"][0]
        assert set(values) == {"HILL", "PHASE-HILL"}


class TestTableDrivers:
    def test_table1(self, scale):
        rows = tables.table1_configuration(scale.config)
        labels = [label for label, __ in rows]
        assert "Bandwidth" in labels
        assert "IL1 config" in labels

    def test_table2(self, scale):
        rows = tables.table2_characteristics(
            scale, benchmarks=["gzip", "art"], epochs=3)
        assert len(rows) == 2
        for row in rows:
            assert row["measured_freq"] in {"No", "Low", "High"}
            assert row["measured_rsc"] >= scale.config.min_partition

    def test_table3(self):
        rows = tables.table3_workloads()
        assert len(rows) == 42
        assert sum(1 for row in rows if row["group"] == "MIX4") == 7


class TestAblations:
    def test_epoch_size_sweep(self, scale, one_workload):
        rows = ablations.epoch_size_sweep(one_workload[0], scale,
                                          epoch_sizes=(512, 1024))
        assert [size for size, __ in rows] == [512, 1024]

    def test_delta_sweep(self, scale, one_workload):
        rows = ablations.delta_sweep(one_workload[0], scale, deltas=(2, 4))
        assert len(rows) == 2

    def test_sample_period_sweep(self, scale, one_workload):
        rows = ablations.sample_period_sweep(one_workload[0], scale,
                                             periods=(4, None))
        assert len(rows) == 2

    def test_software_cost_sweep(self, scale, one_workload):
        rows = ablations.software_cost_sweep(one_workload[0], scale,
                                             costs=(0, 100))
        assert rows[0][1] > 0

    def test_offline_stride_sweep(self, scale, one_workload):
        rows = ablations.offline_stride_sweep(one_workload[0], scale,
                                              strides=(16, 8))
        assert len(rows) == 2
