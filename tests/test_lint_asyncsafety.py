"""Async-safety pass tests: exact rule codes and line numbers against
the seeded violations in ``tests/fixtures/lintpkg/asyncmod.py``."""

import os

from repro.analysis.lint.asyncsafety import scan_file, scan_source

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
PKG_ROOT = os.path.join(FIXTURES, "lintpkg")

#: (rule, line) for every seeded violation in asyncmod.py, in file order.
EXPECTED = [
    ("AS301", 23),   # time.sleep() directly inside Daemon.tick
    ("AS301", 29),   # open() in _journal, reachable from Daemon.submit
    ("AS302", 33),   # bare asyncio.create_task(...) — handle dropped
    ("AS302", 36),   # handle stored in self._bg, never read
    ("AS303", 46),   # await between two guarded mutations, no lock
    ("AS304", 57),   # allow-async waiver with no justification
]


def test_async_fixture_exact_findings():
    findings = scan_file(PKG_ROOT, "asyncmod.py")
    got = [(f.rule, f.line) for f in findings]
    assert got == EXPECTED
    assert all(f.path == "asyncmod.py" for f in findings)


def test_witness_path_is_named_in_the_message():
    findings = scan_file(PKG_ROOT, "asyncmod.py")
    indirect = [f for f in findings if f.rule == "AS301" and f.line == 29]
    assert len(indirect) == 1
    assert "Daemon.submit -> Daemon._journal" in indirect[0].message


def test_blocking_call_in_sync_only_code_is_not_flagged():
    # helper_blocks() sleeps but no coroutine can reach it (line 11)
    findings = scan_file(PKG_ROOT, "asyncmod.py")
    assert not any(f.line == 11 for f in findings)


def test_stored_and_cancelled_task_is_clean():
    # Daemon.start stores self._tick_task; Daemon.stop cancels it
    findings = scan_file(PKG_ROOT, "asyncmod.py")
    assert not any(f.line == 39 for f in findings)


def test_lock_held_section_is_clean():
    # Daemon.locked awaits between mutations under `async with self._lock`
    findings = scan_file(PKG_ROOT, "asyncmod.py")
    assert not any(f.line == 52 for f in findings)


def test_justified_waiver_suppresses_and_is_not_as304():
    findings = scan_file(PKG_ROOT, "asyncmod.py")
    assert not any(f.line == 56 for f in findings)


def test_from_import_alias_of_sleep_is_flagged():
    src = ("from time import sleep\n"
           "async def run():\n"
           "    sleep(1)\n")
    assert [(f.rule, f.line) for f in scan_source("mod.py", src)] \
        == [("AS301", 3)]


def test_subprocess_wait_is_flagged():
    src = ("import subprocess\n"
           "async def run():\n"
           "    subprocess.check_call(['true'])\n")
    assert [(f.rule, f.line) for f in scan_source("mod.py", src)] \
        == [("AS301", 3)]


def test_loop_wraparound_counts_as_torn_section():
    # mutate at the bottom of the loop body, await at the top: the
    # second iteration awaits with the previous mutation pending
    src = ("import asyncio\n"
           "# repro: guarded-state[jobs]\n"
           "async def run(self):\n"
           "    while True:\n"
           "        await asyncio.sleep(1)\n"
           "        self.jobs.clear()\n")
    assert [(f.rule, f.line) for f in scan_source("mod.py", src)] \
        == [("AS303", 5)]


def test_no_guarded_state_marker_disables_as303():
    src = ("import asyncio\n"
           "async def run(self):\n"
           "    self.jobs['a'] = 1\n"
           "    await asyncio.sleep(0)\n"
           "    self.jobs['b'] = 2\n")
    assert scan_source("mod.py", src) == []


def test_mutations_on_one_side_of_await_are_clean():
    src = ("import asyncio\n"
           "# repro: guarded-state[jobs]\n"
           "async def run(self):\n"
           "    self.jobs['a'] = 1\n"
           "    self.jobs['b'] = 2\n"
           "    await asyncio.sleep(0)\n")
    assert scan_source("mod.py", src) == []


def test_as304_cannot_be_waived():
    src = "x = 1  # repro: allow-async[AS301, AS304]\n"
    findings = scan_source("mod.py", src)
    assert [f.rule for f in findings] == ["AS304"]
