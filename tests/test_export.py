"""Tests for result export helpers."""

import csv
import io
import json

from repro.core.controller import EpochResult
from repro.experiments.export import (
    figure_rows_to_records,
    rows_to_csv,
    to_json,
)
from repro.workloads.profile import PhaseVariation


class TestToJson:
    def test_plain_dict(self):
        text = to_json({"a": 1, "b": [1.5, "x"]})
        assert json.loads(text) == {"a": 1, "b": [1.5, "x"]}

    def test_dataclass(self):
        result = EpochResult(epoch_id=1, kind="normal", committed=[5],
                             cycles=10)
        data = json.loads(to_json(result))
        assert data["epoch_id"] == 1
        assert data["committed"] == [5]

    def test_enum(self):
        assert json.loads(to_json({"freq": PhaseVariation.HIGH})) == \
            {"freq": "High"}

    def test_tuple_keys_coerced(self):
        text = to_json({(1, 2): 3})
        assert "(1, 2)" in text

    def test_file_output(self, tmp_path):
        path = tmp_path / "out.json"
        to_json({"x": 1}, path=str(path))
        assert json.loads(path.read_text()) == {"x": 1}


class TestCsv:
    def test_roundtrip(self):
        text = rows_to_csv(["a", "b"], [[1, 2], [3, 4]])
        parsed = list(csv.reader(io.StringIO(text)))
        assert parsed == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_file_output(self, tmp_path):
        path = tmp_path / "out.csv"
        rows_to_csv(["x"], [[1]], path=str(path))
        assert path.read_text().startswith("x")


class TestFigureRecords:
    def test_flatten(self):
        rows = [("art-mcf", "MEM2", {"HILL": 0.5, "DCRA": 0.6})]
        records = figure_rows_to_records(rows)
        assert len(records) == 2
        assert {record["policy"] for record in records} == {"HILL", "DCRA"}
        assert all(record["workload"] == "art-mcf" for record in records)

    def test_extra_row_fields_ignored(self):
        rows = [("w", "G", {"A": 1.0}, "label", "behavior")]
        records = figure_rows_to_records(rows)
        assert records[0]["group"] == "G"
