"""Self-check: the five lint passes over the real ``repro`` tree, the
fail-closed directions from the sweep cache's point of view, and the
graph fingerprint mode."""

import re

import os
import shutil
import subprocess
import sys

import pytest

from repro.analysis.lint import engine
from repro.analysis.lint.importgraph import build_graph
from repro.experiments import parallel


@pytest.fixture
def fresh_memo():
    parallel.clear_fingerprint_memo()
    yield
    parallel.clear_fingerprint_memo()


# ----------------------------------------------------------------------
# The real tree
# ----------------------------------------------------------------------


def test_real_tree_is_clean():
    assert engine.run_repo_lint() == []


def test_determinism_scope_is_the_cached_code():
    graph = build_graph(engine.package_root(), "repro")
    scope = set(engine.determinism_scope(graph, engine.repo_spec()))
    # everything a cache key hashes must be in scope ...
    assert {"pipeline/processor.py", "workloads/generator.py",
            "core/hill_climbing.py", "experiments/parallel.py",
            "reliability/guard.py"} <= scope
    # ... plus the service tier's result-path files ...
    assert set(engine.SERVICE_RESULT_PATH) <= scope
    # ... and code that never feeds a cached result is not policed
    assert "cli.py" not in scope
    assert "analysis/hill_width.py" not in scope
    assert "reliability/faults.py" not in scope
    # documented exclusions: latency IS the loadtest's output, and the
    # service __init__ is docstring-only
    assert "service/loadtest.py" not in scope
    assert "service/__init__.py" not in scope


def test_deleting_a_policy_source_fails_the_audit(monkeypatch):
    doctored = dict(parallel._POLICY_SOURCES)
    doctored["DCRA"] = ()
    monkeypatch.setattr(parallel, "_POLICY_SOURCES", doctored)
    findings = engine.run_repo_lint(select=("FP001",))
    assert any(f.path == "policies/dcra.py" for f in findings)


def test_deleting_a_core_source_fails_the_audit(monkeypatch):
    trimmed = tuple(rel for rel in parallel._CORE_SOURCES
                    if rel != "reliability/invariants.py")
    monkeypatch.setattr(parallel, "_CORE_SOURCES", trimmed)
    findings = engine.run_repo_lint(select=("FP001",))
    assert any(f.path == "reliability/invariants.py" for f in findings)


def test_new_unlisted_import_fails_the_audit(tmp_path):
    # Copy the package, grow policies/dcra.py a dependency the
    # fingerprint lists don't know about, and re-audit the copy.
    copy_root = str(tmp_path / "repro")
    shutil.copytree(engine.package_root(), copy_root)
    dcra = os.path.join(copy_root, "policies", "dcra.py")
    with open(dcra, "a", encoding="utf-8") as handle:
        handle.write("\nfrom repro.core.offline import share_grid\n")
    graph = build_graph(copy_root, "repro")
    findings = engine.PASSES["fingerprints"](copy_root, graph)
    assert any(f.rule == "FP001" and f.path == "core/offline.py"
               and "dcra.py" in f.message for f in findings)


# ----------------------------------------------------------------------
# Fail-closed directions for the new passes (copy the tree, break the
# contract one way, require a finding)
# ----------------------------------------------------------------------


def _doctored_tree(tmp_path, rel, transform):
    copy_root = str(tmp_path / "repro")
    shutil.copytree(engine.package_root(), copy_root)
    target = os.path.join(copy_root, rel)
    with open(target, encoding="utf-8") as handle:
        source = handle.read()
    doctored = transform(source)
    assert doctored != source, "transform matched nothing"
    with open(target, "w", encoding="utf-8") as handle:
        handle.write(doctored)
    return copy_root


def test_real_tree_declares_every_mirror():
    with open(os.path.join(engine.package_root(), engine.MIRROR_MODULE),
              encoding="utf-8") as handle:
        source = handle.read()
    declared = re.findall(r"#\s*repro:\s*mirror\[\s*(\w+)", source)
    # the 13 SoA arrays of BatchCore, one declaration each
    assert len(declared) == 13
    assert len(set(declared)) == 13


def test_deleting_any_mirror_declaration_fails_closed(tmp_path):
    source_path = os.path.join(engine.package_root(), engine.MIRROR_MODULE)
    with open(source_path, encoding="utf-8") as handle:
        decl_lines = [line for line in handle.read().splitlines()
                      if re.search(r"#\s*repro:\s*mirror\[", line)]
    # drop each declaration in turn: every deletion must be caught
    for decl in decl_lines:
        copy_root = str(tmp_path / ("repro-" + str(decl_lines.index(decl))))
        shutil.copytree(engine.package_root(), copy_root)
        target = os.path.join(copy_root, engine.MIRROR_MODULE)
        with open(target, encoding="utf-8") as handle:
            doctored = handle.read().replace(decl + "\n", "")
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(doctored)
        graph = build_graph(copy_root, "repro")
        findings = engine.PASSES["mirrors"](copy_root, graph)
        assert any(f.rule == "MC401" for f in findings), decl


def test_removing_an_async_waiver_fails_closed(tmp_path):
    copy_root = _doctored_tree(
        tmp_path, "service/server.py",
        lambda src: src.replace(
            "  # repro: allow-async[AS301] bounded local journal append",
            "", 1))
    graph = build_graph(copy_root, "repro")
    findings = engine.PASSES["async"](copy_root, graph)
    assert any(f.rule == "AS301" and f.path == "service/server.py"
               and "_journal" in f.message for f in findings)


def test_unwaived_sleep_in_a_coroutine_fails_closed(tmp_path):
    copy_root = _doctored_tree(
        tmp_path, "service/server.py",
        lambda src: src.replace(
            "    async def _tick_loop(self):\n",
            "    async def _tick_loop(self):\n        time.sleep(1)\n", 1))
    graph = build_graph(copy_root, "repro")
    findings = engine.PASSES["async"](copy_root, graph)
    assert any(f.rule == "AS301" and "_tick_loop" in f.message
               for f in findings)


def test_stripping_a_waiver_justification_fails_closed(tmp_path):
    copy_root = _doctored_tree(
        tmp_path, "service/server.py",
        lambda src: src.replace(
            "# repro: allow-async[AS301] bounded local journal append",
            "# repro: allow-async[AS301]", 1))
    graph = build_graph(copy_root, "repro")
    findings = engine.PASSES["async"](copy_root, graph)
    assert any(f.rule == "AS304" for f in findings)


# ----------------------------------------------------------------------
# Fingerprint modes
# ----------------------------------------------------------------------


def test_graph_mode_differs_and_is_memoized_per_mode(monkeypatch,
                                                     fresh_memo):
    monkeypatch.delenv("REPRO_FINGERPRINT_MODE", raising=False)
    static = parallel.code_fingerprint("HILL")
    monkeypatch.setenv("REPRO_FINGERPRINT_MODE", "graph")
    graph_fp = parallel.code_fingerprint("HILL")
    assert static != graph_fp
    assert parallel.code_fingerprint("HILL") == graph_fp
    monkeypatch.setenv("REPRO_FINGERPRINT_MODE", "static")
    assert parallel.code_fingerprint("HILL") == static


def test_graph_mode_closure_contains_the_true_positives(fresh_memo):
    root = engine.package_root()
    files = parallel._fingerprint_files(root, "HILL", "graph")
    # core/partition.py was the missing-coverage bug the auditor caught;
    # graph mode derives it instead of trusting the hand list.
    assert "core/partition.py" in files
    assert "reliability/guard.py" in files
    assert "policies/dcra.py" not in files  # family isolation holds


def test_static_and_graph_modes_key_the_memo_separately(monkeypatch,
                                                        fresh_memo):
    monkeypatch.setenv("REPRO_FINGERPRINT_MODE", "graph")
    parallel.code_fingerprint("DCRA")
    assert ("graph", "DCRA") in parallel._fingerprint_memo
    assert ("static", "DCRA") not in parallel._fingerprint_memo


def test_unknown_mode_is_rejected(monkeypatch, fresh_memo):
    monkeypatch.setenv("REPRO_FINGERPRINT_MODE", "fancy")
    with pytest.raises(ValueError):
        parallel.code_fingerprint("HILL")


# ----------------------------------------------------------------------
# Typing gate (mirrors the CI lint job; skipped when mypy is absent)
# ----------------------------------------------------------------------


def test_lint_package_is_strictly_typed():
    probe = subprocess.run([sys.executable, "-m", "mypy", "--version"],
                           capture_output=True)
    if probe.returncode != 0:
        pytest.skip("mypy is not installed in this environment")
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--strict",
         "--follow-imports=silent", "src/repro/analysis/lint/"],
        capture_output=True, text=True,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    assert result.returncode == 0, result.stdout + result.stderr
