"""Self-check: the three lint passes over the real ``repro`` tree, the
fail-closed directions from the sweep cache's point of view, and the
graph fingerprint mode."""

import os
import shutil
import subprocess
import sys

import pytest

from repro.analysis.lint import engine
from repro.analysis.lint.importgraph import build_graph
from repro.experiments import parallel


@pytest.fixture
def fresh_memo():
    parallel.clear_fingerprint_memo()
    yield
    parallel.clear_fingerprint_memo()


# ----------------------------------------------------------------------
# The real tree
# ----------------------------------------------------------------------


def test_real_tree_is_clean():
    assert engine.run_repo_lint() == []


def test_determinism_scope_is_the_cached_code():
    graph = build_graph(engine.package_root(), "repro")
    scope = set(engine.determinism_scope(graph, engine.repo_spec()))
    # everything a cache key hashes must be in scope ...
    assert {"pipeline/processor.py", "workloads/generator.py",
            "core/hill_climbing.py", "experiments/parallel.py",
            "reliability/guard.py"} <= scope
    # ... and code that never feeds a cached result is not policed
    assert "cli.py" not in scope
    assert "analysis/hill_width.py" not in scope
    assert "reliability/faults.py" not in scope


def test_deleting_a_policy_source_fails_the_audit(monkeypatch):
    doctored = dict(parallel._POLICY_SOURCES)
    doctored["DCRA"] = ()
    monkeypatch.setattr(parallel, "_POLICY_SOURCES", doctored)
    findings = engine.run_repo_lint(select=("FP001",))
    assert any(f.path == "policies/dcra.py" for f in findings)


def test_deleting_a_core_source_fails_the_audit(monkeypatch):
    trimmed = tuple(rel for rel in parallel._CORE_SOURCES
                    if rel != "reliability/invariants.py")
    monkeypatch.setattr(parallel, "_CORE_SOURCES", trimmed)
    findings = engine.run_repo_lint(select=("FP001",))
    assert any(f.path == "reliability/invariants.py" for f in findings)


def test_new_unlisted_import_fails_the_audit(tmp_path):
    # Copy the package, grow policies/dcra.py a dependency the
    # fingerprint lists don't know about, and re-audit the copy.
    copy_root = str(tmp_path / "repro")
    shutil.copytree(engine.package_root(), copy_root)
    dcra = os.path.join(copy_root, "policies", "dcra.py")
    with open(dcra, "a", encoding="utf-8") as handle:
        handle.write("\nfrom repro.core.offline import share_grid\n")
    graph = build_graph(copy_root, "repro")
    findings = engine.PASSES["fingerprints"](copy_root, graph)
    assert any(f.rule == "FP001" and f.path == "core/offline.py"
               and "dcra.py" in f.message for f in findings)


# ----------------------------------------------------------------------
# Fingerprint modes
# ----------------------------------------------------------------------


def test_graph_mode_differs_and_is_memoized_per_mode(monkeypatch,
                                                     fresh_memo):
    monkeypatch.delenv("REPRO_FINGERPRINT_MODE", raising=False)
    static = parallel.code_fingerprint("HILL")
    monkeypatch.setenv("REPRO_FINGERPRINT_MODE", "graph")
    graph_fp = parallel.code_fingerprint("HILL")
    assert static != graph_fp
    assert parallel.code_fingerprint("HILL") == graph_fp
    monkeypatch.setenv("REPRO_FINGERPRINT_MODE", "static")
    assert parallel.code_fingerprint("HILL") == static


def test_graph_mode_closure_contains_the_true_positives(fresh_memo):
    root = engine.package_root()
    files = parallel._fingerprint_files(root, "HILL", "graph")
    # core/partition.py was the missing-coverage bug the auditor caught;
    # graph mode derives it instead of trusting the hand list.
    assert "core/partition.py" in files
    assert "reliability/guard.py" in files
    assert "policies/dcra.py" not in files  # family isolation holds


def test_static_and_graph_modes_key_the_memo_separately(monkeypatch,
                                                        fresh_memo):
    monkeypatch.setenv("REPRO_FINGERPRINT_MODE", "graph")
    parallel.code_fingerprint("DCRA")
    assert ("graph", "DCRA") in parallel._fingerprint_memo
    assert ("static", "DCRA") not in parallel._fingerprint_memo


def test_unknown_mode_is_rejected(monkeypatch, fresh_memo):
    monkeypatch.setenv("REPRO_FINGERPRINT_MODE", "fancy")
    with pytest.raises(ValueError):
        parallel.code_fingerprint("HILL")


# ----------------------------------------------------------------------
# Typing gate (mirrors the CI lint job; skipped when mypy is absent)
# ----------------------------------------------------------------------


def test_lint_package_is_strictly_typed():
    probe = subprocess.run([sys.executable, "-m", "mypy", "--version"],
                           capture_output=True)
    if probe.returncode != 0:
        pytest.skip("mypy is not installed in this environment")
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--strict",
         "--follow-imports=silent", "src/repro/analysis/lint/"],
        capture_output=True, text=True,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    assert result.returncode == 0, result.stdout + result.stderr
