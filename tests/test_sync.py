"""Tests for the synchronized time-varying comparison (Figures 5/12)."""

import pytest

from repro.core.metrics import AvgIPC
from repro.experiments.runner import ExperimentScale
from repro.experiments.sync import SyncTimeline, synchronized_timeline
from repro.policies.icount import ICountPolicy
from repro.workloads.mixes import get_workload


@pytest.fixture(scope="module")
def timeline():
    scale = ExperimentScale.smoke()
    return synchronized_timeline(
        get_workload("art-mcf"),
        {"ICOUNT": ICountPolicy},
        scale,
        metric=AvgIPC(),
        epochs=4,
    )


class TestSynchronizedTimeline:
    def test_series_lengths(self, timeline):
        assert set(timeline.series) == {"ICOUNT", "OFF-LINE"}
        assert len(timeline.series["ICOUNT"]) == 4
        assert len(timeline.series["OFF-LINE"]) == 4

    def test_offline_epochs_recorded(self, timeline):
        assert len(timeline.offline_epochs) == 4
        for epoch in timeline.offline_epochs:
            assert epoch.curve

    def test_win_rate_bounds(self, timeline):
        rate = timeline.epoch_win_rate("ICOUNT")
        assert 0.0 <= rate <= 1.0

    def test_offline_competitive(self, timeline):
        """Sanity bound only: at smoke scale the OFF-LINE grid is 4 points
        on a 32-register machine, so unpartitioned ICOUNT can win epochs.
        The paper's 100%-win claim is asserted at bench scale in
        ``benchmarks/bench_fig5_sync_timeline.py``."""
        offline = timeline.series["OFF-LINE"]
        icount = timeline.series["ICOUNT"]
        assert sum(offline) >= 0.5 * sum(icount)

    def test_workload_name(self, timeline):
        assert timeline.workload == "art-mcf"

    def test_win_rate_against_self_is_zero(self):
        timeline = SyncTimeline("x", {"A": [1.0], "OFF-LINE": [1.0]}, [])
        assert timeline.epoch_win_rate("OFF-LINE") == 0.0


class TestSynchronizationFidelity:
    def test_sync_does_not_distort_baseline_performance(self):
        """The paper verifies that synchronization does not noticeably
        alter end-to-end performance (Section 3.3).  Here: ICOUNT's mean
        per-epoch IPC when re-run from OFF-LINE's checkpoints stays close
        to its free-running value over the same region."""
        from repro.experiments.runner import ExperimentScale, run_policy

        scale = ExperimentScale.smoke().with_overrides(epochs=5)
        workload = get_workload("art-mcf")
        timeline = synchronized_timeline(
            workload, {"ICOUNT": ICountPolicy}, scale, metric=AvgIPC(),
            epochs=5,
        )
        synced_mean = sum(timeline.series["ICOUNT"]) / 5
        free = run_policy(workload, ICountPolicy(), scale, epochs=5)
        free_mean = free.avg_ipc
        assert synced_mean == pytest.approx(free_mean, rel=0.35)


class TestPolicySynchronizedTimeline:
    @pytest.fixture(scope="class")
    def hill_timeline(self):
        from repro.core.hill_climbing import HillClimbingPolicy
        from repro.experiments.sync import policy_synchronized_timeline

        scale = ExperimentScale.smoke()
        return policy_synchronized_timeline(
            get_workload("art-mcf"),
            lambda: HillClimbingPolicy(sample_period=None, software_cost=0),
            scale, metric=AvgIPC(), epochs=4,
        )

    def test_series_and_curves(self, hill_timeline):
        assert len(hill_timeline.series["HILL"]) == 4
        assert len(hill_timeline.series["OFF-LINE"]) == 4
        assert len(hill_timeline.offline_epochs) == 4
        assert all(epoch.curve for epoch in hill_timeline.offline_epochs)

    def test_policy_shares_recorded(self, hill_timeline):
        assert len(hill_timeline.policy_shares) == 4
        assert all(share is not None for share in hill_timeline.policy_shares)

    def test_offline_is_an_upper_bound_per_epoch(self, hill_timeline):
        """OFF-LINE's best-of-sweep value bounds the policy's value in the
        same epoch (same checkpoint; sweep includes near-policy settings),
        up to grid resolution."""
        wins = sum(
            1 for hill, offline in zip(hill_timeline.series["HILL"],
                                       hill_timeline.series["OFF-LINE"])
            if offline >= hill * 0.95
        )
        assert wins >= 3

    def test_heatmap_renders(self, hill_timeline):
        from repro.experiments.report import render_partition_heatmap

        text = render_partition_heatmap(hill_timeline.offline_epochs,
                                        hill_timeline.policy_shares)
        assert "O" in text
        assert "+" in text

    def test_heatmap_empty(self):
        from repro.experiments.report import render_partition_heatmap

        assert "no epochs" in render_partition_heatmap([])
