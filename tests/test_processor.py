"""Tests for the SMT pipeline simulator."""

import pytest

from repro.pipeline.config import SMTConfig
from repro.pipeline.processor import SMTProcessor
from repro.policies.icount import ICountPolicy
from repro.policies.static_partition import StaticPartitionPolicy
from repro.workloads.spec2000 import get_profile


def make_proc(benchmarks=("gzip", "eon"), policy=None, seed=1, config=None,
              **kwargs):
    profiles = [get_profile(name) for name in benchmarks]
    return SMTProcessor(config or SMTConfig.tiny(), profiles, seed=seed,
                        policy=policy or ICountPolicy(), **kwargs)


class TestBasicExecution:
    def test_commits_instructions(self):
        proc = make_proc()
        proc.run(5000)
        assert all(count > 0 for count in proc.stats.committed)

    def test_cycle_accounting(self):
        proc = make_proc()
        proc.run(1234)
        assert proc.cycle == 1234
        assert proc.stats.cycles == 1234

    def test_run_is_cumulative(self):
        proc = make_proc()
        proc.run(100)
        proc.run(100)
        assert proc.cycle == 200

    def test_invariants_hold_after_run(self):
        proc = make_proc()
        for __ in range(10):
            proc.run(500)
            assert proc.check_invariants()

    def test_determinism(self):
        a = make_proc(seed=5)
        b = make_proc(seed=5)
        a.run(4000)
        b.run(4000)
        assert a.stats.committed == b.stats.committed
        assert a.stats.squashed == b.stats.squashed
        assert a.stats.mispredicts == b.stats.mispredicts

    def test_different_seeds_differ(self):
        a = make_proc(seed=5)
        b = make_proc(seed=6)
        a.run(4000)
        b.run(4000)
        assert a.stats.committed != b.stats.committed

    def test_single_thread_runs(self):
        proc = make_proc(benchmarks=("gzip",))
        proc.run(3000)
        assert proc.stats.committed[0] > 0

    def test_four_threads_run(self):
        proc = make_proc(benchmarks=("gzip", "eon", "art", "mcf"))
        proc.run(6000)
        assert all(count > 0 for count in proc.stats.committed)

    def test_empty_profiles_rejected(self):
        with pytest.raises(ValueError):
            SMTProcessor(SMTConfig.tiny(), [])

    def test_branch_and_memory_activity(self):
        proc = make_proc(benchmarks=("art", "mcf"))
        proc.run(6000)
        assert sum(proc.stats.branches) > 0
        assert sum(proc.stats.loads) > 0
        assert sum(proc.stats.l2_misses) > 0
        assert sum(proc.stats.mispredicts) > 0
        assert sum(proc.stats.squashed) > 0


class TestPartitionEnforcement:
    def test_starved_thread_commits_less(self):
        fair = make_proc(policy=StaticPartitionPolicy())
        fair.run(6000)
        skewed = make_proc(policy=StaticPartitionPolicy([26, 6]))
        skewed.run(6000)
        fair_ratio = fair.stats.committed[1] / max(1, sum(fair.stats.committed))
        skew_ratio = skewed.stats.committed[1] / max(1, sum(skewed.stats.committed))
        assert skew_ratio < fair_ratio

    def test_occupancy_respects_partition(self):
        proc = make_proc(policy=StaticPartitionPolicy([8, 24]),
                         benchmarks=("art", "mcf"))
        limits = proc.partitions
        for __ in range(30):
            proc.run(200)
            for thread in proc.threads:
                # Enforcement is at fetch/dispatch; occupancy never exceeds
                # the programmed limit.
                assert thread.ren_int <= limits.limit_int_rename[thread.tid]
                assert len(thread.rob) <= limits.limit_rob[thread.tid]
                assert thread.iq_int <= limits.limit_int_iq[thread.tid]

    def test_partition_stall_cycles_counted(self):
        proc = make_proc(policy=StaticPartitionPolicy([8, 24]),
                         benchmarks=("art", "mcf"))
        proc.run(6000)
        assert sum(proc.stats.partition_stall_cycles) > 0

    def test_unpartitioned_thread_can_fill_machine(self):
        proc = make_proc(benchmarks=("art",), policy=ICountPolicy())
        peak = 0
        for __ in range(60):
            proc.run(100)
            peak = max(peak, proc.threads[0].ren_int)
        # With no partition, one MEM thread grows past any equal share.
        assert peak > proc.config.rename_int // 2


class TestEnabledThreads:
    def test_disabled_thread_stops_committing(self):
        proc = make_proc()
        proc.run(2000)
        before = list(proc.stats.committed)
        proc.set_enabled({0})
        proc.run(3000)
        after = proc.stats.committed
        assert after[0] > before[0]
        # thread 1 only drains in-flight work, a small bounded amount
        assert after[1] - before[1] < 200

    def test_enable_all_restores(self):
        proc = make_proc()
        proc.set_enabled({0})
        proc.run(1000)
        proc.enable_all()
        before = list(proc.stats.committed)
        proc.run(3000)
        assert proc.stats.committed[1] > before[1]

    def test_unknown_thread_rejected(self):
        with pytest.raises(ValueError):
            make_proc().set_enabled({7})


class TestChargeStall:
    def test_advances_cycle_without_work(self):
        proc = make_proc()
        proc.run(1000)
        committed = list(proc.stats.committed)
        proc.charge_stall(500)
        assert proc.cycle == 1500
        assert proc.stats.cycles == 1500
        assert proc.stats.committed == committed

    def test_zero_stall_noop(self):
        proc = make_proc()
        proc.charge_stall(0)
        assert proc.cycle == 0

    def test_pending_work_shifted_not_lost(self):
        proc = make_proc()
        proc.run(1000)
        proc.charge_stall(200)
        proc.run(2000)
        assert proc.check_invariants()
        assert sum(proc.stats.committed) > 0

    def test_ipc_accounts_stall(self):
        busy = make_proc(seed=2)
        busy.run(2000)
        stalled = make_proc(seed=2)
        stalled.run(1000)
        stalled.charge_stall(1000)
        assert stalled.stats.ipc() < busy.stats.ipc()


class TestSquash:
    def test_squash_after_clears_younger(self):
        proc = make_proc(benchmarks=("gzip", "eon"))
        proc.run(2000)
        thread = proc.threads[0]
        if not thread.rob:
            proc.run(500)
        assert thread.rob, "expected in-flight instructions"
        anchor_seq = thread.rob[0].seq
        proc.squash_after(0, anchor_seq)
        assert len(thread.rob) <= 1
        assert not thread.ifq
        assert proc.check_invariants()

    def test_squashed_instructions_are_refetched(self):
        proc = make_proc()
        proc.run(2000)
        thread = proc.threads[0]
        committed_before = proc.stats.committed[0]
        highest_seq = max((i.seq for i in thread.rob), default=0)
        proc.squash_after(0, 0)
        proc.run(4000)
        # execution proceeds past the squashed region again
        assert proc.stats.committed[0] > committed_before
        assert thread.stream.seq >= highest_seq

    def test_squash_counted(self):
        proc = make_proc(benchmarks=("crafty", "eon"))
        proc.run(4000)
        assert sum(proc.stats.squashed) > 0


class TestWarmCaches:
    def test_warm_start_hits_l1_immediately(self):
        proc = make_proc(benchmarks=("gzip",))
        proc.run(3000)
        assert proc.hierarchy.dl1.stats.miss_rate < 0.3

    def test_cold_start_misses_more(self):
        warm = make_proc(benchmarks=("gzip",), seed=3)
        cold = make_proc(benchmarks=("gzip",), seed=3, warm_caches=False)
        warm.run(3000)
        cold.run(3000)
        assert (cold.hierarchy.dl1.stats.miss_rate
                > warm.hierarchy.dl1.stats.miss_rate)
        assert cold.stats.committed[0] < warm.stats.committed[0]

    def test_warming_resets_cache_stats(self):
        proc = make_proc()
        assert proc.hierarchy.dl1.stats.accesses == 0
        assert proc.hierarchy.ul2.stats.accesses == 0


class TestIntrospection:
    def test_occupancy_shape(self):
        proc = make_proc()
        proc.run(1000)
        occ = proc.occupancy(0)
        assert set(occ) == {"ifq", "iq_int", "iq_fp", "ren_int", "ren_fp",
                            "lsq", "rob"}
        assert all(value >= 0 for value in occ.values())

    def test_icount_property(self):
        proc = make_proc()
        proc.run(500)
        thread = proc.threads[0]
        assert thread.icount == len(thread.ifq) + thread.iq_int + thread.iq_fp
