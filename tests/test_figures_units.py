"""Unit tests for figure-driver helpers (the expensive drivers are smoke-
tested in test_figures_smoke)."""

import pytest

from repro.core.metrics import WeightedIPC
from repro.experiments import figures
from repro.experiments.runner import ExperimentScale
from repro.workloads.mixes import get_workload


class TestHelpers:
    def test_best_mismatched_excludes_matched(self):
        summary = {
            "avg_ipc": {"HILL-IPC": 1.0, "HILL-WIPC": 0.8, "HILL-HWIPC": 0.9,
                        "ICOUNT": 0.7},
        }
        assert figures._best_mismatched(summary, "avg_ipc", "HILL-IPC") == 0.9

    def test_best_mismatched_no_others(self):
        summary = {"avg_ipc": {"HILL-IPC": 1.0}}
        assert figures._best_mismatched(summary, "avg_ipc", "HILL-IPC") == 0.0

    def test_hill_factory_applies_scale_overheads(self):
        scale = ExperimentScale.bench()
        policy = figures._hill_factory(WeightedIPC(), scale)()
        assert policy.software_cost == scale.hill_software_cost
        assert policy.sample_period == scale.hill_sample_period

    def test_hill_factory_without_scale_uses_paper_defaults(self):
        policy = figures._hill_factory(WeightedIPC())()
        assert policy.software_cost == 200
        assert policy.sample_period == 40

    def test_group_constants(self):
        assert figures.TWO_THREAD_GROUPS == ("ILP2", "MIX2", "MEM2")
        assert figures.FOUR_THREAD_GROUPS == ("ILP4", "MIX4", "MEM4")
        assert len(figures.ALL_GROUPS) == 6


class TestLearnerDrivers:
    def test_run_offline_epoch_override(self):
        scale = ExperimentScale.smoke()
        learner = figures.run_offline(get_workload("art-mcf"), scale,
                                      epochs=2)
        assert len(learner.epochs) == 2

    def test_run_rand_hill_epoch_override(self):
        scale = ExperimentScale.smoke()
        learner = figures.run_rand_hill(get_workload("art-mcf"), scale,
                                        epochs=2)
        assert len(learner.epochs) == 2
        assert all(epoch.trials <= scale.rand_hill_budget
                   for epoch in learner.epochs)

    def test_offline_uses_scale_stride(self):
        scale = ExperimentScale.smoke().with_overrides(stride=16)
        learner = figures.run_offline(get_workload("art-mcf"), scale,
                                      epochs=1)
        assert learner.stride == 16
