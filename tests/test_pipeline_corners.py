"""Corner-case tests for the pipeline: structure exhaustion, head-of-line
behaviour, FP pool pressure, and the squash machinery under stress."""

import pytest

from repro.pipeline.config import SMTConfig
from repro.pipeline.processor import SMTProcessor
from repro.policies.icount import ICountPolicy
from repro.policies.static_partition import StaticPartitionPolicy
from repro.workloads.generator import Instruction, OpClass
from repro.workloads.spec2000 import get_profile
from repro.workloads.profile import BenchmarkProfile, PhaseParams, PhaseVariation


def fp_heavy_profile():
    """A profile that floods the FP issue queue and rename pool."""
    return BenchmarkProfile(
        name="fpflood", ctype="ILP", is_fp=True, rsc_hint=100,
        freq=PhaseVariation.NONE,
        phase_a=PhaseParams(dep_distance=20.0, serial_frac=0.02),
        load_frac=0.05, store_frac=0.02, branch_frac=0.02, fp_frac=0.85,
    )


def load_heavy_profile():
    """A profile that is almost entirely loads (LSQ pressure)."""
    return BenchmarkProfile(
        name="ldflood", ctype="MEM", is_fp=False, rsc_hint=100,
        freq=PhaseVariation.NONE,
        phase_a=PhaseParams(dep_distance=20.0, serial_frac=0.02,
                            mem_frac=0.02, l2_frac=0.05),
        load_frac=0.70, store_frac=0.15, branch_frac=0.02,
    )


class TestStructureExhaustion:
    def test_fp_pressure_respects_capacity(self):
        proc = SMTProcessor(SMTConfig.tiny(), [fp_heavy_profile()] * 2,
                            seed=1, policy=ICountPolicy())
        for __ in range(20):
            proc.run(200)
            assert proc.iq_fp_total <= proc.config.iq_fp_size
            assert proc.ren_fp_total <= proc.config.rename_fp
        assert proc.check_invariants()
        assert sum(proc.stats.committed) > 0

    def test_lsq_pressure_respects_capacity(self):
        proc = SMTProcessor(SMTConfig.tiny(), [load_heavy_profile()] * 2,
                            seed=1, policy=ICountPolicy())
        for __ in range(20):
            proc.run(200)
            assert proc.lsq_total <= proc.config.lsq_size
        assert proc.check_invariants()
        assert sum(proc.stats.committed) > 0

    def test_one_entry_iq_machine_still_progresses(self):
        config = SMTConfig.tiny().with_overrides(iq_int_size=2, iq_fp_size=2)
        proc = SMTProcessor(config, [get_profile("gzip")], seed=1,
                            policy=ICountPolicy())
        proc.run(4000)
        assert proc.stats.committed[0] > 0

    def test_minimal_rob_machine_still_progresses(self):
        config = SMTConfig.tiny().with_overrides(rob_size=8)
        proc = SMTProcessor(config, [get_profile("gzip")], seed=1,
                            policy=ICountPolicy())
        proc.run(4000)
        assert proc.stats.committed[0] > 0


class TestPartitionCorners:
    def test_minimum_partition_thread_progresses(self):
        config = SMTConfig.tiny()
        shares = [config.min_partition,
                  config.rename_int - config.min_partition]
        proc = SMTProcessor(config, [get_profile("art"), get_profile("gzip")],
                            seed=1, policy=StaticPartitionPolicy(shares))
        proc.run(8000)
        assert proc.stats.committed[0] > 0  # starved but alive

    def test_four_way_minimum_partitions(self):
        config = SMTConfig.tiny()
        quarter = config.rename_int // 4
        shares = [quarter] * 4
        profiles = [get_profile(name)
                    for name in ("art", "gzip", "mcf", "eon")]
        proc = SMTProcessor(config, profiles, seed=1,
                            policy=StaticPartitionPolicy(shares))
        proc.run(8000)
        assert all(count > 0 for count in proc.stats.committed)
        assert proc.check_invariants()

    def test_repartitioning_mid_run_is_safe(self):
        """Shrinking a partition below current occupancy must not corrupt
        state — the thread just stops fetching until it drains."""
        config = SMTConfig.tiny()
        proc = SMTProcessor(config, [get_profile("art"), get_profile("gzip")],
                            seed=1, policy=StaticPartitionPolicy())
        proc.run(2000)
        proc.partitions.set_shares(
            [config.min_partition, config.rename_int - config.min_partition])
        proc.run(2000)
        assert proc.check_invariants()
        proc.partitions.set_shares(
            [config.rename_int - config.min_partition, config.min_partition])
        proc.run(2000)
        assert proc.check_invariants()


class TestSquashStress:
    def test_repeated_full_squash(self):
        proc = SMTProcessor(SMTConfig.tiny(),
                            [get_profile("crafty"), get_profile("mcf")],
                            seed=1, policy=ICountPolicy())
        for __ in range(12):
            proc.run(300)
            # Squash everything after each thread's oldest instruction.
            for thread in proc.threads:
                if thread.rob:
                    proc.squash_after(thread.tid, thread.rob[0].seq)
            assert proc.check_invariants()
        proc.run(3000)
        assert sum(proc.stats.committed) > 0

    def test_squash_of_empty_thread_is_safe(self):
        proc = SMTProcessor(SMTConfig.tiny(), [get_profile("gzip")], seed=1,
                            policy=ICountPolicy())
        proc.squash_after(0, 10**9)
        proc.squash_after(0, 0)
        proc.run(1000)
        assert proc.check_invariants()

    def test_refetch_order_preserved_after_squash(self):
        proc = SMTProcessor(SMTConfig.tiny(),
                            [get_profile("gzip"), get_profile("eon")],
                            seed=1, policy=ICountPolicy())
        proc.run(1500)
        thread = proc.threads[0]
        if not thread.rob:
            proc.run(500)
        anchor = thread.rob[0].seq
        proc.squash_after(0, anchor)
        seqs = [instr.seq for instr in thread.refetch]
        assert seqs == sorted(seqs)
        assert all(seq > anchor for seq in seqs)


class TestGeneratorEdgeOps:
    def test_first_instruction_has_no_sources(self):
        from repro.workloads.generator import SyntheticStream

        stream = SyntheticStream(get_profile("gzip"), 0, seed=1)
        assert stream.next_instruction().srcs == ()

    def test_instruction_equality_semantics(self):
        a = Instruction(0, 0, OpClass.IALU, False, (), 0)
        b = Instruction(0, 0, OpClass.IALU, False, (), 0)
        assert a is not b  # identity objects, no __eq__ surprises

    def test_ctrl_ops_classified(self):
        for op in (OpClass.BRANCH, OpClass.CALL, OpClass.RETURN):
            assert op in OpClass.CTRL_OPS
        for op in (OpClass.IALU, OpClass.LOAD, OpClass.FADD):
            assert op not in OpClass.CTRL_OPS
