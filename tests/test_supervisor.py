"""Supervised sweep execution: timeouts, retries, quarantine, chaos.

The supervisor's contract, as tests:

* the retry schedule is deterministic (sha256 jitter, no RNG);
* transient failures are retried with backoff, persistent ones land in
  the ``quarantine.jsonl`` ledger and the sweep *continues*;
* a fault-free supervised sweep is byte-identical to a plain serial
  one, and so is a sweep whose workers were SIGKILLed mid-cell;
* every ``repro chaos`` preset converges (the harness's own ``ok``).
"""

import json
import os

import pytest

from repro.experiments import parallel
from repro.experiments.parallel import (
    SweepEngine,
    grid_cells,
    merged_document,
    merged_json,
)
from repro.experiments.runner import ExperimentScale
from repro.reliability.chaos import (
    CHAOS_PRESETS,
    ChaosPlan,
    PoisonCell,
    build_plan,
    run_chaos,
)
from repro.reliability.supervisor import (
    CellBootstrapError,
    CellResultError,
    CellSupervisor,
    QuarantineLedger,
    Supervision,
    SweepAborted,
    backoff_delay,
    deterministic_jitter,
)


@pytest.fixture
def scale():
    return ExperimentScale.smoke()


def small_cells(epochs=3):
    return grid_cells(workloads=("art-mcf", "apsi-eon"),
                      policies=("ICOUNT",), epochs=epochs)


# -- deterministic backoff --------------------------------------------------


class TestBackoff:
    def test_jitter_is_a_deterministic_fraction(self):
        a = deterministic_jitter(0, "art-mcf/ICOUNT/s0", 1)
        b = deterministic_jitter(0, "art-mcf/ICOUNT/s0", 1)
        assert a == b
        assert 0.0 <= a < 1.0

    def test_jitter_varies_with_seed_key_and_attempt(self):
        base = deterministic_jitter(0, "cell", 1)
        assert deterministic_jitter(1, "cell", 1) != base
        assert deterministic_jitter(0, "other", 1) != base
        assert deterministic_jitter(0, "cell", 2) != base

    def test_delay_grows_exponentially_within_jitter_band(self):
        for attempt in (1, 2, 3):
            nominal = 0.5 * 2 ** (attempt - 1)
            delay = backoff_delay(attempt, 0.5, 30.0, 0, "cell")
            assert 0.5 * nominal <= delay < 1.5 * nominal

    def test_delay_is_capped(self):
        assert backoff_delay(20, 0.5, 2.0, 0, "cell") < 1.5 * 2.0

    def test_zero_base_means_no_delay(self):
        assert backoff_delay(3, 0.0, 30.0, 0, "cell") == 0.0

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            backoff_delay(0, 0.5, 30.0, 0, "cell")


# -- configuration ----------------------------------------------------------


class TestSupervision:
    def test_defaults(self):
        config = Supervision()
        assert config.cell_timeout is None
        assert config.max_attempts == 3
        assert config.degrade is True

    @pytest.mark.parametrize("kwargs", [
        {"cell_timeout": 0.0},
        {"cell_timeout": -1.0},
        {"max_attempts": 0},
        {"retry_base_delay": -0.1},
        {"retry_max_delay": -1.0},
        {"poll_interval": 0.0},
        {"degrade_after_breaks": 0},
    ])
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            Supervision(**kwargs)


# -- the quarantine ledger --------------------------------------------------


class TestQuarantineLedger:
    def test_roundtrip(self, tmp_path):
        ledger = QuarantineLedger(str(tmp_path / "runs" / "q.jsonl"))
        ledger.record({"cell": "a", "attempts": 3})
        ledger.record({"cell": "b", "attempts": 1})
        assert ledger.entries() == [{"cell": "a", "attempts": 3},
                                    {"cell": "b", "attempts": 1}]

    def test_missing_file_is_empty(self, tmp_path):
        assert QuarantineLedger(str(tmp_path / "nope.jsonl")).entries() == []

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "q.jsonl"
        path.write_text('{"cell": "a"}\n{"cell": "b"\n')
        assert QuarantineLedger(str(path)).entries() == [{"cell": "a"}]

    def test_torn_line_prints_a_one_line_warning(self, tmp_path, capsys):
        path = tmp_path / "q.jsonl"
        path.write_text('{"cell": "a"}\n{"cell": "b"\n{"cell": "c"}\n')
        assert QuarantineLedger(str(path)).entries() == [
            {"cell": "a"}, {"cell": "c"}]
        err = capsys.readouterr().err
        assert "skipping corrupt quarantine-ledger line 2" in err
        assert str(path) in err


# -- the supervisor, in-process (jobs=1 path) -------------------------------


def _fast_config(**overrides):
    kwargs = dict(max_attempts=3, retry_base_delay=0.0, seed=0)
    kwargs.update(overrides)
    return Supervision(**kwargs)


class TestCellSupervisorSerial:
    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            CellSupervisor(abs, lambda item, attempt: (item,), 0,
                           _fast_config())

    def test_empty_items(self):
        supervisor = CellSupervisor(abs, lambda item, attempt: (item,), 1,
                                    _fast_config())
        assert supervisor.run([]) == {}

    def test_flaky_items_are_retried_to_success(self):
        calls = {}

        def worker(item, attempt):
            calls[item] = calls.get(item, 0) + 1
            if calls[item] == 1:
                raise RuntimeError("transient")
            return item * 10

        events = []
        supervisor = CellSupervisor(
            worker, lambda item, attempt: (item, attempt), 1,
            _fast_config(),
            emit=lambda event, **fields: events.append(event))
        assert supervisor.run([1, 2]) == {1: 10, 2: 20}
        assert supervisor.retries == 2
        assert supervisor.quarantined == {}
        assert events.count("cell-retry") == 2

    def test_persistent_failure_quarantines_and_continues(self, tmp_path):
        def worker(item, attempt):
            if item == "bad":
                raise RuntimeError("poisoned payload")
            return item.upper()

        ledger = QuarantineLedger(str(tmp_path / "q.jsonl"))
        supervisor = CellSupervisor(
            worker, lambda item, attempt: (item, attempt), 1,
            _fast_config(max_attempts=2), ledger=ledger,
            ledger_info=lambda item: {"key": "k-%s" % item})
        results = supervisor.run(["bad", "good"])
        assert results == {"good": "GOOD"}
        assert list(supervisor.quarantined) == ["bad"]
        (entry,) = ledger.entries()
        assert entry["cell"] == "bad"
        assert entry["attempts"] == 2
        assert entry["key"] == "k-bad"
        assert "poisoned payload" in entry["last_error"]
        assert len(entry["failures"]) == 2

    def test_max_attempts_one_means_no_retry(self):
        def worker(item, attempt):
            raise RuntimeError("boom")

        supervisor = CellSupervisor(
            worker, lambda item, attempt: (item, attempt), 1,
            _fast_config(max_attempts=1))
        supervisor.run(["x"])
        assert supervisor.retries == 0
        assert supervisor.attempts["x"] == 1
        assert "x" in supervisor.quarantined

    def test_bootstrap_error_aborts_immediately(self):
        def worker(item, attempt):
            raise CellBootstrapError("cannot construct cell")

        supervisor = CellSupervisor(
            worker, lambda item, attempt: (item, attempt), 1,
            _fast_config())
        with pytest.raises(CellBootstrapError):
            supervisor.run(["x"])
        assert supervisor.retries == 0

    def test_validation_failures_are_retried(self):
        seen = []

        def validate(item, value):
            if value == "garbage":
                raise CellResultError("bad payload for %s" % item)

        def worker(item, attempt):
            return "garbage" if attempt == 1 else "clean"

        supervisor = CellSupervisor(
            worker, lambda item, attempt: (item, attempt), 1,
            _fast_config(), validate=validate,
            on_result=lambda item, value, running: seen.append(value))
        assert supervisor.run(["x"]) == {"x": "clean"}
        # The corrupt payload never reached on_result (nor, in the
        # engine, the cache).
        assert seen == ["clean"]
        assert supervisor.retries == 1


# -- the supervised engine --------------------------------------------------


class TestSupervisedEngine:
    def test_fault_plan_requires_supervision(self, scale, tmp_path):
        with pytest.raises(ValueError):
            SweepEngine(scale, cache_dir=str(tmp_path / "c"),
                        fault_plan=ChaosPlan([], parent_pid=os.getpid()))

    def test_clean_supervised_run_matches_unsupervised(self, scale,
                                                       tmp_path):
        cells = small_cells()
        plain = SweepEngine(scale, jobs=1, cache_dir=str(tmp_path / "c1"))
        supervised = SweepEngine(scale, jobs=1,
                                 cache_dir=str(tmp_path / "c2"),
                                 supervision=_fast_config())
        doc1 = merged_json(cells, plain.run_cells(cells), scale)
        doc2 = merged_json(cells, supervised.run_cells(cells), scale,
                           quarantined=supervised.quarantined)
        assert doc1 == doc2
        assert supervised.stats == {"hits": 0, "misses": 2, "resumed": 0}
        assert supervised.supervisor_stats == {
            "retries": 0, "timeouts": 0, "pool_breaks": 0,
            "degraded": False, "bisections": 0, "evicted": 0}
        assert supervised.quarantined == {}

    def test_poisoned_cell_yields_partial_results(self, scale, tmp_path):
        cells = small_cells()
        victim = sorted(cell.label for cell in cells)[0]
        engine = SweepEngine(
            scale, jobs=1, cache_dir=str(tmp_path / "cache"),
            resume_dir=str(tmp_path / "resume"),
            supervision=_fast_config(max_attempts=2),
            fault_plan=ChaosPlan([PoisonCell((victim,))],
                                 parent_pid=os.getpid()))
        results = engine.run_cells(cells)

        by_label = dict(zip((cell.label for cell in cells), results))
        assert by_label[victim] is None
        survivors = [label for label in by_label if label != victim]
        assert all(by_label[label] is not None for label in survivors)

        assert [cell.label for cell in engine.quarantined] == [victim]
        assert os.path.exists(engine.quarantine_path)
        (entry,) = QuarantineLedger(engine.quarantine_path).entries()
        assert entry["cell"] == victim
        assert entry["attempts"] == 2
        assert "ChaosPoison" in entry["last_error"]
        assert entry["checkpoint"] is not None

        doc = merged_document(cells, results, scale,
                              quarantined=engine.quarantined)
        assert len(doc["cells"]) == len(cells) - 1
        (dropped,) = doc["quarantined"]
        assert (dropped["workload"], dropped["policy"]) == \
            tuple(victim.split("/")[:2])
        assert dropped["attempts"] == 2
        json.loads(merged_json(cells, results, scale,
                               quarantined=engine.quarantined))


# -- chaos presets ----------------------------------------------------------


class TestChaosPresets:
    def test_cli_choices_match_the_preset_table(self):
        from repro.cli import build_parser
        from repro.service.chaos import SERVICE_CHAOS_PRESETS

        parser = build_parser()
        commands = next(action for action in parser._actions
                        if action.__class__.__name__ == "_SubParsersAction")
        chaos = commands.choices["chaos"]
        preset = next(action for action in chaos._actions
                      if "--preset" in action.option_strings)
        assert sorted(preset.choices) == sorted(
            set(CHAOS_PRESETS) | set(SERVICE_CHAOS_PRESETS))
        # The two tiers must never reuse a name: dispatch is by table.
        assert not set(CHAOS_PRESETS) & set(SERVICE_CHAOS_PRESETS)

    def test_every_preset_builds_a_plan(self):
        cells = small_cells()
        for preset in CHAOS_PRESETS:
            plan, expected, __ = build_plan(preset, cells,
                                            parent_pid=os.getpid())
            assert plan.faults
            assert expected in (0, 1)

    def test_single_victim_presets_target_first_sorted_label(self):
        cells = small_cells()
        plan, __, ___ = build_plan("poison-cell", cells,
                                   parent_pid=os.getpid())
        (fault,) = plan.faults
        assert fault.labels == (sorted(c.label for c in cells)[0],)

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            build_plan("meteor-strike", small_cells())

    def test_plan_knows_parent_from_worker(self):
        plan = ChaosPlan([], parent_pid=os.getpid())
        assert not plan.in_worker()
        assert ChaosPlan([], parent_pid=os.getpid() + 1).in_worker()


# -- chaos runs (each spawns real worker pools; seconds, not minutes) -------


class TestChaosRuns:
    def test_flaky_cells_converge_after_retries(self, scale):
        report = run_chaos("flaky-cells", scale, jobs=2, epochs=3)
        assert report["ok"], report
        assert report["identical"]
        assert report["retries"] >= 1
        assert report["quarantined"] == []

    def test_corrupt_result_is_rejected_before_the_cache(self, scale,
                                                         tmp_path):
        workdir = str(tmp_path / "chaos")
        report = run_chaos("corrupt-result", scale, jobs=2, epochs=3,
                           work_dir=workdir)
        assert report["ok"], report
        assert report["retries"] >= 1
        # Every cached chaos-side entry must load cleanly: the garbage
        # payload never reached the cache.
        cache = parallel.ResultCache(os.path.join(workdir, "cache-chaos"))
        assert cache.info().entries == len(report["cells"])

    def test_sigkilled_cell_resumes_and_matches_serial(self, scale):
        # The ISSUE acceptance scenario: SIGKILL a worker mid-cell (after
        # the epoch-2 checkpoint), re-run through the engine's resume
        # dir, and demand byte-identical merged output.
        report = run_chaos("kill-one-worker", scale, jobs=2, epochs=3)
        assert report["ok"], report
        assert report["identical"]
        assert report["pool_breaks"] >= 1
        assert report["resumed"] >= 1  # the retry continued mid-cell
        assert report["quarantined"] == []

    def test_kill_storm_degrades_to_serial_and_finishes(self, scale):
        report = run_chaos("kill-storm", scale, jobs=2, epochs=3)
        assert report["ok"], report
        assert report["degraded"]
        assert report["quarantined"] == []

    def test_hung_cell_is_reaped_by_the_timeout(self, scale):
        report = run_chaos("hang-one-cell", scale, jobs=2, epochs=3,
                           cell_timeout=2.0)
        assert report["ok"], report
        assert report["timeouts"] >= 1
        assert report["quarantined"] == []

    def test_poison_cell_is_quarantined(self, scale, tmp_path):
        workdir = str(tmp_path / "chaos")
        report = run_chaos("poison-cell", scale, jobs=2, epochs=3,
                           max_attempts=2, work_dir=workdir, keep=True)
        assert report["ok"], report
        assert len(report["quarantined"]) == 1
        assert report["expected_quarantined"] == 1
        entries = QuarantineLedger(report["quarantine_path"]).entries()
        assert [entry["cell"] for entry in entries] == \
            report["quarantined"]

    def test_no_degrade_aborts_under_a_kill_storm(self, scale, tmp_path):
        with pytest.raises(SweepAborted):
            run_chaos("kill-storm", scale, jobs=2, epochs=3,
                      degrade=False, work_dir=str(tmp_path / "chaos"))
