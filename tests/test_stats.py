"""Tests for the SMT statistics record."""

import pytest

from repro.pipeline.stats import SMTStats


class TestStats:
    def test_initial_zeroes(self):
        stats = SMTStats(3)
        assert stats.committed == [0, 0, 0]
        assert stats.cycles == 0
        assert stats.total_committed() == 0

    def test_ipc(self):
        stats = SMTStats(2)
        stats.committed = [100, 50]
        stats.cycles = 100
        assert stats.ipc() == pytest.approx(1.5)
        assert stats.ipc(0) == pytest.approx(1.0)
        assert stats.ipc(1) == pytest.approx(0.5)

    def test_ipc_zero_cycles(self):
        assert SMTStats(1).ipc() == 0.0

    def test_copy_is_deep(self):
        stats = SMTStats(2)
        stats.committed[0] = 5
        clone = stats.copy()
        clone.committed[0] = 99
        assert stats.committed[0] == 5

    def test_copy_preserves_all_fields(self):
        stats = SMTStats(2)
        stats.committed = [1, 2]
        stats.squashed = [3, 4]
        stats.mispredicts = [5, 6]
        stats.l2_misses = [7, 8]
        stats.flushes = [9, 10]
        stats.cycles = 11
        clone = stats.copy()
        assert clone.committed == [1, 2]
        assert clone.squashed == [3, 4]
        assert clone.mispredicts == [5, 6]
        assert clone.l2_misses == [7, 8]
        assert clone.flushes == [9, 10]
        assert clone.cycles == 11

    def test_delta_since(self):
        earlier = SMTStats(2)
        earlier.committed = [10, 20]
        earlier.cycles = 100
        later = earlier.copy()
        later.committed = [15, 30]
        later.cycles = 150
        committed, cycles = later.delta_since(earlier)
        assert committed == [5, 10]
        assert cycles == 50
