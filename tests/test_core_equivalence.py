"""Differential harness: every run-loop core must be byte-identical to
the stage-every-cycle reference loop — the event-driven fast core, and
the batched lane that drives many cells through
:class:`~repro.pipeline.batched.BatchCore` in lockstep.

Every test runs the same experiment under the cores being compared (via
:class:`~repro.pipeline.fastpath.forced_core`, or
:func:`~repro.experiments.batchrun.run_pack` for real multi-cell packs)
and compares canonical serializations — sorted-key JSON of
:meth:`RunResult.to_dict` for run stats, full processor pickles for
checkpoints, ``merged_json`` for sweeps.  Equal strings mean equal
bytes, which is the cores' entire contract (docs/INTERNALS.md): stats,
checkpoints and sweep exports may never depend on which core produced
them, and pack results may never depend on pack composition or lockstep
budget.
"""

import json
import pickle

import pytest

from repro.core.controller import EpochController
from repro.experiments.batchrun import (
    SharedTape,
    TapeDeck,
    pack_cells,
    run_pack,
)
from repro.experiments.parallel import (
    _FAMILY_ENTRIES,
    SweepCell,
    SweepEngine,
    grid_cells,
    merged_json,
    policy_factory,
)
from repro.experiments.runner import (
    ExperimentScale,
    clear_solo_cache,
    make_processor,
    run_policy,
)
from repro.pipeline.fastpath import CORE_MODES, forced_core
from repro.pipeline.profile import CoreProfile
from repro.reliability.faults import (
    FaultInjector,
    MemoryLatencySpike,
    MisbehavingPolicy,
    PartitionScramble,
    TransientFetchStall,
)
from repro.workloads.mixes import get_workload

#: Every registered policy family (the sweep layer's registry keys), so a
#: new family cannot land without entering the differential harness.
FAMILIES = sorted(_FAMILY_ENTRIES)

SEEDS = (0, 1, 2)


@pytest.fixture
def scale():
    return ExperimentScale.smoke()


def _run_blob(workload, family, scale, core, injector=None, policy=None,
              sanitize=False):
    """Canonical bytes of one run under one core.

    The SingleIPC cache is cleared first so the solo runs themselves
    execute under ``core`` instead of leaking across the comparison.
    """
    clear_solo_cache()
    with forced_core(core):
        built = policy() if policy is not None \
            else policy_factory(family, scale)()
        result = run_policy(workload, built, scale, injector=injector,
                            sanitize_partitions=sanitize)
    return json.dumps(result.to_dict(), sort_keys=True)


class TestEveryFamilyByteIdentical:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_family(self, family, scale):
        workload = get_workload("art-mcf")
        for seed in SEEDS:
            seeded = scale.with_overrides(seed=seed)
            fast = _run_blob(workload, family, seeded, "fast")
            reference = _run_blob(workload, family, seeded, "reference")
            assert fast == reference, \
                "%s diverged between cores at seed %d" % (family, seed)

    def test_four_thread_workload(self, scale):
        workload = get_workload("art-mcf-swim-twolf")
        for family in ("ICOUNT", "DCRA", "HILL"):
            fast = _run_blob(workload, family, scale, "fast")
            reference = _run_blob(workload, family, scale, "reference")
            assert fast == reference, family


class TestCheckpointsByteIdentical:
    def _mid_run_pickle(self, scale, core):
        workload = get_workload("art-mcf")
        with forced_core(core):
            proc = make_processor(workload,
                                  policy_factory("HILL", scale)(), scale)
            controller = EpochController(proc, epoch_size=scale.epoch_size)
            controller.run(max(1, scale.epochs // 2))
            return pickle.dumps(proc, protocol=pickle.HIGHEST_PROTOCOL)

    def test_mid_run_processor_pickle(self, scale):
        """A mid-run checkpoint (full processor pickle, policy and stream
        RNG state included) carries no trace of the producing core.  HILL
        exercises ``charge_stall`` between fast-forwarded stretches."""
        pickles = {core: self._mid_run_pickle(scale, core)
                   for core in CORE_MODES}
        assert len(set(pickles.values())) == 1, sorted(pickles)


class TestSweepExportByteIdentical:
    def test_merged_json(self, scale, monkeypatch):
        cells = grid_cells(workloads=["art-mcf"],
                           policies=["ICOUNT", "FLUSH", "DCRA"],
                           seeds=(0, 1))
        exports = {}
        for core in CORE_MODES:
            clear_solo_cache()
            monkeypatch.setenv("REPRO_CORE", core)
            engine = SweepEngine(scale, jobs=1, use_cache=False)
            results = engine.run_cells(cells)
            exports[core] = merged_json(cells, results, scale)
        assert len(set(exports.values())) == 1, sorted(exports)


class TestBatchedLane:
    """The pack layer: :func:`run_pack` must be byte-identical to serial
    :func:`run_policy` runs for every policy family, and its results may
    never depend on pack composition or lockstep budget."""

    def _serial_blobs(self, cells, scale):
        clear_solo_cache()
        blobs = []
        for cell in cells:
            seeded = scale if scale.seed == cell.seed \
                else scale.with_overrides(seed=cell.seed)
            workload = get_workload(cell.workload)
            policy = policy_factory(cell.policy, seeded)()
            result = run_policy(workload, policy, seeded,
                                epochs=cell.epochs)
            blobs.append(json.dumps(result.to_dict(), sort_keys=True))
        return blobs

    def _pack_blobs(self, cells, scale, batch_cells=None, budget=8192):
        clear_solo_cache()
        by_id = {}
        for pack in pack_cells(cells, batch_cells or len(cells)):
            for cell, result in zip(pack,
                                    run_pack(pack, scale, budget=budget)):
                by_id[id(cell)] = json.dumps(result.to_dict(),
                                             sort_keys=True)
        return [by_id[id(cell)] for cell in cells]

    def test_every_family_in_one_pack(self, scale):
        """All eleven registered families in one lockstep pack — a new
        family cannot land without proving it survives batching."""
        cells = [SweepCell("art-mcf", family) for family in FAMILIES]
        assert self._pack_blobs(cells, scale) == \
            self._serial_blobs(cells, scale)

    def test_mixed_workloads_and_seeds(self, scale):
        cells = [SweepCell("art-mcf", "ICOUNT", seed=0),
                 SweepCell("art-twolf", "FLUSH", seed=1),
                 SweepCell("art-mcf", "DCRA", seed=1),
                 SweepCell("art-mcf-swim-twolf", "HILL", seed=0),
                 SweepCell("art-twolf", "ICOUNT", seed=1)]
        assert self._pack_blobs(cells, scale) == \
            self._serial_blobs(cells, scale)

    def test_composition_and_budget_invariance(self, scale):
        """Splitting the pack or shrinking the iteration budget reslices
        the lockstep, never the simulation."""
        cells = grid_cells(workloads=["art-mcf", "art-twolf"],
                           policies=["ICOUNT", "FLUSH", "HILL"])
        whole = self._pack_blobs(cells, scale)
        assert self._pack_blobs(cells, scale, batch_cells=2,
                                budget=33) == whole
        assert self._pack_blobs(cells, scale, batch_cells=4,
                                budget=57) == whole

    def test_engine_batched_export_matches_serial(self, scale):
        cells = grid_cells(workloads=["art-mcf"],
                           policies=["ICOUNT", "FLUSH", "DCRA"],
                           seeds=(0, 1))
        clear_solo_cache()
        serial = SweepEngine(scale, jobs=1, use_cache=False)
        serial_export = merged_json(cells, serial.run_cells(cells), scale)
        clear_solo_cache()
        batched = SweepEngine(scale, jobs=1, use_cache=False,
                              batch_cells=4)
        batched_export = merged_json(cells, batched.run_cells(cells),
                                     scale)
        assert batched_export == serial_export

    def test_engine_rejects_invalid_batching(self, scale, tmp_path):
        from repro.experiments.batchrun import pack_cells
        from repro.reliability.supervisor import Supervision

        # One message for every bad batch_cells, engine and pack layer
        # alike (repro.reliability.packsup.validate_batch_cells).
        for bad in (0, -1, True, 2.0):
            with pytest.raises(ValueError,
                               match="batch_cells must be an integer"):
                SweepEngine(scale, batch_cells=bad)
            with pytest.raises(ValueError,
                               match="batch_cells must be an integer"):
                list(pack_cells([], bad))
        # The old supervision/resume incompatibilities are gone: packed
        # sweeps run supervised now.
        SweepEngine(scale, batch_cells=2, supervision=Supervision())
        SweepEngine(scale, batch_cells=2,
                    resume_dir=str(tmp_path / "resume"))

    def test_pack_bootstrap_error(self, scale):
        from repro.reliability.supervisor import CellBootstrapError

        with pytest.raises(CellBootstrapError, match="WARP"):
            run_pack([SweepCell("art-mcf", "WARP")], scale)

    def test_shared_tape_replays_and_trims(self):
        """A tape reader sees exactly the private stream's instructions;
        trimming drops only what every reader has consumed and replaying
        past the trim point is an error, not silent corruption."""
        from repro.workloads.generator import SyntheticStream

        profile = get_workload("art-mcf").profiles[0]
        tape = SharedTape(profile, thread_id=0, seed=0)
        lead, lag = tape.attach(), tape.attach()
        private = SyntheticStream(profile, thread_id=0, seed=0)

        def spec(instr):
            return (instr.thread, instr.seq, instr.op, instr.is_fp,
                    instr.srcs, instr.pc, instr.taken, instr.addr)

        for _ in range(100):
            assert spec(lead.next_instruction()) == \
                spec(private.next_instruction())
        tape.trim()
        assert tape.retained == 100  # lag still pins seq 0
        for _ in range(40):
            lag.next_instruction()
        tape.trim()
        assert tape.retained == 60
        with pytest.raises(IndexError):
            tape.spec(10)
        tape.release(lead)
        tape.trim()
        assert tape.retained == 60  # lag's frontier now rules alone

    def test_numpy_is_optional_for_import(self):
        """numpy is a hard dependency of *running* the batched lane, not
        of importing it: the service worker and lint tooling must load
        on numpy-free hosts, and BatchCore must fail with a clear error
        rather than an ImportError at an import site."""
        import subprocess
        import sys

        script = (
            "import sys\n"
            "class _Block:\n"
            "    def find_module(self, name, path=None):\n"
            "        if name.split('.')[0] == 'numpy':\n"
            "            return self\n"
            "    def load_module(self, name):\n"
            "        raise ImportError('numpy blocked')\n"
            "sys.meta_path.insert(0, _Block())\n"
            "import repro.pipeline.batched as batched\n"
            "assert not batched.HAVE_NUMPY\n"
            "import repro.service.worker\n"
            "import repro.experiments.batchrun\n"
            "import repro.analysis.lint.fingerprints\n"
            "try:\n"
            "    batched.BatchCore([])\n"
            "except RuntimeError as exc:\n"
            "    assert 'numpy' in str(exc)\n"
            "else:\n"
            "    raise AssertionError('BatchCore built without numpy')\n"
        )
        proc = subprocess.run([sys.executable, "-c", script],
                              capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr

    def test_tape_deck_shares_by_content_key(self):
        profile = get_workload("art-mcf").profiles[0]
        deck = TapeDeck()
        one = deck.stream(profile, 0, 0)
        two = deck.stream(profile, 0, 0)
        other_seed = deck.stream(profile, 0, 1)
        assert one.tape is two.tape
        assert other_seed.tape is not one.tape
        one.next_instruction()
        assert deck.retained >= 1
        deck.trim()
        assert deck.retained >= 1  # `two` still pins seq 0


class TestFaultInjectionByteIdentical:
    def test_injector_run(self, scale):
        """Fault injection fires at epoch boundaries from a seeded RNG;
        both cores must see the identical fault schedule and end state."""
        workload = get_workload("art-mcf")
        blobs = {}
        for core in CORE_MODES:
            injector = FaultInjector(
                [MemoryLatencySpike(extra_latency=400,
                                    burst_probability=0.5),
                 TransientFetchStall(stall_cycles=300, probability=0.5),
                 PartitionScramble(probability=0.5)],
                seed=7)
            blobs[core] = _run_blob(workload, "DCRA", scale, core,
                                    injector=injector, sanitize=True)
        assert blobs["fast"] == blobs["reference"]

    def test_misbehaving_policy_run(self, scale):
        workload = get_workload("art-mcf")
        blobs = {}
        for core in CORE_MODES:
            make_policy = lambda: MisbehavingPolicy(
                policy_factory("DCRA", scale)(), probability=1.0, seed=11)
            blobs[core] = _run_blob(workload, None, scale, core,
                                    policy=make_policy, sanitize=True)
        assert blobs["fast"] == blobs["reference"]


class TestProfilingIsInert:
    """Attaching a CoreProfile may never change simulation results."""

    @pytest.mark.parametrize("core", CORE_MODES)
    def test_profiled_stats_unchanged(self, core, scale):
        workload = get_workload("art-mcf")
        states = []
        for profiled in (False, True):
            with forced_core(core):
                proc = make_processor(workload,
                                      policy_factory("FLUSH", scale)(),
                                      scale, warm=False)
                if profiled:
                    proc.profile = CoreProfile()
                proc.run(scale.warmup + scale.epoch_size)
                proc.profile = None
                states.append(pickle.dumps(
                    proc, protocol=pickle.HIGHEST_PROTOCOL))
        assert states[0] == states[1]

    def test_profile_accounts_every_cycle(self, scale):
        workload = get_workload("art-mcf")
        with forced_core("fast"):
            proc = make_processor(workload,
                                  policy_factory("FLUSH", scale)(),
                                  scale, warm=False)
            proc.profile = profile = CoreProfile()
            proc.run(scale.warmup)
        assert profile.total_cycles == scale.warmup == proc.stats.cycles
        assert profile.skipped_cycles > 0  # art-mcf stalls plenty
