"""Differential harness: the event-driven fast core must be byte-identical
to the stage-every-cycle reference loop.

Every test runs the same experiment under both cores (via
:class:`~repro.pipeline.fastpath.forced_core`) and compares canonical
serializations — sorted-key JSON of :meth:`RunResult.to_dict` for run
stats, full processor pickles for checkpoints, ``merged_json`` for sweeps.
Equal strings mean equal bytes, which is the fast core's entire contract
(docs/INTERNALS.md): stats, checkpoints and sweep exports may never depend
on which core produced them.
"""

import json
import pickle

import pytest

from repro.core.controller import EpochController
from repro.experiments.parallel import (
    _FAMILY_ENTRIES,
    SweepEngine,
    grid_cells,
    merged_json,
    policy_factory,
)
from repro.experiments.runner import (
    ExperimentScale,
    clear_solo_cache,
    make_processor,
    run_policy,
)
from repro.pipeline.fastpath import CORE_MODES, forced_core
from repro.pipeline.profile import CoreProfile
from repro.reliability.faults import (
    FaultInjector,
    MemoryLatencySpike,
    MisbehavingPolicy,
    PartitionScramble,
    TransientFetchStall,
)
from repro.workloads.mixes import get_workload

#: Every registered policy family (the sweep layer's registry keys), so a
#: new family cannot land without entering the differential harness.
FAMILIES = sorted(_FAMILY_ENTRIES)

SEEDS = (0, 1, 2)


@pytest.fixture
def scale():
    return ExperimentScale.smoke()


def _run_blob(workload, family, scale, core, injector=None, policy=None,
              sanitize=False):
    """Canonical bytes of one run under one core.

    The SingleIPC cache is cleared first so the solo runs themselves
    execute under ``core`` instead of leaking across the comparison.
    """
    clear_solo_cache()
    with forced_core(core):
        built = policy() if policy is not None \
            else policy_factory(family, scale)()
        result = run_policy(workload, built, scale, injector=injector,
                            sanitize_partitions=sanitize)
    return json.dumps(result.to_dict(), sort_keys=True)


class TestEveryFamilyByteIdentical:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_family(self, family, scale):
        workload = get_workload("art-mcf")
        for seed in SEEDS:
            seeded = scale.with_overrides(seed=seed)
            fast = _run_blob(workload, family, seeded, "fast")
            reference = _run_blob(workload, family, seeded, "reference")
            assert fast == reference, \
                "%s diverged between cores at seed %d" % (family, seed)

    def test_four_thread_workload(self, scale):
        workload = get_workload("art-mcf-swim-twolf")
        for family in ("ICOUNT", "DCRA", "HILL"):
            fast = _run_blob(workload, family, scale, "fast")
            reference = _run_blob(workload, family, scale, "reference")
            assert fast == reference, family


class TestCheckpointsByteIdentical:
    def _mid_run_pickle(self, scale, core):
        workload = get_workload("art-mcf")
        with forced_core(core):
            proc = make_processor(workload,
                                  policy_factory("HILL", scale)(), scale)
            controller = EpochController(proc, epoch_size=scale.epoch_size)
            controller.run(max(1, scale.epochs // 2))
            return pickle.dumps(proc, protocol=pickle.HIGHEST_PROTOCOL)

    def test_mid_run_processor_pickle(self, scale):
        """A mid-run checkpoint (full processor pickle, policy and stream
        RNG state included) carries no trace of the producing core.  HILL
        exercises ``charge_stall`` between fast-forwarded stretches."""
        assert self._mid_run_pickle(scale, "fast") == \
            self._mid_run_pickle(scale, "reference")


class TestSweepExportByteIdentical:
    def test_merged_json(self, scale, monkeypatch):
        cells = grid_cells(workloads=["art-mcf"],
                           policies=["ICOUNT", "FLUSH", "DCRA"],
                           seeds=(0, 1))
        exports = {}
        for core in CORE_MODES:
            clear_solo_cache()
            monkeypatch.setenv("REPRO_CORE", core)
            engine = SweepEngine(scale, jobs=1, use_cache=False)
            results = engine.run_cells(cells)
            exports[core] = merged_json(cells, results, scale)
        assert exports["fast"] == exports["reference"]


class TestFaultInjectionByteIdentical:
    def test_injector_run(self, scale):
        """Fault injection fires at epoch boundaries from a seeded RNG;
        both cores must see the identical fault schedule and end state."""
        workload = get_workload("art-mcf")
        blobs = {}
        for core in CORE_MODES:
            injector = FaultInjector(
                [MemoryLatencySpike(extra_latency=400,
                                    burst_probability=0.5),
                 TransientFetchStall(stall_cycles=300, probability=0.5),
                 PartitionScramble(probability=0.5)],
                seed=7)
            blobs[core] = _run_blob(workload, "DCRA", scale, core,
                                    injector=injector, sanitize=True)
        assert blobs["fast"] == blobs["reference"]

    def test_misbehaving_policy_run(self, scale):
        workload = get_workload("art-mcf")
        blobs = {}
        for core in CORE_MODES:
            make_policy = lambda: MisbehavingPolicy(
                policy_factory("DCRA", scale)(), probability=1.0, seed=11)
            blobs[core] = _run_blob(workload, None, scale, core,
                                    policy=make_policy, sanitize=True)
        assert blobs["fast"] == blobs["reference"]


class TestProfilingIsInert:
    """Attaching a CoreProfile may never change simulation results."""

    @pytest.mark.parametrize("core", CORE_MODES)
    def test_profiled_stats_unchanged(self, core, scale):
        workload = get_workload("art-mcf")
        states = []
        for profiled in (False, True):
            with forced_core(core):
                proc = make_processor(workload,
                                      policy_factory("FLUSH", scale)(),
                                      scale, warm=False)
                if profiled:
                    proc.profile = CoreProfile()
                proc.run(scale.warmup + scale.epoch_size)
                proc.profile = None
                states.append(pickle.dumps(
                    proc, protocol=pickle.HIGHEST_PROTOCOL))
        assert states[0] == states[1]

    def test_profile_accounts_every_cycle(self, scale):
        workload = get_workload("art-mcf")
        with forced_core("fast"):
            proc = make_processor(workload,
                                  policy_factory("FLUSH", scale)(),
                                  scale, warm=False)
            proc.profile = profile = CoreProfile()
            proc.run(scale.warmup)
        assert profile.total_cycles == scale.warmup == proc.stats.cycles
        assert profile.skipped_cycles > 0  # art-mcf stalls plenty
