"""The BBV phase signal: phases execute different code, so signatures must
separate phases while staying stable within one phase."""

import pytest

from repro.phase.bbv import BBVCollector, signature_distance
from repro.workloads.generator import OpClass, SyntheticStream
from repro.workloads.spec2000 import get_profile


def epoch_signature(stream, instructions, buckets=64):
    collector = BBVCollector(1, buckets=buckets)
    for __ in range(instructions):
        instr = stream.next_instruction()
        if instr.op in OpClass.CTRL_OPS:
            collector.note(0, instr.pc)
    return collector.harvest()


class TestPhaseSignal:
    def test_high_freq_profile_sites_disjoint_across_phases(self):
        stream = SyntheticStream(get_profile("gzip"), 0, seed=1,
                                 phase_period=2000)
        sites_a = set()
        sites_b = set()
        for __ in range(8000):
            instr = stream.next_instruction()
            if instr.op == OpClass.BRANCH:
                bucket = sites_a if stream._phase_parity() == 0 else sites_b
                bucket.add(instr.pc)
        # the branch resolves parity AFTER generation advanced; allow a
        # small boundary overlap.
        overlap = len(sites_a & sites_b)
        assert overlap <= 0.2 * min(len(sites_a), len(sites_b)) + 2

    def test_no_freq_profile_uses_full_site_range(self):
        stream = SyntheticStream(get_profile("bzip2"), 0, seed=1)
        sites = {instr.pc for instr in
                 (stream.next_instruction() for __ in range(20000))
                 if instr.op == OpClass.BRANCH}
        assert len(sites) > get_profile("bzip2").branch_sites // 2

    def test_same_phase_signatures_are_close(self):
        stream = SyntheticStream(get_profile("gzip"), 0, seed=1,
                                 phase_period=8000)
        first = epoch_signature(stream, 3000)
        second = epoch_signature(stream, 3000)  # still phase 0
        assert signature_distance(first, second) < 1.0

    def test_different_phase_signatures_are_far(self):
        stream = SyntheticStream(get_profile("gzip"), 0, seed=1,
                                 phase_period=4000)
        phase_a = epoch_signature(stream, 3500)
        # skip to the second phase
        while stream._phase_parity() == 0:
            stream.next_instruction()
        phase_b = epoch_signature(stream, 3500)
        assert signature_distance(phase_a, phase_b) > 1.0

    def test_phase_table_separates_real_phases(self):
        from repro.phase.detector import PhaseTable

        stream = SyntheticStream(get_profile("gzip"), 0, seed=1,
                                 phase_period=4000)
        table = PhaseTable()
        ids = []
        for __ in range(8):
            ids.append(table.classify(epoch_signature(stream, 4000)))
        assert 2 <= len(set(ids)) <= 4  # two phases, maybe boundary mixes
        # alternation visible
        assert any(a != b for a, b in zip(ids, ids[1:]))
