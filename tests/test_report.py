"""Tests for the ASCII report helpers."""

import pytest

from repro.experiments.report import (
    format_series,
    format_table,
    geomean,
    mean,
    pct_gain,
    summarize_gains,
)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "value"], [["a", 1.0], ["longer", 2.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4  # header, separator, 2 rows
        assert len(set(len(line.rstrip()) for line in lines[2:])) >= 1

    def test_float_formatting(self):
        text = format_table(["x"], [[1.23456]], float_digits=2)
        assert "1.23" in text
        assert "1.2345" not in text

    def test_non_float_cells(self):
        text = format_table(["a", "b"], [[1, "text"]])
        assert "text" in text


class TestFormatSeries:
    def test_renders_all_series(self):
        text = format_series({"A": [1, 2, 3], "B": [3, 2, 1]})
        assert "A" in text and "B" in text
        assert text.count("|") == 4

    def test_empty(self):
        assert "empty" in format_series({})

    def test_constant_series_no_crash(self):
        assert "|" in format_series({"A": [1.0, 1.0]})


class TestMath:
    def test_pct_gain(self):
        assert pct_gain(1.1, 1.0) == pytest.approx(10.0)
        assert pct_gain(0.9, 1.0) == pytest.approx(-10.0)
        assert pct_gain(1.0, 0.0) == 0.0

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 0.0
        assert geomean([-1.0, 0.0]) == 0.0

    def test_mean(self):
        assert mean([1, 2, 3]) == pytest.approx(2.0)
        assert mean([]) == 0.0

    def test_summarize_gains(self):
        results = {
            "w1": {"HILL": 1.2, "ICOUNT": 1.0},
            "w2": {"HILL": 1.1, "ICOUNT": 1.0},
        }
        gains = summarize_gains(results, "HILL", ("ICOUNT",))
        assert gains["ICOUNT"] == pytest.approx(15.0)
