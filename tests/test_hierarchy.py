"""Unit tests for the memory hierarchy."""

import pytest

from repro.memory.cache import Cache
from repro.memory.hierarchy import (
    AccessResult,
    L1_LEVEL,
    L2_LEVEL,
    MEM_LEVEL,
    MemoryHierarchy,
)


def make_hierarchy(mem_latency=100):
    return MemoryHierarchy(
        il1=Cache("IL1", 1024, 64, 2, 1),
        dl1=Cache("DL1", 1024, 64, 2, 1),
        ul2=Cache("UL2", 8192, 64, 4, 10),
        mem_latency=mem_latency,
    )


class TestLoadPath:
    def test_cold_load_goes_to_memory(self):
        hierarchy = make_hierarchy()
        result = hierarchy.load(0)
        assert result.level == MEM_LEVEL
        assert result.latency == 1 + 10 + 100

    def test_warm_load_hits_l1(self):
        hierarchy = make_hierarchy()
        hierarchy.load(0, now=0)
        result = hierarchy.load(0, now=500)  # after the fill settles
        assert result.level == L1_LEVEL
        assert result.latency == 1

    def test_hit_under_fill_waits_for_the_line(self):
        """A second access while the line is still in flight waits for the
        remaining fill latency (MSHR-merge semantics) — this is what makes
        flushing-and-refetching a load actually costly."""
        hierarchy = make_hierarchy()
        first = hierarchy.load(0, now=0)
        assert first.latency == 111
        merged = hierarchy.load(0, now=10)
        assert merged.level == L1_LEVEL
        assert merged.latency == 101  # waits out the remaining fill

    def test_l2_hit_after_l1_eviction(self):
        hierarchy = make_hierarchy()
        hierarchy.load(0, now=0)
        # Evict block 0 from the 2-way DL1 set by touching two conflicting
        # blocks (set stride = num_sets * block = 8 * 64); do it after all
        # fills settle so latencies are the steady-state ones.
        stride = hierarchy.dl1.num_sets * 64
        hierarchy.load(stride, now=500)
        hierarchy.load(2 * stride, now=1000)
        result = hierarchy.load(0, now=1500)
        assert result.level == L2_LEVEL
        assert result.latency == 1 + 10

    def test_flags(self):
        assert AccessResult(1, L1_LEVEL).missed_l1 is False
        assert AccessResult(11, L2_LEVEL).missed_l1 is True
        assert AccessResult(11, L2_LEVEL).missed_l2 is False
        assert AccessResult(111, MEM_LEVEL).missed_l2 is True

    def test_store_allocates(self):
        hierarchy = make_hierarchy()
        hierarchy.store(0)
        assert hierarchy.load(0).level == L1_LEVEL

    def test_ifetch_separate_from_data(self):
        hierarchy = make_hierarchy()
        hierarchy.load(0)
        # Same address through the instruction path: IL1 cold, UL2 warm.
        result = hierarchy.ifetch(0)
        assert result.level == L2_LEVEL

    def test_requires_cache_instances(self):
        with pytest.raises(TypeError):
            MemoryHierarchy(il1=None, dl1=None, ul2=None, mem_latency=1)


class TestSnapshot:
    def test_roundtrip(self):
        hierarchy = make_hierarchy()
        hierarchy.load(0)
        hierarchy.ifetch(4096)
        state = hierarchy.snapshot()
        hierarchy.load(1 << 16)
        hierarchy.restore(state)
        assert hierarchy.load(0).level == L1_LEVEL
        assert hierarchy.load(1 << 16).level == MEM_LEVEL

    def test_latency_composition_is_additive(self):
        hierarchy = make_hierarchy(mem_latency=300)
        cold = hierarchy.load(0)
        assert cold.latency == (hierarchy.dl1.latency + hierarchy.ul2.latency
                                + 300)
