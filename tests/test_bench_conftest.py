"""Tests for the benchmark harness scale selection."""

import pytest

from benchmarks.conftest import current_scale


class TestScaleSelection:
    def test_default_is_bench_with_subset(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        scale = current_scale()
        assert scale.workloads_per_group == 3
        assert scale.epochs == 28

    def test_smoke(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        scale = current_scale()
        assert scale.epoch_size == 1024

    def test_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        scale = current_scale()
        assert scale.epoch_size == 64 * 1024
        assert scale.workloads_per_group is None

    def test_unknown_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "ludicrous")
        with pytest.raises(ValueError):
            current_scale()

    def test_case_insensitive(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "SMOKE")
        assert current_scale().epoch_size == 1024
