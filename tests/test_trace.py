"""Tests for the pipeline tracer."""

import pytest

from repro.pipeline.config import SMTConfig
from repro.pipeline.processor import SMTProcessor
from repro.pipeline.trace import (
    COMMIT,
    COMPLETE,
    DISPATCH,
    FETCH,
    ISSUE,
    PipelineTracer,
    TraceRecord,
)
from repro.policies.icount import ICountPolicy
from repro.workloads.spec2000 import get_profile


def traced_proc(benchmarks=("gzip", "eon"), capacity=4096, threads=None):
    profiles = [get_profile(name) for name in benchmarks]
    proc = SMTProcessor(SMTConfig.tiny(), profiles, seed=1,
                        policy=ICountPolicy())
    proc.trace = PipelineTracer(capacity=capacity, threads=threads)
    return proc


class TestTracer:
    def test_records_stage_progression(self):
        proc = traced_proc()
        proc.run(2000)
        committed = [record for record in proc.trace.records()
                     if COMMIT in record.stamps]
        assert committed
        for record in committed:
            stamps = record.stamps
            assert stamps[FETCH] <= stamps[DISPATCH]
            assert stamps[DISPATCH] < stamps[ISSUE]
            assert stamps[ISSUE] <= stamps[COMPLETE]
            assert stamps[COMPLETE] <= stamps[COMMIT]

    def test_capacity_bounded(self):
        proc = traced_proc(capacity=64)
        proc.run(3000)
        assert len(proc.trace.records()) <= 64

    def test_thread_filter(self):
        proc = traced_proc(threads={1})
        proc.run(2000)
        records = proc.trace.records()
        assert records
        assert all(record.thread == 1 for record in records)

    def test_squash_events_recorded(self):
        proc = traced_proc(benchmarks=("crafty", "mcf"))
        proc.run(5000)
        assert proc.trace.squash_events

    def test_render(self):
        proc = traced_proc()
        proc.run(500)
        text = proc.trace.render(max_rows=8)
        assert "|" in text
        assert "t0" in text or "t1" in text

    def test_render_empty(self):
        assert "empty" in PipelineTracer().render()

    def test_average_latency_positive(self):
        proc = traced_proc()
        proc.run(2000)
        assert proc.trace.average_latency() > 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PipelineTracer(capacity=0)

    def test_tracing_does_not_change_execution(self):
        traced = traced_proc()
        traced.run(2000)
        plain_profiles = [get_profile(name) for name in ("gzip", "eon")]
        plain = SMTProcessor(SMTConfig.tiny(), plain_profiles, seed=1,
                             policy=ICountPolicy())
        plain.run(2000)
        assert traced.stats.committed == plain.stats.committed

    def test_record_lifetime(self):
        record = TraceRecord(0, 1, "IALU")
        assert record.complete_lifetime is None
        record.note(FETCH, 5)
        record.note(COMMIT, 20)
        assert record.complete_lifetime == (5, 20)
