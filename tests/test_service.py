"""The sweep service tier: protocol, leases, quotas, drain, identity.

The acceptance contract of docs/SERVICE.md, as tests:

* a sweep submitted over HTTP and simulated by a pull-based worker
  produces merged JSON byte-identical to a serial in-process sweep;
* a full queue answers 429 + Retry-After, a client over quota likewise,
  and a draining daemon answers 503 — flow control, not failure;
* an abandoned lease expires, charges an attempt against the same
  backoff/quarantine ledger the CellSupervisor uses, and repeat
  offenders quarantine while the job completes around them;
* a torn result upload is rejected by validation before the cache
  sees it;
* a drained daemon persists its queue and a restarted daemon resumes
  the same job ids to an identical result.

Most tests never simulate a cell: leases and failures are exercised by
hand-rolled worker HTTP calls, so the suite stays fast.
"""

import json
import os
import threading
import time

import pytest

from repro.experiments.parallel import (
    ResultCache,
    SweepEngine,
    cache_key,
    grid_cells,
    merged_json,
)
from repro.experiments.runner import ExperimentScale
from repro.reliability.supervisor import SWEEP_EVENTS, QuarantineLedger
from repro.service import protocol
from repro.service.client import ServiceClient, ServiceError, SubmitRejected
from repro.service.server import ServiceConfig, ServiceHandle
from repro.service.worker import _http, run_worker

ONE_CELL = {"workloads": ["art-mcf"], "policies": ["ICOUNT"],
            "seeds": [0], "epochs": 2}
SCALE_SPEC = {"scale": "smoke"}


@pytest.fixture
def service(tmp_path):
    handle = ServiceHandle(ServiceConfig(
        state_dir=str(tmp_path / "state"),
        cache_dir=str(tmp_path / "cache"),
        lease_timeout=0.4, max_attempts=2, tick_interval=0.02,
        retry_base_delay=0.01, retry_max_delay=0.05)).start()
    yield handle
    handle.stop(drain=False)


def lease_one(url):
    """Register a fake worker and grab one lease, no simulation."""
    status, registered = _http("POST", url + "/v1/workers/register",
                               {"name": "fake"})
    assert status == 200
    worker = registered["worker"]
    status, task = _http("POST", "%s/v1/workers/%s/lease" % (url, worker))
    return worker, status, task


# -- wire protocol ----------------------------------------------------------


class TestProtocol:
    def test_scale_spec_roundtrip(self):
        spec = protocol.scale_spec("smoke", epochs=3, seed=7)
        scale = protocol.scale_from_spec(spec)
        assert scale.epochs == 3 and scale.seed == 7
        assert scale.epoch_size == ExperimentScale.smoke().epoch_size

    def test_scale_spec_rejects_unknowns(self):
        with pytest.raises(ValueError):
            protocol.scale_from_spec({"scale": "galactic"})
        with pytest.raises(ValueError):
            protocol.scale_from_spec({"scale": "smoke", "stride": 4})
        with pytest.raises(ValueError):
            protocol.scale_from_spec({"scale": "smoke", "epochs": "six"})

    def test_cell_spec_roundtrip_canonicalizes_policy(self):
        (cell,) = grid_cells(workloads=["art-mcf"], policies=["hill"])
        rebuilt = protocol.cell_from_spec(protocol.cell_spec(cell))
        assert rebuilt == cell
        assert rebuilt.policy == "HILL-WIPC"

    def test_cell_spec_rejects_malformed(self):
        with pytest.raises(ValueError):
            protocol.cell_from_spec({"workload": "art-mcf"})
        with pytest.raises(ValueError):
            protocol.cell_from_spec({"workload": "art-mcf",
                                     "policy": "ICOUNT", "seed": "zero"})
        with pytest.raises(ValueError):
            protocol.cell_from_spec("art-mcf/ICOUNT/s0")

    def test_service_events_disjoint_from_sweep_events(self):
        assert not set(protocol.SERVICE_EVENTS) & set(SWEEP_EVENTS)


# -- submit validation and flow control -------------------------------------


class TestSubmit:
    def test_submit_rejects_bad_grids(self, service):
        client = ServiceClient(service.url)
        for payload in (
            {"grid": {"workloads": ["no-such-workload"]}},
            {"grid": {"cores": 4}},
            {"cells": []},
            {},
        ):
            status, _headers, body = client._request(
                "POST", "/v1/sweeps", dict(payload, scale=SCALE_SPEC))
            assert status == 400, payload
        status, _headers, _body = client._request(
            "POST", "/v1/sweeps",
            {"grid": ONE_CELL, "scale": {"scale": "galactic"}})
        assert status == 400

    def test_queue_full_answers_429_with_retry_after(self, tmp_path):
        handle = ServiceHandle(ServiceConfig(
            state_dir=str(tmp_path / "s"), cache_dir=str(tmp_path / "c"),
            queue_limit=1)).start()
        try:
            client = ServiceClient(handle.url, client="flood")
            client.submit(grid=ONE_CELL, scale=SCALE_SPEC)
            with pytest.raises(SubmitRejected) as caught:
                client.submit(grid=dict(ONE_CELL, policies=["DCRA"]),
                              scale=SCALE_SPEC, retry=False)
            assert caught.value.status == 429
            assert caught.value.retry_after > 0
            assert handle.service.stats["rejected_queue_full"] == 1
        finally:
            handle.stop(drain=False)

    def test_oversized_job_is_a_400_not_a_deadlock(self, tmp_path):
        handle = ServiceHandle(ServiceConfig(
            state_dir=str(tmp_path / "s"), cache_dir=str(tmp_path / "c"),
            queue_limit=1)).start()
        try:
            client = ServiceClient(handle.url)
            with pytest.raises(ServiceError) as caught:
                client.submit(grid=dict(ONE_CELL,
                                        policies=["ICOUNT", "DCRA"]),
                              scale=SCALE_SPEC, retry=False)
            assert caught.value.status == 400
        finally:
            handle.stop(drain=False)

    def test_client_quota_answers_429(self, tmp_path):
        handle = ServiceHandle(ServiceConfig(
            state_dir=str(tmp_path / "s"), cache_dir=str(tmp_path / "c"),
            client_quota=1)).start()
        try:
            greedy = ServiceClient(handle.url, client="greedy")
            other = ServiceClient(handle.url, client="other")
            greedy.submit(grid=ONE_CELL, scale=SCALE_SPEC)
            with pytest.raises(SubmitRejected) as caught:
                greedy.submit(grid=dict(ONE_CELL, policies=["DCRA"]),
                              scale=SCALE_SPEC, retry=False)
            assert caught.value.status == 429
            # The quota is per client: another client still gets in.
            other.submit(grid=dict(ONE_CELL, policies=["DCRA"]),
                         scale=SCALE_SPEC)
        finally:
            handle.stop(drain=False)

    def test_draining_daemon_answers_503(self, service):
        client = ServiceClient(service.url)
        service.service.draining = True
        with pytest.raises(SubmitRejected) as caught:
            client.submit(grid=ONE_CELL, scale=SCALE_SPEC, retry=False)
        assert caught.value.status == 503


# -- leases, heartbeats, results --------------------------------------------


class TestLeases:
    def test_lease_heartbeat_and_result_lifecycle(self, service):
        client = ServiceClient(service.url)
        record = client.submit(grid=ONE_CELL, scale=SCALE_SPEC)
        worker, status, task = lease_one(service.url)
        assert status == 200
        assert task["attempt"] == 1
        assert task["cell"] == {"workload": "art-mcf", "policy": "ICOUNT",
                                "seed": 0, "epochs": 2}
        status, _body = _http(
            "POST", "%s/v1/workers/%s/heartbeat" % (service.url, worker),
            {"key": task["key"]})
        assert status == 200
        # A heartbeat for a key this worker does not hold is Gone.
        status, _body = _http(
            "POST", "%s/v1/workers/%s/heartbeat" % (service.url, worker),
            {"key": "f" * 64})
        assert status == 410
        assert not client.status(record["job"])["state"] == "done"

    def test_abandoned_lease_expires_then_quarantines(self, service):
        client = ServiceClient(service.url)
        record = client.submit(grid=ONE_CELL, scale=SCALE_SPEC)
        # max_attempts=2: abandon the lease twice, never heartbeat.
        for expected_attempt in (1, 2):
            worker, status, task = None, None, None
            for _poll in range(200):
                worker, status, task = lease_one(service.url)
                if status == 200:
                    break
                time.sleep(0.02)
            assert status == 200
            assert task["attempt"] == expected_attempt
        done = client.wait(record["job"], deadline=30.0)
        assert done["quarantined"] == 1
        stats = client.stats()
        assert stats["lease_expiries"] >= 2
        assert stats["quarantined"] == 1
        # The quarantine landed in the same append-only ledger format.
        entries = QuarantineLedger(os.path.join(
            service.service.state_dir, "quarantine.jsonl")).entries()
        assert [entry["cell"] for entry in entries] == ["art-mcf/ICOUNT/s0"]
        assert entries[0]["attempts"] == 2
        assert entries[0]["key"] == task["key"]
        # The merged document carries the quarantined section.
        document = json.loads(client.result(record["job"]))
        assert document["cells"] == []
        (row,) = document["quarantined"]
        assert row["workload"] == "art-mcf" and row["policy"] == "ICOUNT"
        assert row["attempts"] == 2
        assert row["last_error"].startswith("LeaseExpired")

    def test_torn_result_upload_is_rejected_and_charged(self, service):
        client = ServiceClient(service.url)
        client.submit(grid=ONE_CELL, scale=SCALE_SPEC)
        worker, status, task = lease_one(service.url)
        assert status == 200
        status, body = _http(
            "POST", "%s/v1/workers/%s/result" % (service.url, worker),
            {"key": task["key"], "ok": True,
             "result": {"workload": "art-mcf"}})
        assert status == 400
        assert body["error"] == "invalid-result"
        stats = client.stats()
        assert stats["invalid_results"] == 1
        assert stats["retries"] == 1
        # Nothing reached the content-addressed cache.
        assert ResultCache(service.service.config.cache_dir).info().entries \
            == 0

    def test_worker_reported_failure_requeues(self, service):
        client = ServiceClient(service.url)
        client.submit(grid=ONE_CELL, scale=SCALE_SPEC)
        worker, status, task = lease_one(service.url)
        assert status == 200
        status, body = _http(
            "POST", "%s/v1/workers/%s/result" % (service.url, worker),
            {"key": task["key"], "ok": False, "error": "sim exploded"})
        assert status == 200 and body["requeued"]
        assert client.stats()["worker_failures"] == 1

    def test_result_for_unknown_task_is_404(self, service):
        worker, _status, _task = lease_one(service.url)
        status, _body = _http(
            "POST", "%s/v1/workers/%s/result" % (service.url, worker),
            {"key": "0" * 64, "ok": True, "result": {}})
        assert status == 404

    def test_lease_pool_empty_is_204(self, service):
        _worker, status, task = lease_one(service.url)
        assert status == 204 and task is None


# -- end-to-end byte identity -----------------------------------------------


class TestEndToEnd:
    def test_service_sweep_matches_serial_reference(self, service,
                                                    tmp_path):
        client = ServiceClient(service.url, client="e2e")
        record = client.submit(grid=ONE_CELL, scale=SCALE_SPEC)
        thread = threading.Thread(
            target=run_worker,
            kwargs=dict(server_url=service.url, max_cells=1), daemon=True)
        thread.start()
        client.wait(record["job"], deadline=60.0)
        thread.join(timeout=30.0)
        text = client.result(record["job"])

        cells = grid_cells(**ONE_CELL)
        scale = ExperimentScale.smoke()
        engine = SweepEngine(scale, jobs=1,
                             cache_dir=str(tmp_path / "ref"))
        reference = merged_json(cells, engine.run_cells(cells), scale)
        assert text == reference

        # Same grid again: everything is a cache hit, no worker needed.
        again = client.submit(grid=ONE_CELL, scale=SCALE_SPEC)
        assert again["done"] and again["cached"] == 1
        assert client.result(again["job"]) == reference
        events = list(client.events(again["job"]))
        assert [event["event"] for event in events] == [
            "job-accepted", "cell-cached", "sweep-start", "sweep-done",
            "job-done"]

        # Cache transport: raw object bytes come back byte-for-byte.
        (cell,) = cells
        key = cache_key(cell, scale)
        cache = ResultCache(service.service.config.cache_dir)
        with open(cache._path(key), "rb") as handle:
            assert client.cache_object(key) == handle.read()

    def test_event_stream_offsets_and_unknown_job(self, service):
        client = ServiceClient(service.url)
        record = client.submit(grid=ONE_CELL, scale=SCALE_SPEC)
        service.service.jobs[record["job"]].done = True  # stop the stream
        events = list(client.events(record["job"]))
        assert events[0]["event"] == "job-accepted"
        tail = list(client.events(record["job"], offset=len(events) - 1))
        assert tail == events[-1:]
        with pytest.raises(ServiceError) as caught:
            client.status("job-999999")
        assert caught.value.status == 404


# -- drain and restart ------------------------------------------------------


class TestDrainRestart:
    def test_drained_queue_resumes_to_identical_output(self, tmp_path):
        state = str(tmp_path / "state")
        cache = str(tmp_path / "cache")
        first = ServiceHandle(ServiceConfig(
            state_dir=state, cache_dir=cache)).start()
        client = ServiceClient(first.url, client="drain")
        record = client.submit(grid=ONE_CELL, scale=SCALE_SPEC)
        first.stop(drain=True)
        assert os.path.exists(os.path.join(state, "queue-state.json"))

        second = ServiceHandle(ServiceConfig(
            state_dir=state, cache_dir=cache)).start()
        try:
            client = ServiceClient(second.url, client="drain")
            status = client.status(record["job"])
            assert status["state"] == "running" and status["pending"] == 1
            events = [event["event"] for event in
                      second.service.jobs[record["job"]].events]
            assert events[0] == "service-resumed"
            thread = threading.Thread(
                target=run_worker,
                kwargs=dict(server_url=second.url, max_cells=1),
                daemon=True)
            thread.start()
            client.wait(record["job"], deadline=60.0)
            thread.join(timeout=30.0)
            text = client.result(record["job"])
        finally:
            second.stop(drain=False)

        cells = grid_cells(**ONE_CELL)
        scale = ExperimentScale.smoke()
        engine = SweepEngine(scale, jobs=1, cache_dir=str(tmp_path / "r"))
        assert text == merged_json(cells, engine.run_cells(cells), scale)

    def test_done_jobs_survive_restart(self, tmp_path):
        state = str(tmp_path / "state")
        cache = str(tmp_path / "cache")
        first = ServiceHandle(ServiceConfig(
            state_dir=state, cache_dir=cache)).start()
        client = ServiceClient(first.url)
        record = client.submit(grid=ONE_CELL, scale=SCALE_SPEC)
        worker, status, task = lease_one(first.url)
        from repro.experiments.parallel import _execute_cell

        (cell,) = grid_cells(**ONE_CELL)
        result, resumed = _execute_cell(
            cell, protocol.scale_from_spec(task["scale"]),
            task["resume_dir"])
        status, _body = _http(
            "POST", "%s/v1/workers/%s/result" % (first.url, worker),
            {"key": task["key"], "ok": True, "result": result.to_dict(),
             "resumed": resumed})
        assert status == 200
        text = client.result(record["job"])
        # A late duplicate upload is a silent no-op.
        status, body = _http(
            "POST", "%s/v1/workers/%s/result" % (first.url, worker),
            {"key": task["key"], "ok": True, "result": result.to_dict(),
             "resumed": resumed})
        assert status == 200 and body.get("duplicate")
        first.stop(drain=True)

        second = ServiceHandle(ServiceConfig(
            state_dir=state, cache_dir=cache)).start()
        try:
            client = ServiceClient(second.url)
            assert client.status(record["job"])["state"] == "done"
            assert client.result(record["job"]) == text
        finally:
            second.stop(drain=False)

    def test_torn_journal_line_does_not_block_restart(self, tmp_path,
                                                      capsys):
        state = str(tmp_path / "state")
        first = ServiceHandle(ServiceConfig(
            state_dir=state, cache_dir=str(tmp_path / "cache"))).start()
        ServiceClient(first.url).submit(grid=ONE_CELL, scale=SCALE_SPEC)
        first.stop(drain=True)
        with open(os.path.join(state, "jobs.jsonl"), "a") as handle:
            handle.write('{"job": "job-0000')  # torn mid-append
        second = ServiceHandle(ServiceConfig(
            state_dir=state, cache_dir=str(tmp_path / "cache"))).start()
        try:
            assert ServiceClient(second.url).status(
                "job-000001")["state"] == "running"
        finally:
            second.stop(drain=False)
        assert "skipping corrupt quarantine-ledger line" \
            in capsys.readouterr().err


# -- event tables -----------------------------------------------------------


class TestEventTables:
    def test_cli_renderers_cover_exactly_the_event_tables(self):
        from repro.cli import _EVENT_RENDERERS, _SERVICE_EVENT_RENDERERS

        assert set(_EVENT_RENDERERS) == set(SWEEP_EVENTS)
        assert set(_SERVICE_EVENT_RENDERERS) == set(
            protocol.SERVICE_EVENTS)

    def test_service_rejects_unknown_event_names(self, service):
        job = type("J", (), {"events": []})()
        with pytest.raises(ValueError):
            service.service._emit(job, "cell-teleported")

    def test_engine_and_supervisor_reject_unknown_event_names(self,
                                                              tmp_path):
        engine = SweepEngine(ExperimentScale.smoke(), jobs=1,
                             cache_dir=str(tmp_path / "c"))
        with pytest.raises(ValueError):
            engine._emit("cell-teleported")
