"""Fingerprint coverage auditor tests over the fixture package: a clean
spec stays clean, and each seeded perturbation trips its rule."""

import os

import pytest

from repro.analysis.lint.fingerprints import FingerprintSpec, \
    audit_fingerprints
from repro.analysis.lint.importgraph import build_graph

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
PKG_ROOT = os.path.join(FIXTURES, "lintpkg")

#: A spec that exactly covers the fixture tree's closures.
CLEAN = dict(
    core_entries=("runner.py",),
    core_sources=("__init__.py", "runner.py", "helper.py", "extra.py",
                  "good.py", "base.py"),
    family_entries={"A": ("fam_a.py",), "GHOST": ("afdep.py",)},
    family_sources={"A": ("fam_a.py", "afdep.py"),
                    "GHOST": ("afdep.py",)},
)


@pytest.fixture(scope="module")
def graph():
    return build_graph(PKG_ROOT, "lintpkg")


def audit(graph, **overrides):
    spec = dict(CLEAN)
    spec.update(overrides)
    return audit_fingerprints(graph, FingerprintSpec(**spec))


def rules(findings):
    return sorted({f.rule for f in findings})


def test_clean_spec_has_no_findings(graph):
    assert audit(graph) == []


def test_missing_closure_file_is_fp001(graph):
    findings = audit(graph, core_sources=(
        "__init__.py", "runner.py", "helper.py", "good.py", "base.py"))
    assert rules(findings) == ["FP001"]
    (finding,) = findings
    assert finding.path == "extra.py"
    assert "helper.py:3" in finding.message  # the witness import site


def test_missing_family_entry_names_the_file(graph):
    findings = audit(graph, family_sources={"A": ("fam_a.py",),
                                            "GHOST": ("afdep.py",)})
    assert any(f.rule == "FP001" and f.path == "afdep.py"
               for f in findings)


def test_unreachable_file_entry_is_fp002_warning(graph):
    findings = audit(graph, core_sources=CLEAN["core_sources"]
                     + ("nondet.py",))
    assert rules(findings) == ["FP002"]
    (finding,) = findings
    assert finding.severity == "warning"
    assert finding.path == "nondet.py"


def test_nonexistent_entry_is_fp003(graph):
    findings = audit(graph, core_sources=CLEAN["core_sources"]
                     + ("ghost_module.py",))
    assert "FP003" in rules(findings)


def test_family_map_disagreement_is_fp004(graph):
    findings = audit(graph, family_entries={"A": ("fam_a.py",)})
    assert any(f.rule == "FP004" and "'GHOST'" in f.message
               for f in findings)


def test_entry_hashed_by_nobody_is_fp004(graph):
    findings = audit(graph, family_sources={"A": (), "GHOST": ("afdep.py",)})
    assert any(f.rule == "FP004" and "'fam_a.py'" in f.message
               for f in findings)


def test_unmarked_reexport_in_closure_is_fp005(graph):
    findings = audit(
        graph,
        core_entries=("reexport_user.py",),
        core_sources=("__init__.py", "reexport_user.py"))
    (finding,) = [f for f in findings if f.rule == "FP005"]
    assert (finding.path, finding.line) == ("reexport_user.py", 3)
    assert "'BasePolicy'" in finding.message


def test_allowlisted_reexport_is_silent(graph):
    # runner.py's ``from lintpkg import BasePolicy`` carries the marker.
    assert audit(graph) == []


def test_dispatch_to_unknown_family_is_fp006(graph):
    findings = audit(graph,
                     family_entries={"A": ("fam_a.py",)},
                     family_sources={"A": ("fam_a.py", "afdep.py")})
    assert any(f.rule == "FP006" and "GHOST" in f.message
               for f in findings)


def test_dispatch_target_outside_family_sources_is_fp006(graph):
    # GHOST's spec stops hashing afdep.py, but lazy.py still dispatches
    # to it under the GHOST marker.
    findings = audit(graph,
                     family_entries={"A": ("fam_a.py",),
                                     "GHOST": ("extra.py",)},
                     family_sources={"A": ("fam_a.py", "afdep.py"),
                                     "GHOST": ("extra.py",)})
    assert any(f.rule == "FP006" and f.path == "lazy.py"
               for f in findings)
