"""Tests for the Table 2/3 characteristics derivation."""

import pytest

from repro.analysis.characteristics import (
    derive_freq_label,
    requirement_series,
    resource_requirement,
    workload_label,
)
from repro.pipeline.config import SMTConfig
from repro.workloads.mixes import get_workload
from repro.workloads.spec2000 import get_profile


class TestFreqLabel:
    def test_constant_series_is_no(self):
        assert derive_freq_label([64, 64, 64, 64], 128) == "No"

    def test_small_wiggle_is_no(self):
        assert derive_freq_label([64, 66, 63, 65], 128) == "No"

    def test_occasional_change_is_low(self):
        series = [32] * 6 + [96] * 6
        assert derive_freq_label(series, 128) == "Low"

    def test_constant_toggle_is_high(self):
        series = [32, 96] * 6
        assert derive_freq_label(series, 128) == "High"

    def test_needs_two_epochs(self):
        with pytest.raises(ValueError):
            derive_freq_label([64], 128)


class TestWorkloadLabel:
    def test_small_two_thread(self):
        assert workload_label(get_workload("apsi-eon")) == "SM"  # 209 <= 256

    def test_large_high(self):
        # art-vpr: 176 + 180 = 356 > 256, vpr is High.
        assert workload_label(get_workload("art-vpr")) == "LG(H)"

    def test_large_low(self):
        # art-mcf: 273 > 256; mcf is Low, art is No.
        assert workload_label(get_workload("art-mcf")) == "LG(L)"

    def test_large_low_and_high(self):
        # mcf-twolf: 281 > 256; mcf Low + twolf High.
        assert workload_label(get_workload("mcf-twolf")) == "LG(LH)"

    def test_four_thread_threshold(self):
        # apsi-eon-fma3d-gcc: 209 + 184 = 393 <= 440 -> SM.
        assert workload_label(get_workload("apsi-eon-fma3d-gcc")) == "SM"
        # ammp-applu-art-mcf: 558 > 440, contains Low (mcf) + High (ammp).
        assert workload_label(get_workload("ammp-applu-art-mcf")) == "LG(LH)"

    def test_measured_rsc_override(self):
        workload = get_workload("apsi-eon")
        label = workload_label(
            workload, measured_rsc={"apsi": 200, "eon": 200})
        assert label.startswith("LG")

    def test_custom_threshold(self):
        workload = get_workload("apsi-eon")
        assert workload_label(workload, total=100).startswith("LG")


@pytest.mark.slow
class TestMeasuredRequirements:
    def test_mem_needs_more_than_serial_mem(self):
        """art (bursty, high MLP) needs a larger partition than lucas
        (serial chaser) — the Table 2 ordering."""
        config = SMTConfig.tiny()
        art = resource_requirement(get_profile("art"), config, warmup=3000,
                                   window=4000, step=4)
        lucas = resource_requirement(get_profile("lucas"), config,
                                     warmup=3000, window=4000, step=4)
        assert art >= lucas

    def test_requirement_bounded_by_pool(self):
        config = SMTConfig.tiny()
        value = resource_requirement(get_profile("gzip"), config,
                                     warmup=3000, window=4000, step=8)
        assert config.min_partition <= value <= config.rename_int

    def test_requirement_series_shape(self):
        config = SMTConfig.tiny()
        series = requirement_series(get_profile("gzip"), config,
                                    warmup=2000, window=1500, epochs=4,
                                    step=8)
        assert len(series) == 4
        assert all(config.min_partition <= value <= config.rename_int
                   for value in series)
