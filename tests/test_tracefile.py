"""Tests for trace recording and replay."""

import pytest

from repro.pipeline.config import SMTConfig
from repro.pipeline.processor import SMTProcessor
from repro.policies.icount import ICountPolicy
from repro.workloads.generator import Instruction, OpClass, SyntheticStream
from repro.workloads.spec2000 import get_profile
from repro.workloads.tracefile import (
    TraceStream,
    format_instruction,
    parse_instruction,
    record_trace,
)


@pytest.fixture
def trace_path(tmp_path):
    path = tmp_path / "gzip.trace"
    stream = SyntheticStream(get_profile("gzip"), 0, seed=4)
    record_trace(stream, 400, str(path))
    return str(path)


class TestFormat:
    def test_roundtrip(self):
        original = Instruction(0, 7, OpClass.LOAD, False, (3, 5), 4096,
                               False, 12345)
        parsed = parse_instruction(format_instruction(original), 0)
        assert parsed.seq == 7
        assert parsed.op == OpClass.LOAD
        assert parsed.srcs == (3, 5)
        assert parsed.addr == 12345

    def test_no_sources(self):
        original = Instruction(0, 0, OpClass.IALU, False, (), 0)
        parsed = parse_instruction(format_instruction(original), 0)
        assert parsed.srcs == ()
        assert parsed.addr is None

    def test_branch_taken(self):
        original = Instruction(0, 1, OpClass.BRANCH, False, (), 64, True)
        parsed = parse_instruction(format_instruction(original), 0)
        assert parsed.taken is True

    def test_bad_line_rejected(self):
        with pytest.raises(ValueError):
            parse_instruction("1 2 3", 0)

    def test_bad_op_rejected(self):
        with pytest.raises(ValueError):
            parse_instruction("0 WAT 0 - 0 0 -", 0)


class TestTraceStream:
    def test_replays_recorded_instructions(self, trace_path):
        reference = SyntheticStream(get_profile("gzip"), 0, seed=4)
        replay = TraceStream(trace_path)
        for __ in range(400):
            expected = reference.next_instruction()
            actual = replay.next_instruction()
            assert (expected.op, expected.srcs, expected.pc, expected.taken,
                    expected.addr) == (actual.op, actual.srcs, actual.pc,
                                       actual.taken, actual.addr)

    def test_wrap_keeps_seq_increasing(self, trace_path):
        replay = TraceStream(trace_path, wrap=True)
        seqs = [replay.next_instruction().seq for __ in range(900)]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 900

    def test_wrapped_sources_stay_older(self, trace_path):
        replay = TraceStream(trace_path, wrap=True)
        for __ in range(1000):
            instr = replay.next_instruction()
            assert all(src < instr.seq for src in instr.srcs)

    def test_no_wrap_raises(self, trace_path):
        replay = TraceStream(trace_path, wrap=False)
        with pytest.raises(StopIteration):
            for __ in range(500):
                replay.next_instruction()

    def test_len(self, trace_path):
        assert len(TraceStream(trace_path)) == 400

    def test_empty_trace_rejected(self, tmp_path):
        path = tmp_path / "empty.trace"
        path.write_text("# nothing here\n")
        with pytest.raises(ValueError):
            TraceStream(str(path))

    def test_snapshot_restore(self, trace_path):
        replay = TraceStream(trace_path)
        for __ in range(10):
            replay.next_instruction()
        state = replay.snapshot()
        first = replay.next_instruction().seq
        replay.restore(state)
        assert replay.next_instruction().seq == first


class TestTraceDrivenProcessor:
    def test_processor_runs_from_trace(self, trace_path):
        profile = get_profile("gzip")
        proc = SMTProcessor(
            SMTConfig.tiny(), [profile], seed=0, policy=ICountPolicy(),
            streams=[TraceStream(trace_path)],
        )
        proc.run(2000)
        assert proc.stats.committed[0] > 0
        assert proc.check_invariants()

    def test_trace_and_generator_agree(self, trace_path):
        """Driving the pipeline from the recorded trace commits the same
        instructions as the live generator, until the trace wraps."""
        profile = get_profile("gzip")
        live = SMTProcessor(SMTConfig.tiny(), [profile], seed=4,
                            policy=ICountPolicy())
        replayed = SMTProcessor(
            SMTConfig.tiny(), [profile], seed=0, policy=ICountPolicy(),
            streams=[TraceStream(trace_path)],
        )
        # 400 recorded instructions at IPC < 2 keep us inside the trace
        # for a couple hundred cycles.
        live.run(150)
        replayed.run(150)
        assert live.stats.committed == replayed.stats.committed

    def test_stream_count_mismatch_rejected(self, trace_path):
        with pytest.raises(ValueError):
            SMTProcessor(
                SMTConfig.tiny(),
                [get_profile("gzip"), get_profile("eon")],
                streams=[TraceStream(trace_path)],
            )
