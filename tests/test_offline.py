"""Tests for the OFF-LINE exhaustive learner."""

import pytest

from repro.core.metrics import AvgIPC, WeightedIPC
from repro.core.offline import OfflineEpoch, OfflineExhaustiveLearner
from repro.core.partition import grid_size
from repro.pipeline.config import SMTConfig
from repro.pipeline.processor import SMTProcessor
from repro.policies.static_partition import StaticPartitionPolicy
from repro.workloads.spec2000 import get_profile


def make_learner(benchmarks=("art", "gzip"), stride=8, metric=None,
                 single_ipcs=None, epoch_size=1024, seed=1):
    profiles = [get_profile(name) for name in benchmarks]
    proc = SMTProcessor(SMTConfig.tiny(), profiles, seed=seed,
                        policy=StaticPartitionPolicy())
    proc.run(2000)
    return OfflineExhaustiveLearner(
        proc, epoch_size, metric=metric or AvgIPC(),
        single_ipcs=single_ipcs, stride=stride,
    )


class TestSearch:
    def test_curve_covers_the_grid(self):
        learner = make_learner(stride=8)
        epoch = learner.run_epoch()
        config = SMTConfig.tiny()
        expected = grid_size(2, config.rename_int, config.min_partition, 8)
        assert len(epoch.curve) == expected

    def test_best_is_curve_argmax(self):
        learner = make_learner()
        epoch = learner.run_epoch()
        best_shares, best_value, __ = max(epoch.curve, key=lambda e: e[1])
        assert epoch.best_value == best_value
        assert epoch.best_shares == best_shares

    def test_advances_with_best_partitioning(self):
        learner = make_learner()
        epoch = learner.run_epoch()
        assert learner.proc.partitions.shares == list(epoch.best_shares)

    def test_epoch_ids_increment(self):
        learner = make_learner()
        epochs = learner.run(3)
        assert [epoch.epoch_id for epoch in epochs] == [0, 1, 2]

    def test_committed_epoch_consistent_with_trial(self):
        """The committed run equals the best trial's execution exactly
        (checkpoint determinism)."""
        learner = make_learner()
        epoch = learner.run_epoch()
        trial_ipcs = next(
            ipcs for shares, __, ipcs in epoch.curve
            if shares == epoch.best_shares
        )
        assert epoch.result.ipcs == pytest.approx(trial_ipcs)

    def test_curve_over_first_share_sorted(self):
        learner = make_learner()
        epoch = learner.run_epoch()
        points = epoch.curve_over_first_share()
        shares = [share for share, __ in points]
        assert shares == sorted(shares)

    def test_weighted_metric_uses_singles(self):
        learner = make_learner(metric=WeightedIPC(), single_ipcs=[1.0, 2.0])
        epoch = learner.run_epoch()
        assert isinstance(epoch, OfflineEpoch)
        assert epoch.best_value > 0

    def test_overall_ipcs_only_counts_committed_epochs(self):
        learner = make_learner()
        learner.run(2)
        ipcs = learner.overall_ipcs()
        committed, cycles = learner.proc.stats.delta_since(
            learner._start_stats)
        assert cycles == 2 * 1024  # trials are free
        assert ipcs == pytest.approx([count / cycles for count in committed])

    def test_offline_never_loses_to_any_fixed_grid_point(self):
        """Per-epoch exhaustive choice can never lose to any fixed
        partitioning drawn from the same grid (superset of choices on the
        same checkpoints)."""
        learner = make_learner(stride=8)
        epochs = learner.run(3)
        grid = [shares for shares, __, __ in epochs[0].curve]
        offline_total = sum(epoch.best_value for epoch in epochs)
        for fixed in grid:
            fixed_total = sum(
                next(value for shares, value, __ in epoch.curve
                     if shares == fixed)
                for epoch in epochs
            )
            assert offline_total >= fixed_total - 1e-12
