"""The ``repro serve`` daemon: leases, quotas, backpressure, drain.

One asyncio event loop owns all state, so there are no locks: every
mutation happens between awaits.  The daemon is a *scheduler*, not a
simulator — workers pull cells over HTTP, simulate them through the
same ``_execute_cell`` path the process pool uses, and upload
``RunResult`` payloads which the daemon validates (the supervisor's
``_validate_cell_value`` contract) and stores in the content-addressed
:class:`~repro.experiments.parallel.ResultCache`.  Merged job results
are then *read back from the cache* in request order and serialized by
:func:`~repro.experiments.parallel.merged_json` — which is why a
service sweep is byte-identical to a serial in-process one: identity
lives in the cache key, the service only moves bytes.

Failure containment mirrors :class:`CellSupervisor`, lifted from
process level to node level:

* a **lease** (deadline renewed by worker heartbeats) bounds how long a
  dead or stalled node can sit on a cell; expiry reclaims the cell,
  charges one attempt, and requeues it after the same deterministic
  :func:`~repro.reliability.supervisor.backoff_delay`;
* repeat offenders land in the same append-only ``quarantine.jsonl``
  ledger format, and the sweep completes around them;
* an over-full queue answers 429 with ``Retry-After`` (backpressure),
  and per-client quotas keep one client from starving the rest;
* SIGTERM drains: no new jobs or leases, in-flight cells get a grace
  period to finish (or their checkpoints survive in ``resume_dir``),
  then the queue persists to ``state_dir`` and a restarted daemon
  resumes it (see docs/SERVICE.md for the walkthrough).
"""

import asyncio
import json
import os
import tempfile
import threading
import time

from repro.experiments.parallel import (
    ResultCache,
    _validate_cell_value,
    cache_key,
    grid_cells,
    merged_json,
)
from repro.experiments.runner import RunResult
from repro.reliability.supervisor import (
    SWEEP_EVENTS,
    QuarantineLedger,
    backoff_delay,
)
from repro.service import protocol
from repro.service.httpd import (
    BadRequest,
    read_request,
    send_response,
    start_ndjson_stream,
)

_VALID_EVENTS = frozenset(SWEEP_EVENTS) | frozenset(protocol.SERVICE_EVENTS)


class ServiceConfig:
    """Tunables of one daemon instance.

    ``queue_limit`` bounds the total backlog (queued + waiting + leased
    cells) across all jobs; ``client_quota`` bounds one client's share
    of it.  ``lease_timeout`` is the heartbeat staleness after which a
    worker is presumed dead; ``max_attempts``/``retry_*`` mirror the
    :class:`~repro.reliability.supervisor.Supervision` defaults.
    ``state_dir`` holds the job journal, the queue snapshot, the
    quarantine ledger and the shared ``resume`` checkpoints — give
    every daemon its own.
    """

    def __init__(self, host="127.0.0.1", port=0, cache_dir=None,
                 state_dir=None, queue_limit=1024, client_quota=256,
                 lease_timeout=30.0, max_attempts=3, retry_base_delay=0.05,
                 retry_max_delay=5.0, tick_interval=0.1, drain_grace=5.0,
                 retry_after=1, seed=0):
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if client_quota < 1:
            raise ValueError("client_quota must be >= 1")
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.host = host
        self.port = port
        self.cache_dir = cache_dir
        self.state_dir = state_dir or tempfile.mkdtemp(prefix="repro-serve-")
        self.queue_limit = queue_limit
        self.client_quota = client_quota
        self.lease_timeout = lease_timeout
        self.max_attempts = max_attempts
        self.retry_base_delay = retry_base_delay
        self.retry_max_delay = retry_max_delay
        self.tick_interval = tick_interval
        self.drain_grace = drain_grace
        self.retry_after = retry_after
        self.seed = seed


class _Task:
    """One unique cache key's worth of work, shared across jobs."""

    __slots__ = ("key", "cell", "scale", "scale_spec", "state", "attempts",
                 "failures", "worker", "lease_deadline", "not_before",
                 "jobs")

    def __init__(self, key, cell, scale, scale_spec):
        self.key = key
        self.cell = cell
        self.scale = scale
        self.scale_spec = scale_spec
        self.state = "queued"   # queued | waiting | leased | done | quarantined
        self.attempts = 0       # failed attempts so far
        self.failures = []
        self.worker = None
        self.lease_deadline = None
        self.not_before = None
        self.jobs = set()


class _Job:
    """One submitted sweep: request-order cells plus live progress."""

    def __init__(self, job_id, client, cells, keys, scale, scale_spec):
        self.id = job_id
        self.client = client
        self.cells = cells
        self.keys = keys
        self.scale = scale
        self.scale_spec = scale_spec
        self.pending = set()
        self.cached = 0
        self.quarantined = {}   # key -> ledger entry
        self.events = []
        self.done = False
        self.started = time.time()  # repro: allow-nondeterminism[ND101] (job wall-clock metadata)

    @property
    def total(self):
        return len(dict.fromkeys(self.keys))


class SweepService:
    """The daemon's state machine; all methods run on one event loop."""

    # The locking discipline is "every mutation happens between awaits":
    # these roots (`self.<root>` and the locals aliasing their entries)
    # must never be mutated on both sides of an `await` in one coroutine
    # without a lock.  Enforced by `repro lint` rule AS303.
    # repro: guarded-state[tasks, jobs, workers, _ready, draining, task, job, entry]

    def __init__(self, config):
        self.config = config
        self.cache = ResultCache(config.cache_dir)
        self.state_dir = config.state_dir
        self.resume_dir = os.path.join(self.state_dir, "resume")
        self.ledger = QuarantineLedger(
            os.path.join(self.state_dir, "quarantine.jsonl"))
        self._journal_path = os.path.join(self.state_dir, "jobs.jsonl")
        self._snapshot_path = os.path.join(self.state_dir,
                                           "queue-state.json")
        self.jobs = {}
        self.tasks = {}
        self.workers = {}
        self._ready = []        # FIFO of task keys in state "queued"
        self._connections = set()
        self._job_seq = 0
        self._worker_seq = 0
        self.draining = False
        self.stats = {
            "jobs_submitted": 0, "jobs_done": 0, "cells_completed": 0,
            "cache_hits": 0, "leases": 0, "lease_expiries": 0,
            "retries": 0, "quarantined": 0, "invalid_results": 0,
            "worker_failures": 0, "duplicate_results": 0,
            "rejected_queue_full": 0, "rejected_quota": 0,
        }
        self._server = None
        self._tick_task = None
        self.port = None

    # -- lifecycle -------------------------------------------------------

    async def start(self):
        os.makedirs(self.state_dir, exist_ok=True)
        os.makedirs(self.resume_dir, exist_ok=True)
        self._restore()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._tick_task = asyncio.ensure_future(self._tick_loop())
        return self

    async def shutdown(self, drain=True):
        """Stop accepting work; optionally wait for in-flight leases,
        then snapshot the queue so a restart resumes it."""
        if self.draining:
            return
        self.draining = True
        for job in self.jobs.values():
            if not job.done:
                self._emit(job, "service-draining",
                           pending=len(job.pending))
        if drain:
            deadline = time.monotonic() + self.config.drain_grace  # repro: allow-nondeterminism[ND101] (drain grace timer)
            while (any(task.state == "leased"
                       for task in self.tasks.values())
                   and time.monotonic() < deadline):  # repro: allow-nondeterminism[ND101] (drain grace timer)
                await asyncio.sleep(self.config.tick_interval)
        self._snapshot_queue()
        if self._tick_task is not None:
            self._tick_task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._connections):
            try:
                writer.close()
            except Exception:
                pass

    # -- persistence -----------------------------------------------------

    def _journal(self, record):
        with open(self._journal_path, "a") as handle:  # repro: allow-async[AS301] bounded local journal append
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    def _snapshot_queue(self):
        """Atomically persist every unresolved task (leased ones count
        as queued: if their worker survives it may still upload a late,
        valid result; if not, the cell re-runs from its checkpoint)."""
        unresolved = {}
        for key, task in self.tasks.items():
            if task.state in ("queued", "waiting", "leased"):
                unresolved[key] = {
                    "cell": protocol.cell_spec(task.cell),
                    "scale": task.scale_spec,
                    "attempts": task.attempts,
                    "failures": task.failures,
                }
        snapshot = {"tasks": unresolved}
        tmp = self._snapshot_path + ".tmp.%d" % os.getpid()
        with open(tmp, "w") as handle:  # repro: allow-async[AS301] drain-time snapshot to local tmp file
            json.dump(snapshot, handle, sort_keys=True)
        os.replace(tmp, self._snapshot_path)

    def _restore(self):
        """Rebuild jobs from the journal and tasks from the snapshot.

        The journal and ledger are read through the torn-line-tolerant
        JSONL reader, so a crash mid-append never blocks a restart.
        Cells whose results landed in the cache before the restart are
        served from it; ledger-quarantined cells stay quarantined; the
        rest requeue (with their snapshot attempt counts when a drain
        wrote one).
        """
        records = QuarantineLedger(self._journal_path).entries()
        if not records:
            return
        snapshot = {}
        try:
            with open(self._snapshot_path) as handle:  # repro: allow-async[AS301] startup restore, before serving
                snapshot = json.load(handle).get("tasks", {})
        except (OSError, ValueError):
            snapshot = {}
        try:
            os.remove(self._snapshot_path)
        except OSError:
            pass
        quarantined_by_key = {entry.get("key"): entry
                              for entry in self.ledger.entries()
                              if entry.get("key")}
        done_ids = {rec["job"] for rec in records if rec.get("done")}
        for rec in records:
            if rec.get("done") or "job" not in rec or rec["job"] in self.jobs:
                continue
            try:
                scale = protocol.scale_from_spec(rec["scale"])
                cells = [protocol.cell_from_spec(spec)
                         for spec in rec["cells"]]
            except (KeyError, ValueError):
                continue  # a journal record from an incompatible version
            keys = [cache_key(cell, scale) for cell in cells]
            job = _Job(rec["job"], rec.get("client", "anonymous"), cells,
                       keys, scale, rec["scale"])
            self.jobs[job.id] = job
            seq = int(rec["job"].rsplit("-", 1)[-1]) \
                if rec["job"].rsplit("-", 1)[-1].isdigit() else 0
            self._job_seq = max(self._job_seq, seq)
            if rec["job"] in done_ids:
                job.done = True
                for key in dict.fromkeys(keys):
                    if key in quarantined_by_key:
                        job.quarantined[key] = quarantined_by_key[key]
                continue
            for cell, key in zip(cells, keys):
                if key in job.pending or key in job.quarantined:
                    continue
                if key in quarantined_by_key:
                    job.quarantined[key] = quarantined_by_key[key]
                    continue
                if self.cache.get(key) is not None:
                    job.cached += 1
                    continue
                job.pending.add(key)
                task = self.tasks.get(key)
                if task is None:
                    task = _Task(key, cell, scale, rec["scale"])
                    saved = snapshot.get(key)
                    if saved:
                        task.attempts = int(saved.get("attempts", 0))
                        task.failures = list(saved.get("failures", []))
                    self.tasks[key] = task
                    self._ready.append(key)
                task.jobs.add(job.id)
            self._emit(job, "service-resumed", pending=len(job.pending),
                       cached=job.cached)
            self._emit(job, "sweep-start", total=job.total,
                       cached=job.cached, pending=len(job.pending),
                       jobs=len(self.workers))
            if not job.pending:
                self._finish_job(job)

    # -- events ----------------------------------------------------------

    def _emit(self, target, event, **fields):
        if event not in _VALID_EVENTS:
            raise ValueError("unknown service event %r" % event)
        record = {"ts": round(time.time(), 3), "event": event}  # repro: allow-nondeterminism[ND101] (event timestamps)
        record.update(fields)
        target.events.append(record)

    def _emit_task(self, task, event, **fields):
        for job_id in task.jobs:
            job = self.jobs.get(job_id)
            if job is not None and not job.done:
                self._emit(job, event, **fields)

    def _broadcast(self, event, **fields):
        for job in self.jobs.values():
            if not job.done:
                self._emit(job, event, **fields)

    def _progress(self, job):
        running = sum(1 for key in job.pending
                      if self.tasks.get(key) is not None
                      and self.tasks[key].state == "leased")
        done = job.total - len(job.pending) - len(job.quarantined)
        return {"done": done, "cached": job.cached, "running": running,
                "total": job.total, "workers": len(self.workers)}

    # -- scheduling core -------------------------------------------------

    def _backlog(self):
        return sum(1 for task in self.tasks.values()
                   if task.state in ("queued", "waiting", "leased"))

    def _client_pending(self, client):
        return sum(len(job.pending) for job in self.jobs.values()
                   if job.client == client and not job.done)

    def _next_ready_task(self):
        while self._ready:
            key = self._ready.pop(0)
            task = self.tasks.get(key)
            if task is not None and task.state == "queued":
                return task
        return None

    def _charge_failure(self, task, description):
        """One failed attempt: retry after deterministic backoff, or
        quarantine — the CellSupervisor ledger semantics, node-level."""
        task.worker = None
        task.lease_deadline = None
        task.attempts += 1
        task.failures.append(description)
        if task.attempts >= self.config.max_attempts:
            self._quarantine(task)
            return
        delay = backoff_delay(task.attempts, self.config.retry_base_delay,
                              self.config.retry_max_delay, self.config.seed,
                              task.cell.label)
        task.state = "waiting"
        task.not_before = time.monotonic() + delay  # repro: allow-nondeterminism[ND101] (retry backoff timer)
        self.stats["retries"] += 1
        self._emit_task(task, "cell-retry", cell=task.cell.label,
                        attempt=task.attempts + 1, delay_s=round(delay, 3),
                        error=description.splitlines()[0])
        self._emit_task(task, "cell-requeued", cell=task.cell.label,
                        attempt=task.attempts + 1)

    def _quarantine(self, task):
        entry = {
            "cell": task.cell.label,
            "attempts": task.attempts,
            "failures": [line.splitlines()[0] for line in task.failures],
            "last_error": task.failures[-1] if task.failures else "",
            "quarantined_at": round(time.time(), 3),  # repro: allow-nondeterminism[ND101] (ledger timestamp)
            "workload": task.cell.workload,
            "policy": task.cell.policy,
            "seed": task.cell.seed,
            "key": task.key,
            "checkpoint": os.path.join(self.resume_dir,
                                       self._run_slug(task.cell)),
        }
        self.ledger.record(entry)
        task.state = "quarantined"
        self.stats["quarantined"] += 1
        self._emit_task(task, "cell-quarantined", cell=task.cell.label,
                        attempts=task.attempts,
                        error=entry["last_error"].splitlines()[0]
                        if entry["last_error"] else "")
        for job_id in list(task.jobs):
            job = self.jobs.get(job_id)
            if job is None or job.done:
                continue
            job.quarantined[task.key] = entry
            job.pending.discard(task.key)
            if not job.pending:
                self._finish_job(job)

    def _complete_task(self, task, resumed):
        task.state = "done"
        task.worker = None
        task.lease_deadline = None
        self.stats["cells_completed"] += 1
        for job_id in list(task.jobs):
            job = self.jobs.get(job_id)
            if job is None or job.done:
                continue
            job.pending.discard(task.key)
            self._emit(job, "cell-done", cell=task.cell.label,
                       resumed=resumed, **self._progress(job))
            if not job.pending:
                self._finish_job(job)

    def _finish_job(self, job):
        job.done = True
        self.stats["jobs_done"] += 1
        self._emit(job, "sweep-done", total=job.total, cached=job.cached,
                   simulated=job.total - job.cached - len(job.quarantined),
                   quarantined=len(job.quarantined),
                   wall_s=round(time.time() - job.started, 3))  # repro: allow-nondeterminism[ND101] (job wall-clock metadata)
        self._emit(job, "job-done", job=job.id,
                   quarantined=len(job.quarantined))
        self._journal({"job": job.id, "done": True})

    @staticmethod
    def _run_slug(cell):
        from repro.reliability.guard import run_slug

        return run_slug(cell.workload, cell.policy, cell.seed)

    async def _tick_loop(self):
        while True:
            await asyncio.sleep(self.config.tick_interval)  # repro: allow-async[AS303] wrap-around yield: each tick re-reads all state before acting
            now = time.monotonic()  # repro: allow-nondeterminism[ND101] (lease/backoff clock)
            for task in self.tasks.values():
                if (task.state == "waiting"
                        and task.not_before is not None
                        and task.not_before <= now):
                    task.state = "queued"
                    task.not_before = None
                    self._ready.append(task.key)
            for task in list(self.tasks.values()):
                if (task.state == "leased"
                        and task.lease_deadline is not None
                        and task.lease_deadline < now):
                    self._expire_lease(task)

    def _expire_lease(self, task):
        worker = task.worker
        self.stats["lease_expiries"] += 1
        self._emit_task(task, "lease-expired", cell=task.cell.label,
                        worker=worker)
        if worker in self.workers:
            del self.workers[worker]
            self._broadcast("worker-lost", worker=worker)
        self._charge_failure(
            task, "LeaseExpired: worker %s heartbeat stale for more "
            "than %.1fs" % (worker, self.config.lease_timeout))

    # -- HTTP ------------------------------------------------------------

    async def _handle_connection(self, reader, writer):
        self._connections.add(writer)
        try:
            try:
                request = await read_request(reader)
            except BadRequest as exc:
                await send_response(writer, 400, {"error": str(exc)})
                return
            if request is None:
                return
            try:
                await self._dispatch(request, writer)
            except BadRequest as exc:
                await send_response(writer, 400, {"error": str(exc)})
        except (ConnectionError, asyncio.CancelledError):
            pass
        except Exception as exc:
            try:
                await send_response(writer, 500, {
                    "error": "%s: %s" % (type(exc).__name__, exc)})
            except Exception:
                pass
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _dispatch(self, request, writer):
        parts = request.parts
        if parts[:1] != ("v1",):
            await send_response(writer, 404, {"error": "unknown path"})
            return
        route = parts[1:]
        if route == ("healthz",) and request.method == "GET":
            await send_response(writer, 200, {
                "ok": True, "draining": self.draining})
        elif route == ("stats",) and request.method == "GET":
            await self._handle_stats(writer)
        elif route == ("sweeps",) and request.method == "POST":
            await self._handle_submit(request, writer)
        elif len(route) == 2 and route[0] == "sweeps" \
                and request.method == "GET":
            await self._handle_status(route[1], writer)
        elif len(route) == 3 and route[0] == "sweeps" \
                and route[2] == "events" and request.method == "GET":
            await self._handle_events(route[1], request, writer)
        elif len(route) == 3 and route[0] == "sweeps" \
                and route[2] == "result" and request.method == "GET":
            await self._handle_result(route[1], writer)
        elif route == ("workers", "register") and request.method == "POST":
            await self._handle_register(request, writer)
        elif len(route) == 3 and route[0] == "workers" \
                and route[2] == "lease" and request.method == "POST":
            await self._handle_lease(route[1], writer)
        elif len(route) == 3 and route[0] == "workers" \
                and route[2] == "heartbeat" and request.method == "POST":
            await self._handle_heartbeat(route[1], request, writer)
        elif len(route) == 3 and route[0] == "workers" \
                and route[2] == "result" and request.method == "POST":
            await self._handle_worker_result(route[1], request, writer)
        elif len(route) == 2 and route[0] == "cache" \
                and request.method == "GET":
            await self._handle_cache_object(route[1], writer)
        else:
            await send_response(writer, 404, {"error": "unknown path"})

    async def _handle_stats(self, writer):
        info = self.cache.info()
        payload = dict(self.stats)
        payload.update({
            "draining": self.draining,
            "backlog": self._backlog(),
            "queue_limit": self.config.queue_limit,
            "workers": len(self.workers),
            "jobs_running": sum(1 for job in self.jobs.values()
                                if not job.done),
            "leased": sum(1 for task in self.tasks.values()
                          if task.state == "leased"),
            "cache_entries": info.entries,
            "cache_bytes": info.bytes,
        })
        await send_response(writer, 200, payload)

    async def _handle_submit(self, request, writer):
        if self.draining:
            await send_response(
                writer, 503, {"error": "draining"},
                headers={"Retry-After": str(self.config.retry_after)})
            return
        payload = request.json()
        client = payload.get("client") or "anonymous"
        raw_scale = payload.get("scale") or {"scale": "smoke"}
        try:
            scale = protocol.scale_from_spec(raw_scale)
            cells = self._cells_from_payload(payload, scale)
        except ValueError as exc:
            await send_response(writer, 400, {"error": str(exc)})
            return
        scale_spec = protocol.scale_spec(
            raw_scale["scale"],
            **{key: raw_scale.get(key)
               for key in protocol.SCALE_OVERRIDES})
        keys = [cache_key(cell, scale) for cell in cells]
        unique = list(dict.fromkeys(zip(cells, keys)))
        new_tasks = []
        cached_cells = []
        quarantined_keys = {}
        for cell, key in unique:
            task = self.tasks.get(key)
            if task is not None and task.state == "quarantined":
                # Already given up on in this daemon's lifetime: the
                # job inherits the verdict instead of burning attempts.
                entry = next((e for e in self.ledger.entries()
                              if e.get("key") == key), {})
                quarantined_keys[key] = entry
            elif task is not None and task.state != "done":
                new_tasks.append((cell, key, task))
            elif self.cache.get(key) is not None:
                cached_cells.append(cell)
            else:
                new_tasks.append((cell, key, None))
        fresh = sum(1 for _c, _k, task in new_tasks if task is None)
        if fresh > self.config.queue_limit:
            await send_response(writer, 400, {
                "error": "job needs %d queue slots but the queue holds "
                         "%d; split the grid" % (fresh,
                                                 self.config.queue_limit)})
            return
        if self._backlog() + fresh > self.config.queue_limit:
            self.stats["rejected_queue_full"] += 1
            await send_response(
                writer, 429,
                {"error": "queue-full", "backlog": self._backlog(),
                 "queue_limit": self.config.queue_limit},
                headers={"Retry-After": str(self.config.retry_after)})
            return
        pending_count = len(new_tasks)
        if (self._client_pending(client) + pending_count
                > self.config.client_quota):
            self.stats["rejected_quota"] += 1
            await send_response(
                writer, 429,
                {"error": "quota-exceeded", "client": client,
                 "client_quota": self.config.client_quota},
                headers={"Retry-After": str(self.config.retry_after)})
            return
        self._job_seq += 1
        job = _Job("job-%06d" % self._job_seq, client, cells, keys, scale,
                   scale_spec)
        self.jobs[job.id] = job
        self.stats["jobs_submitted"] += 1
        self.stats["cache_hits"] += len(cached_cells)
        job.cached = len(cached_cells)
        job.quarantined.update(quarantined_keys)
        self._journal({"job": job.id, "client": client,
                       "scale": job.scale_spec,
                       "cells": [protocol.cell_spec(cell)
                                 for cell in cells]})
        self._emit(job, "job-accepted", job=job.id, client=client,
                   total=job.total, cached=job.cached,
                   pending=pending_count)
        for cell in cached_cells:
            self._emit(job, "cell-cached", cell=cell.label)
        self._emit(job, "sweep-start", total=job.total, cached=job.cached,
                   pending=pending_count, jobs=len(self.workers))
        for cell, key, task in new_tasks:
            if task is None:
                task = _Task(key, cell, scale, job.scale_spec)
                self.tasks[key] = task
                self._ready.append(key)
            task.jobs.add(job.id)
            job.pending.add(key)
        if not job.pending:
            self._finish_job(job)
        await send_response(writer, 200, {
            "job": job.id, "total": job.total, "cached": job.cached,
            "pending": pending_count, "done": job.done})

    def _cells_from_payload(self, payload, scale):
        grid = payload.get("grid")
        specs = payload.get("cells")
        if grid is not None:
            if not isinstance(grid, dict):
                raise ValueError("'grid' must be an object")
            allowed = {"workloads", "groups", "policies", "seeds",
                       "epochs", "workloads_per_group"}
            unknown = sorted(set(grid) - allowed)
            if unknown:
                raise ValueError("unknown grid field(s): %s"
                                 % ", ".join(unknown))
            # Same fallback as `repro sweep`: an omitted
            # workloads_per_group means the scale's, so the same grid
            # payload names the same cells over HTTP and locally.
            grid = dict(grid)
            if grid.get("workloads_per_group") is None:
                grid["workloads_per_group"] = scale.workloads_per_group
            try:
                cells = grid_cells(**grid)
            except KeyError as exc:
                raise ValueError(str(exc.args[0] if exc.args else exc))
        elif specs is not None:
            if not isinstance(specs, list):
                raise ValueError("'cells' must be an array")
            cells = [protocol.cell_from_spec(spec) for spec in specs]
        else:
            raise ValueError("submit needs a 'grid' or a 'cells' array")
        if not cells:
            raise ValueError("the submitted grid is empty")
        return cells

    async def _handle_status(self, job_id, writer):
        job = self.jobs.get(job_id)
        if job is None:
            await send_response(writer, 404, {"error": "unknown job"})
            return
        await send_response(writer, 200, {
            "job": job.id, "client": job.client,
            "state": "done" if job.done else "running",
            "total": job.total, "cached": job.cached,
            "pending": len(job.pending),
            "quarantined": len(job.quarantined),
            "events": len(job.events)})

    async def _handle_events(self, job_id, request, writer):
        job = self.jobs.get(job_id)
        if job is None:
            await send_response(writer, 404, {"error": "unknown job"})
            return
        try:
            offset = max(0, int(request.query.get("offset", "0")))
        except ValueError:
            await send_response(writer, 400, {"error": "bad offset"})
            return
        offset = min(offset, len(job.events))
        await start_ndjson_stream(writer)
        # Reader-driven: a slow consumer blocks only its own connection
        # (its TCP window), never the scheduler or other streams.
        while True:
            while offset < len(job.events):
                line = json.dumps(job.events[offset]) + "\n"
                writer.write(line.encode("utf-8"))
                await writer.drain()
                offset += 1
            if job.done or self.draining:
                return
            await asyncio.sleep(self.config.tick_interval)

    async def _handle_result(self, job_id, writer):
        job = self.jobs.get(job_id)
        if job is None:
            await send_response(writer, 404, {"error": "unknown job"})
            return
        if not job.done:
            await send_response(writer, 409, {
                "error": "job-still-running",
                "pending": len(job.pending)})
            return
        results = []
        quarantined = {}
        for cell, key in zip(job.cells, job.keys):
            if key in job.quarantined:
                results.append(None)
                quarantined[cell] = job.quarantined[key]
            else:
                results.append(self.cache.get(key))
        text = merged_json(job.cells, results, job.scale,
                           quarantined=quarantined)
        await send_response(writer, 200, body=text)

    async def _handle_register(self, request, writer):
        payload = request.json()
        self._worker_seq += 1
        worker_id = "w-%04d" % self._worker_seq
        self.workers[worker_id] = {
            "name": payload.get("name") or worker_id,
            "last_seen": time.monotonic(),  # repro: allow-nondeterminism[ND101] (worker liveness)
            "task": None,
        }
        self._broadcast("worker-registered", worker=worker_id)
        await send_response(writer, 200, {
            "worker": worker_id,
            "lease_timeout": self.config.lease_timeout,
            "poll_interval": self.config.tick_interval})

    async def _handle_lease(self, worker_id, writer):
        entry = self.workers.get(worker_id)
        if entry is None:
            await send_response(writer, 404, {"error": "unknown worker"})
            return
        entry["last_seen"] = time.monotonic()  # repro: allow-nondeterminism[ND101] (worker liveness)
        if self.draining:
            await send_response(writer, 204,
                                headers={"X-Draining": "true"})
            return
        task = self._next_ready_task()
        if task is None:
            await send_response(writer, 204)
            return
        task.state = "leased"
        task.worker = worker_id
        task.lease_deadline = time.monotonic() + self.config.lease_timeout  # repro: allow-nondeterminism[ND101] (lease timer)
        entry["task"] = task.key
        self.stats["leases"] += 1
        attempt = task.attempts + 1
        self._emit_task(task, "cell-leased", cell=task.cell.label,
                        worker=worker_id, attempt=attempt)
        for job_id in task.jobs:
            job = self.jobs.get(job_id)
            if job is not None and not job.done:
                self._emit(job, "cell-start", cell=task.cell.label,
                           attempt=attempt, **self._progress(job))
        await send_response(writer, 200, {
            "key": task.key,
            "cell": protocol.cell_spec(task.cell),
            "scale": task.scale_spec,
            "attempt": attempt,
            "lease_timeout": self.config.lease_timeout,
            "resume_dir": self.resume_dir})

    async def _handle_heartbeat(self, worker_id, request, writer):
        payload = request.json()
        key = payload.get("key")
        entry = self.workers.get(worker_id)
        if entry is not None:
            entry["last_seen"] = time.monotonic()  # repro: allow-nondeterminism[ND101] (worker liveness)
        task = self.tasks.get(key)
        if (entry is None or task is None or task.state != "leased"
                or task.worker != worker_id):
            await send_response(writer, 410, {"error": "lease-lost"})
            return
        task.lease_deadline = time.monotonic() + self.config.lease_timeout  # repro: allow-nondeterminism[ND101] (lease timer)
        await send_response(writer, 200, {"ok": True})

    async def _handle_worker_result(self, worker_id, request, writer):
        payload = request.json()
        key = payload.get("key")
        task = self.tasks.get(key)
        if task is None:
            await send_response(writer, 404, {"error": "unknown task"})
            return
        entry = self.workers.get(worker_id)
        if entry is not None:
            entry["last_seen"] = time.monotonic()  # repro: allow-nondeterminism[ND101] (worker liveness)
            entry["task"] = None
        if task.state in ("done", "quarantined"):
            # A late upload from an expired lease whose cell was already
            # resolved: content addressing makes it harmless.
            self.stats["duplicate_results"] += 1
            await send_response(writer, 200, {"ok": True,
                                              "duplicate": True})
            return
        if not payload.get("ok", False):
            self.stats["worker_failures"] += 1
            self._charge_failure(task, str(payload.get("error")
                                           or "worker reported failure"))
            await send_response(writer, 200, {"ok": False,
                                              "requeued": True})
            return
        resumed = bool(payload.get("resumed", False))
        try:
            result = RunResult.from_dict(payload["result"])
            _validate_cell_value(task.cell, (result, resumed))
        except Exception as exc:
            # The node-level analogue of a corrupt pool payload: charge
            # the attempt, never let the bytes near the cache.
            self.stats["invalid_results"] += 1
            self._charge_failure(task, "InvalidResult: %s: %s"
                                 % (type(exc).__name__, exc))
            await send_response(writer, 400, {"error": "invalid-result"})
            return
        self.cache.put(task.key, task.cell, result)
        self._complete_task(task, resumed)
        await send_response(writer, 200, {"ok": True})

    async def _handle_cache_object(self, key, writer):
        """Raw cache transport: the content-addressed object for one
        key, byte-for-byte as stored (identity stays the sha256 key)."""
        path = self.cache._path(key)
        try:
            with open(path, "rb") as handle:  # repro: allow-async[AS301] local content-addressed cache read
                body = handle.read()
        except OSError:
            await send_response(writer, 404, {"error": "unknown key"})
            return
        await send_response(writer, 200, body=body)


class ServiceHandle:
    """Run a :class:`SweepService` on a background thread (tests, the
    chaos harness and the loadtest self-host path).  ``repro serve``
    instead runs the service on the main thread with signal handlers."""

    def __init__(self, config):
        self.service = SweepService(config)
        self._loop = None
        self._thread = None
        self._started = threading.Event()
        self._startup_error = None

    def start(self, timeout=10.0):
        self._loop = asyncio.new_event_loop()

        def run():
            asyncio.set_event_loop(self._loop)
            try:
                self._loop.run_until_complete(self.service.start())
            except Exception as exc:
                self._startup_error = exc
                self._started.set()
                return
            self._started.set()
            self._loop.run_forever()
            self._loop.run_until_complete(
                self._loop.shutdown_asyncgens())
            self._loop.close()

        self._thread = threading.Thread(target=run, daemon=True,
                                        name="repro-serve")
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("service did not start within %.1fs"
                               % timeout)
        if self._startup_error is not None:
            raise self._startup_error
        return self

    @property
    def url(self):
        return "http://%s:%d" % (self.service.config.host,
                                 self.service.port)

    def stop(self, drain=True, timeout=30.0):
        if self._loop is None or self._startup_error is not None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.service.shutdown(drain=drain), self._loop)
        future.result(timeout=timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)


__all__ = [
    "ServiceConfig",
    "ServiceHandle",
    "SweepService",
]
