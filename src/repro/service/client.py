"""Client library for the sweep service: submit, watch, fetch.

``repro submit`` and the loadtest harness both go through
:class:`ServiceClient`.  The client is deliberately boring synchronous
``urllib`` code — one request per connection, matching the daemon's
``Connection: close`` framing — with exactly two interesting behaviors:

* **backpressure-aware submit**: a 429 (queue full or quota exceeded)
  is obeyed by sleeping the server's ``Retry-After`` before retrying,
  so a polite client cooperates with the daemon's flow control instead
  of hammering it; ``retry=False`` surfaces :class:`SubmitRejected`
  for callers (the queue-flood chaos preset) that want the raw verdict;
* **restart-tolerant wait**: :meth:`wait` polls job status and treats
  connection errors as "the daemon is restarting", retrying until the
  deadline — which is what lets a drained-and-restarted daemon finish
  a job for a client that never went away.
"""

import json
import time
import urllib.error
import urllib.request


class ServiceError(Exception):
    """The daemon answered with an error this client cannot recover."""

    def __init__(self, status, detail):
        super().__init__("HTTP %d: %s" % (status, detail))
        self.status = status
        self.detail = detail


class SubmitRejected(ServiceError):
    """A 429/503 submit verdict, carrying the server's Retry-After."""

    def __init__(self, status, detail, retry_after):
        super().__init__(status, detail)
        self.retry_after = retry_after


class ServiceClient:
    """Talk to one ``repro serve`` daemon on behalf of one client id."""

    def __init__(self, url, client="anonymous", timeout=60.0):
        self.url = url.rstrip("/")
        self.client = client
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------

    def _request(self, method, path, payload=None):
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(self.url + path, data=data,
                                         headers=headers, method=method)
        try:
            with urllib.request.urlopen(
                    request, timeout=self.timeout) as response:
                return response.status, dict(response.headers), \
                    response.read()
        except urllib.error.HTTPError as exc:
            return exc.code, dict(exc.headers or {}), exc.read()

    @staticmethod
    def _json(body):
        try:
            return json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, ValueError):
            return {}

    def _checked(self, method, path, payload=None):
        status, _headers, body = self._request(method, path, payload)
        parsed = self._json(body)
        if status != 200:
            raise ServiceError(status, parsed.get("error", "unexpected"))
        return parsed

    # -- API -------------------------------------------------------------

    def healthz(self):
        return self._checked("GET", "/v1/healthz")

    def stats(self):
        return self._checked("GET", "/v1/stats")

    def submit(self, grid=None, cells=None, scale=None, retry=True,
               deadline=120.0):
        """Submit one sweep job; returns the acceptance record.

        With ``retry=True`` (default) a 429/503 is retried after the
        server's ``Retry-After``; with ``retry=False`` it raises
        :class:`SubmitRejected` immediately.
        """
        payload = {"client": self.client}
        if grid is not None:
            payload["grid"] = grid
        if cells is not None:
            payload["cells"] = cells
        if scale is not None:
            payload["scale"] = scale
        stop_at = time.monotonic() + deadline  # repro: allow-nondeterminism[ND101] (retry deadline)
        while True:
            status, headers, body = self._request("POST", "/v1/sweeps",
                                                  payload)
            parsed = self._json(body)
            if status == 200:
                return parsed
            if status in (429, 503):
                retry_after = float(headers.get("Retry-After", 1))
                if not retry:
                    raise SubmitRejected(
                        status, parsed.get("error", "rejected"),
                        retry_after)
                if time.monotonic() + retry_after > stop_at:  # repro: allow-nondeterminism[ND101] (retry deadline)
                    raise SubmitRejected(
                        status, "still rejected after %.0fs: %s"
                        % (deadline, parsed.get("error", "rejected")),
                        retry_after)
                time.sleep(retry_after)
                continue
            raise ServiceError(status, parsed.get("error", "unexpected"))

    def status(self, job_id):
        return self._checked("GET", "/v1/sweeps/%s" % job_id)

    def events(self, job_id, offset=0):
        """Yield event dicts from the live NDJSON stream (one
        connection; ends when the job completes or the daemon drains)."""
        request = urllib.request.Request(
            "%s/v1/sweeps/%s/events?offset=%d"
            % (self.url, job_id, offset))
        with urllib.request.urlopen(request,
                                    timeout=self.timeout) as response:
            if response.status != 200:
                raise ServiceError(response.status, "event stream refused")
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))

    def wait(self, job_id, deadline=300.0, poll_interval=0.2):
        """Block until the job is done; survives daemon restarts.

        Connection errors are retried (a draining daemon comes back
        with the same persisted job id); raises :class:`ServiceError`
        on timeout.
        """
        stop_at = time.monotonic() + deadline  # repro: allow-nondeterminism[ND101] (poll deadline)
        while time.monotonic() < stop_at:  # repro: allow-nondeterminism[ND101] (poll deadline)
            try:
                record = self.status(job_id)
            except (urllib.error.URLError, OSError, ServiceError) as exc:
                if isinstance(exc, ServiceError) and exc.status == 404:
                    # A restarted daemon replays its journal on start;
                    # 404 here means the journal lost the job — fatal.
                    raise
                time.sleep(poll_interval)
                continue
            if record["state"] == "done":
                return record
            time.sleep(poll_interval)
        raise ServiceError(408, "job %s not done within %.0fs"
                           % (job_id, deadline))

    def result(self, job_id):
        """The merged sweep JSON, byte-identical to a serial run."""
        status, _headers, body = self._request(
            "GET", "/v1/sweeps/%s/result" % job_id)
        if status != 200:
            raise ServiceError(status,
                               self._json(body).get("error", "unexpected"))
        return body.decode("utf-8")

    def cache_object(self, key):
        """Raw content-addressed cache bytes for one key (transport
        endpoint; identity stays the sha256 key)."""
        status, _headers, body = self._request("GET", "/v1/cache/%s" % key)
        if status != 200:
            raise ServiceError(status,
                               self._json(body).get("error", "unexpected"))
        return body


__all__ = ["ServiceClient", "ServiceError", "SubmitRejected"]
