"""The ``repro worker`` process: pull, simulate, heartbeat, upload.

A worker owns no scheduling state.  It registers with the daemon, then
loops: lease one cell, simulate it through the exact same
:func:`~repro.experiments.parallel._execute_cell` path the process-pool
workers use (checkpointed into the daemon's shared ``resume_dir``, so a
reclaimed cell resumes mid-run on whichever node picks it up), renew
the lease with heartbeats while the simulation runs on a background
thread, and upload the ``RunResult``.  Losing the lease (HTTP 410) is
*not* fatal: the worker finishes and uploads anyway — the result is
content-addressed, so a late duplicate is harmless and an early arrival
simply resolves the cell for whoever holds the lease now.

The ``fault`` hook exists for the service chaos presets: e.g.
``split-result:2`` makes the first two uploads carry a torn result
payload, proving the daemon's validation charges the attempt and never
lets the bytes near the cache.
"""

import json
import threading
import time
import urllib.error
import urllib.request

from repro.experiments.parallel import _execute_cell
from repro.service import protocol


def _http(method, url, payload=None, timeout=60.0):
    """One synchronous JSON request; returns ``(status, parsed_body)``.

    HTTP error statuses are returned, not raised; only transport errors
    (connection refused, timeouts) propagate as ``URLError``/``OSError``.
    """
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(url, data=data, headers=headers,
                                     method=method)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            status = response.status
            body = response.read()
    except urllib.error.HTTPError as exc:
        status = exc.code
        body = exc.read()
    try:
        parsed = json.loads(body.decode("utf-8")) if body else None
    except (UnicodeDecodeError, ValueError):
        parsed = None
    return status, parsed


class _Fault:
    """Parsed ``--fault`` spec, e.g. ``split-result:2``."""

    KINDS = ("split-result",)

    def __init__(self, spec):
        self.kind = None
        self.remaining = 0
        if not spec:
            return
        kind, _sep, count = spec.partition(":")
        if kind not in self.KINDS:
            raise ValueError("unknown worker fault %r (valid: %s)"
                             % (kind, ", ".join(self.KINDS)))
        self.kind = kind
        self.remaining = int(count) if count else 1

    def corrupt_result(self):
        """Consume one split-result charge, if armed."""
        if self.kind == "split-result" and self.remaining > 0:
            self.remaining -= 1
            return True
        return False


def _split_payload(result_dict):
    """A torn upload: the result object with half its fields missing,
    as if the writer died mid-serialization."""
    keys = sorted(result_dict)
    return {key: result_dict[key] for key in keys[:len(keys) // 2]}


def run_worker(server_url, poll_interval=0.25, max_cells=None,
               idle_exit=None, fault=None, name=None, log=None):
    """Serve cells from ``server_url`` until told to stop.

    ``max_cells`` bounds how many cells this worker resolves (chaos
    presets use 1-cell workers to force churn); ``idle_exit`` exits
    after that many consecutive seconds without work (so workers drain
    away with their daemon).  Returns a summary dict.
    """
    say = log or (lambda message: None)
    fault_plan = _Fault(fault)
    server_url = server_url.rstrip("/")
    summary = {"completed": 0, "failed": 0, "lease_lost": 0,
               "faulted": 0, "reregistered": 0}

    def register():
        last_error = None
        for _attempt in range(50):
            try:
                status, body = _http(
                    "POST", server_url + "/v1/workers/register",
                    {"name": name or "worker"})
            except (urllib.error.URLError, OSError) as exc:
                last_error = exc
                time.sleep(0.1)
                continue
            if status == 200:
                return body
            last_error = RuntimeError("register got HTTP %d" % status)
            time.sleep(0.1)
        raise RuntimeError("cannot register with %s: %s"
                           % (server_url, last_error))

    registration = register()
    worker_id = registration["worker"]
    lease_timeout = float(registration.get("lease_timeout", 30.0))
    heartbeat_every = max(0.05, lease_timeout / 4.0)
    say("worker %s registered with %s" % (worker_id, server_url))
    idle_since = time.monotonic()

    while True:
        if max_cells is not None and summary["completed"] >= max_cells:
            say("worker %s done: %d cell(s) served" %
                (worker_id, summary["completed"]))
            return summary
        try:
            status, task = _http(
                "POST", "%s/v1/workers/%s/lease" % (server_url, worker_id))
        except (urllib.error.URLError, OSError):
            # Daemon gone (drained or crashed): workers outlive it only
            # by idle_exit, so fleets wind down on their own.
            if idle_exit is not None \
                    and time.monotonic() - idle_since > idle_exit:
                say("worker %s exiting: server unreachable" % worker_id)
                return summary
            time.sleep(poll_interval)
            continue
        if status == 404:
            # The daemon restarted and forgot us; enroll again.
            registration = register()
            worker_id = registration["worker"]
            summary["reregistered"] += 1
            continue
        if status != 200 or task is None:
            if idle_exit is not None \
                    and time.monotonic() - idle_since > idle_exit:
                say("worker %s exiting: idle for %.1fs"
                    % (worker_id, idle_exit))
                return summary
            time.sleep(poll_interval)
            continue

        idle_since = time.monotonic()
        cell = protocol.cell_from_spec(task["cell"])
        scale = protocol.scale_from_spec(task["scale"])
        say("worker %s leased %s (attempt %d)"
            % (worker_id, cell.label, task["attempt"]))
        outcome = {}

        def simulate():
            try:
                outcome["value"] = _execute_cell(
                    cell, scale, task["resume_dir"],
                    attempt=task["attempt"])
            except BaseException as exc:  # report, don't die
                outcome["error"] = "%s: %s" % (type(exc).__name__, exc)

        thread = threading.Thread(target=simulate, daemon=True)
        thread.start()
        while thread.is_alive():
            thread.join(heartbeat_every)
            if not thread.is_alive():
                break
            try:
                status, _body = _http(
                    "POST", "%s/v1/workers/%s/heartbeat"
                    % (server_url, worker_id), {"key": task["key"]})
            except (urllib.error.URLError, OSError):
                continue
            if status == 410:
                # Lease reclaimed; finish and upload anyway — the
                # content-addressed result is valid whoever posts it.
                summary["lease_lost"] += 1

        if "error" in outcome:
            payload = {"key": task["key"], "ok": False,
                       "error": outcome["error"]}
            summary["failed"] += 1
        else:
            result, resumed = outcome["value"]
            result_dict = result.to_dict()
            if fault_plan.corrupt_result():
                result_dict = _split_payload(result_dict)
                summary["faulted"] += 1
                say("worker %s splitting result upload for %s"
                    % (worker_id, cell.label))
            payload = {"key": task["key"], "ok": True,
                       "result": result_dict, "resumed": resumed}
        try:
            status, body = _http(
                "POST", "%s/v1/workers/%s/result"
                % (server_url, worker_id), payload)
        except (urllib.error.URLError, OSError):
            continue  # daemon will reclaim the lease and requeue
        if status == 200 and payload["ok"]:
            summary["completed"] += 1
            say("worker %s uploaded %s" % (worker_id, cell.label))
        elif status == 400:
            say("worker %s upload rejected for %s: %s"
                % (worker_id, cell.label,
                   (body or {}).get("error", "invalid")))


__all__ = ["run_worker"]
