"""The ``repro worker`` process: pull, simulate, heartbeat, upload.

A worker owns no scheduling state.  It registers with the daemon, then
loops: lease one cell, simulate it through the exact same
:func:`~repro.experiments.parallel._execute_cell` path the process-pool
workers use (checkpointed into the daemon's shared ``resume_dir``, so a
reclaimed cell resumes mid-run on whichever node picks it up), renew
the lease with heartbeats while the simulation runs on a background
thread, and upload the ``RunResult``.  Losing the lease (HTTP 410) is
*not* fatal: the worker finishes and uploads anyway — the result is
content-addressed, so a late duplicate is harmless and an early arrival
simply resolves the cell for whoever holds the lease now.

With ``--batch-cells N`` the worker leases up to N cells per loop and
runs the fresh ones as one lockstep pack through the batched core lane
(:mod:`repro.experiments.batchrun`) — byte-identical results, shared
replay tapes and SingleIPC runs.  Cells that already *have* a
checkpoint to resume, or are on a retry attempt, keep the per-cell
resilient path; every leased cell is heartbeated while the pack runs,
and results are uploaded individually.  A pack failure never charges
its innocent cells: the worker falls back to per-cell execution for
every packed cell instead of reporting the whole pack failed, and a
cell evicted by the runtime mirror audit (``REPRO_AUDIT=mirror``)
reruns on the scalar lane in the same loop (docs/RELIABILITY.md,
"Batched-lane supervision").

The ``fault`` hook exists for the service chaos presets: e.g.
``split-result:2`` makes the first two uploads carry a torn result
payload, proving the daemon's validation charges the attempt and never
lets the bytes near the cache.
"""

import json
import os
import threading
import time
import urllib.error
import urllib.request

from repro.experiments.parallel import _execute_cell
from repro.service import protocol


def _has_checkpoint(resume_dir, cell):
    """Whether a cell already has mid-run checkpoint state to resume.

    Such cells must keep the per-cell resilient path — packing would
    ignore the checkpoint and re-simulate from scratch."""
    if not resume_dir:
        return False
    from repro.reliability.guard import run_slug

    run_dir = os.path.join(
        resume_dir, run_slug(cell.workload, cell.policy, cell.seed))
    try:
        return bool(os.listdir(run_dir))
    except OSError:
        return False


def _http(method, url, payload=None, timeout=60.0):
    """One synchronous JSON request; returns ``(status, parsed_body)``.

    HTTP error statuses are returned, not raised; only transport errors
    (connection refused, timeouts) propagate as ``URLError``/``OSError``.
    """
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(url, data=data, headers=headers,
                                     method=method)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            status = response.status
            body = response.read()
    except urllib.error.HTTPError as exc:
        status = exc.code
        body = exc.read()
    try:
        parsed = json.loads(body.decode("utf-8")) if body else None
    except (UnicodeDecodeError, ValueError):
        parsed = None
    return status, parsed


class _Fault:
    """Parsed ``--fault`` spec, e.g. ``split-result:2``."""

    KINDS = ("split-result",)

    def __init__(self, spec):
        self.kind = None
        self.remaining = 0
        if not spec:
            return
        kind, _sep, count = spec.partition(":")
        if kind not in self.KINDS:
            raise ValueError("unknown worker fault %r (valid: %s)"
                             % (kind, ", ".join(self.KINDS)))
        self.kind = kind
        self.remaining = int(count) if count else 1

    def corrupt_result(self):
        """Consume one split-result charge, if armed."""
        if self.kind == "split-result" and self.remaining > 0:
            self.remaining -= 1
            return True
        return False


def _split_payload(result_dict):
    """A torn upload: the result object with half its fields missing,
    as if the writer died mid-serialization."""
    keys = sorted(result_dict)
    return {key: result_dict[key] for key in keys[:len(keys) // 2]}


def run_worker(server_url, poll_interval=0.25, max_cells=None,
               idle_exit=None, fault=None, name=None, log=None,
               batch_cells=1):
    """Serve cells from ``server_url`` until told to stop.

    ``max_cells`` bounds how many cells this worker resolves (chaos
    presets use 1-cell workers to force churn); ``idle_exit`` exits
    after that many consecutive seconds without work (so workers drain
    away with their daemon); ``batch_cells > 1`` leases up to that many
    cells per loop and packs the fresh ones through the batched core
    lane.  Returns a summary dict.
    """
    from repro.reliability.packsup import audit_mode, validate_batch_cells

    validate_batch_cells(batch_cells)
    audit = audit_mode() == "mirror"
    say = log or (lambda message: None)
    fault_plan = _Fault(fault)
    server_url = server_url.rstrip("/")
    summary = {"completed": 0, "failed": 0, "lease_lost": 0,
               "faulted": 0, "reregistered": 0}

    def register():
        last_error = None
        for _attempt in range(50):
            try:
                status, body = _http(
                    "POST", server_url + "/v1/workers/register",
                    {"name": name or "worker"})
            except (urllib.error.URLError, OSError) as exc:
                last_error = exc
                time.sleep(0.1)
                continue
            if status == 200:
                return body
            last_error = RuntimeError("register got HTTP %d" % status)
            time.sleep(0.1)
        raise RuntimeError("cannot register with %s: %s"
                           % (server_url, last_error))

    registration = register()
    worker_id = registration["worker"]
    lease_timeout = float(registration.get("lease_timeout", 30.0))
    heartbeat_every = max(0.05, lease_timeout / 4.0)
    say("worker %s registered with %s" % (worker_id, server_url))
    idle_since = time.monotonic()  # repro: allow-nondeterminism[ND101] (idle-exit timer)

    while True:
        if max_cells is not None and summary["completed"] >= max_cells:
            say("worker %s done: %d cell(s) served" %
                (worker_id, summary["completed"]))
            return summary
        try:
            status, task = _http(
                "POST", "%s/v1/workers/%s/lease" % (server_url, worker_id))
        except (urllib.error.URLError, OSError):
            # Daemon gone (drained or crashed): workers outlive it only
            # by idle_exit, so fleets wind down on their own.
            if idle_exit is not None \
                    and time.monotonic() - idle_since > idle_exit:  # repro: allow-nondeterminism[ND101] (idle-exit timer)
                say("worker %s exiting: server unreachable" % worker_id)
                return summary
            time.sleep(poll_interval)
            continue
        if status == 404:
            # The daemon restarted and forgot us; enroll again.
            registration = register()
            worker_id = registration["worker"]
            summary["reregistered"] += 1
            continue
        if status != 200 or task is None:
            if idle_exit is not None \
                    and time.monotonic() - idle_since > idle_exit:  # repro: allow-nondeterminism[ND101] (idle-exit timer)
                say("worker %s exiting: idle for %.1fs"
                    % (worker_id, idle_exit))
                return summary
            time.sleep(poll_interval)
            continue

        idle_since = time.monotonic()  # repro: allow-nondeterminism[ND101] (idle-exit timer)
        limit = batch_cells if max_cells is None else min(
            batch_cells, max_cells - summary["completed"])
        batch = [task]
        while len(batch) < limit:
            try:
                status, extra = _http(
                    "POST", "%s/v1/workers/%s/lease"
                    % (server_url, worker_id))
            except (urllib.error.URLError, OSError):
                break
            if status != 200 or extra is None:
                break
            batch.append(extra)
        entries = []
        for task in batch:
            entries.append({
                "task": task,
                "cell": protocol.cell_from_spec(task["cell"]),
                "scale": protocol.scale_from_spec(task["scale"]),
                "outcome": {},
            })
            say("worker %s leased %s (attempt %d)"
                % (worker_id, entries[-1]["cell"].label, task["attempt"]))

        # Pack fresh first-attempt cells that share a scale; cells with
        # an existing mid-run checkpoint, or on a retry attempt, keep the
        # per-cell resilient path — the batched lane's divergence-risk
        # fallback (docs/PERFORMANCE.md).
        pack = []
        pack_scale = None
        if len(entries) > 1:
            for entry in entries:
                task = entry["task"]
                if task["attempt"] != 1 \
                        or _has_checkpoint(task["resume_dir"],
                                           entry["cell"]):
                    continue
                if pack_scale is None:
                    pack_scale = (task["scale"], entry["scale"])
                if task["scale"] == pack_scale[0]:
                    pack.append(entry)
            if len(pack) < 2:
                pack = []
        packed = {id(entry) for entry in pack}
        if pack:
            say("worker %s packing %d cell(s) through the batched lane"
                % (worker_id, len(pack)))

        def simulate():
            if pack:
                from repro.experiments.batchrun import run_pack

                try:
                    results = run_pack(
                        [entry["cell"] for entry in pack], pack_scale[1],
                        audit=audit)
                except BaseException as exc:  # contain, don't charge
                    # A pack failure says nothing about which cell is at
                    # fault; rerunning every packed cell per-cell below
                    # keeps innocent cells from being charged a failed
                    # attempt on the service side.
                    say("worker %s pack failed (%s: %s); falling back "
                        "to per-cell execution"
                        % (worker_id, type(exc).__name__, exc))
                    packed.clear()
                else:
                    for entry, result in zip(pack, results):
                        if result is None:
                            # Audit-evicted: rerun on the scalar lane.
                            say("worker %s evicting %s from its pack "
                                "(mirror divergence)"
                                % (worker_id, entry["cell"].label))
                            packed.discard(id(entry))
                        else:
                            entry["outcome"]["value"] = (result, False)
            for entry in entries:
                if id(entry) in packed:
                    continue
                task = entry["task"]
                try:
                    entry["outcome"]["value"] = _execute_cell(
                        entry["cell"], entry["scale"],
                        task["resume_dir"], attempt=task["attempt"])
                except BaseException as exc:  # report, don't die
                    entry["outcome"]["error"] = "%s: %s" \
                        % (type(exc).__name__, exc)

        thread = threading.Thread(target=simulate, daemon=True)
        thread.start()
        while thread.is_alive():
            thread.join(heartbeat_every)
            if not thread.is_alive():
                break
            for entry in entries:
                try:
                    status, _body = _http(
                        "POST", "%s/v1/workers/%s/heartbeat"
                        % (server_url, worker_id),
                        {"key": entry["task"]["key"]})
                except (urllib.error.URLError, OSError):
                    continue
                if status == 410:
                    # Lease reclaimed; finish and upload anyway — the
                    # content-addressed result is valid whoever posts it.
                    summary["lease_lost"] += 1

        for entry in entries:
            task = entry["task"]
            cell = entry["cell"]
            outcome = entry["outcome"]
            if "error" in outcome:
                payload = {"key": task["key"], "ok": False,
                           "error": outcome["error"]}
                summary["failed"] += 1
            else:
                result, resumed = outcome["value"]
                result_dict = result.to_dict()
                if fault_plan.corrupt_result():
                    result_dict = _split_payload(result_dict)
                    summary["faulted"] += 1
                    say("worker %s splitting result upload for %s"
                        % (worker_id, cell.label))
                payload = {"key": task["key"], "ok": True,
                           "result": result_dict, "resumed": resumed}
            try:
                status, body = _http(
                    "POST", "%s/v1/workers/%s/result"
                    % (server_url, worker_id), payload)
            except (urllib.error.URLError, OSError):
                continue  # daemon will reclaim the lease and requeue
            if status == 200 and payload["ok"]:
                summary["completed"] += 1
                say("worker %s uploaded %s" % (worker_id, cell.label))
            elif status == 400:
                say("worker %s upload rejected for %s: %s"
                    % (worker_id, cell.label,
                       (body or {}).get("error", "invalid")))


__all__ = ["run_worker"]
