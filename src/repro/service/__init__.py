"""Sweep-as-a-service: a fault-tolerant distributed experiment tier.

This package promotes the supervised parallel sweep engine from a
single-machine process pool to a long-running service:

* :mod:`repro.service.server` — the ``repro serve`` daemon: accepts
  sweep jobs over HTTP/JSON, shards grid cells across pull-based
  workers under **leases** with heartbeat renewal, applies
  **backpressure** (HTTP 429 + ``Retry-After``) and **per-client
  quotas**, streams the JSONL sweep event protocol live, and drains
  gracefully on SIGTERM (the queue persists and resumes on restart);
* :mod:`repro.service.worker` — the ``repro worker`` process: pulls
  leased cells over HTTP, simulates them through the same
  ``_execute_cell`` path as pool workers, renews its lease per epoch
  and uploads results;
* :mod:`repro.service.client` — the ``repro submit`` client library:
  submit/status/events/result plus 429-aware retry;
* :mod:`repro.service.chaos` — service-tier chaos presets (kill-worker,
  worker-storm, slow-client, queue-flood, split-result) proving that
  merged results converge byte-identically to a fault-free serial
  reference;
* :mod:`repro.service.loadtest` — the ``repro loadtest`` harness:
  hundreds of concurrent clients hammering a warm cache.

Results are served out of the existing sha256 content-addressed
:class:`~repro.experiments.parallel.ResultCache`: the service moves
cache *transport* over HTTP while cache *identity* stays the
location-independent :func:`~repro.experiments.parallel.cache_key`.
Nothing inside the sweep cache's code-fingerprint closure imports this
package (the dependency points strictly service -> engine), so the
service tier adds zero bytes to any cell's fingerprint.

See docs/SERVICE.md for endpoints, lease/backpressure/quota semantics,
the failure matrix and the drain/restart walkthrough.
"""

from repro.service.client import ServiceClient, ServiceError, SubmitRejected
from repro.service.protocol import SERVICE_EVENTS
from repro.service.server import ServiceConfig, ServiceHandle, SweepService

__all__ = [
    "SERVICE_EVENTS",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceHandle",
    "SubmitRejected",
    "SweepService",
]
