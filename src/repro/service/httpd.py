"""Minimal asyncio HTTP/1.1 plumbing for the sweep service daemon.

Just enough of the protocol for a JSON API between cooperating
processes: one request per connection (``Connection: close``), JSON
request/response bodies, and newline-delimited JSON streaming for the
live event feed.  Deliberately stdlib-only and deliberately tiny — the
service needs leases and backpressure, not a web framework.  Malformed
requests get a 400 and the connection is dropped; oversized headers or
bodies get a 413.
"""

import asyncio
import json

#: Upper bounds keeping one bad client from exhausting daemon memory.
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

REASONS = {
    200: "OK",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    410: "Gone",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class BadRequest(Exception):
    """The peer sent bytes this server cannot parse as HTTP/JSON."""


class Request:
    """One parsed HTTP request: method, path segments, query, body."""

    def __init__(self, method, path, query, headers, body):
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body

    @property
    def parts(self):
        return tuple(part for part in self.path.split("/") if part)

    def json(self):
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise BadRequest("request body is not valid JSON: %s" % exc)
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a JSON object")
        return payload


def _parse_query(raw):
    query = {}
    for pair in raw.split("&"):
        if not pair:
            continue
        key, sep, value = pair.partition("=")
        query[key] = value
    return query


async def read_request(reader):
    """Parse one request off the wire; ``None`` on a clean EOF.

    Raises :class:`BadRequest` on malformed framing and
    :class:`asyncio.LimitOverrunError`/``IncompleteReadError`` surface
    as ``BadRequest`` too — callers answer 400 and close.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise BadRequest("truncated request head")
    except asyncio.LimitOverrunError:
        raise BadRequest("request head exceeds %d bytes" % MAX_HEADER_BYTES)
    if len(head) > MAX_HEADER_BYTES:
        raise BadRequest("request head exceeds %d bytes" % MAX_HEADER_BYTES)
    try:
        lines = head.decode("latin-1").split("\r\n")
        method, target, _version = lines[0].split(" ", 2)
    except ValueError:
        raise BadRequest("malformed request line")
    headers = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise BadRequest("malformed header line")
        headers[name.strip().lower()] = value.strip()
    path, _sep, raw_query = target.partition("?")
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise BadRequest("malformed Content-Length")
    if length > MAX_BODY_BYTES:
        raise BadRequest("request body exceeds %d bytes" % MAX_BODY_BYTES)
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise BadRequest("truncated request body")
    return Request(method.upper(), path, _parse_query(raw_query), headers,
                   body)


def response_bytes(status, payload=None, headers=None, body=None,
                   content_type="application/json"):
    """Serialize one complete response (JSON payload or raw body)."""
    if body is None:
        body = b"" if payload is None else (
            json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    elif isinstance(body, str):
        body = body.encode("utf-8")
    lines = ["HTTP/1.1 %d %s" % (status, REASONS.get(status, "Unknown")),
             "Content-Type: %s" % content_type,
             "Content-Length: %d" % len(body),
             "Connection: close"]
    for name, value in (headers or {}).items():
        lines.append("%s: %s" % (name, value))
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


async def send_response(writer, status, payload=None, headers=None,
                        body=None, content_type="application/json"):
    writer.write(response_bytes(status, payload=payload, headers=headers,
                                body=body, content_type=content_type))
    await writer.drain()


async def start_ndjson_stream(writer):
    """Write the response head of an unbounded newline-delimited JSON
    stream; the caller then writes one JSON line per event and closes
    the connection to end the stream."""
    head = ("HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Connection: close\r\n\r\n")
    writer.write(head.encode("latin-1"))
    await writer.drain()


__all__ = [
    "BadRequest",
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "Request",
    "read_request",
    "response_bytes",
    "send_response",
    "start_ndjson_stream",
]
