"""Wire protocol shared by the sweep service daemon, workers and clients.

Everything that crosses the HTTP boundary is plain JSON built from the
vocabulary defined here: scale specs (a named
:class:`~repro.experiments.runner.ExperimentScale` plus explicit
overrides), cell specs (the four :class:`SweepCell` fields), and the
service-tier event names.  Keeping the codec in one stdlib-only module
means the daemon, the worker and the client cannot drift apart, and the
test suite can pin the schema.

Event names: the per-job streams replay the classic sweep protocol
(:data:`repro.reliability.supervisor.SWEEP_EVENTS` — the canonical
table, shared with ``SweepEngine`` and ``CellSupervisor``) and add the
service-only names in :data:`SERVICE_EVENTS` for job, lease and daemon
lifecycle.  The service streamer validates every emitted event against
the union; docs/SERVICE.md lists exactly :data:`SERVICE_EVENTS` and a
drift test enforces it.
"""

from repro.experiments.parallel import SweepCell, canonical_policy
from repro.experiments.runner import ExperimentScale

#: Service-tier event names, beyond the classic sweep protocol.
SERVICE_EVENTS = (
    "job-accepted",      # submit validated, cells queued/deduped
    "job-done",          # every cell resolved (result or quarantine)
    "cell-leased",       # a worker took the cell under a lease
    "lease-expired",     # heartbeat went stale; cell reclaimed
    "cell-requeued",     # reclaimed/failed cell back in the queue
    "worker-registered",  # a worker joined
    "worker-lost",       # a worker's lease expired or it deregistered
    "service-draining",  # SIGTERM received; no new work accepted
    "service-resumed",   # daemon restarted from its persisted queue
)

#: Named scales a submit request may ask for.
SCALES = {
    "smoke": ExperimentScale.smoke,
    "bench": ExperimentScale.bench,
    "full": ExperimentScale.full,
}

#: Scale fields a submit request may override explicitly.
SCALE_OVERRIDES = ("epochs", "epoch_size", "seed")


def scale_spec(name, epochs=None, epoch_size=None, seed=None):
    """The JSON form of a scale request: named base + overrides."""
    if name not in SCALES:
        raise ValueError("unknown scale %r (valid: %s)"
                         % (name, ", ".join(sorted(SCALES))))
    spec = {"scale": name}
    for key, value in (("epochs", epochs), ("epoch_size", epoch_size),
                       ("seed", seed)):
        if value is not None:
            spec[key] = int(value)
    return spec


def scale_from_spec(spec):
    """Rebuild the :class:`ExperimentScale` a spec describes.

    Raises :class:`ValueError` on an unknown scale name or override
    field — the daemon turns that into an HTTP 400.
    """
    if not isinstance(spec, dict):
        raise ValueError("scale spec must be an object, got %r"
                         % type(spec).__name__)
    name = spec.get("scale")
    if name not in SCALES:
        raise ValueError("unknown scale %r (valid: %s)"
                         % (name, ", ".join(sorted(SCALES))))
    unknown = sorted(set(spec) - {"scale"} - set(SCALE_OVERRIDES))
    if unknown:
        raise ValueError("unknown scale override(s): %s (valid: %s)"
                         % (", ".join(unknown), ", ".join(SCALE_OVERRIDES)))
    overrides = {}
    for key in SCALE_OVERRIDES:
        if spec.get(key) is not None:
            if not isinstance(spec[key], int) or spec[key] < 0:
                raise ValueError("scale override %r must be a "
                                 "non-negative integer" % key)
            overrides[key] = spec[key]
    scale = SCALES[name]()
    return scale.with_overrides(**overrides) if overrides else scale


def cell_spec(cell):
    """The JSON form of one sweep cell."""
    return {"workload": cell.workload, "policy": cell.policy,
            "seed": cell.seed, "epochs": cell.epochs}


def cell_from_spec(spec):
    """Rebuild a :class:`SweepCell`; raises :class:`ValueError` on a
    malformed spec (the policy name is canonicalized, the workload is
    validated later by :func:`~repro.experiments.parallel.cache_key`)."""
    if not isinstance(spec, dict):
        raise ValueError("cell spec must be an object, got %r"
                         % type(spec).__name__)
    try:
        workload = spec["workload"]
        policy = canonical_policy(spec["policy"])
    except KeyError as exc:
        raise ValueError("cell spec missing field %s" % exc)
    seed = spec.get("seed", 0)
    epochs = spec.get("epochs")
    if not isinstance(workload, str):
        raise ValueError("cell workload must be a string")
    if not isinstance(seed, int):
        raise ValueError("cell seed must be an integer")
    if epochs is not None and (not isinstance(epochs, int) or epochs < 1):
        raise ValueError("cell epochs must be a positive integer or null")
    return SweepCell(workload=workload, policy=policy, seed=seed,
                     epochs=epochs)


__all__ = [
    "SCALES",
    "SCALE_OVERRIDES",
    "SERVICE_EVENTS",
    "cell_from_spec",
    "cell_spec",
    "scale_from_spec",
    "scale_spec",
]
