"""Service-level chaos: prove the daemon converges under node failure.

The pool chaos harness (:mod:`repro.reliability.chaos`) injects faults
*inside* worker processes; this module injects them at the service
tier — dead nodes, churning fleets, slow consumers, queue floods and
torn uploads.  Every preset runs a real daemon (in-process, on a
background thread) with real ``repro worker`` subprocesses against a
throwaway work directory, then byte-compares the merged job result
against a fault-free serial :class:`SweepEngine` reference.  The
invariant is the same one the pool tier proves: faults may cost time
and retries, never bytes.

Single-victim choices are deterministic (first spawned worker dies),
so a failing preset reproduces identically.
"""

import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
import urllib.parse

from repro.service.client import ServiceClient, SubmitRejected
from repro.service.server import ServiceConfig, ServiceHandle

#: ``repro chaos --preset`` service-tier choices -> one-line description.
SERVICE_CHAOS_PRESETS = {
    "kill-worker": "SIGKILL one of two workers mid-sweep; its lease "
                   "expires, the cells requeue and the survivor "
                   "finishes the job",
    "worker-storm": "three rounds of spawning a two-worker fleet and "
                    "SIGKILLing it; a final clean fleet must still "
                    "converge within the attempt budget",
    "slow-client": "an event-stream consumer reading one byte at a "
                   "time must only stall its own connection, never "
                   "the daemon or the sweep",
    "queue-flood": "per-cell jobs against a queue_limit=2 daemon; "
                   "clients must be throttled with 429 + Retry-After "
                   "and converge by obeying it",
    "split-result": "a worker uploads a torn result payload first; "
                    "validation charges the attempt and the retry "
                    "upload lands cleanly",
}


def _worker_env():
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root + (os.pathsep + existing
                                    if existing else "")
    return env


def _spawn_worker(url, name, fault=None, idle_exit=8.0):
    command = [sys.executable, "-m", "repro", "worker", "--server", url,
               "--name", name, "--idle-exit", str(idle_exit), "--quiet"]
    if fault:
        command += ["--fault", fault]
    return subprocess.Popen(command, stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL, env=_worker_env())


def _wait_for(predicate, timeout, interval=0.1):
    deadline = time.monotonic() + timeout  # repro: allow-nondeterminism[ND101] (harness deadline, not results)
    while time.monotonic() < deadline:  # repro: allow-nondeterminism[ND101] (harness deadline, not results)
        if predicate():
            return True
        time.sleep(interval)
    return False


def _slow_event_reader(url, job_id, outcome):
    """Consume the NDJSON event stream one byte at a time over a raw
    socket — the pathological client the daemon must tolerate.  Returns
    once the daemon closes the stream (job done) or a byte cap hits."""
    parsed = urllib.parse.urlparse(url)
    received = b""
    try:
        with socket.create_connection((parsed.hostname, parsed.port),
                                      timeout=30.0) as sock:
            sock.sendall(("GET /v1/sweeps/%s/events HTTP/1.1\r\n"
                          "Host: chaos\r\n\r\n" % job_id).encode("ascii"))
            sock.settimeout(30.0)
            while len(received) < 65536:
                chunk = sock.recv(1)
                if not chunk:
                    break
                received += chunk
                time.sleep(0.005)
    except (OSError, socket.timeout):
        pass
    outcome["bytes"] = len(received)
    outcome["ok"] = received.startswith(b"HTTP/1.1 200")


def run_service_chaos(preset, scale_name="smoke", keep=False,
                      work_dir=None, grid=None, epochs=None, log=None,
                      deadline=600.0):
    """Run one service chaos scenario end to end; returns a report dict.

    A daemon with a deliberately twitchy lease timeout runs the default
    fig4-style grid while the preset abuses it; a serial engine then
    produces the fault-free reference in a separate cache, and the
    report's ``ok`` requires the merged job JSON to be byte-identical
    to it with the expected quarantine count (zero for every preset —
    service faults are all survivable).
    """
    from repro.experiments.parallel import SweepEngine, grid_cells, \
        merged_json
    from repro.reliability.chaos import default_grid
    from repro.service import protocol

    if preset not in SERVICE_CHAOS_PRESETS:
        raise ValueError("unknown service chaos preset %r (valid: %s)"
                         % (preset,
                            ", ".join(sorted(SERVICE_CHAOS_PRESETS))))
    say = log if log is not None else (lambda message: None)
    scale = protocol.scale_from_spec({"scale": scale_name})
    grid = dict(grid if grid is not None else default_grid())
    grid.setdefault("epochs", epochs)
    cells = grid_cells(**grid)
    scale_spec = {"scale": scale_name}
    grid_payload = {key: list(value) if isinstance(value, tuple) else value
                    for key, value in grid.items() if value is not None}

    workdir = work_dir or tempfile.mkdtemp(prefix="repro-svc-chaos-")
    state_dir = os.path.join(workdir, "state")
    cache_dir = os.path.join(workdir, "cache")
    ref_cache = os.path.join(workdir, "ref-cache")

    config = ServiceConfig(
        state_dir=state_dir, cache_dir=cache_dir,
        lease_timeout=2.0, max_attempts=3, tick_interval=0.05,
        retry_base_delay=0.05, retry_max_delay=0.5, retry_after=1,
        queue_limit=2 if preset == "queue-flood" else 1024,
        client_quota=256)
    if preset == "worker-storm":
        # Each storm round burns attempts on whatever was leased; give
        # the final clean fleet room to converge.
        config.max_attempts = 10
    handle = ServiceHandle(config).start()
    client = ServiceClient(handle.url, client="chaos")
    workers = []
    throttled = 0
    slow = {}
    try:
        if preset == "queue-flood":
            say("flooding a queue_limit=%d daemon with %d one-cell jobs"
                % (config.queue_limit, len(cells)))
            workers.append(_spawn_worker(handle.url, "flood-worker"))
            job_ids = []
            for cell in cells:
                spec = protocol.cell_spec(cell)
                try:
                    record = client.submit(cells=[spec], scale=scale_spec,
                                           retry=False)
                except SubmitRejected:
                    throttled += 1
                    record = client.submit(cells=[spec], scale=scale_spec,
                                           retry=True, deadline=deadline)
                job_ids.append(record["job"])
            for job_id in job_ids:
                client.wait(job_id, deadline=deadline)
            # The flood warmed the cache cell by cell; the full-grid
            # job must now complete instantly, entirely from cache.
            record = client.submit(grid=grid_payload, scale=scale_spec)
            job_id = record["job"]
        else:
            fault = "split-result:1" if preset == "split-result" else None
            count = 1 if preset in ("slow-client", "split-result") else 2
            for index in range(count):
                workers.append(_spawn_worker(handle.url,
                                             "chaos-%d" % index,
                                             fault=fault))
            record = client.submit(grid=grid_payload, scale=scale_spec)
            job_id = record["job"]
            say("submitted %s (%d cells) to %s"
                % (job_id, len(cells), handle.url))

            if preset == "kill-worker":
                _wait_for(lambda: client.stats()["leases"] >= 1,
                          timeout=30.0)
                victim = workers[0]
                say("SIGKILL worker pid %d mid-sweep" % victim.pid)
                victim.kill()
                victim.wait()
            elif preset == "worker-storm":
                for round_index in range(3):
                    _wait_for(lambda: client.stats()["leases"] >= 1,
                              timeout=30.0)
                    time.sleep(0.5)
                    say("storm round %d: killing the fleet"
                        % (round_index + 1))
                    for proc in workers:
                        proc.kill()
                        proc.wait()
                    workers = [_spawn_worker(handle.url,
                                             "storm-%d-%d"
                                             % (round_index + 1, index))
                               for index in range(2)]
                # let the final fleet live
            elif preset == "slow-client":
                slow_reader = threading.Thread(
                    target=_slow_event_reader,
                    args=(handle.url, job_id, slow), daemon=True)
                slow_reader.start()

        client.wait(job_id, deadline=deadline)
        text = client.result(job_id)
        status = client.status(job_id)
        stats = client.stats()
        if preset == "slow-client":
            # The sweep finished while the 200 B/s consumer was still
            # crawling — now let it drain its buffered stream tail.
            slow_reader.join(timeout=120.0)
    finally:
        for proc in workers:
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
                proc.wait()
        handle.stop(drain=False)

    say("service sweep done; simulating the fault-free serial reference")
    engine = SweepEngine(scale, jobs=1, cache_dir=ref_cache)
    reference = merged_json(cells, engine.run_cells(cells), scale)
    identical = text == reference
    expected = 0
    quarantined = status["quarantined"]
    ok = identical and quarantined == expected
    if preset == "queue-flood":
        ok = ok and throttled > 0 and stats["rejected_queue_full"] > 0
    if preset == "split-result":
        ok = ok and stats["invalid_results"] >= 1
    if preset in ("kill-worker", "worker-storm"):
        ok = ok and stats["lease_expiries"] >= 1
    if preset == "slow-client":
        ok = ok and slow.get("ok", False)
    report = {
        "preset": preset,
        "cells": [cell.label for cell in cells],
        "jobs": stats["jobs_done"],
        "workers": len(workers),
        "quarantined": quarantined,
        "expected_quarantined": expected,
        "identical": identical,
        "ok": ok,
        "retries": stats["retries"],
        "lease_expiries": stats["lease_expiries"],
        "invalid_results": stats["invalid_results"],
        "throttled": max(throttled, stats["rejected_queue_full"]),
        "duplicate_results": stats["duplicate_results"],
        "work_dir": workdir if keep else None,
    }
    if not keep and work_dir is None:
        shutil.rmtree(workdir, ignore_errors=True)
    return report


__all__ = ["SERVICE_CHAOS_PRESETS", "run_service_chaos"]
