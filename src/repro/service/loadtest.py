"""``repro loadtest``: many concurrent clients against a warm cache.

The serving story the paper's sweep tier needs is read-heavy: once the
grid is simulated, hundreds of analysis clients should be able to pull
merged results concurrently without touching a simulator.  This
harness proves it: it warms the cache with one real sweep (self-hosted
daemon + workers, or a daemon you point it at), then unleashes N
threads x M submits of the same grid.  Every warm submit dedupes
against the content-addressed cache, so jobs complete at submit time
and the measured numbers are pure service overhead: latency
percentiles, throughput, throttle counts — and a byte-identity check
of every fetched result against the warm reference.
"""

import shutil
import tempfile
import threading
import time

from repro.service.client import ServiceClient, ServiceError
from repro.service.server import ServiceConfig, ServiceHandle


def _percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(fraction * len(sorted_values)))
    return sorted_values[index]


def run_loadtest(clients=20, requests=5, workers=1, server_url=None,
                 scale_name="smoke", grid=None, epochs=None,
                 queue_limit=1024, log=None, deadline=600.0):
    """Warm the cache, then hammer the daemon; returns a report dict.

    ``server_url=None`` self-hosts a daemon plus ``workers`` worker
    subprocesses in a throwaway directory; otherwise the target daemon
    is used as-is (and must be able to simulate the warmup grid).
    """
    from repro.reliability.chaos import default_grid
    from repro.service.chaos import _spawn_worker

    say = log if log is not None else (lambda message: None)
    grid = dict(grid if grid is not None else default_grid())
    grid.setdefault("epochs", epochs)
    grid_payload = {key: list(value) if isinstance(value, tuple) else value
                    for key, value in grid.items() if value is not None}
    scale_spec = {"scale": scale_name}

    handle = None
    procs = []
    workdir = None
    if server_url is None:
        workdir = tempfile.mkdtemp(prefix="repro-loadtest-")
        handle = ServiceHandle(ServiceConfig(
            state_dir=workdir + "/state", cache_dir=workdir + "/cache",
            queue_limit=queue_limit, client_quota=queue_limit,
            lease_timeout=10.0)).start()
        server_url = handle.url
        procs = [_spawn_worker(server_url, "load-%d" % index)
                 for index in range(workers)]

    try:
        say("warming the cache on %s" % server_url)
        warm_client = ServiceClient(server_url, client="loadtest-warm")
        warm_start = time.perf_counter()
        record = warm_client.submit(grid=grid_payload, scale=scale_spec)
        warm_client.wait(record["job"], deadline=deadline)
        reference = warm_client.result(record["job"])
        warm_seconds = time.perf_counter() - warm_start
        say("cache warm in %.1fs; launching %d clients x %d requests"
            % (warm_seconds, clients, requests))

        lock = threading.Lock()
        latencies = []
        outcomes = {"ok": 0, "errors": 0, "throttled": 0,
                    "mismatched": 0}

        def one_client(index):
            client = ServiceClient(server_url,
                                   client="loadtest-%03d" % index)
            for _attempt in range(requests):
                start = time.perf_counter()
                try:
                    accepted = client.submit(grid=grid_payload,
                                             scale=scale_spec,
                                             deadline=deadline)
                    if not accepted["done"]:
                        client.wait(accepted["job"], deadline=deadline)
                    text = client.result(accepted["job"])
                except ServiceError:
                    with lock:
                        outcomes["errors"] += 1
                    continue
                elapsed = time.perf_counter() - start
                with lock:
                    latencies.append(elapsed)
                    if text == reference:
                        outcomes["ok"] += 1
                    else:
                        outcomes["mismatched"] += 1

        start = time.perf_counter()
        threads = [threading.Thread(target=one_client, args=(index,),
                                    daemon=True)
                   for index in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - start
        stats = warm_client.stats()
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        if handle is not None:
            handle.stop(drain=False)
        if workdir is not None:
            shutil.rmtree(workdir, ignore_errors=True)

    latencies.sort()
    total = clients * requests
    report = {
        "clients": clients,
        "requests_per_client": requests,
        "total_requests": total,
        "ok": outcomes["ok"],
        "errors": outcomes["errors"],
        "mismatched": outcomes["mismatched"],
        "throttled": stats["rejected_queue_full"]
        + stats["rejected_quota"],
        "identical": outcomes["mismatched"] == 0 and outcomes["ok"] > 0,
        "warm_s": round(warm_seconds, 3),
        "wall_s": round(wall, 3),
        "rps": round(outcomes["ok"] / wall, 1) if wall > 0 else 0.0,
        "latency_ms": {
            "p50": round(_percentile(latencies, 0.50) * 1000, 1),
            "p95": round(_percentile(latencies, 0.95) * 1000, 1),
            "max": round(latencies[-1] * 1000, 1) if latencies else 0.0,
        },
    }
    return report


__all__ = ["run_loadtest"]
