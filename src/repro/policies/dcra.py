"""DCRA — Dynamically Controlled Resource Allocation (Cazorla et al.,
MICRO '04), the strongest prior technique the paper compares against.

DCRA classifies each thread every cycle as *slow* (it has an in-flight load
that missed the L1 data cache) or *fast*.  Slow threads receive larger
partitions so they can expose parallelism past their stalled loads, but are
contained inside those partitions (preventing resource clog); fast threads
are guaranteed their own share.

Substitution note (see DESIGN.md): we reproduce DCRA's allocation *shape*
with a weighted-share formula rather than the original paper's exact
per-resource equations — each slow thread's cap is ``slow_weight`` times a
fast thread's cap, and the caps always sum to the structure's capacity.
This preserves the two properties the hill-climbing paper relies on:
containment of stalled threads and a guaranteed share for fast threads,
with memory-intensive threads receiving the larger partitions.
"""

from repro.policies.base import ResourcePolicy


class DCRAPolicy(ResourcePolicy):
    """Dynamic partition caps recomputed from fast/slow classification.

    ``update_interval`` models the counter-sampling latency of a real
    implementation: classification is re-read every that many cycles
    rather than combinationally within the same cycle (an instant-perfect
    classifier makes DCRA stronger than any published hardware).
    """

    name = "DCRA"

    def __init__(self, slow_weight=2.0, update_interval=64):
        if slow_weight < 1.0:
            raise ValueError("slow_weight must be >= 1.0")
        if update_interval < 1:
            raise ValueError("update_interval must be >= 1")
        self.slow_weight = slow_weight
        self.update_interval = update_interval
        self._last_classes = None
        self._next_update = 0

    def attach(self, proc):
        self._last_classes = None
        self._next_update = 0
        self._recompute(proc, (False,) * proc.num_threads)

    def on_cycle(self, proc):
        if proc.cycle < self._next_update:
            return
        self._next_update = proc.cycle + self.update_interval
        classes = tuple(
            thread.outstanding_l1 > 0 for thread in proc.threads
        )
        if classes != self._last_classes:
            self._recompute(proc, classes)

    def quiescent_wake(self, proc):
        """Fast-forward contract: during quiescence ``outstanding_l1`` is
        frozen, so re-sampling can only change the partitions when the
        classification has already drifted from the last one programmed —
        then the next sample point is a real update and caps the skip.
        Otherwise every skipped sample would be a no-op re-program of the
        same classes, and only ``_next_update`` needs replaying."""
        classes = tuple(
            thread.outstanding_l1 > 0 for thread in proc.threads
        )
        if classes != self._last_classes:
            return max(proc.cycle, self._next_update)
        return None

    def on_quiesce(self, proc, start_cycle, num_cycles):
        """Replay the skipped samples' ``_next_update`` advance in closed
        form: the first skipped cycle at or past ``_next_update`` samples
        and re-arms, then every ``update_interval`` cycles after it."""
        last = start_cycle + num_cycles - 1
        first = max(start_cycle, self._next_update)
        if first <= last:
            interval = self.update_interval
            self._next_update = first + interval * ((last - first) // interval) \
                + interval

    def _recompute(self, proc, classes):
        """Program per-structure caps from the fast/slow classification."""
        self._last_classes = classes
        num = proc.num_threads
        slow_count = sum(classes)
        fast_count = num - slow_count
        weight = self.slow_weight
        denom = fast_count + weight * slow_count
        config = proc.config

        def caps(capacity):
            fast_cap = max(1, int(capacity / denom))
            slow_cap = max(1, int(capacity * weight / denom))
            return [slow_cap if slow else fast_cap for slow in classes]

        proc.partitions.set_limits_directly(
            int_rename=caps(config.rename_int),
            int_iq=caps(config.iq_int_size),
            rob=caps(config.rob_size),
        )
