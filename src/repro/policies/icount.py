"""ICOUNT fetch policy (Tullsen et al., "Exploiting Choice", ISCA '96).

Every cycle the threads with the fewest instructions in the front end
(IFQ + issue queues) get fetch priority; no explicit partitioning is done,
so a stalled thread can clog the shared structures — the failure mode the
paper's Section 2 describes.
"""

from repro.policies.base import ResourcePolicy


class ICountPolicy(ResourcePolicy):
    """Plain ICOUNT: the base policy's fetch order with no partitioning."""

    name = "ICOUNT"
