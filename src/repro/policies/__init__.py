"""Baseline SMT resource-distribution policies the paper compares against.

* :class:`~repro.policies.icount.ICountPolicy` — ICOUNT fetch priority,
  no partitioning (Tullsen et al., ISCA '96).
* :class:`~repro.policies.flush.FlushPolicy` — flush + fetch-lock on
  L2-missing loads (Tullsen & Brown, MICRO '01).
* :class:`~repro.policies.stall.StallPolicy` — fetch-lock without flushing.
* :class:`~repro.policies.dcra.DCRAPolicy` — dynamically controlled
  resource allocation (Cazorla et al., MICRO '04), approximated per
  DESIGN.md.
* :class:`~repro.policies.static_partition.StaticPartitionPolicy` — fixed
  equal (or user-provided) partitions.

All learning-based policies live in :mod:`repro.core`.
"""

from repro.policies.base import ResourcePolicy
from repro.policies.icount import ICountPolicy
from repro.policies.flush import FlushPolicy
from repro.policies.stall import StallPolicy
from repro.policies.stall_flush import StallFlushPolicy
from repro.policies.dcra import DCRAPolicy
from repro.policies.dg import DGPolicy, PDGPolicy
from repro.policies.fpg import FPGPolicy
from repro.policies.static_partition import StaticPartitionPolicy

BASELINE_POLICIES = {
    "ICOUNT": ICountPolicy,
    "FPG": FPGPolicy,
    "STALL": StallPolicy,
    "FLUSH": FlushPolicy,
    "STALL-FLUSH": StallFlushPolicy,
    "DG": DGPolicy,
    "PDG": PDGPolicy,
    "DCRA": DCRAPolicy,
    "STATIC": StaticPartitionPolicy,
}

__all__ = [
    "ResourcePolicy",
    "ICountPolicy",
    "FPGPolicy",
    "FlushPolicy",
    "StallPolicy",
    "StallFlushPolicy",
    "DGPolicy",
    "PDGPolicy",
    "DCRAPolicy",
    "StaticPartitionPolicy",
    "BASELINE_POLICIES",
]
