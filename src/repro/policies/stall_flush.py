"""STALL-FLUSH hybrid (Tullsen & Brown, MICRO '01).

First line of defence is cheap: fetch-lock the thread when an L2 miss is
detected (STALL).  Flushing — wasteful in fetch bandwidth and power — is
the fallback, triggered only when the shared resources actually run out
while a locked thread holds them.  The paper's Section 2 cites this as the
way to "minimize the number of flushed instructions".
"""

from repro.policies.flush import FlushPolicy
from repro.policies.base import ResourcePolicy


class StallFlushPolicy(ResourcePolicy):
    """STALL by default, FLUSH when the machine is about to exhaust a
    shared structure while a thread is locked on a miss."""

    name = "STALL-FLUSH"
    wants_miss_detection = True

    def __init__(self, pressure=0.95):
        if not 0.0 < pressure <= 1.0:
            raise ValueError("pressure must be in (0, 1]")
        self.pressure = pressure
        self._waiting = {}  # tid -> (seq, gen) of the lock-triggering load
        self._flushed = set()  # lock episodes already flushed once

    def attach(self, proc):
        proc.partitions.clear()
        self._waiting = {}
        self._flushed = set()

    def on_l2_miss_detected(self, proc, instr):
        tid = instr.thread
        if tid not in self._waiting:
            self._waiting[tid] = (instr.seq, instr.gen)
            proc.threads[tid].policy_locked = True

    def on_load_complete(self, proc, instr):
        tid = instr.thread
        if self._waiting.get(tid) == (instr.seq, instr.gen):
            self._flushed.discard((tid, instr.seq, instr.gen))
            del self._waiting[tid]
            proc.threads[tid].policy_locked = False

    def on_squash(self, proc, tid, after_seq):
        waiting = self._waiting.get(tid)
        if waiting is not None and waiting[0] > after_seq:
            self._flushed.discard((tid,) + waiting)
            del self._waiting[tid]
            proc.threads[tid].policy_locked = False

    def on_cycle(self, proc):
        if not self._waiting:
            return
        config = proc.config
        exhausted = (
            proc.rob_total >= self.pressure * config.rob_size
            or proc.iq_int_total >= self.pressure * config.iq_int_size
            or proc.ren_int_total >= self.pressure * config.rename_int
        )
        if not exhausted:
            return
        # Resources are nearly gone: flush the locked thread holding the
        # most ROB entries, releasing its clog.  Each lock episode flushes
        # at most once — sustained pressure must not grind the thread with
        # repeated squashes.
        victims = [
            tid for tid, waiting in self._waiting.items()
            if (tid,) + waiting not in self._flushed
        ]
        if not victims:
            return
        victim = max(victims, key=lambda tid: len(proc.threads[tid].rob))
        seq, gen = self._waiting[victim]
        proc.squash_after(victim, seq)
        proc.stats.flushes[victim] += 1
        self._flushed.add((victim, seq, gen))
        # The lock stays until the triggering load returns.

    def quiescent_wake(self, proc):
        """Fast-forward contract: occupancies are frozen during
        quiescence, so whether ``on_cycle`` would flush is decided *now* —
        a pending (pressure + unflushed victim) flush vetoes the skip, and
        otherwise no skipped cycle could trigger one (locks only change at
        detection/completion/squash events, which cap the horizon)."""
        if not self._waiting:
            return None
        config = proc.config
        exhausted = (
            proc.rob_total >= self.pressure * config.rob_size
            or proc.iq_int_total >= self.pressure * config.iq_int_size
            or proc.ren_int_total >= self.pressure * config.rename_int
        )
        if not exhausted:
            return None
        flushed = self._flushed
        for tid, waiting in self._waiting.items():
            if (tid,) + waiting not in flushed:
                return proc.cycle
        return None
