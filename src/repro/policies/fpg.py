"""FPG fetch policy (Luo et al., IPDPS '01).

Fetch Priority based on Goodness: threads whose branches are being
predicted well receive fetch priority, since their fetched instructions are
least likely to be squashed.  Like ICOUNT it is a pure fetch policy — no
partitioning — so it cannot prevent resource clog; the paper cites it as a
second example of indicator-driven fetch policies.

We track a per-thread exponential moving average of branch-prediction
accuracy from resolved branches and order fetch-eligible threads by it
(ties broken by ICOUNT).
"""

from repro.policies.base import ResourcePolicy


class FPGPolicy(ResourcePolicy):
    """Fetch priority by recent branch-prediction goodness."""

    name = "FPG"

    def __init__(self, smoothing=0.02):
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self.smoothing = smoothing
        self.goodness = []

    def attach(self, proc):
        proc.partitions.clear()
        self.goodness = [1.0] * proc.num_threads
        # Observe resolutions via the completion path: the processor calls
        # on_load_complete for loads only, so FPG hooks the per-cycle path
        # and inspects resolved-branch statistics deltas.
        self._last_branches = [0] * proc.num_threads
        self._last_mispredicts = [0] * proc.num_threads

    def on_cycle(self, proc):
        stats = proc.stats
        smoothing = self.smoothing
        for tid in range(proc.num_threads):
            resolved = stats.branches[tid] - self._last_branches[tid]
            if not resolved:
                continue
            missed = stats.mispredicts[tid] - self._last_mispredicts[tid]
            accuracy = 1.0 - missed / resolved
            self.goodness[tid] += smoothing * resolved * (
                accuracy - self.goodness[tid])
            self._last_branches[tid] = stats.branches[tid]
            self._last_mispredicts[tid] = stats.mispredicts[tid]

    def quiescent_wake(self, proc):
        """Fast-forward contract: goodness only moves when branches
        resolve, and none can resolve during quiescence — so the skipped
        ``on_cycle`` invocations are no-ops once any already-resolved
        branches have been folded in (an unfolded delta vetoes the skip)."""
        branches = proc.stats.branches
        last = self._last_branches
        for tid in range(proc.num_threads):
            if branches[tid] != last[tid]:
                return proc.cycle
        return None

    def fetch_priority(self, proc, eligible):
        threads = proc.threads
        return sorted(
            eligible,
            key=lambda tid: (-self.goodness[tid], threads[tid].icount),
        )
