"""Static partitioning: a fixed division of the partitioned structures,
set once and never adapted (the paper's Section 2 third approach, e.g.
Raasch & Reinhardt).  The default is an equal split.
"""

from repro.pipeline.resources import equal_shares
from repro.policies.base import ResourcePolicy


class StaticPartitionPolicy(ResourcePolicy):
    """Fixed partition shares over the integer rename registers."""

    name = "STATIC"

    def __init__(self, shares=None):
        self.shares = None if shares is None else list(shares)

    def attach(self, proc):
        shares = self.shares
        if shares is None:
            shares = equal_shares(proc.config, proc.num_threads)
        proc.partitions.set_shares(shares)
