"""DG and PDG fetch-gating policies (El-Moursy & Albonesi, HPCA '03).

Both fetch-lock a thread around long-latency data-cache misses:

* **DG** (Data Gating) locks when the number of in-flight L1 data-cache
  misses exceeds a threshold — detection is late (the misses already
  happened) but certain.
* **PDG** (Predictive Data Gating) consults a miss predictor at fetch and
  gates ahead of time — earlier but unreliable, exactly the trade-off the
  paper's Section 2 describes.

Our PDG predictor is a small table of 2-bit saturating counters indexed by
load PC, trained at load completion.
"""

from repro.policies.base import ResourcePolicy


class DGPolicy(ResourcePolicy):
    """Fetch-lock while in-flight L1 data misses exceed ``threshold``."""

    name = "DG"

    def __init__(self, threshold=2):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold

    def attach(self, proc):
        proc.partitions.clear()

    def on_cycle(self, proc):
        threshold = self.threshold
        for thread in proc.threads:
            thread.policy_locked = thread.outstanding_l1 >= threshold

    def quiescent_wake(self, proc):
        """Fast-forward contract: ``outstanding_l1`` only changes at issue
        and completion, so during quiescence the skipped re-evaluations
        are no-ops whenever every lock already agrees with the counters;
        a disagreement means this very cycle's ``on_cycle`` matters."""
        threshold = self.threshold
        for thread in proc.threads:
            if thread.policy_locked != (thread.outstanding_l1 >= threshold):
                return proc.cycle
        return None


class PDGPolicy(ResourcePolicy):
    """Gate fetch when a miss predictor expects the thread's recent loads
    to miss; train the predictor at load completion."""

    name = "PDG"
    wants_miss_detection = False

    def __init__(self, table_size=1024, gate_cycles=12):
        if table_size < 1:
            raise ValueError("table_size must be >= 1")
        self.table_size = table_size
        self.gate_cycles = gate_cycles
        self._tables = []
        self._gate_until = []

    def attach(self, proc):
        proc.partitions.clear()
        self._tables = [
            [1] * self.table_size for __ in range(proc.num_threads)
        ]
        self._gate_until = [0] * proc.num_threads

    def _index(self, pc):
        return (pc >> 2) % self.table_size

    def on_load_complete(self, proc, instr):
        table = self._tables[instr.thread]
        index = self._index(instr.pc)
        counter = table[index]
        if instr.mem_level is not None and instr.mem_level != "L1":
            if counter < 3:
                table[index] = counter + 1
            # A predicted-missing load gates the thread's fetch briefly.
            if counter >= 2:
                self._gate_until[instr.thread] = max(
                    self._gate_until[instr.thread],
                    proc.cycle + self.gate_cycles,
                )
        elif counter > 0:
            table[index] = counter - 1

    def on_cycle(self, proc):
        cycle = proc.cycle
        for thread in proc.threads:
            thread.policy_locked = cycle < self._gate_until[thread.tid]

    def quiescent_wake(self, proc):
        """Fast-forward contract: gates are only armed at load completion,
        so during quiescence the earliest state change is the next pending
        gate expiry (the cycle whose ``on_cycle`` drops the lock).  A lock
        that already disagrees with its gate vetoes the skip outright."""
        cycle = proc.cycle
        wake = None
        for thread in proc.threads:
            until = self._gate_until[thread.tid]
            if thread.policy_locked != (cycle < until):
                return cycle
            if until > cycle and (wake is None or until < wake):
                wake = until
        return wake
