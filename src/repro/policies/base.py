"""Resource-distribution policy interface.

A policy plugs into the processor at four points:

* ``fetch_priority`` — orders the fetch-eligible threads each cycle (all
  policies in the paper, including the learning ones, use ICOUNT here).
* ``on_cycle`` — per-cycle bookkeeping (DCRA recomputes caps here).
* ``on_l2_miss_detected`` / ``on_load_complete`` / ``on_squash`` — the
  long-latency-load event stream used by FLUSH and STALL.
* ``on_epoch_end`` — invoked by the epoch controller with the epoch's
  performance feedback; learning policies reprogram the partition
  registers here.
* ``quiescent_wake`` / ``on_quiesce`` — the fast-forward core's contract
  (docs/INTERNALS.md): a policy declares when its ``on_cycle`` next needs
  a real cycle, and replays its per-cycle bookkeeping over skipped
  quiescent stretches.
"""


class ResourcePolicy:
    """Base policy: ICOUNT fetch order, no partitioning, no reactions."""

    name = "BASE"
    #: Set True to receive :meth:`on_l2_miss_detected` events (the processor
    #: skips scheduling detection events otherwise).
    wants_miss_detection = False

    def attach(self, proc):
        """Called once when the processor adopts this policy."""
        proc.partitions.clear()

    def fetch_priority(self, proc, eligible):
        """Order the fetch-eligible thread ids, highest priority first.

        The default is ICOUNT: fewest front-end instructions first.
        """
        threads = proc.threads
        return sorted(eligible, key=lambda tid: threads[tid].icount)

    def on_cycle(self, proc):
        """Per-cycle hook (after fetch)."""

    def on_l2_miss_detected(self, proc, instr):
        """A load of ``instr.thread`` was just found to miss in the L2."""

    def on_load_complete(self, proc, instr):
        """A load finished (any level)."""

    def on_squash(self, proc, tid, after_seq):
        """Instructions of ``tid`` younger than ``after_seq`` were squashed."""

    def on_epoch_end(self, proc, epoch):
        """Epoch boundary: ``epoch`` is an
        :class:`~repro.core.controller.EpochResult`."""

    def plan_epoch(self, proc, epoch_id):
        """Called before each epoch; return ``None`` for a normal epoch or a
        thread id to request a solo (SingleIPC-sampling) epoch."""
        return None

    def quiescent_wake(self, proc):
        """Fast-forward contract: earliest future cycle at which this
        policy's ``on_cycle`` could change machine-visible state while the
        pipeline itself is quiescent, or ``None`` for "never".

        The fast core only skips cycles it can prove are no-ops, and a
        policy's ``on_cycle`` runs every cycle in the reference loop — so
        a skip is only legal if the policy certifies that its skipped
        ``on_cycle`` invocations would not have touched anything.
        Returning ``proc.cycle`` (or any value ``<= proc.cycle``) vetoes
        the skip entirely; returning a future cycle caps the skip there.

        The default is byte-identity-safe for every subclass: policies
        that inherit the no-op ``on_cycle`` never need waking, and any
        policy that overrides ``on_cycle`` without also declaring its wake
        schedule is conservatively never skipped past.
        """
        if type(self).on_cycle is ResourcePolicy.on_cycle:
            return None
        return proc.cycle

    def on_quiesce(self, proc, start_cycle, num_cycles):
        """The fast core skipped cycles ``[start_cycle, start_cycle +
        num_cycles)``; replay any per-cycle bookkeeping those ``on_cycle``
        invocations would have done (e.g. advancing an update-interval
        counter), byte-identically.  ``proc.cycle`` is still
        ``start_cycle`` when this runs.  Machine-visible state must not
        change here — anything visible belongs in ``quiescent_wake``."""

    def __repr__(self):
        return "<%s %s>" % (type(self).__name__, self.name)
