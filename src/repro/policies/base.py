"""Resource-distribution policy interface.

A policy plugs into the processor at four points:

* ``fetch_priority`` — orders the fetch-eligible threads each cycle (all
  policies in the paper, including the learning ones, use ICOUNT here).
* ``on_cycle`` — per-cycle bookkeeping (DCRA recomputes caps here).
* ``on_l2_miss_detected`` / ``on_load_complete`` / ``on_squash`` — the
  long-latency-load event stream used by FLUSH and STALL.
* ``on_epoch_end`` — invoked by the epoch controller with the epoch's
  performance feedback; learning policies reprogram the partition
  registers here.
"""


class ResourcePolicy:
    """Base policy: ICOUNT fetch order, no partitioning, no reactions."""

    name = "BASE"
    #: Set True to receive :meth:`on_l2_miss_detected` events (the processor
    #: skips scheduling detection events otherwise).
    wants_miss_detection = False

    def attach(self, proc):
        """Called once when the processor adopts this policy."""
        proc.partitions.clear()

    def fetch_priority(self, proc, eligible):
        """Order the fetch-eligible thread ids, highest priority first.

        The default is ICOUNT: fewest front-end instructions first.
        """
        threads = proc.threads
        return sorted(eligible, key=lambda tid: threads[tid].icount)

    def on_cycle(self, proc):
        """Per-cycle hook (after fetch)."""

    def on_l2_miss_detected(self, proc, instr):
        """A load of ``instr.thread`` was just found to miss in the L2."""

    def on_load_complete(self, proc, instr):
        """A load finished (any level)."""

    def on_squash(self, proc, tid, after_seq):
        """Instructions of ``tid`` younger than ``after_seq`` were squashed."""

    def on_epoch_end(self, proc, epoch):
        """Epoch boundary: ``epoch`` is an
        :class:`~repro.core.controller.EpochResult`."""

    def plan_epoch(self, proc, epoch_id):
        """Called before each epoch; return ``None`` for a normal epoch or a
        thread id to request a solo (SingleIPC-sampling) epoch."""
        return None

    def __repr__(self):
        return "<%s %s>" % (type(self).__name__, self.name)
