"""STALL policy (Tullsen & Brown, MICRO '01).

Like FLUSH, triggers on L2-missing loads, but only fetch-locks the thread —
instructions already in the pipeline stay put.  Cheaper than flushing but
cannot undo resource clog that happened before the trigger, which is why
the paper reports it is less effective in MEM workloads.
"""

from repro.policies.base import ResourcePolicy


class StallPolicy(ResourcePolicy):
    """Fetch-lock on L2 miss; unlock when the last trigger load returns."""

    name = "STALL"
    wants_miss_detection = True

    def __init__(self):
        # tid -> {(seq, gen)} of outstanding trigger loads.
        self._pending = {}

    def attach(self, proc):
        proc.partitions.clear()
        self._pending = {tid: set() for tid in range(proc.num_threads)}

    def on_l2_miss_detected(self, proc, instr):
        tid = instr.thread
        self._pending[tid].add((instr.seq, instr.gen))
        proc.threads[tid].policy_locked = True

    def on_load_complete(self, proc, instr):
        tid = instr.thread
        pending = self._pending[tid]
        pending.discard((instr.seq, instr.gen))
        if not pending:
            proc.threads[tid].policy_locked = False

    def on_squash(self, proc, tid, after_seq):
        pending = self._pending[tid]
        if pending:
            self._pending[tid] = {
                entry for entry in pending if entry[0] <= after_seq
            }
            if not self._pending[tid]:
                proc.threads[tid].policy_locked = False
