"""FLUSH policy (Tullsen & Brown, MICRO '01).

When a load is detected to miss in the L2, every younger instruction of
that thread is flushed from the pipeline (releasing the shared resources it
clogged) and the thread is fetch-locked until the load's data returns.
Recovery is immediate and complete, but flushed work must be re-fetched —
the fetch-bandwidth/power waste the paper notes.
"""

from repro.policies.base import ResourcePolicy


class FlushPolicy(ResourcePolicy):
    """Flush-on-L2-miss with fetch-lock until the miss returns."""

    name = "FLUSH"
    wants_miss_detection = True

    def __init__(self):
        # tid -> (seq, gen) of the load the thread is locked on.
        self._waiting = {}

    def attach(self, proc):
        proc.partitions.clear()
        self._waiting = {}

    def on_l2_miss_detected(self, proc, instr):
        tid = instr.thread
        if tid in self._waiting:
            return  # already flushed behind an older miss
        proc.squash_after(tid, instr.seq)
        proc.threads[tid].policy_locked = True
        self._waiting[tid] = (instr.seq, instr.gen)
        proc.stats.flushes[tid] += 1

    def on_load_complete(self, proc, instr):
        tid = instr.thread
        waiting = self._waiting.get(tid)
        if waiting == (instr.seq, instr.gen):
            del self._waiting[tid]
            proc.threads[tid].policy_locked = False

    def on_squash(self, proc, tid, after_seq):
        # If the load we were waiting on was itself squashed (by an older
        # mispredicted branch), release the lock so the thread can re-fetch.
        waiting = self._waiting.get(tid)
        if waiting is not None and waiting[0] > after_seq:
            del self._waiting[tid]
            proc.threads[tid].policy_locked = False
