"""Structure-of-arrays batched core lane (``REPRO_CORE=batched``).

The fast core (:mod:`repro.pipeline.fastpath`) amortizes the Python
interpreter across *cycles* by proving quiescent stretches and jumping
them.  This module amortizes it across *sweep cells*: a
:class:`BatchCore` owns many independent processors (one per cell) and
advances them through their run windows in lockstep, mirroring the
per-cell × per-thread machine state that gates forward progress —
occupancy counters, partition-limit registers, fetch-block and
event-heap head cycles — into numpy structure-of-arrays and screening
the whole pack for quiescence with vectorized ops each scheduling
round.

The byte-identity argument (docs/INTERNALS.md section 1c) is strict
delegation: the SoA arrays are *read-only mirrors* used for scheduling
decisions, never authoritative state.  Cells the screen nominates are
confirmed by the same :func:`~repro.pipeline.fastpath.quiescent_horizon`
proof and jumped by the same
:func:`~repro.pipeline.fastpath.apply_skip` replay the fast core uses;
dense cells step through :func:`step_window`, whose loop body is the
fast core's loop body with a cooperative iteration budget bolted on.
Crucially a skip is never split at a scheduling boundary: the horizon
is always proven against the cell's true window end, so the
``on_quiesce(cycle, skipped)`` call sequence every policy observes is
identical to a solo fast-core run.

numpy is imported guarded: stdlib-only paths (the service daemon,
``repro lint``) never touch this module, and importing it without numpy
still succeeds — only *constructing* a :class:`BatchCore` requires the
dependency.  Packing itself lives one layer up in
:mod:`repro.experiments.batchrun`.
"""

from repro.pipeline.fastpath import apply_skip, quiescent_horizon

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships numpy
    _np = None

__all__ = ["HAVE_NUMPY", "BatchCore", "audit_mirrors", "step_window"]

#: Whether the optional numpy dependency is importable; the batched lane
#: refuses to construct without it, everything else ignores it.
HAVE_NUMPY = _np is not None

#: Sentinel cycle for "no event pending" in the mirrored heap-head
#: columns: far beyond any real horizon.
_NEVER = 1 << 62


def step_window(proc, end, budget):
    """Advance ``proc`` toward cycle ``end`` exactly like
    ``SMTProcessor._run_fast``, yielding control after ``budget`` loop
    iterations so a pack scheduler can interleave many cells.

    The loop body — quiescence pre-gate, horizon proof, bulk skip,
    per-stage guarded calls — is the fast core's, verbatim; only the
    iteration budget differs, and yielding between iterations cannot be
    observed by the machine (each iteration re-reads all state it
    uses).  Skips are proven against the true window ``end``, never a
    scheduling boundary, so the policy's ``on_quiesce`` partitioning
    matches a solo run.  Returns the number of iterations spent.
    """
    policy = proc.policy
    stats = proc.stats
    ready = proc._ready
    completions = proc._completions
    detections = proc._detections
    spent = 0
    while proc.cycle < end and spent < budget:
        spent += 1
        cycle = proc.cycle
        if not ready \
                and (not completions or completions[0][0] > cycle) \
                and (not detections or detections[0][0] > cycle):
            horizon = quiescent_horizon(proc, end)
            if horizon is not None:
                apply_skip(proc, horizon)
                continue
        if completions and completions[0][0] <= cycle:
            proc._do_completions(cycle)
        if detections and detections[0][0] <= cycle:
            proc._do_detections(cycle)
        if proc.rob_total:
            proc._do_commit()
        if ready:
            proc._do_issue(cycle)
        if proc.ifq_total:
            proc._do_dispatch()
        proc._do_fetch(cycle)
        policy.on_cycle(proc)
        proc.cycle = cycle + 1
        stats.cycles += 1
    return spent


def audit_mirrors(core, indices):
    """Runtime cross-check of a :class:`BatchCore`'s SoA mirrors against
    the scalar processor state they shadow — the dynamic counterpart of
    lint's static MC4xx mirror-coverage pass (``REPRO_AUDIT=mirror`` /
    ``repro sweep --audit-mirrors``).

    Strictly read-only: it recomputes each mirror's scalar truth
    independently (the same expressions ``BatchCore._refresh`` uses) and
    compares, mutating neither the arrays nor the processors, so running
    it cannot change stats, checkpoints or cache keys.  Callers must
    refresh the mirrors first — they are only exact at screen time — and
    the pack layer does exactly that at every epoch boundary before
    auditing.  Returns ``{index: "mirror, mirror, ..."}`` naming the
    divergent mirrors per diverged cell (empty when all is well); the
    pack supervisor evicts diverged cells to the scalar lane.
    """
    diverged = {}
    for index in indices:
        proc = core.procs[index]
        bad = []
        if core._cycle[index] != proc.cycle:
            bad.append("_cycle")
        if bool(core._ready_empty[index]) != (not proc._ready):
            bad.append("_ready_empty")
        if bool(core._ifq_space[index]) != (proc.ifq_total
                                            < proc.config.ifq_size):
            bad.append("_ifq_space")
        head = _NEVER
        if proc._completions:
            head = proc._completions[0][0]
        if proc._detections and proc._detections[0][0] < head:
            head = proc._detections[0][0]
        if core._event_head[index] != head:
            bad.append("_event_head")
        enabled = proc.enabled
        partitions = proc.partitions
        limit_ren = partitions.limit_int_rename
        limit_iq = partitions.limit_int_iq
        limit_rob = partitions.limit_rob
        for thread in proc.threads:
            tid = thread.tid
            for name, mirrored, truth in (
                    ("_enabled", bool(core._enabled[index, tid]),
                     tid in enabled),
                    ("_locked", bool(core._locked[index, tid]),
                     thread.policy_locked),
                    ("_blocked_until", int(core._blocked_until[index, tid]),
                     thread.fetch_blocked_until),
                    ("_occ_ren", int(core._occ_ren[index, tid]),
                     thread.ren_int),
                    ("_occ_iq", int(core._occ_iq[index, tid]),
                     thread.iq_int),
                    ("_occ_rob", int(core._occ_rob[index, tid]),
                     len(thread.rob)),
                    ("_lim_ren", int(core._lim_ren[index, tid]),
                     limit_ren[tid]),
                    ("_lim_iq", int(core._lim_iq[index, tid]),
                     limit_iq[tid]),
                    ("_lim_rob", int(core._lim_rob[index, tid]),
                     limit_rob[tid])):
                if mirrored != truth:
                    bad.append("%s[t%d]" % (name, tid))
        if bad:
            diverged[index] = ", ".join(bad)
    return diverged


class BatchCore:
    """Lockstep scheduler over many independent processors.

    Parameters
    ----------
    procs:
        The pack's :class:`~repro.pipeline.processor.SMTProcessor`
        instances.  They must be plain simulation processors (no
        :class:`~repro.pipeline.profile.CoreProfile` attached — profiled
        runs go through the single-cell cores).
    budget:
        Loop iterations granted to one dense cell per scheduling round.
        Smaller values tighten the lockstep (cells stay closer together
        in time, so shared replay tapes trim sooner); larger values
        amortize the scheduling overhead.  Either way results are
        byte-identical — the budget only moves yield points.
    """

    def __init__(self, procs, budget=8192):
        if _np is None:
            raise RuntimeError(
                "the batched core lane requires numpy; install it or use "
                "REPRO_CORE=fast")
        if budget < 1:
            raise ValueError("budget must be >= 1")
        self.procs = list(procs)
        self.budget = budget
        for proc in self.procs:
            if proc.profile is not None:
                raise ValueError(
                    "BatchCore cannot step a profiled processor; profile "
                    "single cells through repro.experiments.profiling")
        cells = len(self.procs)
        width = max((proc.num_threads for proc in self.procs), default=1)
        # Structure-of-arrays mirrors, [cell] and [cell, thread].  Unused
        # thread slots are padded so they read as permanently ineligible.
        # Each mirror declares the scalar field(s) it shadows; the
        # declarations are cross-checked against pipeline/processor.py
        # and pipeline/resources.py by `repro lint` (MC4xx rules,
        # docs/ANALYSIS.md "Mirror coverage") so a scalar rename or an
        # unrefreshed/extra/written-elsewhere mirror fails the build.
        # repro: mirror[_cycle <- SMTProcessor.cycle]
        self._cycle = _np.zeros(cells, dtype=_np.int64)
        # repro: mirror[_ready_empty <- SMTProcessor._ready]
        self._ready_empty = _np.zeros(cells, dtype=bool)
        # repro: mirror[_ifq_space <- SMTProcessor.ifq_total]
        self._ifq_space = _np.zeros(cells, dtype=bool)
        # repro: mirror[_event_head <- SMTProcessor._completions, SMTProcessor._detections]
        self._event_head = _np.full(cells, _NEVER, dtype=_np.int64)
        # repro: mirror[_enabled <- SMTProcessor.enabled]
        self._enabled = _np.zeros((cells, width), dtype=bool)
        # repro: mirror[_locked <- _ThreadState.policy_locked]
        self._locked = _np.zeros((cells, width), dtype=bool)
        # repro: mirror[_blocked_until <- _ThreadState.fetch_blocked_until]
        self._blocked_until = _np.zeros((cells, width), dtype=_np.int64)
        # repro: mirror[_occ_ren <- _ThreadState.ren_int]
        self._occ_ren = _np.zeros((cells, width), dtype=_np.int64)
        # repro: mirror[_occ_iq <- _ThreadState.iq_int]
        self._occ_iq = _np.zeros((cells, width), dtype=_np.int64)
        # repro: mirror[_occ_rob <- _ThreadState.rob]
        self._occ_rob = _np.zeros((cells, width), dtype=_np.int64)
        # repro: mirror[_lim_ren <- PartitionRegisters.limit_int_rename]
        self._lim_ren = _np.zeros((cells, width), dtype=_np.int64)
        # repro: mirror[_lim_iq <- PartitionRegisters.limit_int_iq]
        self._lim_iq = _np.zeros((cells, width), dtype=_np.int64)
        # repro: mirror[_lim_rob <- PartitionRegisters.limit_rob]
        self._lim_rob = _np.zeros((cells, width), dtype=_np.int64)

    def _refresh(self, active):  # repro: mirror-refresh
        """Mirror the scheduling-relevant machine state of the active
        cells into the SoA arrays.  Mirrors are exact at screen time:
        cells only mutate while being stepped, after the screen."""
        for index in active:
            proc = self.procs[index]
            self._cycle[index] = proc.cycle
            self._ready_empty[index] = not proc._ready
            self._ifq_space[index] = proc.ifq_total < proc.config.ifq_size
            head = _NEVER
            if proc._completions:
                head = proc._completions[0][0]
            if proc._detections and proc._detections[0][0] < head:
                head = proc._detections[0][0]
            self._event_head[index] = head
            enabled = proc.enabled
            partitions = proc.partitions
            limit_ren = partitions.limit_int_rename
            limit_iq = partitions.limit_int_iq
            limit_rob = partitions.limit_rob
            for thread in proc.threads:
                tid = thread.tid
                self._enabled[index, tid] = tid in enabled
                self._locked[index, tid] = thread.policy_locked
                self._blocked_until[index, tid] = thread.fetch_blocked_until
                self._occ_ren[index, tid] = thread.ren_int
                self._occ_iq[index, tid] = thread.iq_int
                self._occ_rob[index, tid] = len(thread.rob)
                self._lim_ren[index, tid] = limit_ren[tid]
                self._lim_iq[index, tid] = limit_iq[tid]
                self._lim_rob[index, tid] = limit_rob[tid]

    def _screen(self):
        """Vectorized quiescence candidates across the whole pack.

        The mask mirrors the *cheap necessary* conditions of the
        quiescence proof — empty ready heap, no event-heap head due, no
        fetch-eligible thread — over every cell at once; the conditions
        it cannot see from the mirrors (a done ROB head, a dispatchable
        IFQ head, the policy's wake cycle) are confirmed per candidate
        by :func:`quiescent_horizon` before any skip is applied, so a
        false positive costs one Python call and a false negative is
        impossible to act on (non-candidates go through the stepper,
        whose own pre-gate re-checks everything)."""
        cycle = self._cycle[:, None]
        ineligible = (~self._enabled
                      | self._locked
                      | (cycle < self._blocked_until)
                      | (self._occ_ren >= self._lim_ren)
                      | (self._occ_iq >= self._lim_iq)
                      | (self._occ_rob >= self._lim_rob))
        fetch_idle = (~self._ifq_space) | ineligible.all(axis=1)
        return (self._ready_empty
                & (self._event_head > self._cycle)
                & fetch_idle)

    def advance(self, windows, on_round=None):
        """Advance each ``(index, end)`` window to completion, lockstep.

        Each scheduling round refreshes the SoA mirrors, screens the
        pack, jumps every confirmed-quiescent cell to its horizon in one
        :func:`apply_skip`, and grants each still-active cell one budget
        of dense stepping.  ``on_round`` (if given) runs between rounds
        — the pack layer uses it to trim shared replay tapes to the
        slowest cell's frontier.
        """
        ends = {}
        for index, end in windows:
            proc = self.procs[index]
            if end > proc.cycle:
                ends[index] = end
        active = sorted(ends)
        while active:
            self._refresh(active)
            candidate = self._screen()
            still = []
            for index in active:
                proc = self.procs[index]
                end = ends[index]
                if candidate[index]:
                    horizon = quiescent_horizon(proc, end)
                    if horizon is not None:
                        apply_skip(proc, horizon)
                if proc.cycle < end:
                    step_window(proc, end, self.budget)
                if proc.cycle < end:
                    still.append(index)
            active = still
            if on_round is not None:
                on_round()
