"""Throughput observability for the simulator cores.

A :class:`CoreProfile` rides the processor like the pipeline tracer does
(``proc.profile = CoreProfile()``; default ``None`` = off) and makes the
instrumented run loop count, per cycle, which stages materially advanced
machine state, plus how many cycles the fast core skipped and in how many
jumps.  The counters live on this object — the processor itself carries
only the ``profile`` reference, which harnesses detach (reset to ``None``)
before checkpointing, so profiled and unprofiled machines pickle
identically.

Instrumentation never feeds back into simulation state: a profiled run
produces byte-identical stats to an unprofiled one, under either core.
Wall-clock timing (KIPS) deliberately lives in the harness
(:mod:`repro.experiments.profiling`), not here, keeping this module free
of nondeterminism.
"""

from dataclasses import dataclass, field

__all__ = ["STAGES", "CoreProfile"]

#: Stage keys of :attr:`CoreProfile.active_cycles`, pipeline order
#: (back to front, as the run loop executes them), plus ``idle`` for
#: executed cycles in which no stage made progress — the quiescent cycles
#: the reference core grinds through and the fast core skips.
STAGES = ("complete", "detect", "commit", "issue", "dispatch", "fetch",
          "idle")


def _fresh_stage_counts():
    return {stage: 0 for stage in STAGES}


@dataclass
class CoreProfile:
    """Cycle-accounting counters for one (or more) ``run`` windows.

    ``active_cycles[stage]`` counts executed cycles in which that stage
    materially advanced state (an instruction completed, committed,
    issued, dispatched or fetched; a detection fired).  A single cycle can
    credit several stages.  ``skipped_cycles``/``skip_events`` count the
    fast core's event-horizon jumps; both stay zero under the reference
    core, which makes the profile double as a skip-coverage probe.
    """

    #: Cycles stepped one at a time through the pipeline stages.
    executed_cycles: int = 0
    #: Cycles fast-forwarded over by the quiescence detector.
    skipped_cycles: int = 0
    #: Number of event-horizon jumps (skips) taken.
    skip_events: int = 0
    #: Executed cycles in which each stage advanced state.
    active_cycles: dict = field(default_factory=_fresh_stage_counts)

    def note_skip(self, num_cycles):
        """Record one event-horizon jump of ``num_cycles`` cycles."""
        self.skipped_cycles += num_cycles
        self.skip_events += 1

    @property
    def total_cycles(self):
        """Simulated cycles observed (executed + skipped)."""
        return self.executed_cycles + self.skipped_cycles

    @property
    def skip_ratio(self):
        """Fraction of simulated cycles fast-forwarded over (0.0 under
        the reference core)."""
        total = self.total_cycles
        return self.skipped_cycles / total if total else 0.0

    def to_dict(self):
        """JSON-ready counter snapshot (the ``repro profile`` report)."""
        return {
            "executed_cycles": self.executed_cycles,
            "skipped_cycles": self.skipped_cycles,
            "skip_events": self.skip_events,
            "skip_ratio": self.skip_ratio,
            "stage_cycles": dict(self.active_cycles),
        }
