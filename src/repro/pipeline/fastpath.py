"""Event-driven fast-forward core: quiescence proof + event horizon.

The reference loop executes all six pipeline stages every cycle, even when
the whole machine sits behind a long-latency memory access whose completion
time is already scheduled in the processor's event heaps.  This module lets
:meth:`~repro.pipeline.processor.SMTProcessor.run` prove such cycles are
no-ops and jump straight to the next scheduled event:

* :func:`quiescent_horizon` proves that *no* stage can change machine state
  this cycle — nothing ready to issue or complete, no committable ROB head,
  no dispatchable IFQ head, no fetch-eligible thread — and returns the
  earliest future cycle at which anything could change (the *event
  horizon*): the min of the completion/detection heap heads, the
  fetch-unblock times of otherwise-eligible threads, the policy's declared
  wake cycle, and the end of the run window (epoch boundaries cap a skip
  because ``on_epoch_end`` may reprogram the machine arbitrarily).
* :func:`apply_skip` bulk-replays the per-cycle bookkeeping the reference
  loop would have performed over the skipped stretch — cycle counters,
  commit/dispatch round-robin pointers, lock/partition-stall accounting and
  the policy's ``on_quiesce`` hook — so the two cores stay byte-identical
  (stats, checkpoints, merged sweep JSON).

Core selection is per :meth:`run` call: the ``REPRO_CORE`` environment
variable (``fast``, the default, ``reference``, or ``batched``) or a
process-local :class:`forced_core` override.  Nothing about the selection
is stored on the processor, so checkpoints never encode which core
produced them, and sweep cache keys are unchanged by core selection
(docs/PARALLEL.md).

``batched`` selects the structure-of-arrays lane
(:mod:`repro.pipeline.batched`): a *single* processor under it steps
exactly like the fast core (a batch of one), while sweep-cell packs
(:mod:`repro.experiments.batchrun`, ``repro sweep --batch-cells N``)
run many cells in lockstep inside one process — see docs/PERFORMANCE.md.

The correctness argument is spelled out in docs/INTERNALS.md and enforced
by the differential harness in tests/test_core_equivalence.py.
"""

import os

__all__ = ["CORE_MODES", "core_mode", "forced_core", "quiescent_horizon",
           "apply_skip"]

#: Valid core selections: the event-driven fast path (default), the
#: stage-every-cycle reference loop both other lanes must stay
#: byte-identical to, and the structure-of-arrays batched lane.
CORE_MODES = ("fast", "reference", "batched")

_forced_mode = None


def core_mode():
    """The core selection for the next ``run`` call.

    Raises :class:`ValueError` for unknown ``REPRO_CORE`` values (the CLI
    converts this into its standard one-line exit-2 error).
    """
    if _forced_mode is not None:
        return _forced_mode
    mode = os.environ.get("REPRO_CORE", "fast")
    if mode not in CORE_MODES:
        raise ValueError(
            "REPRO_CORE must be one of %s, got %r"
            % ("/".join(CORE_MODES), mode))
    return mode


class forced_core:
    """Context manager pinning the core selection for this process.

    Takes precedence over ``REPRO_CORE`` and nests (the previous override
    is restored on exit).  Used by the differential tests and the
    profiling harness, which must run the same machine under both cores
    inside one process without mutating the environment.
    """

    def __init__(self, mode):
        if mode not in CORE_MODES:
            raise ValueError(
                "core mode must be one of %s, got %r"
                % ("/".join(CORE_MODES), mode))
        self.mode = mode
        self._previous = None

    def __enter__(self):
        global _forced_mode
        self._previous = _forced_mode
        _forced_mode = self.mode
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        global _forced_mode
        _forced_mode = self._previous
        return False


def quiescent_horizon(proc, end):
    """Prove no pipeline stage can change machine state this cycle and
    return the event horizon — the earliest future cycle at which anything
    could change, capped at ``end`` — or ``None`` when the machine is (or
    may be) active.

    The proof mirrors the reference loop stage by stage (see the numbered
    correspondence in docs/INTERNALS.md):

    1. completions/detections: heap heads strictly in the future (a head
       due now is progress, even a stale one — popping it mutates the
       heap, hence the checkpoint);
    2. commit: no thread's ROB head is done;
    3. issue: the ready heap is empty (stale entries included — the
       reference loop drains them);
    4. dispatch: no thread's IFQ head passes ``_can_dispatch``;
    5. fetch: with IFQ space available, no enabled thread is
       fetch-eligible — every one is policy-locked, fetch-blocked (its
       unblock time bounds the horizon) or partition-limited;
    6. policy: ``quiescent_wake`` is in the future (or ``None``).
    """
    if proc._ready:
        return None
    cycle = proc.cycle
    horizon = end
    completions = proc._completions
    if completions:
        when = completions[0][0]
        if when <= cycle:
            return None
        if when < horizon:
            horizon = when
    detections = proc._detections
    if detections:
        when = detections[0][0]
        if when <= cycle:
            return None
        if when < horizon:
            horizon = when
    threads = proc.threads
    for thread in threads:
        rob = thread.rob
        if rob and rob[0].done:
            return None
    if proc.ifq_total:
        can_dispatch = proc._can_dispatch
        for thread in threads:
            ifq = thread.ifq
            if ifq and can_dispatch(thread, ifq[0]):
                return None
    if proc.ifq_total < proc.config.ifq_size:
        # Mirrors _fetch_eligible: the lock check precedes the block check
        # precedes the partition check, and only this IFQ-space branch
        # charges any accounting (apply_skip replays it identically).
        enabled = proc.enabled
        partitions = proc.partitions
        for thread in threads:
            tid = thread.tid
            if tid not in enabled or thread.policy_locked:
                continue
            blocked_until = thread.fetch_blocked_until
            if cycle < blocked_until:
                if blocked_until < horizon:
                    horizon = blocked_until
                continue
            if (thread.ren_int >= partitions.limit_int_rename[tid]
                    or thread.iq_int >= partitions.limit_int_iq[tid]
                    or len(thread.rob) >= partitions.limit_rob[tid]):
                continue
            return None  # fetch-eligible: the front end would make progress
    wake = proc.policy.quiescent_wake(proc)
    if wake is not None:
        if wake <= cycle:
            return None
        if wake < horizon:
            horizon = wake
    if horizon <= cycle:
        return None
    return horizon


def apply_skip(proc, horizon):
    """Jump a proven-quiescent machine from ``proc.cycle`` to ``horizon``,
    bulk-replaying exactly what the reference loop mutates across a
    quiescent stretch; returns the number of cycles skipped.

    Per skipped cycle the reference loop would have: advanced the commit
    round-robin pointer (iff the ROB holds anything), advanced the
    dispatch pointer (iff the IFQ holds anything), charged one
    ``lock_cycles``/``partition_stall_cycles`` tick per enabled
    locked/partition-limited thread (iff the IFQ has space — a full IFQ
    short-circuits ``_do_fetch`` before any accounting), run the policy's
    ``on_cycle`` (replayed via ``on_quiesce``) and counted the cycle.
    """
    cycle = proc.cycle
    skipped = horizon - cycle
    num = proc.num_threads
    if proc.rob_total:
        proc._commit_rr = (proc._commit_rr + skipped) % num
    if proc.ifq_total:
        proc._dispatch_rr = (proc._dispatch_rr + skipped) % num
    stats = proc.stats
    if proc.ifq_total < proc.config.ifq_size:
        enabled = proc.enabled
        lock_cycles = stats.lock_cycles
        partition_stall_cycles = stats.partition_stall_cycles
        for thread in proc.threads:
            tid = thread.tid
            if tid not in enabled:
                continue
            if thread.policy_locked:
                lock_cycles[tid] += skipped
                continue
            if cycle < thread.fetch_blocked_until:
                continue
            # Not locked, not blocked, yet quiescent_horizon proved the
            # thread ineligible: it is partition-limited every skipped
            # cycle (partitions cannot change during quiescence).
            partition_stall_cycles[tid] += skipped
    proc.policy.on_quiesce(proc, cycle, skipped)
    proc.cycle = horizon
    stats.cycles += skipped
    return skipped
