"""Execution statistics for one :class:`~repro.pipeline.processor.SMTProcessor`.

The controller reads per-thread committed-instruction counts at epoch
boundaries ("committed instruction counters" in Figure 3) to compute the
performance-feedback metric; the remaining counters feed the analysis and
report modules.
"""

from dataclasses import dataclass, field


@dataclass
class SMTStats:
    """Whole-run counters, one instance per processor."""

    num_threads: int
    #: Committed instructions per thread.
    committed: list = field(default_factory=list)
    #: Instructions squashed per thread (mispredict recovery + flushes).
    squashed: list = field(default_factory=list)
    #: Branch mispredicts observed at resolve, per thread.
    mispredicts: list = field(default_factory=list)
    #: Conditional branches resolved, per thread.
    branches: list = field(default_factory=list)
    #: Loads that missed in the L2 (went to memory), per thread.
    l2_misses: list = field(default_factory=list)
    #: Loads issued, per thread.
    loads: list = field(default_factory=list)
    #: FLUSH-policy flush events, per thread.
    flushes: list = field(default_factory=list)
    #: Cycles a thread spent fetch-locked by a policy.
    lock_cycles: list = field(default_factory=list)
    #: Cycles a thread could not fetch because a partition was exhausted.
    partition_stall_cycles: list = field(default_factory=list)
    #: Total cycles charged to the run (includes learning-overhead stalls).
    cycles: int = 0

    def __post_init__(self):
        for name in ("committed", "squashed", "mispredicts", "branches",
                     "l2_misses", "loads", "flushes", "lock_cycles",
                     "partition_stall_cycles"):
            if not getattr(self, name):
                setattr(self, name, [0] * self.num_threads)

    def total_committed(self):
        return sum(self.committed)

    def ipc(self, thread=None):
        """Committed IPC for one thread, or aggregate IPC if ``thread`` is
        None."""
        if self.cycles == 0:
            return 0.0
        if thread is None:
            return self.total_committed() / self.cycles
        return self.committed[thread] / self.cycles

    def copy(self):
        clone = SMTStats(self.num_threads)
        clone.committed = list(self.committed)
        clone.squashed = list(self.squashed)
        clone.mispredicts = list(self.mispredicts)
        clone.branches = list(self.branches)
        clone.l2_misses = list(self.l2_misses)
        clone.loads = list(self.loads)
        clone.flushes = list(self.flushes)
        clone.lock_cycles = list(self.lock_cycles)
        clone.partition_stall_cycles = list(self.partition_stall_cycles)
        clone.cycles = self.cycles
        return clone

    def delta_since(self, earlier):
        """Per-thread committed deltas and cycle delta since a copy taken
        earlier (the controller's epoch accounting)."""
        committed = [now - before for now, before
                     in zip(self.committed, earlier.committed)]
        return committed, self.cycles - earlier.cycles
