"""SMT machine configuration (the paper's Table 1), plus scaled presets.

``SMTConfig.paper()`` is the Table 1 machine.  ``SMTConfig.fast()`` is a
proportionally shrunk machine used by the benchmark harness so that epochs
of a few thousand cycles exercise the same contention behaviour the paper
sees at 64K cycles; ``SMTConfig.tiny()`` is for unit tests.
"""

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CacheConfig:
    """Geometry + latency of one cache level."""

    size_bytes: int
    block_bytes: int
    assoc: int
    latency: int


@dataclass(frozen=True)
class SMTConfig:
    """Full machine description.

    Defaults are the Table 1 values; use the factory classmethods rather
    than relying on the defaults directly.
    """

    # Bandwidths (Table 1: 8-fetch, 8-issue, 8-commit).
    fetch_width: int = 8
    dispatch_width: int = 8
    issue_width: int = 8
    commit_width: int = 8
    #: Threads that may fetch in the same cycle (ICOUNT.2.8 style).
    fetch_threads: int = 2

    # Queue sizes (Table 1: 32-IFQ, 80-Int IQ, 80-FP IQ, 256-LSQ).
    ifq_size: int = 32
    iq_int_size: int = 80
    iq_fp_size: int = 80
    lsq_size: int = 256

    # Rename registers and ROB (Table 1: 256-Int, 256-FP / 512-entry ROB).
    rename_int: int = 256
    rename_fp: int = 256
    rob_size: int = 512

    # Functional units (Table 1).
    fu_int_alu: int = 6
    fu_int_mul: int = 3
    fu_mem_port: int = 4
    fu_fp_add: int = 3
    fu_fp_mul: int = 3

    # Operation latencies (cycles).
    lat_int_alu: int = 1
    lat_int_mul: int = 3
    lat_fp_add: int = 2
    lat_fp_mul: int = 4
    lat_branch: int = 1
    lat_store: int = 1

    # Front-end behaviour.
    mispredict_penalty: int = 10

    # Branch predictor (Table 1: hybrid 8192 gshare / 2048 bimodal,
    # 8192 meta, 2048-entry 4-way BTB, 64-entry RAS).
    bp_gshare_entries: int = 8192
    bp_bimodal_entries: int = 2048
    bp_meta_entries: int = 8192
    btb_entries: int = 2048
    btb_assoc: int = 4
    ras_depth: int = 64

    # Memory hierarchy (Table 1).
    il1: CacheConfig = field(default_factory=lambda: CacheConfig(64 * 1024, 64, 2, 1))
    dl1: CacheConfig = field(default_factory=lambda: CacheConfig(64 * 1024, 64, 2, 1))
    ul2: CacheConfig = field(default_factory=lambda: CacheConfig(1024 * 1024, 64, 4, 20))
    mem_latency: int = 300

    #: Floor on any thread's partition of the integer rename registers; the
    #: same fraction is applied to the IQ/ROB partitions.  Prevents
    #: partition settings that starve a thread outright.
    min_partition: int = 8

    def __post_init__(self):
        if self.rename_int < 2 * self.min_partition:
            raise ValueError("rename_int too small for two minimum partitions")
        if min(self.fetch_width, self.dispatch_width, self.issue_width,
               self.commit_width) < 1:
            raise ValueError("pipeline widths must be positive")

    # -- presets ---------------------------------------------------------

    @classmethod
    def paper(cls):
        """The exact Table 1 machine."""
        return cls()

    @classmethod
    def fast(cls):
        """A half-scale machine for the benchmark harness.

        Pipeline structures are halved (128 integer rename registers,
        256-entry ROB, 40-entry IQs).  Caches are halved, not quartered:
        four co-scheduled synthetic working sets (4KB hot + 4KB code each)
        must fit the L1s the way four SPEC threads fit the paper's 64KB
        L1s, or 4-thread runs thrash the front end.
        """
        return cls(
            ifq_size=16,
            iq_int_size=40,
            iq_fp_size=40,
            lsq_size=128,
            rename_int=128,
            rename_fp=128,
            rob_size=256,
            bp_gshare_entries=4096,
            bp_bimodal_entries=1024,
            bp_meta_entries=4096,
            btb_entries=1024,
            il1=CacheConfig(32 * 1024, 64, 4, 1),
            dl1=CacheConfig(32 * 1024, 64, 4, 1),
            ul2=CacheConfig(512 * 1024, 64, 8, 20),
            mem_latency=200,
            min_partition=4,
        )

    @classmethod
    def tiny(cls):
        """A very small machine for unit tests."""
        return cls(
            fetch_width=4,
            dispatch_width=4,
            issue_width=4,
            commit_width=4,
            ifq_size=8,
            iq_int_size=16,
            iq_fp_size=16,
            lsq_size=32,
            rename_int=32,
            rename_fp=32,
            rob_size=64,
            bp_gshare_entries=256,
            bp_bimodal_entries=128,
            bp_meta_entries=256,
            btb_entries=64,
            ras_depth=16,
            il1=CacheConfig(4 * 1024, 64, 2, 1),
            dl1=CacheConfig(4 * 1024, 64, 2, 1),
            ul2=CacheConfig(64 * 1024, 64, 4, 10),
            mem_latency=80,
            min_partition=2,
        )

    def with_overrides(self, **kwargs):
        """Return a copy with selected fields replaced (for ablations)."""
        return replace(self, **kwargs)
