"""Per-instruction pipeline tracing.

Attach a :class:`PipelineTracer` to a processor (``proc.trace = tracer``)
and every instruction's stage timestamps are recorded: fetch, dispatch,
issue, complete, commit, plus squash events.  The textual renderer draws
the classic pipeline diagram (one instruction per row, one column per
cycle), which makes resource-clog and partition behaviour directly
visible.

Tracing is intended for debugging and teaching, not measurement runs —
it allocates one record per fetched instruction.
"""

from collections import OrderedDict, deque

FETCH = "F"
DISPATCH = "D"
ISSUE = "I"
COMPLETE = "C"
COMMIT = "R"  # retire
SQUASH = "x"

_STAGE_ORDER = (FETCH, DISPATCH, ISSUE, COMPLETE, COMMIT)


class TraceRecord:
    """Stage timestamps for one dynamic instruction incarnation."""

    __slots__ = ("thread", "seq", "op", "stamps", "squashed_at")

    def __init__(self, thread, seq, op):
        self.thread = thread
        self.seq = seq
        self.op = op
        self.stamps = {}
        self.squashed_at = None

    def note(self, stage, cycle):
        self.stamps[stage] = cycle

    @property
    def complete_lifetime(self):
        """(fetch cycle, commit cycle) when both known, else None."""
        if FETCH in self.stamps and COMMIT in self.stamps:
            return self.stamps[FETCH], self.stamps[COMMIT]
        return None


class PipelineTracer:
    """Bounded trace of recent instructions (per incarnation).

    Parameters
    ----------
    capacity:
        Maximum records retained (oldest evicted first).
    threads:
        Optional set of thread ids to trace (None: all).
    """

    def __init__(self, capacity=2048, threads=None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.threads = None if threads is None else set(threads)
        self._records = OrderedDict()  # (thread, seq, gen) -> TraceRecord
        self.squash_events = deque(maxlen=capacity)

    def _wants(self, instr):
        return self.threads is None or instr.thread in self.threads

    def _record_for(self, instr):
        key = (instr.thread, instr.seq, instr.gen)
        record = self._records.get(key)
        if record is None:
            record = TraceRecord(instr.thread, instr.seq, instr.op)
            self._records[key] = record
            while len(self._records) > self.capacity:
                self._records.popitem(last=False)
        return record

    def note(self, stage, cycle, instr):
        """Record one pipeline event (called by the processor)."""
        if not self._wants(instr):
            return
        if stage == SQUASH:
            record = self._record_for(instr)
            record.squashed_at = cycle
            self.squash_events.append((cycle, instr.thread, instr.seq))
            return
        self._record_for(instr).note(stage, cycle)

    def records(self, thread=None):
        """All retained records, optionally for one thread, oldest first."""
        return [
            record for record in self._records.values()
            if thread is None or record.thread == thread
        ]

    def render(self, max_rows=32, width=72):
        """Draw a pipeline diagram of the most recent instructions."""
        records = list(self._records.values())[-max_rows:]
        if not records:
            return "(empty trace)"
        start = min(min(record.stamps.values(), default=0)
                    for record in records)
        lines = []
        for record in records:
            cells = {}
            for stage in _STAGE_ORDER:
                if stage in record.stamps:
                    cells[record.stamps[stage] - start] = stage
            if record.squashed_at is not None:
                cells[record.squashed_at - start] = SQUASH
            if not cells:
                continue
            span = min(width, max(cells) + 1)
            row = "".join(cells.get(column, ".") for column in range(span))
            lines.append("t%d #%-6d %-4s |%s" % (
                record.thread, record.seq, record.op, row))
        return "\n".join(lines)

    def average_latency(self, thread=None):
        """Mean fetch-to-commit latency over complete records."""
        lifetimes = [
            record.complete_lifetime
            for record in self.records(thread)
            if record.complete_lifetime is not None
        ]
        if not lifetimes:
            return 0.0
        return sum(end - begin for begin, end in lifetimes) / len(lifetimes)
