"""Per-thread resource partition registers.

Following Section 3.1.2 of the paper, learning partitions a *single* unit
resource — the integer rename registers — and the integer issue queue and
ROB partitions are derived in proportion.  :class:`PartitionRegisters`
holds the per-thread limits for the three partitioned structures and
performs the proportional derivation; ``None`` limits mean the structure is
unpartitioned (baseline policies like ICOUNT/FLUSH run this way).
"""

import enum


class ResourceKind(enum.Enum):
    """The three explicitly partitioned shared structures (Figure 3)."""

    INT_RENAME = "int_rename"
    INT_IQ = "int_iq"
    ROB = "rob"


class PartitionRegisters:
    """Partition limits for each thread in each partitioned structure.

    The canonical setting is a vector of integer-rename-register *shares*
    (one per thread, summing to the rename pool size); IQ and ROB limits
    are scaled proportionally.  This mirrors the paper's observation that
    per-thread usage of the three structures is correlated, so one knob
    suffices.
    """

    def __init__(self, config, num_threads):
        self.config = config
        self.num_threads = num_threads
        self.shares = None  # the int-rename shares, or None if unpartitioned
        self.limit_int_rename = [config.rename_int] * num_threads
        self.limit_int_iq = [config.iq_int_size] * num_threads
        self.limit_rob = [config.rob_size] * num_threads
        #: Number of :meth:`sanitize` repairs performed over this register
        #: file's lifetime (reliability accounting).
        self.repair_count = 0

    @property
    def partitioned(self):
        return self.shares is not None

    def clear(self):
        """Remove partitioning: every thread may use every entry."""
        config = self.config
        self.shares = None
        self.limit_int_rename = [config.rename_int] * self.num_threads
        self.limit_int_iq = [config.iq_int_size] * self.num_threads
        self.limit_rob = [config.rob_size] * self.num_threads

    def set_shares(self, shares):
        """Program the partition registers from integer-rename shares.

        ``shares`` must have one entry per thread and sum to the rename
        pool size; each entry must respect the configured minimum.
        """
        config = self.config
        shares = [int(share) for share in shares]
        if len(shares) != self.num_threads:
            raise ValueError(
                "expected %d shares, got %d" % (self.num_threads, len(shares))
            )
        if sum(shares) != config.rename_int:
            raise ValueError(
                "shares must sum to %d, got %d (%r)"
                % (config.rename_int, sum(shares), shares)
            )
        for share in shares:
            if share < config.min_partition:
                raise ValueError(
                    "share %d below minimum partition %d" % (share, config.min_partition)
                )
        self.shares = list(shares)
        self.limit_int_rename = list(shares)
        self.limit_int_iq = self._proportional(shares, config.iq_int_size)
        self.limit_rob = self._proportional(shares, config.rob_size)

    def set_limits_directly(self, int_rename=None, int_iq=None, rob=None):
        """Set raw per-thread caps (used by DCRA, which computes its own
        per-structure limits rather than deriving them from one knob)."""
        if int_rename is not None:
            self.limit_int_rename = list(int_rename)
        if int_iq is not None:
            self.limit_int_iq = list(int_iq)
        if rob is not None:
            self.limit_rob = list(rob)
        self.shares = None

    def _proportional(self, shares, capacity):
        """Scale rename shares onto a structure of ``capacity`` entries,
        rounding while conserving the total."""
        total = self.config.rename_int
        limits = [max(1, (share * capacity) // total) for share in shares]
        # Distribute rounding slack to the largest shares, preserving order.
        slack = capacity - sum(limits)
        order = sorted(range(len(shares)), key=lambda i: shares[i], reverse=True)
        index = 0
        while slack > 0:
            limits[order[index % len(order)]] += 1
            slack -= 1
            index += 1
        return limits

    # -- robustness --------------------------------------------------------

    def legality_error(self):
        """Describe what is illegal about the current register state, or
        return ``None`` when every limit is well-formed.

        Written defensively: it must not itself crash on wrong-length or
        non-numeric limit lists (the fault injector produces both).
        """
        config = self.config
        num = self.num_threads
        for name, limits in (("int_rename", self.limit_int_rename),
                             ("int_iq", self.limit_int_iq),
                             ("rob", self.limit_rob)):
            if not isinstance(limits, list) or len(limits) != num:
                return "%s limits malformed: %r" % (name, limits)
            for value in limits:
                if not isinstance(value, int) or isinstance(value, bool) \
                        or value < 1:
                    return "%s limit %r not a positive int" % (name, value)
        if self.shares is None:
            return None
        shares = self.shares
        if not isinstance(shares, list) or len(shares) != num:
            return "shares malformed: %r" % (shares,)
        for share in shares:
            if not isinstance(share, int) or isinstance(share, bool):
                return "share %r not an int" % (share,)
            if share < config.min_partition:
                return "share %d below minimum %d" % (share, config.min_partition)
        if sum(shares) != config.rename_int:
            return "shares sum %d != rename pool %d" % (sum(shares),
                                                        config.rename_int)
        return None

    def sanitize(self):
        """Detect and repair illegal register state in place.

        A misbehaving policy (or injected fault) can leave the partition
        registers out of range, non-conserving, or structurally malformed;
        left alone, the pipeline would either crash (wrong-length limit
        lists) or silently starve/oversubscribe threads.  This clamps and
        re-normalizes instead: legal shares are re-derived when possible,
        otherwise the registers fall back to an equal split (or to
        unpartitioned defaults when shares were never programmed).

        Returns a description of the repair, or ``None`` if the state was
        already legal.  Repairs are counted in :attr:`repair_count`.
        """
        problem = self.legality_error()
        if problem is None:
            return None
        if self.shares is None:
            self.clear()
        else:
            try:
                self.set_shares(sanitize_shares(
                    self.shares, self.config.rename_int,
                    self.config.min_partition, self.num_threads))
            except ValueError:
                # No legal share vector exists (e.g. the minimum partition
                # cannot be honoured for this thread count): fail open to
                # the unpartitioned machine rather than crash.
                self.clear()
        self.repair_count = getattr(self, "repair_count", 0) + 1
        return problem

    def snapshot(self):
        return (
            None if self.shares is None else list(self.shares),
            list(self.limit_int_rename),
            list(self.limit_int_iq),
            list(self.limit_rob),
        )

    def restore(self, state):
        shares, int_rename, int_iq, rob = state
        self.shares = None if shares is None else list(shares)
        self.limit_int_rename = list(int_rename)
        self.limit_int_iq = list(int_iq)
        self.limit_rob = list(rob)


def sanitize_shares(shares, total, minimum, num_threads):
    """Coerce an arbitrary (possibly garbage) share vector into a legal one.

    Guarantees: the result has ``num_threads`` entries, each at least
    ``minimum`` (or the largest feasible floor when ``minimum *
    num_threads > total``), summing exactly to ``total``.  Recoverable
    inputs are clamped and re-normalized with largest-remainder rounding;
    structurally hopeless inputs (wrong length, non-numeric) fall back to
    an equal split.
    """
    if minimum * num_threads > total:
        minimum = total // num_threads
    try:
        cleaned = [int(share) for share in shares]
    except (TypeError, ValueError):
        cleaned = None
    if cleaned is None or len(cleaned) != num_threads:
        cleaned = None
    if cleaned is not None:
        ceiling = total - minimum * (num_threads - 1)
        cleaned = [min(max(share, minimum), ceiling) for share in cleaned]
        # Re-normalize to the exact total: walk threads from the largest
        # share down, adding or shaving one register at a time (never
        # below the minimum), so relative preferences survive the repair.
        order = sorted(range(num_threads),
                       key=lambda i: (-cleaned[i], i))
        deficit = total - sum(cleaned)
        index = 0
        stuck = 0
        while deficit != 0 and stuck < num_threads:
            tid = order[index % num_threads]
            index += 1
            if deficit > 0:
                cleaned[tid] += 1
                deficit += -1
                stuck = 0
            elif cleaned[tid] > minimum:
                cleaned[tid] -= 1
                deficit += 1
                stuck = 0
            else:
                stuck += 1
        if deficit != 0:
            cleaned = None
    if cleaned is None:
        base = total // num_threads
        cleaned = [base] * num_threads
        for index in range(total - base * num_threads):
            cleaned[index] += 1
    return cleaned


def equal_shares(config, num_threads):
    """An equal split of the integer rename registers (the hill climber's
    initial anchor), conserving the exact total."""
    base = config.rename_int // num_threads
    shares = [base] * num_threads
    for index in range(config.rename_int - base * num_threads):
        shares[index] += 1
    return shares
