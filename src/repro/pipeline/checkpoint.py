"""Processor checkpointing.

The paper's OFF-LINE learner checkpoints "every processor and memory
structure (register file, pipeline registers, branch predictors, caches) as
well as main memory at the beginning of each epoch" and replays the epoch
once per candidate partitioning.  Here the entire
:class:`~repro.pipeline.processor.SMTProcessor` (including its attached
policy and the workload streams' RNG state) is picklable, so a checkpoint
is one serialized blob that can be materialized any number of times.
"""

import pickle


class Checkpoint:
    """An immutable snapshot of a processor (and its policy)."""

    def __init__(self, proc):
        self._blob = pickle.dumps(proc, protocol=pickle.HIGHEST_PROTOCOL)

    def materialize(self):
        """Return a fresh, independent processor restored to the snapshot.

        Every call returns a new object; mutating one materialization never
        affects another.
        """
        return pickle.loads(self._blob)

    @property
    def size_bytes(self):
        """Serialized size (useful for gauging checkpoint cost)."""
        return len(self._blob)
