"""The cycle-level SMT out-of-order processor (Figure 3 of the paper).

Pipeline per cycle, back to front so freed entries become available the
same cycle: complete -> commit -> issue -> dispatch/rename -> fetch.

Mechanisms modelled:

* **Shared structures with per-thread occupancy counters** — IFQ (shared
  capacity, per-thread queues), integer/FP issue queues, integer/FP rename
  pools, LSQ, shared ROB.
* **Partition registers + fetch-lock** — a thread at its partition limit in
  any partitioned structure cannot fetch (and its dispatch blocks), exactly
  the enforcement described in Section 3.2.
* **ICOUNT-style fetch arbitration** — the attached policy orders eligible
  threads each cycle; up to ``fetch_threads`` threads share the fetch width.
* **Branch prediction and squash** — hybrid gshare/bimodal + BTB + RAS;
  mispredicts squash younger instructions at resolve and charge a redirect
  penalty; squashed instructions are re-fetched from a replay queue (the
  usual trace-driven approximation of wrong-path execution).
* **Cache hierarchy** — loads probe DL1/UL2/memory at issue; L2-missing
  loads can cluster, which is the memory-level parallelism the paper's
  learning exploits.  Policies can subscribe to L2-miss *detection* events
  (used by FLUSH/STALL).
* **Checkpointing** — the whole processor state (including stream RNGs) is
  picklable; see :mod:`repro.pipeline.checkpoint`.
"""

from collections import deque
from heapq import heappop, heappush

from repro.pipeline.fastpath import apply_skip, core_mode, quiescent_horizon
from repro.branch.btb import BranchTargetBuffer
from repro.branch.hybrid import HybridPredictor
from repro.branch.ras import ReturnAddressStack
from repro.memory.cache import Cache
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.resources import PartitionRegisters
from repro.pipeline.stats import SMTStats
from repro.workloads.generator import OpClass, SyntheticStream

_INT_PRODUCERS = frozenset((OpClass.IALU, OpClass.IMUL, OpClass.LOAD, OpClass.CALL))
_FP_PRODUCERS = frozenset((OpClass.FADD, OpClass.FMUL))

# Hot-path op constants: one global load instead of two dict lookups per
# ``OpClass.X`` reference inside the per-instruction stage bodies.
_LOAD = OpClass.LOAD
_STORE = OpClass.STORE
_BRANCH = OpClass.BRANCH
_CALL = OpClass.CALL
_RETURN = OpClass.RETURN
_IMUL = OpClass.IMUL


class _ThreadState:
    """Per-hardware-context state."""

    __slots__ = (
        "tid", "stream", "ras", "refetch", "ifq", "rob", "inflight",
        "iq_int", "iq_fp", "ren_int", "ren_fp", "lsq",
        "fetch_blocked_until", "policy_locked", "outstanding_l1",
        "outstanding_l2", "last_fetch_block", "arch_call_depth",
    )

    def __init__(self, tid, stream, ras_depth):
        self.tid = tid
        self.stream = stream
        self.ras = ReturnAddressStack(ras_depth)
        self.refetch = deque()   # squashed instructions awaiting re-fetch
        self.ifq = deque()
        self.rob = deque()       # dispatched, uncommitted, program order
        self.inflight = {}       # seq -> Instruction, dispatched & uncommitted
        self.iq_int = 0
        self.iq_fp = 0
        self.ren_int = 0
        self.ren_fp = 0
        self.lsq = 0
        self.fetch_blocked_until = 0
        self.policy_locked = False
        self.outstanding_l1 = 0  # issued loads past DL1, not yet complete
        self.outstanding_l2 = 0  # issued loads gone to memory, not yet complete
        self.last_fetch_block = -1
        self.arch_call_depth = 0

    @property
    def icount(self):
        """Front-end occupancy used by ICOUNT fetch priority."""
        return len(self.ifq) + self.iq_int + self.iq_fp


class SMTProcessor:
    """Cycle-level SMT processor executing synthetic benchmark streams.

    Parameters
    ----------
    config:
        :class:`~repro.pipeline.config.SMTConfig` machine description.
    profiles:
        One :class:`~repro.workloads.profile.BenchmarkProfile` per hardware
        context.
    seed:
        Workload reproducibility seed.
    phase_period:
        Optional per-stream phase period override (instructions).
    policy:
        A :class:`~repro.policies.base.ResourcePolicy`; defaults to plain
        ICOUNT fetch with no partitioning.
    warm_caches:
        Pre-touch each thread's cache-resident regions into the hierarchy
        at construction.  This stands in for the paper's fast-forwarding
        (billions of instructions) — without it the L2 keeps warming for
        hundreds of thousands of cycles and every measurement rides a
        cold-start drift.  Disable for cold-start studies.
    """

    def __init__(self, config, profiles, seed=0, phase_period=None, policy=None,
                 warm_caches=True, streams=None):
        if not profiles:
            raise ValueError("need at least one benchmark profile")
        self.config = config
        self.num_threads = len(profiles)
        if streams is None:
            streams = [
                SyntheticStream(profile, thread_id=tid, seed=seed,
                                phase_period=phase_period)
                for tid, profile in enumerate(profiles)
            ]
        elif len(streams) != len(profiles):
            raise ValueError("need one stream per profile")
        self.threads = [
            _ThreadState(tid, stream, config.ras_depth)
            for tid, stream in enumerate(streams)
        ]
        self.enabled = set(range(self.num_threads))
        self.partitions = PartitionRegisters(config, self.num_threads)
        self.stats = SMTStats(self.num_threads)
        # Per-context predictor state: sharing one global-history register
        # between threads destroys gshare correlation (measured ~4x the
        # solo mispredict rate), so each hardware context gets private
        # predictor tables, as sim-ssmt does.
        self.predictors = [
            HybridPredictor(config.bp_gshare_entries, config.bp_bimodal_entries,
                            config.bp_meta_entries)
            for __ in range(self.num_threads)
        ]
        self.btbs = [
            BranchTargetBuffer(config.btb_entries, config.btb_assoc)
            for __ in range(self.num_threads)
        ]
        self.hierarchy = MemoryHierarchy(
            il1=Cache("IL1", config.il1.size_bytes, config.il1.block_bytes,
                      config.il1.assoc, config.il1.latency),
            dl1=Cache("DL1", config.dl1.size_bytes, config.dl1.block_bytes,
                      config.dl1.assoc, config.dl1.latency),
            ul2=Cache("UL2", config.ul2.size_bytes, config.ul2.block_bytes,
                      config.ul2.assoc, config.ul2.latency),
            mem_latency=config.mem_latency,
        )
        self.cycle = 0
        # Shared-structure totals (global capacity enforcement).
        self.ifq_total = 0
        self.iq_int_total = 0
        self.iq_fp_total = 0
        self.ren_int_total = 0
        self.ren_fp_total = 0
        self.lsq_total = 0
        self.rob_total = 0
        # Event state.
        self._ready = []        # (order, instr, gen): dispatched, operands ready
        self._completions = []  # (cycle, order, instr, gen)
        self._detections = []   # (cycle, order, instr, gen): L2-miss detect
        self._order = 0
        self._commit_rr = 0
        self._dispatch_rr = 0
        self._detect_latency = config.dl1.latency + config.ul2.latency
        # Completion latency by op class for everything whose latency is
        # static (loads consult the hierarchy instead); saves the config
        # attribute-chain walk per issued instruction.
        self._op_latency = {
            OpClass.IALU: config.lat_int_alu,
            OpClass.IMUL: config.lat_int_mul,
            OpClass.FADD: config.lat_fp_add,
            OpClass.FMUL: config.lat_fp_mul,
            OpClass.STORE: config.lat_store,
            OpClass.BRANCH: config.lat_branch,
            OpClass.CALL: config.lat_branch,
            OpClass.RETURN: config.lat_branch,
        }
        #: Optional BBV collector (set by phase-aware policies); receives
        #: every committed control-flow instruction's PC.
        self.bbv = None
        #: Optional :class:`~repro.pipeline.trace.PipelineTracer` for
        #: per-instruction stage traces (debugging aid; None = off).
        self.trace = None
        #: Optional :class:`~repro.pipeline.profile.CoreProfile` receiving
        #: per-stage activity and fast-forward skip counters (None = off).
        self.profile = None
        if warm_caches:
            self._warm_caches(profiles)
        # Policy.
        if policy is None:
            from repro.policies.icount import ICountPolicy
            policy = ICountPolicy()
        self.policy = policy
        policy.attach(self)

    def _warm_caches(self, profiles):
        """Pre-touch per-thread resident regions so measurement starts from
        cache steady state (the fast-forward substitute).

        Touch order is chosen for the LRU outcome a long-running mix would
        reach: L2-resident regions first (they should live in the UL2 but
        be LRU in the DL1), then the hot L1 regions and code footprints
        (MRU everywhere).  Threads interleave region-by-region so neither
        thread's lines monopolise recency.  Cache hit/miss statistics are
        reset afterwards.
        """
        hierarchy = self.hierarchy
        block = self.config.dl1.block_bytes
        for region_attr, toucher in (
            ("l2_region", hierarchy.load),
            ("l1_region", hierarchy.load),
        ):
            for thread, profile in zip(self.threads, profiles):
                base = getattr(thread.stream, "_base",
                               thread.tid << 36)
                offset = 0x1000_0000 if region_attr == "l2_region" else 0
                for addr in range(base + offset,
                                  base + offset + getattr(profile, region_attr),
                                  block):
                    toucher(addr)
        for thread, profile in zip(self.threads, profiles):
            base = getattr(thread.stream, "_base", thread.tid << 36)
            for addr in range(base + 0x4000_0000,
                              base + 0x4000_0000 + profile.code_footprint,
                              block):
                hierarchy.ifetch(addr)
            # Branch-site code blocks.
            for addr in range(base + 0x4800_0000,
                              base + 0x4800_0000 + profile.branch_sites * 4,
                              block):
                hierarchy.ifetch(addr)
        for cache in (hierarchy.il1, hierarchy.dl1, hierarchy.ul2):
            cache.stats.accesses = 0
            cache.stats.misses = 0

    # ------------------------------------------------------------------
    # Public control surface
    # ------------------------------------------------------------------

    def run(self, num_cycles):
        """Advance the machine by ``num_cycles`` cycles.

        Three byte-identical cores can execute the window: the
        event-driven fast path (default), which proves quiescent
        stretches and jumps them, the stage-every-cycle reference loop
        (``REPRO_CORE=reference``), and the batched lane
        (``REPRO_CORE=batched``) which steps a single processor exactly
        like the fast path — its cross-cell machinery engages at the
        sweep-pack layer (:mod:`repro.experiments.batchrun`).  Selection
        is read per call and never stored, so checkpoints and sweep
        cache keys are core-agnostic; see
        :mod:`repro.pipeline.fastpath` and docs/INTERNALS.md.
        """
        end = self.cycle + num_cycles
        if core_mode() == "reference":
            if self.profile is not None:
                self._run_profiled(end, fast=False)
            else:
                self._run_reference(end)
        elif self.profile is not None:
            self._run_profiled(end, fast=True)
        else:
            self._run_fast(end)

    def _run_reference(self, end):
        """The trusted baseline: all six stages, every cycle."""
        policy = self.policy
        stats = self.stats
        while self.cycle < end:
            cycle = self.cycle
            self._do_completions(cycle)
            if self._detections:
                self._do_detections(cycle)
            self._do_commit()
            self._do_issue(cycle)
            self._do_dispatch()
            self._do_fetch(cycle)
            policy.on_cycle(self)
            self.cycle = cycle + 1
            stats.cycles += 1

    def _run_fast(self, end):
        """Event-driven core: per-stage early-outs on dense cycles, event-
        horizon jumps over proven-quiescent stretches.

        The cheap pre-gate (empty ready heap, no event head due) bounds
        the quiescence-proof overhead on dense phases; the per-stage
        guards replicate each stage's own first early-return, saving the
        call.  The heaps are hoisted as locals — they are only ever
        mutated in place during a run (``charge_stall`` rebinds them, but
        cannot run inside a window).
        """
        policy = self.policy
        stats = self.stats
        ready = self._ready
        completions = self._completions
        detections = self._detections
        while self.cycle < end:
            cycle = self.cycle
            if not ready \
                    and (not completions or completions[0][0] > cycle) \
                    and (not detections or detections[0][0] > cycle):
                horizon = quiescent_horizon(self, end)
                if horizon is not None:
                    apply_skip(self, horizon)
                    continue
            if completions and completions[0][0] <= cycle:
                self._do_completions(cycle)
            if detections and detections[0][0] <= cycle:
                self._do_detections(cycle)
            if self.rob_total:
                self._do_commit()
            if ready:
                self._do_issue(cycle)
            if self.ifq_total:
                self._do_dispatch()
            self._do_fetch(cycle)
            policy.on_cycle(self)
            self.cycle = cycle + 1
            stats.cycles += 1

    def _run_profiled(self, end, fast):
        """Either core with :class:`~repro.pipeline.profile.CoreProfile`
        instrumentation: stage activity is detected from cheap state
        deltas, so the simulation itself stays byte-identical to the
        unprofiled loops."""
        profile = self.profile
        policy = self.policy
        stats = self.stats
        ready = self._ready
        completions = self._completions
        detections = self._detections
        active = profile.active_cycles
        committed = stats.committed
        while self.cycle < end:
            cycle = self.cycle
            if fast and not ready \
                    and (not completions or completions[0][0] > cycle) \
                    and (not detections or detections[0][0] > cycle):
                horizon = quiescent_horizon(self, end)
                if horizon is not None:
                    profile.note_skip(apply_skip(self, horizon))
                    continue
            busy = False
            before = len(completions)
            self._do_completions(cycle)
            if len(completions) != before:
                active["complete"] += 1
                busy = True
            if detections:
                before = len(detections)
                self._do_detections(cycle)
                if len(detections) != before:
                    active["detect"] += 1
                    busy = True
            before = sum(committed)
            self._do_commit()
            if sum(committed) != before:
                active["commit"] += 1
                busy = True
            before = len(completions)
            self._do_issue(cycle)
            if len(completions) != before:
                active["issue"] += 1
                busy = True
            before = self.ifq_total
            self._do_dispatch()
            if self.ifq_total < before:
                active["dispatch"] += 1
                busy = True
            before = self.ifq_total
            self._do_fetch(cycle)
            if self.ifq_total > before:
                active["fetch"] += 1
                busy = True
            if not busy:
                active["idle"] += 1
            policy.on_cycle(self)
            self.cycle = cycle + 1
            stats.cycles += 1
            profile.executed_cycles += 1

    def charge_stall(self, num_cycles):
        """Freeze the whole machine for ``num_cycles`` (the paper charges a
        200-cycle full-machine stall per hill-climbing invocation).

        All pending event times and fetch blocks shift forward so no work
        completes "for free" during the stall.
        """
        if num_cycles <= 0:
            return
        self.cycle += num_cycles
        self.stats.cycles += num_cycles
        self._completions = [
            (when + num_cycles, order, instr, gen)
            for when, order, instr, gen in self._completions
        ]
        self._detections = [
            (when + num_cycles, order, instr, gen)
            for when, order, instr, gen in self._detections
        ]
        for thread in self.threads:
            if thread.fetch_blocked_until > self.cycle - num_cycles:
                thread.fetch_blocked_until += num_cycles

    def set_enabled(self, thread_ids):
        """Restrict fetch/dispatch to the given hardware contexts (used for
        the SingleIPC sampling epochs); others drain and sit idle."""
        thread_ids = set(thread_ids)
        unknown = thread_ids - set(range(self.num_threads))
        if unknown:
            raise ValueError("unknown thread ids: %r" % (sorted(unknown),))
        self.enabled = thread_ids

    def enable_all(self):
        self.enabled = set(range(self.num_threads))

    # ------------------------------------------------------------------
    # Pipeline stages
    # ------------------------------------------------------------------

    def _do_completions(self, cycle):
        completions = self._completions
        complete = self._complete
        while completions and completions[0][0] <= cycle:
            __, __, instr, gen = heappop(completions)
            if instr.gen != gen or instr.squashed:
                continue
            complete(cycle, instr)

    def _complete(self, cycle, instr):
        instr.done = True
        if self.trace is not None:
            self.trace.note("C", cycle, instr)
        thread = self.threads[instr.thread]
        dependents = instr.dependents
        if dependents:
            ready = self._ready
            for consumer, gen in dependents:
                if consumer.gen != gen or consumer.squashed or consumer.done:
                    continue
                consumer.remaining_srcs -= 1
                if consumer.remaining_srcs == 0 and not consumer.issued:
                    heappush(ready, (consumer.order, consumer, consumer.gen))
            instr.dependents = []
        op = instr.op
        if op == _LOAD:
            level = instr.mem_level
            if level is not None and level != "L1":
                thread.outstanding_l1 -= 1
                if level == "MEM":
                    thread.outstanding_l2 -= 1
            self.policy.on_load_complete(self, instr)
        elif op == _BRANCH:
            self.stats.branches[instr.thread] += 1
            if instr.prediction is not None:
                self.predictors[instr.thread].update(
                    instr.pc, instr.taken, instr.prediction)
            if instr.taken:
                self.btbs[instr.thread].insert(instr.pc, instr.pc + 64)
            if instr.mispredicted:
                self._recover_mispredict(cycle, instr)
        elif instr.mispredicted:  # mispredicted return
            self._recover_mispredict(cycle, instr)

    def _recover_mispredict(self, cycle, instr):
        thread = self.threads[instr.thread]
        self.stats.mispredicts[instr.thread] += 1
        if instr.prediction is not None:
            history = (instr.prediction.history_at_predict << 1) | int(instr.taken)
            self.predictors[instr.thread].repair_history(history)
        self.squash_after(instr.thread, instr.seq)
        resume = cycle + self.config.mispredict_penalty
        if resume > thread.fetch_blocked_until:
            thread.fetch_blocked_until = resume

    def _do_detections(self, cycle):
        detections = self._detections
        while detections and detections[0][0] <= cycle:
            __, __, instr, gen = heappop(detections)
            if instr.gen != gen or instr.squashed or instr.done:
                continue
            self.policy.on_l2_miss_detected(self, instr)

    def _do_commit(self):
        if self.rob_total == 0:
            return
        budget = self.config.commit_width
        threads = self.threads
        num = self.num_threads
        start = self._commit_rr
        self._commit_rr = (start + 1) % num
        committed = self.stats.committed
        bbv = self.bbv
        trace = self.trace
        ctrl_ops = OpClass.CTRL_OPS
        progress = True
        while budget > 0 and progress:
            progress = False
            for offset in range(num):
                thread = threads[(start + offset) % num]
                rob = thread.rob
                if not (rob and rob[0].done):
                    continue
                tid = thread.tid
                inflight_pop = thread.inflight.pop
                rob_popleft = rob.popleft
                while budget > 0 and rob and rob[0].done:
                    instr = rob_popleft()
                    inflight_pop(instr.seq, None)
                    # _release_back_end inlined (the commit loop retires
                    # every instruction); keep in sync with the method,
                    # which the squash path still uses.
                    if instr.uses_int_rename:
                        thread.ren_int -= 1
                        self.ren_int_total -= 1
                    elif instr.uses_fp_rename:
                        thread.ren_fp -= 1
                        self.ren_fp_total -= 1
                    if instr.uses_lsq:
                        thread.lsq -= 1
                        self.lsq_total -= 1
                    self.rob_total -= 1
                    committed[tid] += 1
                    if bbv is not None and instr.op in ctrl_ops:
                        bbv.note(tid, instr.pc)
                    if trace is not None:
                        trace.note("R", self.cycle, instr)
                    budget -= 1
                    progress = True

    def _release_back_end(self, thread, instr):
        """Release rename/LSQ/ROB entries held until commit (or squash)."""
        if instr.uses_int_rename:
            thread.ren_int -= 1
            self.ren_int_total -= 1
        elif instr.uses_fp_rename:
            thread.ren_fp -= 1
            self.ren_fp_total -= 1
        if instr.uses_lsq:
            thread.lsq -= 1
            self.lsq_total -= 1
        self.rob_total -= 1

    def _do_issue(self, cycle):
        ready = self._ready
        if not ready:
            return
        config = self.config
        budget = config.issue_width
        alu = config.fu_int_alu
        mul = config.fu_int_mul
        mem = config.fu_mem_port
        fadd = config.fu_fp_add
        fmul = config.fu_fp_mul
        stash = []
        issue_one = self._issue_one
        while ready and budget > 0:
            order, instr, gen = heappop(ready)
            if instr.gen != gen or instr.squashed or instr.issued:
                continue
            op = instr.op
            if op == _LOAD or op == _STORE:
                if mem == 0:
                    stash.append((order, instr, gen))
                    continue
                mem -= 1
            elif op == _IMUL:
                if mul == 0:
                    stash.append((order, instr, gen))
                    continue
                mul -= 1
            elif op == OpClass.FADD:
                if fadd == 0:
                    stash.append((order, instr, gen))
                    continue
                fadd -= 1
            elif op == OpClass.FMUL:
                if fmul == 0:
                    stash.append((order, instr, gen))
                    continue
                fmul -= 1
            else:  # IALU and control ops share the integer ALUs
                if alu == 0:
                    stash.append((order, instr, gen))
                    continue
                alu -= 1
            issue_one(cycle, instr)
            budget -= 1
        for entry in stash:
            heappush(ready, entry)

    def _issue_one(self, cycle, instr):
        thread = self.threads[instr.thread]
        instr.issued = True
        if self.trace is not None:
            self.trace.note("I", cycle, instr)
        op = instr.op
        if instr.is_fp:
            thread.iq_fp -= 1
            self.iq_fp_total -= 1
        else:
            thread.iq_int -= 1
            self.iq_int_total -= 1
        if op == _LOAD:
            result = self.hierarchy.load(instr.addr, cycle)
            latency = result.latency
            instr.mem_level = result.level
            stats = self.stats
            stats.loads[instr.thread] += 1
            if result.missed_l1:
                thread.outstanding_l1 += 1
            if result.missed_l2:
                thread.outstanding_l2 += 1
                stats.l2_misses[instr.thread] += 1
                if self.policy.wants_miss_detection:
                    heappush(
                        self._detections,
                        (cycle + self._detect_latency, instr.order, instr, instr.gen),
                    )
        elif op == _STORE:
            self.hierarchy.store(instr.addr, cycle)
            latency = self._op_latency[op]
        else:
            latency = self._op_latency[op]
        heappush(
            self._completions, (cycle + latency, instr.order, instr, instr.gen)
        )

    def _can_dispatch(self, thread, instr):
        """Capacity + partition admission check for one instruction."""
        config = self.config
        partitions = self.partitions
        tid = thread.tid
        if self.rob_total >= config.rob_size:
            return False
        if len(thread.rob) >= partitions.limit_rob[tid]:
            return False
        op = instr.op
        if instr.is_fp:
            if self.iq_fp_total >= config.iq_fp_size:
                return False
            if self.ren_fp_total >= config.rename_fp:
                return False
        else:
            if self.iq_int_total >= config.iq_int_size:
                return False
            if thread.iq_int >= partitions.limit_int_iq[tid]:
                return False
            if op in _INT_PRODUCERS:
                if self.ren_int_total >= config.rename_int:
                    return False
                if thread.ren_int >= partitions.limit_int_rename[tid]:
                    return False
        if op == _LOAD or op == _STORE:
            if self.lsq_total >= config.lsq_size:
                return False
        return True

    def _do_dispatch(self):
        if self.ifq_total == 0:
            return
        budget = self.config.dispatch_width
        threads = self.threads
        num = self.num_threads
        start = self._dispatch_rr
        self._dispatch_rr = (start + 1) % num
        can_dispatch = self._can_dispatch
        dispatch_one = self._dispatch_one
        for offset in range(num):
            if budget == 0:
                break
            thread = threads[(start + offset) % num]
            # Disabled threads still drain their IFQ; an empty IFQ makes
            # the enabled check (and the dispatch loop) moot either way.
            ifq = thread.ifq
            if not ifq:
                continue
            while budget > 0 and ifq:
                instr = ifq[0]
                if not can_dispatch(thread, instr):
                    break
                ifq.popleft()
                self.ifq_total -= 1
                dispatch_one(thread, instr)
                budget -= 1

    def _dispatch_one(self, thread, instr):
        if self.trace is not None:
            self.trace.note("D", self.cycle, instr)
        instr.dispatched = True
        order = self._order
        instr.order = order
        self._order = order + 1
        instr.dependents = []
        op = instr.op
        if instr.is_fp:
            thread.iq_fp += 1
            self.iq_fp_total += 1
            instr.uses_fp_rename = True
            thread.ren_fp += 1
            self.ren_fp_total += 1
        else:
            thread.iq_int += 1
            self.iq_int_total += 1
            if op in _INT_PRODUCERS:
                instr.uses_int_rename = True
                thread.ren_int += 1
                self.ren_int_total += 1
        if op == _LOAD or op == _STORE:
            instr.uses_lsq = True
            thread.lsq += 1
            self.lsq_total += 1
        thread.rob.append(instr)
        self.rob_total += 1
        inflight = thread.inflight
        inflight[instr.seq] = instr
        remaining = 0
        inflight_get = inflight.get
        for src in instr.srcs:
            producer = inflight_get(src)
            if producer is not None and not producer.done and producer is not instr:
                producer.dependents.append((instr, instr.gen))
                remaining += 1
        instr.remaining_srcs = remaining
        if remaining == 0:
            heappush(self._ready, (order, instr, instr.gen))

    def _fetch_eligible(self, cycle):
        """Threads allowed to fetch this cycle, with partition-stall and
        lock-cycle accounting."""
        eligible = []
        partitions = self.partitions
        stats = self.stats
        enabled = self.enabled
        limit_int_rename = partitions.limit_int_rename
        limit_int_iq = partitions.limit_int_iq
        limit_rob = partitions.limit_rob
        for thread in self.threads:
            tid = thread.tid
            if tid not in enabled:
                continue
            if thread.policy_locked:
                stats.lock_cycles[tid] += 1
                continue
            if cycle < thread.fetch_blocked_until:
                continue
            if (thread.ren_int >= limit_int_rename[tid]
                    or thread.iq_int >= limit_int_iq[tid]
                    or len(thread.rob) >= limit_rob[tid]):
                stats.partition_stall_cycles[tid] += 1
                continue
            eligible.append(tid)
        return eligible

    def _do_fetch(self, cycle):
        if self.ifq_total >= self.config.ifq_size:
            return
        eligible = self._fetch_eligible(cycle)
        if not eligible:
            return
        priority = self.policy.fetch_priority(self, eligible)
        budget = self.config.fetch_width
        for tid in priority[: self.config.fetch_threads]:
            if budget == 0:
                break
            budget = self._fetch_thread(cycle, self.threads[tid], budget)

    def _fetch_thread(self, cycle, thread, budget):
        refetch = thread.refetch
        next_instruction = thread.stream.next_instruction
        ifq = thread.ifq
        ifq_size = self.config.ifq_size
        ifetch = self.hierarchy.ifetch
        predict = self._predict
        trace = self.trace
        while budget > 0:
            if self.ifq_total >= ifq_size:
                break
            instr = refetch.popleft() if refetch else next_instruction()
            # Instruction-cache access, one probe per new fetch block.
            block = instr.pc >> 6
            if block != thread.last_fetch_block:
                result = ifetch(instr.pc, cycle)
                thread.last_fetch_block = block
                if result.missed_l1:
                    thread.fetch_blocked_until = cycle + result.latency
                    refetch.appendleft(instr)
                    break
            predicted_taken = predict(thread, instr)
            if trace is not None:
                trace.note("F", cycle, instr)
            ifq.append(instr)
            self.ifq_total += 1
            budget -= 1
            if predicted_taken or instr.mispredicted:
                break  # fetch break on (predicted-)taken control flow
        return budget

    def _predict(self, thread, instr):
        """Run the front-end predictors for one fetched instruction.

        Returns True when fetch should break after this instruction
        (predicted-taken control flow).
        """
        op = instr.op
        if op == _BRANCH:
            prediction = self.predictors[thread.tid].predict(instr.pc)
            instr.prediction = prediction
            mispredicted = prediction.taken != instr.taken
            if instr.taken and prediction.taken and \
                    self.btbs[thread.tid].lookup(instr.pc) is None:
                mispredicted = True  # correct direction but no target: misfetch
            instr.mispredicted = mispredicted
            return prediction.taken
        if op == _CALL:
            thread.ras.push(instr.pc + 4)
            return True
        if op == _RETURN:
            instr.mispredicted = thread.ras.pop() is None
            return True
        return False

    # ------------------------------------------------------------------
    # Squash machinery (mispredict recovery and FLUSH)
    # ------------------------------------------------------------------

    def squash_after(self, tid, after_seq):
        """Squash every instruction of thread ``tid`` younger than
        ``after_seq``; they are queued for re-fetch in program order."""
        thread = self.threads[tid]
        stats = self.stats
        refetch = thread.refetch
        # Anything still waiting for re-fetch stays queued; IFQ contents are
        # all younger than any dispatched instruction, so they all go back.
        ifq = thread.ifq
        while ifq:
            instr = ifq.pop()
            self.ifq_total -= 1
            instr.reset()
            refetch.appendleft(instr)
            stats.squashed[tid] += 1
        rob = thread.rob
        inflight = thread.inflight
        while rob and rob[-1].seq > after_seq:
            instr = rob.pop()
            inflight.pop(instr.seq, None)
            if self.trace is not None:
                self.trace.note("x", self.cycle, instr)
            if not instr.issued:
                if instr.is_fp:
                    thread.iq_fp -= 1
                    self.iq_fp_total -= 1
                else:
                    thread.iq_int -= 1
                    self.iq_int_total -= 1
            elif not instr.done and instr.op == _LOAD:
                level = instr.mem_level
                if level is not None and level != "L1":
                    thread.outstanding_l1 -= 1
                    if level == "MEM":
                        thread.outstanding_l2 -= 1
            self._release_back_end(thread, instr)
            instr.reset()
            refetch.appendleft(instr)
            stats.squashed[tid] += 1
        self.policy.on_squash(self, tid, after_seq)

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------

    def occupancy(self, tid):
        """Per-thread occupancy counters (the Figure 3 hardware monitors)."""
        thread = self.threads[tid]
        return {
            "ifq": len(thread.ifq),
            "iq_int": thread.iq_int,
            "iq_fp": thread.iq_fp,
            "ren_int": thread.ren_int,
            "ren_fp": thread.ren_fp,
            "lsq": thread.lsq,
            "rob": len(thread.rob),
        }

    def check_invariants(self):
        """Verify occupancy-counter consistency (used by tests)."""
        totals = {"iq_int": 0, "iq_fp": 0, "ren_int": 0, "ren_fp": 0,
                  "lsq": 0, "rob": 0, "ifq": 0}
        for thread in self.threads:
            totals["iq_int"] += thread.iq_int
            totals["iq_fp"] += thread.iq_fp
            totals["ren_int"] += thread.ren_int
            totals["ren_fp"] += thread.ren_fp
            totals["lsq"] += thread.lsq
            totals["rob"] += len(thread.rob)
            totals["ifq"] += len(thread.ifq)
            for counter in ("iq_int", "iq_fp", "ren_int", "ren_fp", "lsq"):
                if getattr(thread, counter) < 0:
                    raise AssertionError(
                        "negative %s on thread %d" % (counter, thread.tid)
                    )
        config = self.config
        checks = [
            (totals["iq_int"], self.iq_int_total, config.iq_int_size, "iq_int"),
            (totals["iq_fp"], self.iq_fp_total, config.iq_fp_size, "iq_fp"),
            (totals["ren_int"], self.ren_int_total, config.rename_int, "ren_int"),
            (totals["ren_fp"], self.ren_fp_total, config.rename_fp, "ren_fp"),
            (totals["lsq"], self.lsq_total, config.lsq_size, "lsq"),
            (totals["rob"], self.rob_total, config.rob_size, "rob"),
            (totals["ifq"], self.ifq_total, config.ifq_size, "ifq"),
        ]
        for summed, total, capacity, name in checks:
            if summed != total:
                raise AssertionError(
                    "%s per-thread sum %d != global total %d" % (name, summed, total)
                )
            if total > capacity:
                raise AssertionError(
                    "%s total %d exceeds capacity %d" % (name, total, capacity)
                )
        return True
