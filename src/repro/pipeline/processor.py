"""The cycle-level SMT out-of-order processor (Figure 3 of the paper).

Pipeline per cycle, back to front so freed entries become available the
same cycle: complete -> commit -> issue -> dispatch/rename -> fetch.

Mechanisms modelled:

* **Shared structures with per-thread occupancy counters** — IFQ (shared
  capacity, per-thread queues), integer/FP issue queues, integer/FP rename
  pools, LSQ, shared ROB.
* **Partition registers + fetch-lock** — a thread at its partition limit in
  any partitioned structure cannot fetch (and its dispatch blocks), exactly
  the enforcement described in Section 3.2.
* **ICOUNT-style fetch arbitration** — the attached policy orders eligible
  threads each cycle; up to ``fetch_threads`` threads share the fetch width.
* **Branch prediction and squash** — hybrid gshare/bimodal + BTB + RAS;
  mispredicts squash younger instructions at resolve and charge a redirect
  penalty; squashed instructions are re-fetched from a replay queue (the
  usual trace-driven approximation of wrong-path execution).
* **Cache hierarchy** — loads probe DL1/UL2/memory at issue; L2-missing
  loads can cluster, which is the memory-level parallelism the paper's
  learning exploits.  Policies can subscribe to L2-miss *detection* events
  (used by FLUSH/STALL).
* **Checkpointing** — the whole processor state (including stream RNGs) is
  picklable; see :mod:`repro.pipeline.checkpoint`.
"""

import heapq
from collections import deque

from repro.branch.btb import BranchTargetBuffer
from repro.branch.hybrid import HybridPredictor
from repro.branch.ras import ReturnAddressStack
from repro.memory.cache import Cache
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.resources import PartitionRegisters
from repro.pipeline.stats import SMTStats
from repro.workloads.generator import OpClass, SyntheticStream

_INT_PRODUCERS = frozenset((OpClass.IALU, OpClass.IMUL, OpClass.LOAD, OpClass.CALL))
_FP_PRODUCERS = frozenset((OpClass.FADD, OpClass.FMUL))


class _ThreadState:
    """Per-hardware-context state."""

    __slots__ = (
        "tid", "stream", "ras", "refetch", "ifq", "rob", "inflight",
        "iq_int", "iq_fp", "ren_int", "ren_fp", "lsq",
        "fetch_blocked_until", "policy_locked", "outstanding_l1",
        "outstanding_l2", "last_fetch_block", "arch_call_depth",
    )

    def __init__(self, tid, stream, ras_depth):
        self.tid = tid
        self.stream = stream
        self.ras = ReturnAddressStack(ras_depth)
        self.refetch = deque()   # squashed instructions awaiting re-fetch
        self.ifq = deque()
        self.rob = deque()       # dispatched, uncommitted, program order
        self.inflight = {}       # seq -> Instruction, dispatched & uncommitted
        self.iq_int = 0
        self.iq_fp = 0
        self.ren_int = 0
        self.ren_fp = 0
        self.lsq = 0
        self.fetch_blocked_until = 0
        self.policy_locked = False
        self.outstanding_l1 = 0  # issued loads past DL1, not yet complete
        self.outstanding_l2 = 0  # issued loads gone to memory, not yet complete
        self.last_fetch_block = -1
        self.arch_call_depth = 0

    @property
    def icount(self):
        """Front-end occupancy used by ICOUNT fetch priority."""
        return len(self.ifq) + self.iq_int + self.iq_fp


class SMTProcessor:
    """Cycle-level SMT processor executing synthetic benchmark streams.

    Parameters
    ----------
    config:
        :class:`~repro.pipeline.config.SMTConfig` machine description.
    profiles:
        One :class:`~repro.workloads.profile.BenchmarkProfile` per hardware
        context.
    seed:
        Workload reproducibility seed.
    phase_period:
        Optional per-stream phase period override (instructions).
    policy:
        A :class:`~repro.policies.base.ResourcePolicy`; defaults to plain
        ICOUNT fetch with no partitioning.
    warm_caches:
        Pre-touch each thread's cache-resident regions into the hierarchy
        at construction.  This stands in for the paper's fast-forwarding
        (billions of instructions) — without it the L2 keeps warming for
        hundreds of thousands of cycles and every measurement rides a
        cold-start drift.  Disable for cold-start studies.
    """

    def __init__(self, config, profiles, seed=0, phase_period=None, policy=None,
                 warm_caches=True, streams=None):
        if not profiles:
            raise ValueError("need at least one benchmark profile")
        self.config = config
        self.num_threads = len(profiles)
        if streams is None:
            streams = [
                SyntheticStream(profile, thread_id=tid, seed=seed,
                                phase_period=phase_period)
                for tid, profile in enumerate(profiles)
            ]
        elif len(streams) != len(profiles):
            raise ValueError("need one stream per profile")
        self.threads = [
            _ThreadState(tid, stream, config.ras_depth)
            for tid, stream in enumerate(streams)
        ]
        self.enabled = set(range(self.num_threads))
        self.partitions = PartitionRegisters(config, self.num_threads)
        self.stats = SMTStats(self.num_threads)
        # Per-context predictor state: sharing one global-history register
        # between threads destroys gshare correlation (measured ~4x the
        # solo mispredict rate), so each hardware context gets private
        # predictor tables, as sim-ssmt does.
        self.predictors = [
            HybridPredictor(config.bp_gshare_entries, config.bp_bimodal_entries,
                            config.bp_meta_entries)
            for __ in range(self.num_threads)
        ]
        self.btbs = [
            BranchTargetBuffer(config.btb_entries, config.btb_assoc)
            for __ in range(self.num_threads)
        ]
        self.hierarchy = MemoryHierarchy(
            il1=Cache("IL1", config.il1.size_bytes, config.il1.block_bytes,
                      config.il1.assoc, config.il1.latency),
            dl1=Cache("DL1", config.dl1.size_bytes, config.dl1.block_bytes,
                      config.dl1.assoc, config.dl1.latency),
            ul2=Cache("UL2", config.ul2.size_bytes, config.ul2.block_bytes,
                      config.ul2.assoc, config.ul2.latency),
            mem_latency=config.mem_latency,
        )
        self.cycle = 0
        # Shared-structure totals (global capacity enforcement).
        self.ifq_total = 0
        self.iq_int_total = 0
        self.iq_fp_total = 0
        self.ren_int_total = 0
        self.ren_fp_total = 0
        self.lsq_total = 0
        self.rob_total = 0
        # Event state.
        self._ready = []        # (order, instr, gen): dispatched, operands ready
        self._completions = []  # (cycle, order, instr, gen)
        self._detections = []   # (cycle, order, instr, gen): L2-miss detect
        self._order = 0
        self._commit_rr = 0
        self._dispatch_rr = 0
        self._detect_latency = config.dl1.latency + config.ul2.latency
        #: Optional BBV collector (set by phase-aware policies); receives
        #: every committed control-flow instruction's PC.
        self.bbv = None
        #: Optional :class:`~repro.pipeline.trace.PipelineTracer` for
        #: per-instruction stage traces (debugging aid; None = off).
        self.trace = None
        if warm_caches:
            self._warm_caches(profiles)
        # Policy.
        if policy is None:
            from repro.policies.icount import ICountPolicy
            policy = ICountPolicy()
        self.policy = policy
        policy.attach(self)

    def _warm_caches(self, profiles):
        """Pre-touch per-thread resident regions so measurement starts from
        cache steady state (the fast-forward substitute).

        Touch order is chosen for the LRU outcome a long-running mix would
        reach: L2-resident regions first (they should live in the UL2 but
        be LRU in the DL1), then the hot L1 regions and code footprints
        (MRU everywhere).  Threads interleave region-by-region so neither
        thread's lines monopolise recency.  Cache hit/miss statistics are
        reset afterwards.
        """
        hierarchy = self.hierarchy
        block = self.config.dl1.block_bytes
        for region_attr, toucher in (
            ("l2_region", hierarchy.load),
            ("l1_region", hierarchy.load),
        ):
            for thread, profile in zip(self.threads, profiles):
                base = getattr(thread.stream, "_base",
                               thread.tid << 36)
                offset = 0x1000_0000 if region_attr == "l2_region" else 0
                for addr in range(base + offset,
                                  base + offset + getattr(profile, region_attr),
                                  block):
                    toucher(addr)
        for thread, profile in zip(self.threads, profiles):
            base = getattr(thread.stream, "_base", thread.tid << 36)
            for addr in range(base + 0x4000_0000,
                              base + 0x4000_0000 + profile.code_footprint,
                              block):
                hierarchy.ifetch(addr)
            # Branch-site code blocks.
            for addr in range(base + 0x4800_0000,
                              base + 0x4800_0000 + profile.branch_sites * 4,
                              block):
                hierarchy.ifetch(addr)
        for cache in (hierarchy.il1, hierarchy.dl1, hierarchy.ul2):
            cache.stats.accesses = 0
            cache.stats.misses = 0

    # ------------------------------------------------------------------
    # Public control surface
    # ------------------------------------------------------------------

    def run(self, num_cycles):
        """Advance the machine by ``num_cycles`` cycles."""
        policy = self.policy
        end = self.cycle + num_cycles
        while self.cycle < end:
            cycle = self.cycle
            self._do_completions(cycle)
            if self._detections:
                self._do_detections(cycle)
            self._do_commit()
            self._do_issue(cycle)
            self._do_dispatch()
            self._do_fetch(cycle)
            policy.on_cycle(self)
            self.cycle += 1
            self.stats.cycles += 1

    def charge_stall(self, num_cycles):
        """Freeze the whole machine for ``num_cycles`` (the paper charges a
        200-cycle full-machine stall per hill-climbing invocation).

        All pending event times and fetch blocks shift forward so no work
        completes "for free" during the stall.
        """
        if num_cycles <= 0:
            return
        self.cycle += num_cycles
        self.stats.cycles += num_cycles
        self._completions = [
            (when + num_cycles, order, instr, gen)
            for when, order, instr, gen in self._completions
        ]
        self._detections = [
            (when + num_cycles, order, instr, gen)
            for when, order, instr, gen in self._detections
        ]
        for thread in self.threads:
            if thread.fetch_blocked_until > self.cycle - num_cycles:
                thread.fetch_blocked_until += num_cycles

    def set_enabled(self, thread_ids):
        """Restrict fetch/dispatch to the given hardware contexts (used for
        the SingleIPC sampling epochs); others drain and sit idle."""
        thread_ids = set(thread_ids)
        unknown = thread_ids - set(range(self.num_threads))
        if unknown:
            raise ValueError("unknown thread ids: %r" % (sorted(unknown),))
        self.enabled = thread_ids

    def enable_all(self):
        self.enabled = set(range(self.num_threads))

    # ------------------------------------------------------------------
    # Pipeline stages
    # ------------------------------------------------------------------

    def _do_completions(self, cycle):
        completions = self._completions
        while completions and completions[0][0] <= cycle:
            __, __, instr, gen = heapq.heappop(completions)
            if instr.gen != gen or instr.squashed:
                continue
            self._complete(cycle, instr)

    def _complete(self, cycle, instr):
        instr.done = True
        if self.trace is not None:
            self.trace.note("C", cycle, instr)
        thread = self.threads[instr.thread]
        dependents = instr.dependents
        if dependents:
            ready = self._ready
            for consumer, gen in dependents:
                if consumer.gen != gen or consumer.squashed or consumer.done:
                    continue
                consumer.remaining_srcs -= 1
                if consumer.remaining_srcs == 0 and not consumer.issued:
                    heapq.heappush(ready, (consumer.order, consumer, consumer.gen))
            instr.dependents = []
        op = instr.op
        if op == OpClass.LOAD:
            level = instr.mem_level
            if level is not None and level != "L1":
                thread.outstanding_l1 -= 1
                if level == "MEM":
                    thread.outstanding_l2 -= 1
            self.policy.on_load_complete(self, instr)
        elif op == OpClass.BRANCH:
            self.stats.branches[instr.thread] += 1
            if instr.prediction is not None:
                self.predictors[instr.thread].update(
                    instr.pc, instr.taken, instr.prediction)
            if instr.taken:
                self.btbs[instr.thread].insert(instr.pc, instr.pc + 64)
            if instr.mispredicted:
                self._recover_mispredict(cycle, instr)
        elif instr.mispredicted:  # mispredicted return
            self._recover_mispredict(cycle, instr)

    def _recover_mispredict(self, cycle, instr):
        thread = self.threads[instr.thread]
        self.stats.mispredicts[instr.thread] += 1
        if instr.prediction is not None:
            history = (instr.prediction.history_at_predict << 1) | int(instr.taken)
            self.predictors[instr.thread].repair_history(history)
        self.squash_after(instr.thread, instr.seq)
        resume = cycle + self.config.mispredict_penalty
        if resume > thread.fetch_blocked_until:
            thread.fetch_blocked_until = resume

    def _do_detections(self, cycle):
        detections = self._detections
        while detections and detections[0][0] <= cycle:
            __, __, instr, gen = heapq.heappop(detections)
            if instr.gen != gen or instr.squashed or instr.done:
                continue
            self.policy.on_l2_miss_detected(self, instr)

    def _do_commit(self):
        if self.rob_total == 0:
            return
        budget = self.config.commit_width
        threads = self.threads
        num = self.num_threads
        start = self._commit_rr
        self._commit_rr = (start + 1) % num
        progress = True
        while budget > 0 and progress:
            progress = False
            for offset in range(num):
                thread = threads[(start + offset) % num]
                rob = thread.rob
                while budget > 0 and rob and rob[0].done:
                    instr = rob.popleft()
                    thread.inflight.pop(instr.seq, None)
                    self._release_back_end(thread, instr)
                    self.stats.committed[thread.tid] += 1
                    if self.bbv is not None and instr.op in OpClass.CTRL_OPS:
                        self.bbv.note(thread.tid, instr.pc)
                    if self.trace is not None:
                        self.trace.note("R", self.cycle, instr)
                    budget -= 1
                    progress = True

    def _release_back_end(self, thread, instr):
        """Release rename/LSQ/ROB entries held until commit (or squash)."""
        if instr.uses_int_rename:
            thread.ren_int -= 1
            self.ren_int_total -= 1
        elif instr.uses_fp_rename:
            thread.ren_fp -= 1
            self.ren_fp_total -= 1
        if instr.uses_lsq:
            thread.lsq -= 1
            self.lsq_total -= 1
        self.rob_total -= 1

    def _do_issue(self, cycle):
        ready = self._ready
        if not ready:
            return
        config = self.config
        budget = config.issue_width
        alu = config.fu_int_alu
        mul = config.fu_int_mul
        mem = config.fu_mem_port
        fadd = config.fu_fp_add
        fmul = config.fu_fp_mul
        stash = []
        while ready and budget > 0:
            order, instr, gen = heapq.heappop(ready)
            if instr.gen != gen or instr.squashed or instr.issued:
                continue
            op = instr.op
            if op == OpClass.LOAD or op == OpClass.STORE:
                if mem == 0:
                    stash.append((order, instr, gen))
                    continue
                mem -= 1
            elif op == OpClass.IMUL:
                if mul == 0:
                    stash.append((order, instr, gen))
                    continue
                mul -= 1
            elif op == OpClass.FADD:
                if fadd == 0:
                    stash.append((order, instr, gen))
                    continue
                fadd -= 1
            elif op == OpClass.FMUL:
                if fmul == 0:
                    stash.append((order, instr, gen))
                    continue
                fmul -= 1
            else:  # IALU and control ops share the integer ALUs
                if alu == 0:
                    stash.append((order, instr, gen))
                    continue
                alu -= 1
            self._issue_one(cycle, instr)
            budget -= 1
        for entry in stash:
            heapq.heappush(ready, entry)

    def _issue_one(self, cycle, instr):
        config = self.config
        thread = self.threads[instr.thread]
        instr.issued = True
        if self.trace is not None:
            self.trace.note("I", cycle, instr)
        op = instr.op
        if op in OpClass.FP_OPS:
            thread.iq_fp -= 1
            self.iq_fp_total -= 1
        else:
            thread.iq_int -= 1
            self.iq_int_total -= 1
        if op == OpClass.LOAD:
            result = self.hierarchy.load(instr.addr, cycle)
            latency = result.latency
            instr.mem_level = result.level
            self.stats.loads[instr.thread] += 1
            if result.missed_l1:
                thread.outstanding_l1 += 1
            if result.missed_l2:
                thread.outstanding_l2 += 1
                self.stats.l2_misses[instr.thread] += 1
                if self.policy.wants_miss_detection:
                    heapq.heappush(
                        self._detections,
                        (cycle + self._detect_latency, instr.order, instr, instr.gen),
                    )
        elif op == OpClass.STORE:
            self.hierarchy.store(instr.addr, cycle)
            latency = config.lat_store
        elif op == OpClass.IALU:
            latency = config.lat_int_alu
        elif op == OpClass.IMUL:
            latency = config.lat_int_mul
        elif op == OpClass.FADD:
            latency = config.lat_fp_add
        elif op == OpClass.FMUL:
            latency = config.lat_fp_mul
        else:  # control
            latency = config.lat_branch
        heapq.heappush(
            self._completions, (cycle + latency, instr.order, instr, instr.gen)
        )

    def _can_dispatch(self, thread, instr):
        """Capacity + partition admission check for one instruction."""
        config = self.config
        partitions = self.partitions
        tid = thread.tid
        if self.rob_total >= config.rob_size:
            return False
        if len(thread.rob) >= partitions.limit_rob[tid]:
            return False
        op = instr.op
        if op in OpClass.FP_OPS:
            if self.iq_fp_total >= config.iq_fp_size:
                return False
            if self.ren_fp_total >= config.rename_fp:
                return False
        else:
            if self.iq_int_total >= config.iq_int_size:
                return False
            if thread.iq_int >= partitions.limit_int_iq[tid]:
                return False
            if op in _INT_PRODUCERS:
                if self.ren_int_total >= config.rename_int:
                    return False
                if thread.ren_int >= partitions.limit_int_rename[tid]:
                    return False
        if op == OpClass.LOAD or op == OpClass.STORE:
            if self.lsq_total >= config.lsq_size:
                return False
        return True

    def _do_dispatch(self):
        if self.ifq_total == 0:
            return
        budget = self.config.dispatch_width
        threads = self.threads
        num = self.num_threads
        start = self._dispatch_rr
        self._dispatch_rr = (start + 1) % num
        for offset in range(num):
            if budget == 0:
                break
            thread = threads[(start + offset) % num]
            if thread.tid not in self.enabled and not thread.ifq:
                continue
            ifq = thread.ifq
            while budget > 0 and ifq:
                instr = ifq[0]
                if not self._can_dispatch(thread, instr):
                    break
                ifq.popleft()
                self.ifq_total -= 1
                self._dispatch_one(thread, instr)
                budget -= 1

    def _dispatch_one(self, thread, instr):
        if self.trace is not None:
            self.trace.note("D", self.cycle, instr)
        instr.dispatched = True
        instr.order = self._order
        self._order += 1
        instr.dependents = []
        op = instr.op
        if op in OpClass.FP_OPS:
            thread.iq_fp += 1
            self.iq_fp_total += 1
            instr.uses_fp_rename = True
            thread.ren_fp += 1
            self.ren_fp_total += 1
        else:
            thread.iq_int += 1
            self.iq_int_total += 1
            if op in _INT_PRODUCERS:
                instr.uses_int_rename = True
                thread.ren_int += 1
                self.ren_int_total += 1
        if op == OpClass.LOAD or op == OpClass.STORE:
            instr.uses_lsq = True
            thread.lsq += 1
            self.lsq_total += 1
        thread.rob.append(instr)
        self.rob_total += 1
        thread.inflight[instr.seq] = instr
        remaining = 0
        inflight = thread.inflight
        for src in instr.srcs:
            producer = inflight.get(src)
            if producer is not None and not producer.done and producer is not instr:
                producer.dependents.append((instr, instr.gen))
                remaining += 1
        instr.remaining_srcs = remaining
        if remaining == 0:
            heapq.heappush(self._ready, (instr.order, instr, instr.gen))

    def _fetch_eligible(self, cycle):
        """Threads allowed to fetch this cycle, with partition-stall and
        lock-cycle accounting."""
        eligible = []
        partitions = self.partitions
        stats = self.stats
        for thread in self.threads:
            tid = thread.tid
            if tid not in self.enabled:
                continue
            if thread.policy_locked:
                stats.lock_cycles[tid] += 1
                continue
            if cycle < thread.fetch_blocked_until:
                continue
            if (thread.ren_int >= partitions.limit_int_rename[tid]
                    or thread.iq_int >= partitions.limit_int_iq[tid]
                    or len(thread.rob) >= partitions.limit_rob[tid]):
                stats.partition_stall_cycles[tid] += 1
                continue
            eligible.append(tid)
        return eligible

    def _do_fetch(self, cycle):
        if self.ifq_total >= self.config.ifq_size:
            return
        eligible = self._fetch_eligible(cycle)
        if not eligible:
            return
        priority = self.policy.fetch_priority(self, eligible)
        budget = self.config.fetch_width
        for tid in priority[: self.config.fetch_threads]:
            if budget == 0:
                break
            budget = self._fetch_thread(cycle, self.threads[tid], budget)

    def _fetch_thread(self, cycle, thread, budget):
        config = self.config
        refetch = thread.refetch
        stream = thread.stream
        ifq = thread.ifq
        while budget > 0:
            if self.ifq_total >= config.ifq_size:
                break
            instr = refetch.popleft() if refetch else stream.next_instruction()
            # Instruction-cache access, one probe per new fetch block.
            block = instr.pc >> 6
            if block != thread.last_fetch_block:
                result = self.hierarchy.ifetch(instr.pc, cycle)
                thread.last_fetch_block = block
                if result.missed_l1:
                    thread.fetch_blocked_until = cycle + result.latency
                    refetch.appendleft(instr)
                    break
            predicted_taken = self._predict(thread, instr)
            if self.trace is not None:
                self.trace.note("F", cycle, instr)
            ifq.append(instr)
            self.ifq_total += 1
            budget -= 1
            if predicted_taken or instr.mispredicted:
                break  # fetch break on (predicted-)taken control flow
        return budget

    def _predict(self, thread, instr):
        """Run the front-end predictors for one fetched instruction.

        Returns True when fetch should break after this instruction
        (predicted-taken control flow).
        """
        op = instr.op
        if op == OpClass.BRANCH:
            prediction = self.predictors[thread.tid].predict(instr.pc)
            instr.prediction = prediction
            mispredicted = prediction.taken != instr.taken
            if instr.taken and prediction.taken and \
                    self.btbs[thread.tid].lookup(instr.pc) is None:
                mispredicted = True  # correct direction but no target: misfetch
            instr.mispredicted = mispredicted
            return prediction.taken
        if op == OpClass.CALL:
            thread.ras.push(instr.pc + 4)
            return True
        if op == OpClass.RETURN:
            instr.mispredicted = thread.ras.pop() is None
            return True
        return False

    # ------------------------------------------------------------------
    # Squash machinery (mispredict recovery and FLUSH)
    # ------------------------------------------------------------------

    def squash_after(self, tid, after_seq):
        """Squash every instruction of thread ``tid`` younger than
        ``after_seq``; they are queued for re-fetch in program order."""
        thread = self.threads[tid]
        stats = self.stats
        refetch = thread.refetch
        # Anything still waiting for re-fetch stays queued; IFQ contents are
        # all younger than any dispatched instruction, so they all go back.
        ifq = thread.ifq
        while ifq:
            instr = ifq.pop()
            self.ifq_total -= 1
            instr.reset()
            refetch.appendleft(instr)
            stats.squashed[tid] += 1
        rob = thread.rob
        inflight = thread.inflight
        while rob and rob[-1].seq > after_seq:
            instr = rob.pop()
            inflight.pop(instr.seq, None)
            if self.trace is not None:
                self.trace.note("x", self.cycle, instr)
            if not instr.issued:
                if instr.op in OpClass.FP_OPS:
                    thread.iq_fp -= 1
                    self.iq_fp_total -= 1
                else:
                    thread.iq_int -= 1
                    self.iq_int_total -= 1
            elif not instr.done and instr.op == OpClass.LOAD:
                level = instr.mem_level
                if level is not None and level != "L1":
                    thread.outstanding_l1 -= 1
                    if level == "MEM":
                        thread.outstanding_l2 -= 1
            self._release_back_end(thread, instr)
            instr.reset()
            refetch.appendleft(instr)
            stats.squashed[tid] += 1
        self.policy.on_squash(self, tid, after_seq)

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------

    def occupancy(self, tid):
        """Per-thread occupancy counters (the Figure 3 hardware monitors)."""
        thread = self.threads[tid]
        return {
            "ifq": len(thread.ifq),
            "iq_int": thread.iq_int,
            "iq_fp": thread.iq_fp,
            "ren_int": thread.ren_int,
            "ren_fp": thread.ren_fp,
            "lsq": thread.lsq,
            "rob": len(thread.rob),
        }

    def check_invariants(self):
        """Verify occupancy-counter consistency (used by tests)."""
        totals = {"iq_int": 0, "iq_fp": 0, "ren_int": 0, "ren_fp": 0,
                  "lsq": 0, "rob": 0, "ifq": 0}
        for thread in self.threads:
            totals["iq_int"] += thread.iq_int
            totals["iq_fp"] += thread.iq_fp
            totals["ren_int"] += thread.ren_int
            totals["ren_fp"] += thread.ren_fp
            totals["lsq"] += thread.lsq
            totals["rob"] += len(thread.rob)
            totals["ifq"] += len(thread.ifq)
            for counter in ("iq_int", "iq_fp", "ren_int", "ren_fp", "lsq"):
                if getattr(thread, counter) < 0:
                    raise AssertionError(
                        "negative %s on thread %d" % (counter, thread.tid)
                    )
        config = self.config
        checks = [
            (totals["iq_int"], self.iq_int_total, config.iq_int_size, "iq_int"),
            (totals["iq_fp"], self.iq_fp_total, config.iq_fp_size, "iq_fp"),
            (totals["ren_int"], self.ren_int_total, config.rename_int, "ren_int"),
            (totals["ren_fp"], self.ren_fp_total, config.rename_fp, "ren_fp"),
            (totals["lsq"], self.lsq_total, config.lsq_size, "lsq"),
            (totals["rob"], self.rob_total, config.rob_size, "rob"),
            (totals["ifq"], self.ifq_total, config.ifq_size, "ifq"),
        ]
        for summed, total, capacity, name in checks:
            if summed != total:
                raise AssertionError(
                    "%s per-thread sum %d != global total %d" % (name, summed, total)
                )
            if total > capacity:
                raise AssertionError(
                    "%s total %d exceeds capacity %d" % (name, total, capacity)
                )
        return True
