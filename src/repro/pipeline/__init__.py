"""Cycle-level SMT out-of-order pipeline substrate.

Models the Figure 3 machine: shared fetch (ICOUNT-arbitrated), per-thread
IFQs with a shared capacity, rename/dispatch into shared integer/FP issue
queues, rename-register pools, LSQ and a shared ROB; issue with functional
unit contention; commit; branch-mispredict squash; and the per-thread
resource occupancy counters + partition registers that the paper's
learning-based policies program every epoch.
"""

from repro.pipeline.config import SMTConfig
from repro.pipeline.processor import SMTProcessor
from repro.pipeline.resources import PartitionRegisters, ResourceKind
from repro.pipeline.stats import SMTStats

__all__ = [
    "SMTConfig",
    "SMTProcessor",
    "PartitionRegisters",
    "ResourceKind",
    "SMTStats",
]
