"""Instruction-trace recording and replay.

A :class:`SyntheticStream` can be captured to a portable trace file and
replayed later through :class:`TraceStream`, which plugs into the
processor anywhere a stream does.  Uses:

* freezing a workload so results can be reproduced across library versions
  (the generator's RNG stream is stable within a version, a trace file is
  stable forever);
* driving the pipeline from externally produced traces (any tool that can
  emit the simple line format below can feed the simulator).

Format: one instruction per line,
``seq op fp srcs pc taken addr`` where ``srcs`` is comma-separated (or
``-``), ``fp``/``taken`` are 0/1 and ``addr`` is ``-`` for non-memory ops.
Lines starting with ``#`` are comments.
"""

from repro.workloads.generator import Instruction, OpClass


def record_trace(stream, count, path):
    """Generate ``count`` instructions from ``stream`` and write them."""
    with open(path, "w") as handle:
        handle.write("# repro instruction trace: %s thread=%d seed=%r\n"
                     % (stream.profile.name, stream.thread_id, stream.seed))
        for __ in range(count):
            instr = stream.next_instruction()
            handle.write(format_instruction(instr))
            handle.write("\n")


def format_instruction(instr):
    srcs = ",".join(str(src) for src in instr.srcs) if instr.srcs else "-"
    addr = str(instr.addr) if instr.addr is not None else "-"
    return "%d %s %d %s %d %d %s" % (
        instr.seq, instr.op, int(instr.is_fp), srcs, instr.pc,
        int(instr.taken), addr,
    )


def parse_instruction(line, thread_id):
    fields = line.split()
    if len(fields) != 7:
        raise ValueError("bad trace line: %r" % (line,))
    seq, op, is_fp, srcs, pc, taken, addr = fields
    if op not in OpClass.ALL:
        raise ValueError("unknown op %r in trace" % (op,))
    return Instruction(
        thread=thread_id,
        seq=int(seq),
        op=op,
        is_fp=bool(int(is_fp)),
        srcs=tuple(int(src) for src in srcs.split(",")) if srcs != "-" else (),
        pc=int(pc),
        taken=bool(int(taken)),
        addr=int(addr) if addr != "-" else None,
    )


class TraceStream:
    """Replays a recorded trace through the stream interface.

    The trace is loaded eagerly (traces are bounded by construction).  When
    the trace runs out, behaviour depends on ``wrap``: wrap around (seq
    numbers keep increasing so dependence references stay valid) or raise.
    """

    _ADDR_SPACE_BITS = 36

    def __init__(self, path, thread_id=0, wrap=True):
        self.thread_id = thread_id
        self.wrap = wrap
        # Address-space base for cache pre-warming; matches the generator
        # convention (the trace's absolute addresses are replayed as-is).
        self._base = thread_id << self._ADDR_SPACE_BITS
        self._records = []
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                self._records.append(parse_instruction(line, thread_id))
        if not self._records:
            raise ValueError("trace %r contains no instructions" % (path,))
        self._base_len = len(self._records)
        self.seq = 0

    def __len__(self):
        return self._base_len

    def next_instruction(self):
        index = self.seq % self._base_len
        lap = self.seq // self._base_len
        if lap > 0 and not self.wrap:
            raise StopIteration("trace exhausted at seq %d" % self.seq)
        template = self._records[index]
        offset = lap * self._base_len
        instr = Instruction(
            thread=self.thread_id,
            seq=self.seq,
            op=template.op,
            is_fp=template.is_fp,
            srcs=tuple(src + offset for src in template.srcs),
            pc=template.pc,
            taken=template.taken,
            addr=template.addr,
        )
        self.seq += 1
        return instr

    # -- checkpointing (stream interface) --------------------------------

    def snapshot(self):
        return self.seq

    def restore(self, state):
        self.seq = state
