"""The 22 SPEC CPU2000 benchmark profiles of Table 2.

These are *synthetic stand-ins*: each profile's parameters are chosen so the
stream's measurable characteristics line up with the paper's Table 2:

* "Type" (Int/FP, ILP/MEM) is matched directly via the instruction mix and
  the far-miss fraction.
* "Rsc" (integer rename registers needed for 95% of stand-alone IPC) is
  shaped by ``dep_distance`` (how much independent work exists) and
  ``miss_burst`` (how much memory-level parallelism a big window exposes).
  Profiles with larger Table 2 Rsc values get proportionally wider
  dependence structure.  Our own Rsc values are re-derived empirically by
  ``benchmarks/bench_table2_characteristics.py``.
* "Freq" (phase-variation frequency) is matched by giving High/Low profiles
  a second parameter set (``phase_b``) with a clearly different resource
  appetite, toggled every 1 (High) or ``low_freq_multiple`` (Low) phase
  periods.

Qualitative cases from the paper are represented explicitly: ``art``/``swim``
are burst-missing streams (cache-miss clustering), ``mcf``/``lucas`` are
serial pointer chasers (small useful window), ``crafty``/``parser`` are
branchy compute threads with imperfect predictability (compute-intensive
low-ILP), and ``gap`` is a very wide-ILP thread.
"""

from repro.workloads.profile import BenchmarkProfile, PhaseParams, PhaseVariation


def _ilp(name, rsc, freq, dep, is_fp=False, serial=0.10, predictability=0.92,
         l2_frac=0.04, dep_b=None, serial_b=None):
    """Build a compute-bound (ILP) profile."""
    phase_a = PhaseParams(dep_distance=dep, serial_frac=serial, mem_frac=0.0,
                          l2_frac=l2_frac)
    phase_b = None
    if dep_b is not None:
        phase_b = PhaseParams(
            dep_distance=dep_b,
            serial_frac=serial if serial_b is None else serial_b,
            mem_frac=0.0,
            l2_frac=l2_frac,
        )
    return BenchmarkProfile(
        name=name, ctype="ILP", is_fp=is_fp, rsc_hint=rsc, freq=freq,
        phase_a=phase_a, phase_b=phase_b,
        fp_frac=0.30 if is_fp else 0.0,
        branch_predictability=predictability,
    )


def _mem(name, rsc, freq, dep, mem_frac, burst, gap=16, is_fp=False,
         serial=0.10, predictability=0.92, mem_b=None, burst_b=None,
         dep_b=None):
    """Build a memory-intensive (MEM) profile.

    ``gap`` is the spacing (in data accesses) between the independent
    misses of one burst; burst * gap sets the instruction-window span the
    thread must hold to overlap its misses, which is what realises the
    Table 2 "Rsc" appetite for MEM benchmarks.
    """
    phase_a = PhaseParams(dep_distance=dep, serial_frac=serial,
                          mem_frac=mem_frac, l2_frac=0.06, miss_burst=burst,
                          burst_gap=gap)
    phase_b = None
    if mem_b is not None or burst_b is not None or dep_b is not None:
        phase_b = PhaseParams(
            dep_distance=dep if dep_b is None else dep_b,
            serial_frac=serial,
            mem_frac=mem_frac if mem_b is None else mem_b,
            l2_frac=0.06,
            miss_burst=burst if burst_b is None else burst_b,
            burst_gap=gap,
        )
    return BenchmarkProfile(
        name=name, ctype="MEM", is_fp=is_fp, rsc_hint=rsc, freq=freq,
        phase_a=phase_a, phase_b=phase_b,
        fp_frac=0.25 if is_fp else 0.0,
        load_frac=0.30,
        branch_predictability=predictability,
    )


_NONE = PhaseVariation.NONE
_LOW = PhaseVariation.LOW
_HIGH = PhaseVariation.HIGH

PROFILES = {
    profile.name: profile
    for profile in [
        # -- integer ILP -----------------------------------------------------
        _ilp("bzip2", rsc=72, freq=_NONE, dep=9.0),
        _ilp("perlbmk", rsc=59, freq=_NONE, dep=7.5),
        _ilp("eon", rsc=82, freq=_NONE, dep=10.5),
        _ilp("vortex", rsc=102, freq=_HIGH, dep=13.0, dep_b=5.0),
        _ilp("gzip", rsc=83, freq=_HIGH, dep=10.5, dep_b=4.5),
        _ilp("parser", rsc=90, freq=_HIGH, dep=11.0, dep_b=5.5,
             predictability=0.90, serial=0.18),
        _ilp("gap", rsc=208, freq=_NONE, dep=26.0, serial=0.04),
        _ilp("crafty", rsc=125, freq=_HIGH, dep=15.0, dep_b=6.0,
             predictability=0.88, serial=0.15),
        _ilp("gcc", rsc=112, freq=_HIGH, dep=14.0, dep_b=6.0,
             predictability=0.94),
        # -- floating-point ILP ------------------------------------------------
        _ilp("apsi", rsc=127, freq=_NONE, dep=16.0, is_fp=True, serial=0.06),
        _ilp("fma3d", rsc=72, freq=_NONE, dep=9.0, is_fp=True),
        _ilp("wupwise", rsc=161, freq=_NONE, dep=20.0, is_fp=True, serial=0.05),
        _ilp("mesa", rsc=110, freq=_NONE, dep=14.0, is_fp=True),
        # -- memory-intensive ---------------------------------------------------
        _mem("equake", rsc=100, freq=_NONE, dep=10.0, mem_frac=0.06,
             burst=2.0, gap=18, is_fp=True),
        _mem("vpr", rsc=180, freq=_HIGH, dep=14.0, mem_frac=0.05, burst=3.0,
             gap=22, mem_b=0.02, burst_b=1.0, dep_b=6.0),
        _mem("mcf", rsc=97, freq=_LOW, dep=8.0, mem_frac=0.15, burst=1.5,
             gap=20, serial=0.28, mem_b=0.05, burst_b=0.5),
        _mem("twolf", rsc=184, freq=_HIGH, dep=14.0, mem_frac=0.06, burst=3.5,
             gap=19, mem_b=0.02, burst_b=1.0, dep_b=6.5),
        _mem("art", rsc=176, freq=_NONE, dep=13.0, mem_frac=0.12, burst=4.0,
             gap=16, is_fp=True, serial=0.05),
        _mem("lucas", rsc=64, freq=_NONE, dep=7.0, mem_frac=0.08, burst=0.0,
             gap=8, is_fp=True, serial=0.25),
        _mem("ammp", rsc=173, freq=_HIGH, dep=13.5, mem_frac=0.07, burst=3.0,
             gap=21, is_fp=True, mem_b=0.03, burst_b=1.0, dep_b=6.5),
        _mem("swim", rsc=213, freq=_NONE, dep=16.0, mem_frac=0.10, burst=5.0,
             gap=15, is_fp=True, serial=0.04),
        _mem("applu", rsc=112, freq=_NONE, dep=11.0, mem_frac=0.05, burst=2.5,
             gap=16, is_fp=True),
    ]
}


def get_profile(name):
    """Look up one Table 2 benchmark profile by name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            "unknown benchmark %r (known: %s)" % (name, ", ".join(sorted(PROFILES)))
        ) from None


def profile_names():
    """All 22 benchmark names, in Table 2 order of definition."""
    return list(PROFILES)
