"""The 42 multiprogrammed workloads of Table 3.

Six groups: ILP2/MIX2/MEM2 (2 threads, 7 workloads each — the limit-study
set) and ILP4/MIX4/MEM4 (4 threads, 7 each).  Workload names follow the
paper's hyphenated convention (e.g. ``"art-mcf"``).
"""

from dataclasses import dataclass

from repro.workloads.spec2000 import get_profile

GROUPS = ("ILP2", "MIX2", "MEM2", "ILP4", "MIX4", "MEM4")

_GROUP_MEMBERS = {
    "ILP2": [
        "apsi-eon", "fma3d-gcc", "gzip-vortex", "wupwise-gcc",
        "gzip-bzip2", "fma3d-mesa", "apsi-gcc",
    ],
    "MIX2": [
        "applu-vortex", "art-gzip", "wupwise-twolf", "lucas-crafty",
        "mcf-eon", "twolf-apsi", "equake-bzip2",
    ],
    "MEM2": [
        "applu-ammp", "art-mcf", "swim-twolf", "mcf-twolf",
        "art-vpr", "art-twolf", "swim-mcf",
    ],
    "ILP4": [
        "apsi-eon-fma3d-gcc", "apsi-eon-gzip-vortex", "fma3d-gcc-gzip-vortex",
        "mesa-bzip2-eon-gcc", "mesa-gzip-fma3d-bzip2",
        "crafty-fma3d-apsi-vortex", "apsi-gap-wupwise-perlbmk",
    ],
    "MIX4": [
        "ammp-applu-apsi-eon", "art-mcf-fma3d-gcc", "swim-twolf-gzip-vortex",
        "gzip-twolf-bzip2-mcf", "mcf-mesa-lucas-gzip",
        "art-gap-twolf-crafty", "swim-mesa-vpr-gzip",
    ],
    "MEM4": [
        "ammp-applu-art-mcf", "art-mcf-swim-twolf", "ammp-applu-swim-twolf",
        "mcf-twolf-vpr-parser", "art-twolf-equake-mcf",
        "equake-parser-mcf-lucas", "art-mcf-vpr-swim",
    ],
}


@dataclass(frozen=True)
class Workload:
    """One multiprogrammed workload: an ordered set of benchmark profiles."""

    name: str
    group: str
    benchmarks: tuple  # tuple of benchmark names

    @property
    def num_threads(self):
        return len(self.benchmarks)

    @property
    def profiles(self):
        """The benchmark profiles, in hardware-context order."""
        return [get_profile(name) for name in self.benchmarks]

    @property
    def rsc_sum(self):
        """Summed per-application Rsc hints (the Table 3 "Rsc" column)."""
        return sum(profile.rsc_hint for profile in self.profiles)

    @property
    def is_large(self):
        """True when the summed resource appetite exceeds the machine's
        integer rename registers (the paper's SM/LG threshold: 256 for two
        threads, 440 for four)."""
        threshold = 256 if self.num_threads == 2 else 440
        return self.rsc_sum > threshold


def _build_workloads():
    workloads = {}
    for group, names in _GROUP_MEMBERS.items():
        for name in names:
            benchmarks = tuple(name.split("-"))
            expected = 2 if group.endswith("2") else 4
            if len(benchmarks) != expected:
                raise AssertionError(
                    "workload %r in group %s has %d members" % (name, group, len(benchmarks))
                )
            for benchmark in benchmarks:
                get_profile(benchmark)  # validates the name
            workloads[name] = Workload(name=name, group=group, benchmarks=benchmarks)
    return workloads


WORKLOADS = _build_workloads()


def get_workload(name):
    """Look up one Table 3 workload by its hyphenated name."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            "unknown workload %r (known: %s)" % (name, ", ".join(sorted(WORKLOADS)))
        ) from None


def workload_names(group=None):
    """Names of all workloads, optionally restricted to one group."""
    if group is None:
        return list(WORKLOADS)
    return list(_GROUP_MEMBERS[group])


def workloads_in_group(group):
    """All :class:`Workload` records in one Table 3 group."""
    return [WORKLOADS[name] for name in _GROUP_MEMBERS[group]]
