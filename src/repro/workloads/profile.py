"""Benchmark profiles: the tunable parameters of a synthetic instruction
stream standing in for one SPEC CPU2000 benchmark.

A profile controls four behaviours that matter to the paper's study:

* **ILP structure** — how far apart dependent instructions are
  (``dep_distance``) and how often an instruction chains serially to its
  predecessor (``serial_frac``).  Together these set how big an instruction
  window the thread can exploit, i.e. the Table 2 "Rsc" characteristic.
* **Memory intensity** — what fraction of data accesses fall outside the
  L1- and L2-resident regions (``mem_frac``/``l2_frac``) and whether far
  misses arrive in bursts (``miss_burst``) that reward deep speculation
  past a miss (the paper's *cache-miss clustering* case).
* **Branch behaviour** — the fraction of conditional branches and how
  strongly biased their directions are (``branch_predictability``); poorly
  predictable streams model the paper's *compute-intensive low-ILP* case.
* **Phase variation** — the Table 2 "Freq" column: ``HIGH`` profiles swap
  parameter sets every phase period, ``LOW`` every several periods,
  ``NONE`` never.
"""

import enum
from dataclasses import dataclass, field, replace


class PhaseVariation(enum.Enum):
    """Table 2 "Freq" column: how often resource requirements change."""

    NONE = "No"
    LOW = "Low"
    HIGH = "High"


@dataclass(frozen=True)
class PhaseParams:
    """The per-phase tunables a profile may alternate between."""

    #: Mean distance (in instructions) from a consumer to its producer.
    #: Larger values mean more independent work in flight — higher ILP and
    #: a bigger resource appetite.
    dep_distance: float = 8.0
    #: Probability an instruction chains directly to its predecessor,
    #: forming a serial dependence chain (low ILP regardless of window).
    serial_frac: float = 0.10
    #: Fraction of data accesses falling outside the L2-resident region.
    mem_frac: float = 0.0
    #: Fraction of data accesses falling in the L2-resident (L1-missing)
    #: region.
    l2_frac: float = 0.05
    #: When a far (memory) access occurs, expected number of further far
    #: accesses in the same burst.  Bursts of independent far loads create
    #: memory-level parallelism that only a large partition can exploit.
    miss_burst: float = 0.0
    #: Mean instruction gap between far loads inside one burst.
    burst_gap: float = 6.0


@dataclass(frozen=True)
class BenchmarkProfile:
    """Complete description of one synthetic benchmark."""

    name: str
    #: Paper category: "ILP" (compute-bound) or "MEM" (memory-intensive).
    ctype: str
    #: Whether the benchmark is predominantly floating point (Table 2 "Type").
    is_fp: bool
    #: Table 2 "Rsc": integer rename registers for 95% of stand-alone IPC.
    #: Used only as documentation / a target; our own value is re-derived by
    #: the Table 2 bench.
    rsc_hint: int
    #: Table 2 "Freq": phase-variation frequency.
    freq: PhaseVariation
    #: Primary phase parameters.
    phase_a: PhaseParams
    #: Alternate phase parameters (used when ``freq`` is LOW or HIGH).
    phase_b: PhaseParams = None
    #: Instruction mix.
    load_frac: float = 0.25
    store_frac: float = 0.10
    branch_frac: float = 0.12
    fp_frac: float = 0.0
    mul_frac: float = 0.04
    #: Fraction of branch sites that are strongly biased (easy to predict).
    branch_predictability: float = 0.975
    #: Number of static conditional-branch sites.
    branch_sites: int = 64
    #: Fraction of instructions that are call/return pairs (exercises RAS).
    call_frac: float = 0.01
    #: Code footprint in bytes (drives IL1 behaviour).
    code_footprint: int = 4 * 1024
    #: Data region sizes in bytes.
    l1_region: int = 4 * 1024
    l2_region: int = 48 * 1024
    mem_region: int = 64 * 1024 * 1024
    #: Phase period in *generated instructions* (roughly one 64K-cycle epoch
    #: at IPC 1 in the paper's scale; scaled configs shrink epochs, and the
    #: generator scales this with them via the stream's ``phase_period``).
    phase_period: int = 20000
    #: LOW-frequency profiles switch every ``low_freq_multiple`` periods.
    low_freq_multiple: int = 8

    def __post_init__(self):
        if self.ctype not in ("ILP", "MEM"):
            raise ValueError("ctype must be 'ILP' or 'MEM', got %r" % (self.ctype,))
        if self.phase_b is None:
            object.__setattr__(self, "phase_b", self.phase_a)

    @property
    def has_phases(self):
        return self.freq is not PhaseVariation.NONE

    def with_overrides(self, **kwargs):
        """Return a copy with selected fields replaced (for ablations)."""
        return replace(self, **kwargs)
