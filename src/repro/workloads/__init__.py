"""Synthetic workload substrate.

The paper drives its simulator with SPEC CPU2000 alpha binaries.  Those
binaries (and an alpha ISA front end) are not reproducible here, so this
package provides *synthetic instruction streams*: seeded generators that
emit dependence-annotated instructions whose aggregate behaviour —
ILP vs. memory intensity, resource appetite ("Rsc"), branch predictability,
and phase-variation frequency ("Freq") — mirrors the per-benchmark
characteristics the paper reports in Table 2.

`spec2000` defines one profile per Table 2 benchmark; `mixes` defines the
42 multiprogrammed workloads of Table 3 (ILP2/MIX2/MEM2 and the 4-thread
groups).
"""

from repro.workloads.profile import BenchmarkProfile, PhaseVariation
from repro.workloads.generator import Instruction, SyntheticStream, OpClass
from repro.workloads.tracefile import TraceStream, record_trace
from repro.workloads.spec2000 import PROFILES, get_profile, profile_names
from repro.workloads.mixes import (
    WORKLOADS,
    Workload,
    get_workload,
    workload_names,
    workloads_in_group,
)

__all__ = [
    "BenchmarkProfile",
    "PhaseVariation",
    "Instruction",
    "SyntheticStream",
    "OpClass",
    "TraceStream",
    "record_trace",
    "PROFILES",
    "get_profile",
    "profile_names",
    "WORKLOADS",
    "Workload",
    "get_workload",
    "workload_names",
    "workloads_in_group",
]
