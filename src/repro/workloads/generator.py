"""Synthetic instruction-stream generator.

Each :class:`SyntheticStream` turns a :class:`BenchmarkProfile` into an
endless, deterministic sequence of :class:`Instruction` records with
dependence, branch and memory-address annotations.  The pipeline executes
these exactly as a trace-driven simulator executes a real trace.

Determinism and checkpointing: all randomness comes from one
``random.Random`` seeded from (profile name, thread id, seed), and
``snapshot``/``restore`` capture the generator state, so the OFF-LINE
learner can replay an epoch from a checkpoint and observe the identical
instruction stream.
"""

import random
import zlib


def _stable_hash(text):
    """Process-independent hash (``hash(str)`` is salted per process)."""
    return zlib.crc32(text.encode("utf-8"))


class OpClass:
    """Operation classes (plain strings for speed in the hot path)."""

    IALU = "IALU"
    IMUL = "IMUL"
    FADD = "FADD"
    FMUL = "FMUL"
    LOAD = "LOAD"
    STORE = "STORE"
    BRANCH = "BR"
    CALL = "CALL"
    RETURN = "RET"

    ALL = (IALU, IMUL, FADD, FMUL, LOAD, STORE, BRANCH, CALL, RETURN)
    INT_OPS = frozenset((IALU, IMUL, LOAD, STORE, BRANCH, CALL, RETURN))
    FP_OPS = frozenset((FADD, FMUL))
    MEM_OPS = frozenset((LOAD, STORE))
    CTRL_OPS = frozenset((BRANCH, CALL, RETURN))


class Instruction:
    """One dynamic instruction.

    Static fields come from the generator; the pipeline attaches dynamic
    state at dispatch and clears it with :meth:`reset` when a squashed
    instruction is re-fetched.
    """

    __slots__ = (
        # static
        "thread", "seq", "op", "is_fp", "srcs", "pc", "taken", "addr",
        # dynamic pipeline state
        "gen", "order", "remaining_srcs", "dependents", "dispatched",
        "issued", "done", "squashed", "prediction", "mispredicted",
        "mem_level", "uses_int_rename", "uses_fp_rename", "uses_lsq",
    )

    def __init__(self, thread, seq, op, is_fp, srcs, pc, taken=False, addr=None):
        self.thread = thread
        self.seq = seq
        self.op = op
        self.is_fp = is_fp
        self.srcs = srcs
        self.pc = pc
        self.taken = taken
        self.addr = addr
        # reset() inlined — construction is the hottest allocation site in
        # the simulator; keep the dynamic-state fields in sync with reset().
        self.gen = 0
        self.order = 0
        self.remaining_srcs = 0
        self.dependents = None
        self.dispatched = False
        self.issued = False
        self.done = False
        self.squashed = False
        self.prediction = None
        self.mispredicted = False
        self.mem_level = None
        self.uses_int_rename = False
        self.uses_fp_rename = False
        self.uses_lsq = False

    def reset(self):
        """Clear dynamic pipeline state (called on fetch and re-fetch).

        Bumps ``gen`` so stale references held by event heaps or producer
        wake-up lists from a squashed incarnation are recognised and
        ignored.
        """
        self.gen += 1
        self.order = 0
        self.remaining_srcs = 0
        self.dependents = None
        self.dispatched = False
        self.issued = False
        self.done = False
        self.squashed = False
        self.prediction = None
        self.mispredicted = False
        self.mem_level = None
        self.uses_int_rename = False
        self.uses_fp_rename = False
        self.uses_lsq = False

    @property
    def is_mem(self):
        return self.op == OpClass.LOAD or self.op == OpClass.STORE

    @property
    def is_ctrl(self):
        return self.op in OpClass.CTRL_OPS

    def __repr__(self):
        return "Instruction(t%d #%d %s)" % (self.thread, self.seq, self.op)


class SyntheticStream:
    """Endless instruction stream for one benchmark profile.

    Parameters
    ----------
    profile:
        The :class:`~repro.workloads.profile.BenchmarkProfile` to realise.
    thread_id:
        Hardware context this stream feeds; also offsets the address space
        so co-scheduled programs contend for cache capacity, not identical
        lines.
    seed:
        Reproducibility seed.
    phase_period:
        Override of the profile's phase period in instructions (scaled
        configs shrink epochs and pass a matching smaller period).
    """

    _ADDR_SPACE_BITS = 36  # per-thread address-space stride

    def __init__(self, profile, thread_id=0, seed=0, phase_period=None):
        self.profile = profile
        self.thread_id = thread_id
        self.seed = seed
        self.phase_period = phase_period or profile.phase_period
        self.rng = random.Random(  # repro: allow-nondeterminism[ND105] (seeded from (profile, thread, seed))
            _stable_hash(profile.name) * 1_000_003 + thread_id * 997 + seed
        )
        self.seq = 0
        self._base = thread_id << self._ADDR_SPACE_BITS
        self._code_words = max(1, profile.code_footprint // 4)
        self._burst_remaining = 0
        self._burst_cooldown = 0
        self._last_trigger_seq = None
        self._call_depth = 0
        # Error-diffusion accumulators for quasi-periodic miss scheduling;
        # start at random phase so co-scheduled threads do not lock-step.
        self._far_debt = self.rng.random()
        self._l2_debt = self.rng.random()
        # Per-site branch biases: mostly strongly biased sites, a few mixed,
        # controlled by branch_predictability.
        site_rng = random.Random(_stable_hash(profile.name) * 31 + 7777)  # repro: allow-nondeterminism[ND105] (stable per-profile seed)
        self._branch_bias = []
        for __ in range(profile.branch_sites):
            if site_rng.random() < profile.branch_predictability:
                bias = 0.03 if site_rng.random() < 0.5 else 0.97
            else:
                bias = 0.2 + 0.6 * site_rng.random()
            self._branch_bias.append(bias)
        # Hot-path precomputation: cumulative op-class thresholds (same
        # left-to-right float addition order as the original inline sums,
        # so the draws compare bit-identically), address bases, and a
        # phase-parameter cache that only re-derives params at phase
        # boundaries instead of per instruction.
        self._cum_load = profile.load_frac
        self._cum_store = profile.load_frac + profile.store_frac
        self._cum_branch = (profile.load_frac + profile.store_frac
                            + profile.branch_frac)
        self._cum_fp = (profile.load_frac + profile.store_frac
                        + profile.branch_frac + profile.fp_frac)
        self._call_frac_2x = 2 * profile.call_frac
        self._code_base = self._base + 0x4000_0000
        self._branch_base = self._base + 0x4800_0000
        self._params_cached = None
        self._params_expiry = -1  # seq at which the cached params lapse

    # -- phase handling ----------------------------------------------------

    def _current_params(self):
        seq = self.seq
        if seq < self._params_expiry:
            return self._params_cached
        profile = self.profile
        freq = profile.freq.value
        if freq == "No":
            self._params_cached = profile.phase_a
            self._params_expiry = float("inf")
            return self._params_cached
        period = self.phase_period
        if freq == "Low":
            period *= profile.low_freq_multiple
        index = seq // period
        self._params_cached = profile.phase_a if index % 2 == 0 \
            else profile.phase_b
        self._params_expiry = (index + 1) * period
        return self._params_cached

    @property
    def phase_index(self):
        """Coarse phase id of the current position (for BBV-style checks)."""
        return self.seq // self.phase_period

    def _phase_parity(self):
        """0/1 phase identity (matches :meth:`_current_params` switching)."""
        profile = self.profile
        if profile.freq.value == "No":
            return 0
        period = self.phase_period
        if profile.freq.value == "Low":
            period *= profile.low_freq_multiple
        return (self.seq // period) % 2

    def _branch_site(self):
        """Pick a static branch site.

        Phases execute different code: profiles with phase variation draw
        their sites from disjoint halves of the site table per phase, so
        BBV signatures actually distinguish phases (Section 5's detection
        hinges on this — in real programs a phase change is a code
        change).
        """
        sites = self.profile.branch_sites
        if self.profile.freq.value == "No":
            return self.rng.randrange(sites)
        half = max(1, sites // 2)
        return self._phase_parity() * half + self.rng.randrange(half)

    # -- draw helpers --------------------------------------------------------

    def _geometric(self, mean):
        if mean <= 1.0:
            return 1
        return 1 + int(self.rng.expovariate(1.0 / (mean - 1.0 + 1e-9)))

    def _pick_sources(self, params, independent=False):
        """Choose producer seq numbers for a new instruction."""
        if self.seq == 0:
            return ()
        rng = self.rng
        if independent:
            # Burst loads: depend only on far-away producers so they can all
            # be in flight at once (memory-level parallelism).
            distance = int(params.dep_distance * 4) + self._geometric(params.dep_distance)
            return (max(0, self.seq - distance),)
        if rng.random() < params.serial_frac:
            return (self.seq - 1,)
        n_src = 2 if rng.random() < 0.35 else 1
        srcs = []
        for __ in range(n_src):
            distance = self._geometric(params.dep_distance)
            if distance <= self.seq:
                srcs.append(self.seq - distance)
        return tuple(srcs)

    def _pick_address(self, params):
        """Choose a data address, honouring burst (clustered-miss) state.

        Far (memory-region) and L2-region accesses are scheduled with an
        error-diffusion accumulator rather than independent coin flips:
        the long-run rates equal ``mem_frac``/``l2_frac`` exactly, but the
        arrivals are quasi-periodic, like the strided loops that dominate
        SPEC memory traffic.  This keeps per-epoch IPC stationary, which
        matters because the hill climber's Delta-sized gradient signal
        must be visible above inter-epoch noise even in the scaled-down
        epochs this reproduction uses.
        """
        rng = self.rng
        profile = self.profile
        if self._burst_remaining > 0:
            # A burst in progress: the next far miss arrives after
            # ``burst_gap`` more data accesses.  Spacing the independent
            # misses across the instruction window is what makes partition
            # depth matter — only a window covering the whole burst span
            # can overlap all the misses (the paper's cache-miss
            # clustering / memory-level-parallelism case).
            self._burst_cooldown -= 1
            if self._burst_cooldown <= 0:
                self._burst_remaining -= 1
                self._burst_cooldown = max(1, int(params.burst_gap))
                return (self._base + 0x2000_0000
                        + (rng.randrange(profile.mem_region) & ~63), "member")
            # fall through: a normal near access between burst misses
        else:
            self._far_debt += params.mem_frac
            if self._far_debt >= 1.0:
                self._far_debt -= 1.0
                kind = "far"
                if params.miss_burst > 0:
                    self._burst_remaining = max(1, int(round(params.miss_burst)))
                    self._burst_cooldown = max(1, int(params.burst_gap))
                    kind = "trigger"
                return (self._base + 0x2000_0000
                        + (rng.randrange(profile.mem_region) & ~63), kind)
        self._l2_debt += params.l2_frac
        if self._l2_debt >= 1.0:
            self._l2_debt -= 1.0
            return self._base + 0x1000_0000 + (rng.randrange(profile.l2_region) & ~7), None
        return self._base + (rng.randrange(profile.l1_region) & ~7), None

    # -- main API ------------------------------------------------------------

    def next_instruction(self):
        """Generate the next dynamic instruction."""
        params = self._current_params()
        profile = self.profile
        rng = self.rng
        seq = self.seq
        pc = self._code_base + (seq % self._code_words) * 4

        draw = rng.random()
        taken = False
        addr = None
        is_fp = False

        if draw < self._cum_load:
            op = OpClass.LOAD
            addr, kind = self._pick_address(params)
            if kind == "trigger":
                # Burst-group head: pointer-chases the previous group's
                # head, so groups are serially dependent...
                srcs = (self._last_trigger_seq,) \
                    if self._last_trigger_seq is not None else ()
                self._last_trigger_seq = seq
            elif kind == "member":
                # ...while misses inside one group depend only on their
                # group head and overlap freely (memory-level parallelism
                # bounded by how much of the group fits in the window).
                srcs = (self._last_trigger_seq,) \
                    if self._last_trigger_seq is not None else ()
            else:
                srcs = self._pick_sources(params)
        elif draw < self._cum_store:
            op = OpClass.STORE
            addr, __ = self._pick_address(params)
            srcs = self._pick_sources(params)
        elif draw < self._cum_branch:
            call_draw = rng.random()
            if call_draw < profile.call_frac and self._call_depth < 32:
                op = OpClass.CALL
                self._call_depth += 1
                taken = True
            elif call_draw < self._call_frac_2x and self._call_depth > 0:
                op = OpClass.RETURN
                self._call_depth -= 1
                taken = True
            else:
                op = OpClass.BRANCH
                site = self._branch_site()
                pc = self._branch_base + site * 4
                taken = rng.random() < self._branch_bias[site]
            srcs = self._pick_sources(params)
        elif profile.fp_frac and draw < self._cum_fp:
            op = OpClass.FMUL if rng.random() < 0.4 else OpClass.FADD
            is_fp = True
            srcs = self._pick_sources(params)
        elif rng.random() < profile.mul_frac:
            op = OpClass.IMUL
            srcs = self._pick_sources(params)
        else:
            op = OpClass.IALU
            srcs = self._pick_sources(params)

        instruction = Instruction(self.thread_id, seq, op, is_fp, srcs, pc, taken, addr)
        self.seq += 1
        return instruction

    # -- checkpointing ---------------------------------------------------------

    def snapshot(self):
        return (self.rng.getstate(), self.seq, self._burst_remaining,
                self._burst_cooldown, self._last_trigger_seq,
                self._call_depth, self._far_debt, self._l2_debt)

    def restore(self, state):
        (rng_state, seq, burst, cooldown, trigger, depth, far_debt,
         l2_debt) = state
        self.rng.setstate(rng_state)
        self.seq = seq
        self._burst_remaining = burst
        self._burst_cooldown = cooldown
        self._last_trigger_seq = trigger
        self._call_depth = depth
        self._far_debt = far_debt
        self._l2_debt = l2_debt
        self._params_expiry = -1  # re-derive phase params at the new seq
