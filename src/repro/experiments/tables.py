"""Per-table experiment drivers (Tables 1-3)."""

from repro.analysis.characteristics import (
    derive_freq_label,
    requirement_series,
    resource_requirement,
)
from repro.workloads.mixes import GROUPS, workloads_in_group
from repro.workloads.spec2000 import PROFILES


def table1_configuration(config):
    """The modelled machine as (parameter, value) rows — Table 1."""
    rows = [
        ("Bandwidth", "%d-Fetch, %d-Issue, %d-Commit" % (
            config.fetch_width, config.issue_width, config.commit_width)),
        ("Queue size", "%d-IFQ, %d-Int IQ, %d-FP IQ, %d-LSQ" % (
            config.ifq_size, config.iq_int_size, config.iq_fp_size,
            config.lsq_size)),
        ("Rename reg / ROB", "%d-Int, %d-FP / %d entry" % (
            config.rename_int, config.rename_fp, config.rob_size)),
        ("Functional unit", "%d-Int Add, %d-Int Mul/Div, %d-Mem Port, "
            "%d-FP Add, %d-FP Mul/Div" % (
            config.fu_int_alu, config.fu_int_mul, config.fu_mem_port,
            config.fu_fp_add, config.fu_fp_mul)),
        ("Branch predictor", "Hybrid %d-entry gshare/%d-entry Bimod" % (
            config.bp_gshare_entries, config.bp_bimodal_entries)),
        ("Meta table/BTB/RAS", "%d / %d %d-way / %d" % (
            config.bp_meta_entries, config.btb_entries, config.btb_assoc,
            config.ras_depth)),
        ("IL1 config", _cache_row(config.il1)),
        ("DL1 config", _cache_row(config.dl1)),
        ("UL2 config", _cache_row(config.ul2)),
        ("Mem config", "%d cycle latency" % config.mem_latency),
    ]
    return rows


def _cache_row(cache):
    return "%dkbyte, %dbyte block, %d way, %d cycle lat" % (
        cache.size_bytes // 1024, cache.block_bytes, cache.assoc,
        cache.latency)


def _characterize_benchmark(name, scale, epochs):
    """Measure one benchmark's Table 2 row (top-level: sweep workers pick
    it up by reference through the process pool)."""
    profile = PROFILES[name]
    step = max(8, scale.config.rename_int // 8)
    measured_rsc = resource_requirement(
        profile, scale.config, seed=scale.seed,
        warmup=scale.warmup, window=scale.epoch_size * 2, step=step,
    )
    # The series windows are instruction counts (phase-aligned across
    # caps); size them to one generator phase period.  The finer grid
    # (and a threshold of ~1.5 grid steps) separates real requirement
    # swings from level-crossing jitter on shallow curves.
    series_step = max(4, scale.config.rename_int // 16)
    series = requirement_series(
        profile, scale.config, seed=scale.seed,
        warmup=4000, window=4000,
        epochs=epochs, step=series_step, level=0.90,
    )
    measured_freq = derive_freq_label(
        series, scale.config.rename_int, threshold=1.5 * series_step)
    return {
        "name": name,
        "type": "%s %s" % ("FP" if profile.is_fp else "Int", profile.ctype),
        "paper_rsc": profile.rsc_hint,
        "measured_rsc": measured_rsc,
        "paper_freq": profile.freq.value,
        "measured_freq": measured_freq,
    }


def table2_characteristics(scale, benchmarks=None, epochs=10, jobs=None):
    """Re-derive the Table 2 "Rsc" and "Freq" columns on the scaled machine.

    Returns rows (name, type, paper Rsc hint, measured Rsc, paper Freq,
    measured Freq).  Absolute Rsc values differ from the paper's (different
    machine scale); the *ordering* (which benchmarks are resource-hungry)
    is the reproduced claim.  ``jobs`` > 1 characterizes benchmarks in
    parallel worker processes (each benchmark is independent).
    """
    from repro.experiments.parallel import pool_map

    names = benchmarks or list(PROFILES)
    return pool_map(_characterize_benchmark,
                    [(name, scale, epochs) for name in names], jobs=jobs)


def table3_workloads():
    """The 42 Table 3 workloads with their summed Rsc hints."""
    rows = []
    for group in GROUPS:
        for workload in workloads_in_group(group):
            rows.append({
                "name": workload.name,
                "group": group,
                "threads": workload.num_threads,
                "rsc_sum": workload.rsc_sum,
                "large": workload.is_large,
            })
    return rows
