"""Experiment drivers: one entry point per table/figure of the paper.

`runner` provides the shared machinery (warmed runs, solo-IPC caching,
policy comparisons); `parallel` fans experiment grids out over a process
pool with content-addressed on-disk result caching (docs/PARALLEL.md);
`sync` implements the checkpoint-synchronized time-varying comparisons of
Figures 5/12; `figures` and `tables` expose ``fig*``/``table*`` functions
returning structured results; `ablations` covers the design-choice sweeps
DESIGN.md calls out; `report` renders ASCII tables/series for the benches
and examples.
"""

from repro.experiments.runner import (
    ExperimentScale,
    RunResult,
    compare_policies,
    run_policy,
    solo_ipcs,
)
from repro.experiments.parallel import (
    ResultCache,
    SweepCell,
    SweepEngine,
    grid_cells,
    merged_json,
)
from repro.experiments.sync import synchronized_timeline
from repro.experiments import figures, tables, ablations, report

__all__ = [
    "ExperimentScale",
    "ResultCache",
    "RunResult",
    "SweepCell",
    "SweepEngine",
    "run_policy",
    "compare_policies",
    "grid_cells",
    "merged_json",
    "solo_ipcs",
    "synchronized_timeline",
    "figures",
    "tables",
    "ablations",
    "report",
]
