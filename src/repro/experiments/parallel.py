"""Parallel sweep engine with content-addressed on-disk result caching.

Every figure/table of the paper reduces to an embarrassingly parallel grid
of independent (workload, policy, seed) simulations — the same structure
the thread-to-core allocation literature exploits by evaluating candidate
allocations as independent trials.  This module fans that grid out over a
:class:`concurrent.futures.ProcessPoolExecutor` and memoizes every cell in
a content-addressed on-disk cache, so that

* a sweep saturates however many cores the host has (``jobs=N``);
* re-running a sweep after editing one policy re-simulates only the cells
  whose cache keys changed (the key includes a per-policy code
  fingerprint — see :func:`cache_key`);
* a killed sweep resumes: completed cells return from the cache, and with
  a ``resume_dir`` each in-flight cell checkpoints per epoch through
  :func:`repro.reliability.guard.run_policy_resilient` and continues from
  its last good epoch;
* merged results are deterministic — cell order follows the *request*
  order, never completion order, so ``jobs=4`` produces byte-identical
  JSON to ``jobs=1`` (:func:`merged_json`).

Progress is surfaced as a lightweight JSONL event stream (one object per
line: sweep/cell lifecycle, done/cached/running counts, ETA, worker
count) plus an optional ``on_event`` callback for interactive display.

With a :class:`~repro.reliability.supervisor.Supervision` config the
engine additionally runs every cell under the cell supervisor: per-cell
heartbeat timeouts, retry with deterministic backoff, pool rebuild after
``BrokenProcessPool``, quarantine of repeat offenders into a
``quarantine.jsonl`` ledger, and graceful degrade to in-process serial
execution (``repro sweep`` enables this by default; see
docs/RELIABILITY.md "Sweep supervision").  Supervision never changes
*what* a result is — a fault-free supervised sweep is byte-identical to
a plain serial one, a contract the ``repro chaos`` harness enforces.

The cache directory defaults to ``$REPRO_CACHE_DIR`` or
``~/.cache/repro-sweeps``; ``python -m repro cache info|clear`` inspects
and empties it.  docs/PARALLEL.md documents the architecture, the key
derivation and the invalidation rules.
"""

import hashlib
import json
import math
import os
import sys
import tempfile
import time
from collections import namedtuple
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass

from repro.experiments.export import _jsonable
from repro.experiments.runner import RunResult, run_policy
from repro.policies import BASELINE_POLICIES  # repro: allow-reexport[FP005] (registry lookup; per-family sources hash the defining modules)
from repro.reliability.packsup import (
    PackSupervisor,
    audit_mode,
    validate_batch_cells,
)
from repro.reliability.supervisor import (
    SWEEP_EVENTS,
    CellBootstrapError,
    CellResultError,
    CellSupervisor,
    QuarantineLedger,
    Supervision,
)
from repro.workloads.mixes import get_workload, workloads_in_group

DEFAULT_POLICIES = ("ICOUNT", "FLUSH", "DCRA", "HILL")

#: ``repro sweep --preset`` shorthands: (groups, policies) per figure grid.
SWEEP_PRESETS = {
    "fig4": (("ILP2", "MIX2", "MEM2"), ("ICOUNT", "FLUSH", "DCRA")),
    "fig9": (("ILP2", "MIX2", "MEM2", "ILP4", "MIX4", "MEM4"),
             ("ICOUNT", "FLUSH", "DCRA", "HILL")),
    "fig10": (("ILP2", "MIX2", "MEM2", "ILP4", "MIX4", "MEM4"),
              ("ICOUNT", "FLUSH", "DCRA",
               "HILL-IPC", "HILL-WIPC", "HILL-HWIPC")),
    "sec5": (("ILP2", "MIX2", "MEM2", "ILP4", "MIX4", "MEM4"),
             ("HILL", "PHASE-HILL")),
}


# ----------------------------------------------------------------------
# Policy specs: canonical names -> fresh policy instances
# ----------------------------------------------------------------------

_HILL_METRICS = ("IPC", "WIPC", "HWIPC")


def canonical_policy(name):
    """Normalize a policy spelling to its canonical sweep-cell form.

    Baselines keep their registry name; hill climbers always carry their
    metric suffix (``HILL`` -> ``HILL-WIPC``, ``PHASE-HILL`` ->
    ``PHASE-HILL-WIPC``) so equivalent spellings share cache entries.
    Raises :class:`ValueError` for unknown names.
    """
    upper = name.upper()
    if upper in BASELINE_POLICIES:
        return upper
    for prefix in ("PHASE-HILL", "HILL"):
        if upper == prefix:
            return prefix + "-WIPC"
        if upper.startswith(prefix + "-"):
            suffix = upper[len(prefix) + 1:]
            if suffix in _HILL_METRICS:
                return prefix + "-" + suffix
            break
    raise ValueError(
        "unknown policy %r (valid: %s, HILL[-IPC|-WIPC|-HWIPC], "
        "PHASE-HILL[-IPC|-WIPC|-HWIPC])"
        % (name, ", ".join(sorted(BASELINE_POLICIES))))


def policy_factory(name, scale):
    """Zero-argument factory for a policy name, with hill-climbing
    overheads (software stall, sampling period) scaled to the experiment.

    This is the single name-resolution point shared by the CLI and the
    sweep workers; raises :class:`ValueError` for unknown names.
    """
    from repro.core.hill_climbing import HillClimbingPolicy  # repro: dispatch[HILL]
    from repro.core.metrics import metric_by_name
    from repro.core.phase_hill import PhaseHillPolicy  # repro: dispatch[PHASE-HILL]

    spec = canonical_policy(name)
    if spec in BASELINE_POLICIES:
        return BASELINE_POLICIES[spec]
    cls = PhaseHillPolicy if spec.startswith("PHASE-") else HillClimbingPolicy
    metric_name = spec.split("-")[-1].lower()
    return lambda: cls(metric=metric_by_name(metric_name),
                       software_cost=scale.hill_software_cost,
                       sample_period=scale.hill_sample_period)


# ----------------------------------------------------------------------
# Sweep cells and cache keys
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SweepCell:
    """One grid point: a (workload, policy, seed) simulation request."""

    workload: str
    policy: str          # canonical policy name (see canonical_policy)
    seed: int = 0
    epochs: int = None   # None: the scale's epoch count

    @property
    def label(self):
        return "%s/%s/s%d" % (self.workload, self.policy, self.seed)


def grid_cells(workloads=None, groups=None, policies=DEFAULT_POLICIES,
               seeds=(0,), epochs=None, workloads_per_group=None):
    """The cartesian sweep grid, workload-major, in deterministic order.

    ``workloads`` (explicit names) and ``groups`` (Table 3 group names)
    combine; with neither, all six groups are swept.
    """
    names = list(workloads or [])
    for group in (groups if groups is not None
                  else ([] if workloads else
                        ("ILP2", "MIX2", "MEM2", "ILP4", "MIX4", "MEM4"))):
        members = [w.name for w in workloads_in_group(group)]
        if workloads_per_group is not None:
            members = members[:workloads_per_group]
        names.extend(members)
    cells = []
    for name in names:
        get_workload(name)  # fail fast on unknown names
        for policy in policies:
            for seed in seeds:
                cells.append(SweepCell(workload=name,
                                       policy=canonical_policy(policy),
                                       seed=seed, epochs=epochs))
    return cells


# -- code fingerprint ---------------------------------------------------

#: Entry modules whose transitive import closure defines "code every cell
#: depends on".  ``repro lint`` (the fingerprint auditor, rule FP001)
#: proves that ``_CORE_SOURCES`` + ``_POLICY_SOURCES[family]`` covers the
#: import closure of ``_CORE_ENTRIES`` + ``_FAMILY_ENTRIES[family]``; the
#: opt-in ``REPRO_FINGERPRINT_MODE=graph`` fingerprint hashes the closure
#: itself (see :func:`code_fingerprint`).
_CORE_ENTRIES = ("experiments/runner.py", "experiments/parallel.py")

#: Per-family entry modules: the lazily imported policy implementations.
#: Their lazy import sites carry ``# repro: dispatch[FAMILY]`` markers so
#: the auditor can attribute each to one family (rule FP006).
_FAMILY_ENTRIES = {
    "ICOUNT": ("policies/icount.py",),
    "FPG": ("policies/fpg.py",),
    "STALL": ("policies/stall.py",),
    "FLUSH": ("policies/flush.py",),
    "STALL-FLUSH": ("policies/stall_flush.py",),
    "DG": ("policies/dg.py",),
    "PDG": ("policies/dg.py",),
    "DCRA": ("policies/dcra.py",),
    "STATIC": ("policies/static_partition.py",),
    "HILL": ("core/hill_climbing.py",),
    "PHASE-HILL": ("core/phase_hill.py",),
}

#: Source files every cell depends on, relative to the ``repro`` package:
#: the simulator substrate, the run machinery (including the reliability
#: guard the resumable path executes under), the policy registry and the
#: default fetch policy (ICOUNT drives both default fetch priority and
#: SingleIPC runs).  Package ``__init__`` files are hashed because
#: importing any closure module executes them; the graph-mode fingerprint
#: additionally depends on the import-graph builder itself.
_CORE_SOURCES = (
    # Directory entries hash every .py under them, so the run-loop core
    # modules (pipeline/fastpath.py, pipeline/profile.py and the batched
    # lane's pipeline/batched.py) are covered by "pipeline" — editing any
    # core invalidates every cell, exactly as editing the reference loop
    # does.  The pack layer rides along explicitly: cache keys stay
    # core-agnostic only because every core is proven byte-identical, so
    # editing the pack layer must invalidate like editing a core.
    "pipeline", "memory", "branch", "workloads",
    "__init__.py", "core/__init__.py", "experiments/__init__.py",
    "policies/__init__.py", "reliability/__init__.py",
    "analysis/__init__.py", "analysis/lint/__init__.py",
    "analysis/lint/findings.py", "analysis/lint/importgraph.py",
    "core/controller.py", "core/metrics.py",
    "policies/base.py", "policies/icount.py",
    "experiments/runner.py", "experiments/parallel.py",
    "experiments/batchrun.py", "experiments/export.py",
    "reliability/guard.py", "reliability/invariants.py",
    "reliability/supervisor.py", "reliability/packsup.py",
)

#: Extra sources per policy family; editing one of these invalidates only
#: that family's cells.
_POLICY_SOURCES = {
    "ICOUNT": (),
    "FPG": ("policies/fpg.py",),
    "STALL": ("policies/stall.py",),
    "FLUSH": ("policies/flush.py",),
    "STALL-FLUSH": ("policies/stall_flush.py", "policies/flush.py"),
    "DG": ("policies/dg.py",),
    "PDG": ("policies/dg.py",),
    "DCRA": ("policies/dcra.py",),
    "STATIC": ("policies/static_partition.py",),
    "HILL": ("core/hill_climbing.py", "core/partition.py"),
    "PHASE-HILL": ("core/phase_hill.py", "core/hill_climbing.py",
                   "core/partition.py", "phase"),
}

#: Memoized fingerprints, keyed by (mode, family).
_fingerprint_memo = {}


def _package_root():
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def _iter_source_files(root, rel):
    path = os.path.join(root, rel)
    if os.path.isfile(path):
        yield rel, path
        return
    for dirpath, dirnames, filenames in os.walk(path):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith(".py"):
                full = os.path.join(dirpath, name)
                yield os.path.relpath(full, root), full


def fingerprint_mode():
    """``static`` (default: hash the audited hand lists) or ``graph``
    (hash the transitive import closure computed from the AST), selected
    by the ``REPRO_FINGERPRINT_MODE`` environment variable."""
    mode = os.environ.get("REPRO_FINGERPRINT_MODE", "static")
    if mode not in ("static", "graph"):
        raise ValueError(
            "REPRO_FINGERPRINT_MODE must be 'static' or 'graph', got %r"
            % mode)
    return mode


def _fingerprint_files(root, family, mode):
    """Package-relative source files one family's fingerprint hashes."""
    if mode == "graph":
        from repro.analysis.lint.importgraph import closure_files

        return closure_files(root, "repro",
                             _CORE_ENTRIES + _FAMILY_ENTRIES[family])
    files = []
    for rel in _CORE_SOURCES + _POLICY_SOURCES[family]:
        files.extend(relpath for relpath, _ in _iter_source_files(root, rel))
    return tuple(sorted(set(files)))


def code_fingerprint(policy):
    """Hash of the source files a policy's simulation depends on.

    The fingerprint covers the simulator substrate plus the policy's own
    module(s), so editing ``policies/dcra.py`` invalidates DCRA cells
    only, while editing the pipeline invalidates everything.  In the
    default ``static`` mode the file set is the audited hand lists
    (``repro lint`` proves them sufficient); ``REPRO_FINGERPRINT_MODE=
    graph`` derives the set from the import graph instead.
    """
    family = canonical_policy(policy)
    if family.startswith("PHASE-HILL"):
        family = "PHASE-HILL"
    elif family.startswith("HILL"):
        family = "HILL"
    mode = fingerprint_mode()
    memo = _fingerprint_memo.get((mode, family))
    if memo is not None:
        return memo
    root = _package_root()
    digest = hashlib.sha256()
    for relpath in _fingerprint_files(root, family, mode):
        digest.update(relpath.encode())
        with open(os.path.join(root, relpath), "rb") as handle:
            digest.update(hashlib.sha256(handle.read()).digest())
    value = digest.hexdigest()
    _fingerprint_memo[(mode, family)] = value
    return value


def clear_fingerprint_memo():
    """Forget memoized fingerprints (tests edit sources mid-process)."""
    _fingerprint_memo.clear()


def cache_key(cell, scale):
    """Content address of one cell's result.

    The key hashes everything the simulation's outcome depends on: the
    full machine configuration, the workload's benchmark profiles (their
    parameters, not just their names), the canonical policy spec, the
    seed, the epoch schedule (epoch size, epoch count, warmup), and the
    relevant code fingerprint.  Anything else — job count, cache
    location, event stream, resume state — deliberately stays out.
    """
    workload = get_workload(cell.workload)
    payload = {
        "config": _jsonable(scale.config),
        "workload": cell.workload,
        "profiles": [_jsonable(profile) for profile in workload.profiles],
        "policy": cell.policy,
        "seed": cell.seed,
        "schedule": {
            "epoch_size": scale.epoch_size,
            "epochs": cell.epochs if cell.epochs is not None
            else scale.epochs,
            "warmup": scale.warmup,
        },
        "code": code_fingerprint(cell.policy),
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


# ----------------------------------------------------------------------
# On-disk result cache
# ----------------------------------------------------------------------

#: ``corrupt``/``corrupt_bytes`` count the ``<key>.corrupt`` entries that
#: :meth:`ResultCache.get` sidelined (they are misses, not results, but
#: they occupy disk until ``repro cache clear --corrupt-only``).
CacheStats = namedtuple("CacheStats",
                        "entries bytes corrupt corrupt_bytes directory")


def default_cache_dir():
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-sweeps``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-sweeps")


class ResultCache:
    """Content-addressed store of finished cell results.

    Layout: ``<dir>/objects/<key[:2]>/<key>.json``, one JSON document per
    cell holding the cell description (for ``cache info`` debugging), the
    entry's own cache key, a sha256 digest of the canonical result
    payload, and the :meth:`RunResult.to_dict` payload.  Writes are
    atomic (write-to-temp + ``os.replace``); unreadable entries count as
    misses.  A *readable but corrupt* entry — truncated JSON from a
    crash mid-write elsewhere, a bad payload shape, a payload whose
    digest no longer matches, or an entry filed under the wrong key —
    also counts as a miss and is moved aside to ``<key>.corrupt`` with a
    one-line warning, so it can never shadow the re-simulated result nor
    poison later invocations.  ``repro cache info`` counts the sidelined
    entries.
    """

    def __init__(self, directory=None):
        self.directory = directory or default_cache_dir()
        self.objects_dir = os.path.join(self.directory, "objects")

    def _path(self, key):
        return os.path.join(self.objects_dir, key[:2], key + ".json")

    @staticmethod
    def _result_digest(result_dict):
        """sha256 of the canonical (sorted-key) result payload bytes."""
        blob = json.dumps(result_dict, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def get(self, key):
        path = self._path(key)
        try:
            with open(path) as handle:
                document = json.load(handle)
            if document["key"] != key:
                raise ValueError(
                    "entry filed under key %s… carries key %s…"
                    % (key[:12], str(document["key"])[:12]))
            digest = self._result_digest(document["result"])
            if document["sha256"] != digest:
                raise ValueError(
                    "stored digest %s… does not match payload digest %s…"
                    % (str(document["sha256"])[:12], digest[:12]))
            return RunResult.from_dict(document["result"])
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            try:
                os.replace(path, path[:-len(".json")] + ".corrupt")
            except OSError:
                pass
            print("warning: corrupt cache entry %s… treated as a miss, "
                  "moved to .corrupt (%s: %s)"
                  % (key[:12], type(exc).__name__, exc), file=sys.stderr)
            return None

    def put(self, key, cell, result):
        """Atomically store one result; safe under concurrent engines.

        Two writers racing on the same key both succeed: the keys are
        content addresses, so the duplicate ``os.replace`` onto the same
        path is a silent no-op by construction.  A racing
        :meth:`clear`/``rmtree`` that removes the bucket directory
        between the ``makedirs`` and the write is absorbed by recreating
        the directory and retrying once — ``put`` never raises
        ``FileNotFoundError`` at a victim of someone else's cleanup.
        """
        path = self._path(key)
        result_dict = result.to_dict()
        payload = json.dumps(
            {"cell": _jsonable(cell), "key": key,
             "sha256": self._result_digest(result_dict),
             "result": result_dict},
            sort_keys=True)
        tmp = path + ".tmp.%d" % os.getpid()
        for retry in (False, True):
            os.makedirs(os.path.dirname(path), exist_ok=True)
            try:
                with open(tmp, "w") as handle:
                    handle.write(payload)
                os.replace(tmp, path)
                return
            except FileNotFoundError:
                if retry:
                    raise

    def _entries(self, suffix=".json"):
        if not os.path.isdir(self.objects_dir):
            return
        for dirpath, dirnames, filenames in os.walk(self.objects_dir):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(suffix):
                    yield os.path.join(dirpath, name)

    @staticmethod
    def _measure(paths):
        count = 0
        total = 0
        for path in paths:
            count += 1
            try:
                total += os.path.getsize(path)
            except OSError:
                pass
        return count, total

    def info(self):
        entries, total = self._measure(self._entries())
        corrupt, corrupt_total = self._measure(self._entries(".corrupt"))
        return CacheStats(entries=entries, bytes=total, corrupt=corrupt,
                          corrupt_bytes=corrupt_total,
                          directory=self.directory)

    def clear(self, corrupt_only=False):
        """Delete cached results; returns the number of files removed.

        ``corrupt_only=True`` removes only the sidelined ``.corrupt``
        entries and leaves every valid result in place; the default
        empties the cache, sidelined entries included.  Already-removed
        files (a concurrent ``clear``) are skipped, not errors.
        """
        suffixes = (".corrupt",) if corrupt_only else (".json", ".corrupt")
        removed = 0
        for suffix in suffixes:
            for path in list(self._entries(suffix)):
                try:
                    os.remove(path)
                    removed += 1
                except OSError:
                    pass
        return removed


# ----------------------------------------------------------------------
# Workers (top-level: must be picklable by the process pool)
# ----------------------------------------------------------------------


def _touch_heartbeat(path):
    """Create-or-touch one heartbeat file; never raises (a full disk must
    not turn a healthy cell into a 'hung' one mid-run)."""
    try:
        with open(path, "a"):
            pass
        os.utime(path, None)
    except OSError:
        pass


def _execute_cell(cell, scale, resume_dir, heartbeat_path=None, attempt=1,
                  fault_plan=None):
    """Simulate one cell (runs inside a worker process).

    With ``resume_dir`` the run goes through the PR 1 resilient runner:
    per-epoch crash-safe checkpoints in a per-cell subdirectory, so a
    killed sweep continues mid-cell.  The attached ``reliability`` report
    is dropped before caching — it describes the *execution* (retries,
    resume point), not the result, and would break the determinism
    contract between fresh, resumed and cached runs.

    Supervised sweeps additionally pass a ``heartbeat_path`` (touched
    once per completed epoch through the guard's ``on_epoch`` hook, so
    the parent can tell slow from hung), the 1-based ``attempt`` number,
    and optionally a chaos ``fault_plan`` (duck-typed, picklable; see
    :mod:`repro.reliability.chaos`) whose hooks perturb this attempt.
    Failures raised while *constructing* the cell — unknown workload or
    policy, a broken registry inside the child — are wrapped in
    :class:`~repro.reliability.supervisor.CellBootstrapError`: they are
    deterministic, so the supervisor aborts instead of retrying.
    """
    if fault_plan is not None:
        fault_plan.before_cell(cell, attempt)
    try:
        workload = get_workload(cell.workload)
        policy = policy_factory(cell.policy, scale)()
    except CellBootstrapError:
        raise
    except Exception as exc:
        raise CellBootstrapError(
            "cannot construct cell %s: %s: %s"
            % (cell.label, type(exc).__name__, exc)) from exc
    seeded = (scale if scale.seed == cell.seed
              else scale.with_overrides(seed=cell.seed))
    hooks = []
    if heartbeat_path is not None:
        _touch_heartbeat(heartbeat_path)
        hooks.append(lambda epoch_id: _touch_heartbeat(heartbeat_path))
    if fault_plan is not None:
        hooks.append(lambda epoch_id: fault_plan.on_epoch(cell, attempt,
                                                          epoch_id))
    on_epoch = (None if not hooks
                else lambda epoch_id: [hook(epoch_id) for hook in hooks])
    if resume_dir is not None or on_epoch is not None:
        from repro.reliability.guard import run_policy_resilient, run_slug

        run_dir = None
        if resume_dir is not None:
            run_dir = os.path.join(
                resume_dir, run_slug(cell.workload, cell.policy, cell.seed))
        result = run_policy_resilient(
            workload, policy, seeded, epochs=cell.epochs, run_dir=run_dir,
            resume=True, sanitize_partitions=False, on_epoch=on_epoch)
        resumed = bool(result.reliability
                       and result.reliability.get("resumed_from") is not None)
        result.reliability = None
    else:
        result = run_policy(workload, policy, seeded, epochs=cell.epochs)
        resumed = False
    if fault_plan is not None:
        result = fault_plan.transform_result(cell, attempt, result)
    return result, resumed


def _validate_cell_value(cell, value):
    """Reject malformed worker payloads *before* they reach the cache.

    A supervised worker must return ``(RunResult, resumed)`` with finite
    metrics; anything else (a chaos-corrupted payload, a future pickling
    bug) raises :class:`CellResultError` so the supervisor retries the
    cell instead of caching garbage.
    """
    ok = (isinstance(value, tuple) and len(value) == 2
          and isinstance(value[0], RunResult)
          and isinstance(value[1], bool))
    if ok:
        result = value[0]
        values = list(result.ipcs) + [result.avg_ipc, result.weighted_ipc,
                                      result.harmonic_weighted_ipc]
        ok = all(isinstance(v, (int, float)) and math.isfinite(v)
                 for v in values)
    if not ok:
        raise CellResultError(
            "cell %s returned an invalid payload (%r...)"
            % (cell.label, repr(value)[:80]))


def _execute_pack_supervised(cells, scale, resume_dir, pack_heartbeat,
                             cell_heartbeats, attempt, fault_plan, audit):
    """Supervised pack worker (runs inside the pack supervisor's worker
    process): one lockstep pack with per-cell checkpoints under
    ``resume_dir``, pack/cell heartbeats, chaos hooks and the optional
    runtime mirror audit.  Returns one ``(RunResult, False)`` per cell
    in pack order, with ``None`` for audit-evicted slots — the same
    per-cell payload shape as :func:`_execute_cell` (packed cells are
    never resumed; cells with a checkpoint take the per-cell path)."""
    from repro.experiments.batchrun import run_pack

    run_dirs = None
    if resume_dir is not None:
        from repro.reliability.guard import run_slug

        run_dirs = [os.path.join(resume_dir,
                                 run_slug(cell.workload, cell.policy,
                                          cell.seed))
                    for cell in cells]
    results = run_pack(cells, scale, attempt=attempt, fault_plan=fault_plan,
                       audit=audit, run_dirs=run_dirs,
                       heartbeat=pack_heartbeat,
                       cell_heartbeats=cell_heartbeats)
    return [None if result is None else (result, False)
            for result in results]


def pool_map(fn, tasks, jobs=None):
    """Order-preserving map over argument tuples, optionally fanned out
    over a process pool (``jobs`` <= 1: plain serial calls, no pool).

    The generic sibling of :class:`SweepEngine` for non-cell work
    (Table 2 characterization, ablation points): ``fn`` must be a
    top-level function and every argument picklable.
    """
    tasks = list(tasks)
    if not tasks:
        return []  # never build a pool for zero tasks (max_workers >= 1)
    if not jobs or jobs <= 1 or len(tasks) == 1:
        return [fn(*args) for args in tasks]
    with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        futures = [pool.submit(fn, *args) for args in tasks]
        return [future.result() for future in futures]


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------


class SweepEngine:
    """Runs sweep grids over a process pool with read-through caching.

    Parameters
    ----------
    scale:
        The :class:`~repro.experiments.runner.ExperimentScale` every cell
        runs at (cells may override ``seed`` and ``epochs``).
    jobs:
        Worker processes.  ``1`` (default) runs cells in-process — the
        reference serial order whose merged JSON parallel runs must
        reproduce byte-for-byte.
    cache_dir:
        Result cache directory (default :func:`default_cache_dir`).
        ``use_cache=False`` disables caching entirely.
    events_path:
        Optional JSONL file receiving one progress event per line.
    on_event:
        Optional callable receiving each event dict (for live display).
    resume_dir:
        Optional directory for per-cell crash-safe checkpoints; killed
        sweeps resume mid-cell from here (see docs/PARALLEL.md).
    supervision:
        Optional :class:`~repro.reliability.supervisor.Supervision`:
        cells then run under the cell supervisor (heartbeat timeouts,
        retry with backoff, pool rebuild, quarantine, degrade-to-serial
        — docs/RELIABILITY.md "Sweep supervision").  ``None`` (default)
        keeps the classic fail-fast behaviour: the first worker
        exception propagates.
    fault_plan:
        Optional picklable chaos plan (:mod:`repro.reliability.chaos`)
        whose hooks perturb supervised workers; test/bench-only.
    batch_cells:
        With ``batch_cells > 1`` pending cells run through the batched
        core lane (:mod:`repro.experiments.batchrun`): packs of up to
        ``batch_cells`` cells simulate in lockstep inside one process,
        sharing replay tapes and SingleIPC runs.  Results and cache
        entries stay byte-identical to per-cell execution (cache keys
        are core-agnostic).  Combined with ``supervision`` the packs
        run under the :class:`~repro.reliability.packsup.PackSupervisor`
        — pack heartbeats, deterministic bisection of failed packs,
        eviction to the scalar lane, quarantine — and with
        ``resume_dir`` every packed cell checkpoints per epoch, so a
        killed batched sweep resumes exactly like a per-cell one
        (docs/RELIABILITY.md "Batched-lane supervision").  Cells with an
        existing checkpoint resume on the per-cell path; packs always
        start cells from epoch 0.
    audit_mirrors:
        Opt-in runtime audit of the batched lane
        (``REPRO_AUDIT=mirror`` sets it too): cross-check the BatchCore
        SoA mirrors against scalar processor state at every epoch
        boundary and evict divergent cells to the scalar lane — the
        dynamic counterpart of lint's MC4xx pass.  A clean run audits
        to zero divergences and changes no stats, checkpoints or cache
        keys.
    """

    def __init__(self, scale, jobs=1, cache_dir=None, events_path=None,
                 on_event=None, resume_dir=None, use_cache=True,
                 supervision=None, fault_plan=None, batch_cells=1,
                 audit_mirrors=False):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        validate_batch_cells(batch_cells)
        if fault_plan is not None and supervision is None:
            raise ValueError("fault_plan requires supervision")
        self.scale = scale
        self.jobs = jobs
        self.cache = ResultCache(cache_dir) if use_cache else None
        self.events_path = events_path
        if events_path is not None:
            parent = os.path.dirname(events_path)
            if parent:
                os.makedirs(parent, exist_ok=True)
        self.on_event = on_event
        self.resume_dir = resume_dir
        self.supervision = supervision
        self.fault_plan = fault_plan
        self.batch_cells = batch_cells
        self.audit_mirrors = bool(audit_mirrors)
        if batch_cells > 1 and not self.audit_mirrors:
            self.audit_mirrors = audit_mode() == "mirror"
        self.stats = {"hits": 0, "misses": 0, "resumed": 0}
        self.quarantined = {}
        self.supervisor_stats = {"retries": 0, "timeouts": 0,
                                 "pool_breaks": 0, "degraded": False,
                                 "bisections": 0, "evicted": 0}
        self._memory = {}
        self._work_dir = None
        if supervision is not None:
            # Heartbeats and the quarantine ledger live next to the
            # checkpoints when resuming, else in a throwaway directory.
            self._work_dir = resume_dir or tempfile.mkdtemp(
                prefix="repro-sweep-")
            os.makedirs(os.path.join(self._work_dir, "heartbeats"),
                        exist_ok=True)

    @property
    def quarantine_path(self):
        """Path of the ``quarantine.jsonl`` ledger (supervised engines
        only; ``None`` otherwise)."""
        if self._work_dir is None:
            return None
        return os.path.join(self._work_dir, "quarantine.jsonl")

    # -- events ----------------------------------------------------------

    def _emit(self, event, **fields):
        if event not in SWEEP_EVENTS:
            raise ValueError("unknown sweep event %r (valid: %s)"
                             % (event, ", ".join(SWEEP_EVENTS)))
        record = {"ts": round(time.time(), 3), "event": event}  # repro: allow-nondeterminism[ND101] (progress log timestamps, not results)
        record.update(fields)
        if self.events_path is not None:
            with open(self.events_path, "a") as handle:
                handle.write(json.dumps(record) + "\n")
        if self.on_event is not None:
            self.on_event(record)

    def _progress(self, done, cached, running, total, started_at,
                  finished_live):
        fields = {"done": done, "cached": cached, "running": running,
                  "total": total, "workers": self.jobs}
        if finished_live:
            per_cell = (time.time() - started_at) / finished_live  # repro: allow-nondeterminism[ND101] (ETA estimate, not results)
            remaining = total - done
            fields["eta_s"] = round(
                per_cell * remaining / max(1, min(self.jobs, remaining)), 1)
        return fields

    # -- execution -------------------------------------------------------

    def run_cells(self, cells):
        """Simulate a list of cells; returns results in *request order*.

        Duplicate cells are simulated once.  Completed cells come from
        the in-memory map, then the on-disk cache; the rest fan out over
        the pool.  Event stream and statistics update as cells land.
        """
        cells = list(cells)
        unique = list(dict.fromkeys(cells))
        keys = {cell: cache_key(cell, self.scale) for cell in unique}
        pending = []
        cached = 0
        for cell in unique:
            if cell in self._memory:
                cached += 1
                continue
            hit = self.cache.get(keys[cell]) if self.cache else None
            if hit is not None:
                self._memory[cell] = hit
                self.stats["hits"] += 1
                cached += 1
                self._emit("cell-cached", cell=cell.label)
            else:
                self.stats["misses"] += 1
                pending.append(cell)
        started_at = time.time()  # repro: allow-nondeterminism[ND101] (wall-clock reporting, not results)
        self._emit("sweep-start", total=len(unique), cached=cached,
                   pending=len(pending), jobs=self.jobs)
        if pending:
            # An empty pending list short-circuits to a pure-cache merge:
            # no pool, no supervisor, no max_workers=0 to trip over.
            if self.supervision is not None and self.batch_cells > 1:
                self._run_batched_supervised(pending, cached, len(unique),
                                             started_at)
            elif self.supervision is not None:
                self._run_supervised(pending, cached, len(unique),
                                     started_at)
            elif self.batch_cells > 1:
                self._run_batched(pending, cached, len(unique), started_at)
            elif self.jobs == 1:
                self._run_serial(pending, cached, len(unique), started_at)
            else:
                self._run_pool(pending, cached, len(unique), started_at)
        self._emit("sweep-done", total=len(unique), cached=cached,
                   simulated=len(pending),
                   quarantined=len([cell for cell in pending
                                    if cell in self.quarantined]),
                   wall_s=round(time.time() - started_at, 3))  # repro: allow-nondeterminism[ND101] (wall-clock reporting, not results)
        if self.supervision is not None:
            # Quarantined cells have no result; callers get None and the
            # details through ``quarantined`` / the ledger.
            return [self._memory.get(cell) for cell in cells]
        return [self._memory[cell] for cell in cells]

    def _store(self, cell, result, resumed):
        if resumed:
            self.stats["resumed"] += 1
        if self.cache is not None:
            self.cache.put(cache_key(cell, self.scale), cell, result)
        self._memory[cell] = result

    def _run_serial(self, pending, cached, total, started_at):
        done = cached
        for index, cell in enumerate(pending):
            self._emit("cell-start", cell=cell.label,
                       **self._progress(done, cached, 1, total, started_at,
                                        index))
            result, resumed = _execute_cell(cell, self.scale,
                                            self.resume_dir)
            self._store(cell, result, resumed)
            done += 1
            self._emit("cell-done", cell=cell.label, resumed=resumed,
                       **self._progress(done, cached, 0, total, started_at,
                                        index + 1))

    def _run_batched(self, pending, cached, total, started_at):
        """Fan pending cells out as lockstep packs (batched core lane).

        Packs run serially in-process with ``jobs=1`` and over the
        process pool otherwise — one pack per pool task, results merged
        in request order like every other path.  Event-stream consumers
        see the same cell lifecycle as per-cell execution; all cells of
        one pack start together.  Under the runtime mirror audit an
        evicted cell (``None`` payload slot) finishes on the scalar
        lane in-process, byte-identically.
        """
        from repro.experiments.batchrun import _execute_pack, pack_cells

        packs = pack_cells(pending, self.batch_cells)
        done = cached
        finished_live = 0

        def land(pack, payload):
            nonlocal done, finished_live
            for cell, slot in zip(pack, payload):
                if slot is None:
                    self.supervisor_stats["evicted"] += 1
                    self._emit("cell-evicted", cell=cell.label,
                               reason="mirror-divergence")
                    slot = _execute_cell(cell, self.scale, None)
                result, resumed = slot
                self._store(cell, result, resumed)
                done += 1
                finished_live += 1
                self._emit("cell-done", cell=cell.label, resumed=resumed,
                           **self._progress(done, cached, 0, total,
                                            started_at, finished_live))

        if self.jobs <= 1 or len(packs) == 1:
            for pack in packs:
                for cell in pack:
                    self._emit("cell-start", cell=cell.label,
                               **self._progress(done, cached, len(pack),
                                                total, started_at,
                                                finished_live))
                land(pack, _execute_pack(pack, self.scale,
                                         audit=self.audit_mirrors))
            return
        with ProcessPoolExecutor(max_workers=min(self.jobs,
                                                 len(packs))) as pool:
            futures = {}
            for pack in packs:
                futures[pool.submit(_execute_pack, pack, self.scale,
                                    self.audit_mirrors)] = pack
                for cell in pack:
                    self._emit("cell-start", cell=cell.label,
                               **self._progress(done, cached, len(pack),
                                                total, started_at,
                                                finished_live))
            outstanding = set(futures)
            while outstanding:
                finished, outstanding = wait(outstanding,
                                             return_when=FIRST_COMPLETED)
                for future in finished:
                    land(futures[future], future.result())

    def _run_pool(self, pending, cached, total, started_at):
        done = cached
        finished_live = 0
        with ProcessPoolExecutor(max_workers=min(self.jobs,
                                                 len(pending))) as pool:
            futures = {}
            for cell in pending:
                futures[pool.submit(_execute_cell, cell, self.scale,
                                    self.resume_dir)] = cell
                self._emit("cell-start", cell=cell.label,
                           **self._progress(done, cached, len(futures),
                                            total, started_at,
                                            finished_live))
            outstanding = set(futures)
            while outstanding:
                finished, outstanding = wait(outstanding,
                                             return_when=FIRST_COMPLETED)
                for future in finished:
                    cell = futures[future]
                    result, resumed = future.result()
                    self._store(cell, result, resumed)
                    done += 1
                    finished_live += 1
                    self._emit(
                        "cell-done", cell=cell.label, resumed=resumed,
                        **self._progress(done, cached, len(outstanding),
                                         total, started_at, finished_live))

    # -- supervised execution --------------------------------------------

    def _heartbeat_file(self, cell):
        from repro.reliability.guard import run_slug

        return os.path.join(
            self._work_dir, "heartbeats",
            run_slug(cell.workload, cell.policy, cell.seed) + ".hb")

    def _ledger_info(self, cell):
        checkpoint = None
        if self.resume_dir is not None:
            from repro.reliability.guard import run_slug

            checkpoint = os.path.join(
                self.resume_dir,
                run_slug(cell.workload, cell.policy, cell.seed))
        return {"workload": cell.workload, "policy": cell.policy,
                "seed": cell.seed, "key": cache_key(cell, self.scale),
                "checkpoint": checkpoint}

    def _supervised_hooks(self, cached, total, started_at):
        """Shared progress plumbing for the supervised paths: an event
        forwarder that decorates ``cell-start`` with progress fields and
        the store-and-emit completion callback, over one shared counter
        state (so the batched path's pack stage and scalar leftover
        stage report one continuous sweep)."""
        counters = {"done": cached, "live": 0}

        def forward(event, **fields):
            if event == "cell-start":
                running = fields.pop("running", 0)
                fields.update(self._progress(
                    counters["done"], cached, running, total, started_at,
                    counters["live"]))
            self._emit(event, **fields)

        def on_result(cell, value, running):
            result, resumed = value
            self._store(cell, result, resumed)
            counters["done"] += 1
            counters["live"] += 1
            self._emit("cell-done", cell=cell.label, resumed=resumed,
                       **self._progress(counters["done"], cached, running,
                                        total, started_at,
                                        counters["live"]))

        return counters, forward, on_result

    def _cell_supervisor(self, forward, on_result):
        """A :class:`CellSupervisor` wired to this engine's workers,
        validation, ledger and event stream."""
        heartbeats = (self._heartbeat_file
                      if self.supervision.cell_timeout is not None else None)

        def task_args(cell, attempt):
            return (cell, self.scale, self.resume_dir,
                    self._heartbeat_file(cell) if heartbeats else None,
                    attempt, self.fault_plan)

        return CellSupervisor(
            worker=_execute_cell, task_args=task_args, jobs=self.jobs,
            config=self.supervision,
            item_key=lambda cell: cell.label,
            item_label=lambda cell: cell.label,
            heartbeat_path=heartbeats,
            validate=_validate_cell_value, on_result=on_result,
            emit=forward, ledger=QuarantineLedger(self.quarantine_path),
            ledger_info=self._ledger_info)

    def _merge_supervisor(self, supervisor):
        self.quarantined.update(supervisor.quarantined)
        self.supervisor_stats["retries"] += supervisor.retries
        self.supervisor_stats["timeouts"] += supervisor.timeouts
        self.supervisor_stats["pool_breaks"] += supervisor.pool_breaks
        self.supervisor_stats["degraded"] |= supervisor.degraded
        self.supervisor_stats["bisections"] += getattr(
            supervisor, "bisections", 0)
        self.supervisor_stats["evicted"] += len(getattr(
            supervisor, "evicted", ()))

    def _run_supervised(self, pending, cached, total, started_at):
        """Fan pending cells out under the cell supervisor.

        Lifecycle events come through with the same progress fields as
        the plain paths, plus the supervisor's own ``cell-retry`` /
        ``cell-timeout`` / ``cell-quarantined`` / ``pool-broken`` /
        ``pool-rebuilt`` / ``sweep-degraded`` events.  Completed cells
        are validated, cached and counted exactly as unsupervised runs,
        so a fault-free supervised sweep is byte-identical to one.
        """
        __, forward, on_result = self._supervised_hooks(cached, total,
                                                        started_at)
        supervisor = self._cell_supervisor(forward, on_result)
        supervisor.run(pending)
        self._merge_supervisor(supervisor)

    def _pack_heartbeat_file(self, pack):
        digest = hashlib.sha256(
            "|".join(cell.label for cell in pack).encode()).hexdigest()
        return os.path.join(self._work_dir, "heartbeats",
                            "pack-%s.hb" % digest[:12])

    def _cell_has_checkpoint(self, cell):
        """Whether a previous (killed) sweep left resumable state for
        this cell — such cells take the per-cell path, because packs
        always start cells from epoch 0 and re-running a half-finished
        cell from scratch would waste its saved epochs."""
        if self.resume_dir is None:
            return False
        from repro.reliability.guard import run_slug

        run_dir = os.path.join(
            self.resume_dir,
            run_slug(cell.workload, cell.policy, cell.seed))
        if not os.path.isdir(run_dir):
            return False
        if os.path.exists(os.path.join(run_dir, "result.json")):
            return True
        try:
            names = os.listdir(run_dir)
        except OSError:
            return False
        return any(name.startswith("ckpt_") and name.endswith(".pkl")
                   for name in names)

    def _run_batched_supervised(self, pending, cached, total, started_at):
        """Fan pending cells out as *supervised* lockstep packs.

        Fresh cells are packed and run under the
        :class:`~repro.reliability.packsup.PackSupervisor`: per-pack
        heartbeats, deterministic bisection of failed packs (so one
        poisonous cell never takes its neighbors' work), eviction of
        audit-flagged cells, quarantine of repeat offenders.  Cells a
        previous sweep already checkpointed, plus whatever the pack
        stage deferred or evicted, finish under the ordinary cell
        supervisor — with their in-pack attempt counts carried over, so
        ``max_attempts`` means the same thing on both lanes.
        """
        from repro.experiments.batchrun import pack_cells

        __, forward, on_result = self._supervised_hooks(cached, total,
                                                        started_at)
        fresh, leftovers = [], []
        for cell in pending:
            (leftovers if self._cell_has_checkpoint(cell)
             else fresh).append(cell)
        pack_sup = None
        if fresh:
            heartbeats = self.supervision.cell_timeout is not None

            def pack_args(pack, attempt):
                return (list(pack), self.scale, self.resume_dir,
                        self._pack_heartbeat_file(pack) if heartbeats
                        else None,
                        [self._heartbeat_file(cell) for cell in pack]
                        if heartbeats else None,
                        attempt, self.fault_plan, self.audit_mirrors)

            pack_sup = PackSupervisor(
                worker=_execute_pack_supervised, pack_args=pack_args,
                jobs=self.jobs, config=self.supervision,
                item_key=lambda cell: cell.label,
                item_label=lambda cell: cell.label,
                pack_heartbeat=(self._pack_heartbeat_file if heartbeats
                                else None),
                validate=_validate_cell_value, on_result=on_result,
                emit=forward, ledger=QuarantineLedger(self.quarantine_path),
                ledger_info=self._ledger_info)
            pack_sup.run(pack_cells(fresh, self.batch_cells))
            self._merge_supervisor(pack_sup)
            leftovers.extend(pack_sup.evicted)
            leftovers.extend(pack_sup.deferred)
        if leftovers:
            supervisor = self._cell_supervisor(forward, on_result)
            if pack_sup is not None:
                supervisor.attempts.update(
                    {cell: pack_sup.attempts[cell]
                     for cell in pack_sup.deferred})
                supervisor.failures.update(
                    {cell: list(pack_sup.failures[cell])
                     for cell in pack_sup.deferred})
            supervisor.run(leftovers)
            self._merge_supervisor(supervisor)

    # -- grid conveniences ----------------------------------------------

    def sweep(self, workloads=None, groups=None, policies=DEFAULT_POLICIES,
              seeds=None, epochs=None, workloads_per_group=None):
        """Run a cartesian grid; returns (cells, results) in grid order."""
        cells = grid_cells(
            workloads=workloads, groups=groups, policies=policies,
            seeds=seeds if seeds is not None else (self.scale.seed,),
            epochs=epochs,
            workloads_per_group=(workloads_per_group
                                 if workloads_per_group is not None
                                 else self.scale.workloads_per_group))
        return cells, self.run_cells(cells)

    def compare_policies(self, workload, policy_names, epochs=None):
        """Drop-in for :func:`repro.experiments.runner.compare_policies`:
        {requested name: RunResult} for one workload, read through the
        cache/pool."""
        cells = [SweepCell(workload=workload.name,
                           policy=canonical_policy(name),
                           seed=self.scale.seed, epochs=epochs)
                 for name in policy_names]
        return dict(zip(policy_names, self.run_cells(cells)))

    def prefetch(self, workloads, policy_names, seeds=None, epochs=None):
        """Warm the engine for a whole grid in one parallel pass, so
        later per-workload :meth:`compare_policies` calls are lookups."""
        self.sweep(workloads=[getattr(w, "name", w) for w in workloads],
                   groups=[], policies=policy_names, seeds=seeds,
                   epochs=epochs)


# ----------------------------------------------------------------------
# Deterministic merge
# ----------------------------------------------------------------------


def merged_document(cells, results, scale, quarantined=None):
    """The canonical merged form of one sweep: scale description plus one
    record per cell *in request order* with the full result payload and
    the three Section 3.1.1 metrics.

    A partial (supervised) sweep stays valid: cells whose result is
    ``None`` move to the always-present ``"quarantined"`` section — one
    record per given-up cell with its attempt count and last error, fed
    from ``SweepEngine.quarantined``.  A complete sweep serializes with
    ``"quarantined": []``, so fault-free supervised runs remain
    byte-identical to plain ones.
    """
    quarantined = quarantined or {}
    records = []
    dropped = []
    for cell, result in zip(cells, results):
        if result is None:
            info = quarantined.get(cell, {})
            last_error = info.get("last_error") or ""
            dropped.append({
                "workload": cell.workload,
                "policy": cell.policy,
                "seed": cell.seed,
                "attempts": info.get("attempts"),
                "last_error": last_error.splitlines()[0] if last_error
                else "",
            })
            continue
        records.append({
            "workload": cell.workload,
            "policy": cell.policy,
            "seed": cell.seed,
            "epochs": cell.epochs if cell.epochs is not None
            else scale.epochs,
            "metrics": {
                "avg_ipc": result.avg_ipc,
                "weighted_ipc": result.weighted_ipc,
                "harmonic_weighted_ipc": result.harmonic_weighted_ipc,
            },
            "result": result.to_dict(),
        })
    return {
        "scale": {
            "config": _jsonable(scale.config),
            "epoch_size": scale.epoch_size,
            "epochs": scale.epochs,
            "warmup": scale.warmup,
        },
        "cells": records,
        "quarantined": dropped,
    }


def merged_json(cells, results, scale, quarantined=None):
    """Byte-stable JSON of a sweep: independent of job count, completion
    order, caching, and resume history."""
    return json.dumps(merged_document(cells, results, scale,
                                      quarantined=quarantined),
                      indent=1, sort_keys=True) + "\n"


__all__ = [
    "CacheStats",
    "CellBootstrapError",
    "CellResultError",
    "DEFAULT_POLICIES",
    "ResultCache",
    "SWEEP_EVENTS",
    "Supervision",
    "SWEEP_PRESETS",
    "SweepCell",
    "SweepEngine",
    "cache_key",
    "canonical_policy",
    "clear_fingerprint_memo",
    "code_fingerprint",
    "default_cache_dir",
    "grid_cells",
    "merged_document",
    "merged_json",
    "policy_factory",
    "pool_map",
]
