"""Ablation studies over the design choices DESIGN.md calls out.

* Epoch size (Section 3.1.1: the paper settled on 64K cycles).
* Hill-climbing Delta (Figure 8 uses 4).
* SingleIPC sampling period (Section 4.2 uses 40 epochs).
* Software-cost stall (the paper charges 200 cycles per invocation).
* OFF-LINE search stride (search resolution vs quality).
"""

from repro.core.hill_climbing import HillClimbingPolicy
from repro.core.metrics import WeightedIPC
from repro.experiments.figures import run_offline
from repro.experiments.runner import run_policy, solo_ipcs


def epoch_size_sweep(workload, scale, epoch_sizes=(1024, 2048, 4096, 8192)):
    """Hill-climbing weighted IPC as a function of epoch size.

    Total simulated cycles are held constant across points so the
    comparison is adaptivity, not run length.
    """
    budget = scale.epoch_size * scale.epochs
    rows = []
    for epoch_size in epoch_sizes:
        sized = scale.with_overrides(epoch_size=epoch_size,
                                     epochs=max(4, budget // epoch_size))
        result = run_policy(workload, HillClimbingPolicy(), sized)
        rows.append((epoch_size, result.weighted_ipc))
    return rows


def delta_sweep(workload, scale, deltas=(1, 2, 4, 8, 16)):
    """Hill-climbing weighted IPC as a function of the step size Delta."""
    rows = []
    for delta in deltas:
        result = run_policy(
            workload, HillClimbingPolicy(delta=delta), scale
        )
        rows.append((delta, result.weighted_ipc))
    return rows


def sample_period_sweep(workload, scale, periods=(10, 20, 40, 80, None)):
    """Weighted IPC vs the SingleIPC sampling period (None disables
    sampling, leaving the 1.0 default estimates)."""
    rows = []
    for period in periods:
        result = run_policy(
            workload, HillClimbingPolicy(sample_period=period), scale
        )
        rows.append((period, result.weighted_ipc))
    return rows


def software_cost_sweep(workload, scale, costs=(0, 200, 1000, 5000)):
    """Weighted IPC vs the per-invocation software stall charged."""
    rows = []
    for cost in costs:
        result = run_policy(
            workload, HillClimbingPolicy(software_cost=cost), scale
        )
        rows.append((cost, result.weighted_ipc))
    return rows


def offline_stride_sweep(workload, scale, strides=(32, 16, 8)):
    """OFF-LINE weighted IPC vs search stride (finer = closer to ideal)."""
    metric = WeightedIPC()
    singles = solo_ipcs(workload, scale)
    rows = []
    for stride in strides:
        learner = run_offline(
            workload, scale.with_overrides(stride=stride), metric
        )
        rows.append((stride, metric.value(learner.overall_ipcs(), singles)))
    return rows
