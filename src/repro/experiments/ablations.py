"""Ablation studies over the design choices DESIGN.md calls out.

* Epoch size (Section 3.1.1: the paper settled on 64K cycles).
* Hill-climbing Delta (Figure 8 uses 4).
* SingleIPC sampling period (Section 4.2 uses 40 epochs).
* Software-cost stall (the paper charges 200 cycles per invocation).
* OFF-LINE search stride (search resolution vs quality).

Every sweep takes ``jobs``: with ``jobs > 1`` the ablation points run in
parallel worker processes via :func:`repro.experiments.parallel.pool_map`
(each point is an independent simulation; results keep point order).
"""

from repro.core.hill_climbing import HillClimbingPolicy
from repro.core.metrics import WeightedIPC
from repro.experiments.parallel import pool_map
from repro.experiments.runner import run_policy, solo_ipcs
from repro.workloads.mixes import get_workload


def _hill_point(workload_name, scale, kwargs):
    """One hill-climbing ablation point (top-level for the process pool)."""
    result = run_policy(get_workload(workload_name),
                        HillClimbingPolicy(**kwargs), scale)
    return result.weighted_ipc


def _offline_point(workload_name, scale, stride):
    """One OFF-LINE ablation point (top-level for the process pool)."""
    from repro.experiments.figures import run_offline

    workload = get_workload(workload_name)
    metric = WeightedIPC()
    learner = run_offline(workload, scale.with_overrides(stride=stride),
                          metric)
    singles = solo_ipcs(workload, scale)
    return metric.value(learner.overall_ipcs(), singles)


def epoch_size_sweep(workload, scale, epoch_sizes=(1024, 2048, 4096, 8192),
                     jobs=None):
    """Hill-climbing weighted IPC as a function of epoch size.

    Total simulated cycles are held constant across points so the
    comparison is adaptivity, not run length.
    """
    budget = scale.epoch_size * scale.epochs
    tasks = [
        (workload.name,
         scale.with_overrides(epoch_size=epoch_size,
                              epochs=max(4, budget // epoch_size)),
         {})
        for epoch_size in epoch_sizes
    ]
    values = pool_map(_hill_point, tasks, jobs=jobs)
    return list(zip(epoch_sizes, values))


def delta_sweep(workload, scale, deltas=(1, 2, 4, 8, 16), jobs=None):
    """Hill-climbing weighted IPC as a function of the step size Delta."""
    tasks = [(workload.name, scale, {"delta": delta}) for delta in deltas]
    values = pool_map(_hill_point, tasks, jobs=jobs)
    return list(zip(deltas, values))


def sample_period_sweep(workload, scale, periods=(10, 20, 40, 80, None),
                        jobs=None):
    """Weighted IPC vs the SingleIPC sampling period (None disables
    sampling, leaving the 1.0 default estimates)."""
    tasks = [(workload.name, scale, {"sample_period": period})
             for period in periods]
    values = pool_map(_hill_point, tasks, jobs=jobs)
    return list(zip(periods, values))


def software_cost_sweep(workload, scale, costs=(0, 200, 1000, 5000),
                        jobs=None):
    """Weighted IPC vs the per-invocation software stall charged."""
    tasks = [(workload.name, scale, {"software_cost": cost})
             for cost in costs]
    values = pool_map(_hill_point, tasks, jobs=jobs)
    return list(zip(costs, values))


def offline_stride_sweep(workload, scale, strides=(32, 16, 8), jobs=None):
    """OFF-LINE weighted IPC vs search stride (finer = closer to ideal)."""
    tasks = [(workload.name, scale, stride) for stride in strides]
    values = pool_map(_offline_point, tasks, jobs=jobs)
    return list(zip(strides, values))
