"""Per-figure experiment drivers.

Each ``figN_*`` function reproduces (at the given scale) the measurement
behind the corresponding figure of the paper and returns a structured
result: the rows/series the paper reports, plus the summary gains.  The
``benchmarks/`` harness calls these and prints them via
:mod:`repro.experiments.report`.
"""

from repro.analysis.behavior import classify_behavior
from repro.analysis.hill_width import hill_widths
from repro.analysis.surface import distribution_surface
from repro.core.hill_climbing import HillClimbingPolicy
from repro.core.metrics import (
    AvgIPC,
    HarmonicMeanWeightedIPC,
    WeightedIPC,
)
from repro.core.offline import OfflineExhaustiveLearner
from repro.core.phase_hill import PhaseHillPolicy
from repro.core.rand_hill import RandHillLearner
from repro.experiments.runner import (
    baseline_factories,
    compare_policies,
    make_processor,
    run_policy,
    select_workloads,
    solo_ipcs,
)
from repro.experiments.sync import synchronized_timeline
from repro.experiments.report import mean, pct_gain, summarize_gains
from repro.pipeline.processor import SMTProcessor
from repro.policies.static_partition import StaticPartitionPolicy
from repro.workloads.mixes import get_workload
from repro.workloads.spec2000 import get_profile

TWO_THREAD_GROUPS = ("ILP2", "MIX2", "MEM2")
FOUR_THREAD_GROUPS = ("ILP4", "MIX4", "MEM4")
ALL_GROUPS = TWO_THREAD_GROUPS + FOUR_THREAD_GROUPS


def _hill_factory(metric=None, scale=None):
    """Hill-climbing factory with overheads scaled to the experiment."""
    def factory():
        kwargs = {}
        if scale is not None:
            kwargs["software_cost"] = scale.hill_software_cost
            kwargs["sample_period"] = scale.hill_sample_period
        return HillClimbingPolicy(metric=metric, **kwargs)
    return factory


def run_offline(workload, scale, metric=None, epochs=None):
    """Run the OFF-LINE learner end to end; returns (learner, RunResult-like
    weighted value helpers)."""
    metric = metric or WeightedIPC()
    singles = solo_ipcs(workload, scale) if metric.needs_single_ipc else None
    proc = make_processor(workload, StaticPartitionPolicy(), scale)
    learner = OfflineExhaustiveLearner(
        proc, scale.epoch_size, metric=metric, single_ipcs=singles,
        stride=scale.stride,
    )
    learner.run(epochs if epochs is not None else scale.epochs)
    return learner


def run_rand_hill(workload, scale, metric=None, epochs=None):
    """Run the RAND-HILL learner end to end."""
    metric = metric or WeightedIPC()
    singles = solo_ipcs(workload, scale) if metric.needs_single_ipc else None
    proc = make_processor(workload, StaticPartitionPolicy(), scale)
    learner = RandHillLearner(
        proc, scale.epoch_size, metric=metric, single_ipcs=singles,
        budget=scale.rand_hill_budget, seed=scale.seed,
    )
    learner.run(epochs if epochs is not None else scale.epochs)
    return learner


def _metric_of(ipcs, singles, metric):
    if metric.needs_single_ipc:
        return metric.value(ipcs, singles)
    return metric.value(ipcs)


def _prefetch(engine, workloads, policy_names):
    """Warm a sweep engine with a driver's whole (workload x policy) grid
    in one parallel pass; the per-workload ``compare_policies`` calls
    below then resolve from the engine's cache."""
    if engine is not None:
        engine.prefetch(workloads, list(policy_names))


# ---------------------------------------------------------------------------
# Figure 2 — IPC surface over the 3-thread distribution space
# ---------------------------------------------------------------------------

def fig2_surface(scale, benchmarks=("mesa", "vortex", "fma3d"), interval=None):
    """The motivating hill: IPC of three co-scheduled threads as the
    resource split varies (paper: a 32K-cycle interval)."""
    profiles = [get_profile(name) for name in benchmarks]
    proc = SMTProcessor(scale.config, profiles, seed=scale.seed,
                        policy=StaticPartitionPolicy())
    proc.run(scale.warmup)
    surface = distribution_surface(
        proc, interval or scale.epoch_size, step=scale.stride
    )
    return surface


# ---------------------------------------------------------------------------
# Figure 4 — OFF-LINE limit study vs ICOUNT / FLUSH / DCRA (2-thread)
# ---------------------------------------------------------------------------

def fig4_offline_limit(scale, groups=TWO_THREAD_GROUPS, workloads=None,
                       engine=None):
    """Weighted IPC of OFF-LINE vs the baselines on the 2-thread workloads.

    Returns {"rows": [(workload, group, {policy: wipc})], "gains": {...}}.
    """
    metric = WeightedIPC()
    selected = workloads or select_workloads(groups, scale)
    _prefetch(engine, selected, baseline_factories())
    rows = []
    values_by_workload = {}
    for workload in selected:
        results = compare_policies(workload, baseline_factories(), scale,
                                   engine=engine)
        values = {
            name: result.weighted_ipc for name, result in results.items()
        }
        learner = run_offline(workload, scale, metric)
        singles = solo_ipcs(workload, scale)
        values["OFF-LINE"] = metric.value(learner.overall_ipcs(), singles)
        rows.append((workload.name, workload.group, values))
        values_by_workload[workload.name] = values
    gains = summarize_gains(values_by_workload, "OFF-LINE",
                            ("ICOUNT", "FLUSH", "DCRA"))
    return {"rows": rows, "gains": gains}


# ---------------------------------------------------------------------------
# Figure 5 — synchronized time-varying performance
# ---------------------------------------------------------------------------

def fig5_sync_timeline(scale, workload_name="art-mcf"):
    """Per-epoch weighted IPC of OFF-LINE/DCRA/FLUSH/ICOUNT from common
    per-epoch checkpoints, plus the epoch-win-rate statistics."""
    workload = get_workload(workload_name)
    timeline = synchronized_timeline(
        workload, baseline_factories(), scale
    )
    win_rates = {
        name: timeline.epoch_win_rate(name)
        for name in ("ICOUNT", "FLUSH", "DCRA")
    }
    return {"timeline": timeline, "offline_win_rates": win_rates}


# ---------------------------------------------------------------------------
# Figures 6 and 7 — hill-width analysis
# ---------------------------------------------------------------------------

def fig6_hill_width_demo(scale, workload_name="art-mcf", epoch_index=None):
    """One epoch's performance-vs-partitioning curve with its hill-widths
    (the Figure 6 illustration, on real data)."""
    workload = get_workload(workload_name)
    learner = run_offline(workload, scale, epochs=max(3, scale.epochs // 4))
    epochs = learner.epochs
    index = epoch_index if epoch_index is not None else len(epochs) // 2
    curve = epochs[index].curve_over_first_share()
    return {
        "workload": workload_name,
        "epoch": index,
        "curve": curve,
        "widths": hill_widths(curve),
        "total": scale.config.rename_int,
    }


def fig7_hill_widths(scale, groups=TWO_THREAD_GROUPS, workloads=None,
                     levels=(0.99, 0.98, 0.97, 0.95, 0.90)):
    """Per-workload hill-widths averaged over epochs (sharp vs dull peaks)."""
    selected = workloads or select_workloads(groups, scale)
    rows = []
    # Hill widths average over epochs; a shorter window already yields
    # stable means, so cap the per-workload OFF-LINE cost.
    width_epochs = min(scale.epochs, 20)
    for workload in selected:
        learner = run_offline(workload, scale, epochs=width_epochs)
        accumulator = {level: [] for level in levels}
        for epoch in learner.epochs:
            widths = hill_widths(epoch.curve_over_first_share(), levels)
            for level, width in widths.items():
                accumulator[level].append(width)
        rows.append((
            workload.name,
            workload.group,
            {level: mean(values) for level, values in accumulator.items()},
        ))
    return {"rows": rows, "total": scale.config.rename_int, "levels": levels}


# ---------------------------------------------------------------------------
# Figure 9 — hill-climbing vs baselines on all 42 workloads
# ---------------------------------------------------------------------------

def fig9_hill_vs_baselines(scale, groups=ALL_GROUPS, workloads=None,
                           engine=None):
    """Weighted IPC of HILL-WIPC vs ICOUNT/FLUSH/DCRA."""
    selected = workloads or select_workloads(groups, scale)
    _prefetch(engine, selected, list(baseline_factories()) + ["HILL"])
    rows = []
    values_by_workload = {}
    group_values = {}
    for workload in selected:
        factories = dict(baseline_factories())
        factories["HILL"] = _hill_factory(WeightedIPC(), scale)
        results = compare_policies(workload, factories, scale, engine=engine)
        values = {name: result.weighted_ipc for name, result in results.items()}
        rows.append((workload.name, workload.group, values))
        values_by_workload[workload.name] = values
        group_values.setdefault(workload.group, []).append(values)
    gains = summarize_gains(values_by_workload, "HILL",
                            ("ICOUNT", "FLUSH", "DCRA"))
    group_gains = {
        group: summarize_gains(
            {str(i): values for i, values in enumerate(entries)},
            "HILL", ("ICOUNT", "FLUSH", "DCRA"),
        )
        for group, entries in group_values.items()
    }
    return {"rows": rows, "gains": gains, "group_gains": group_gains}


# ---------------------------------------------------------------------------
# Figure 10 — metric-matched learning
# ---------------------------------------------------------------------------

def fig10_metric_goals(scale, groups=ALL_GROUPS, workloads=None,
                       engine=None):
    """Hill-climbing with each feedback metric, evaluated under all three
    metrics; the paper's claim is that matched metric > mismatched."""
    eval_metrics = {
        "weighted_ipc": WeightedIPC(),
        "avg_ipc": AvgIPC(),
        "harmonic_weighted_ipc": HarmonicMeanWeightedIPC(),
    }
    learners = {
        "HILL-IPC": _hill_factory(AvgIPC(), scale),
        "HILL-WIPC": _hill_factory(WeightedIPC(), scale),
        "HILL-HWIPC": _hill_factory(HarmonicMeanWeightedIPC(), scale),
    }
    factories = dict(baseline_factories())
    factories.update(learners)
    selected = workloads or select_workloads(groups, scale)
    _prefetch(engine, selected, factories)
    # scores[eval_metric][policy] = list of values across workloads
    scores = {name: {} for name in eval_metrics}
    for workload in selected:
        results = compare_policies(workload, factories, scale, engine=engine)
        for metric_name, metric in eval_metrics.items():
            for policy_name, result in results.items():
                scores[metric_name].setdefault(policy_name, []).append(
                    result.metric_value(metric)
                )
    summary = {
        metric_name: {policy: mean(values) for policy, values in per_policy.items()}
        for metric_name, per_policy in scores.items()
    }
    matched = mean([
        summary["avg_ipc"]["HILL-IPC"] / max(1e-9, _best_mismatched(summary, "avg_ipc", "HILL-IPC")),
        summary["weighted_ipc"]["HILL-WIPC"] / max(1e-9, _best_mismatched(summary, "weighted_ipc", "HILL-WIPC")),
        summary["harmonic_weighted_ipc"]["HILL-HWIPC"] / max(1e-9, _best_mismatched(summary, "harmonic_weighted_ipc", "HILL-HWIPC")),
    ])
    return {"summary": summary, "matched_over_mismatched": matched}


def _best_mismatched(summary, metric_name, matched_policy):
    others = [
        value for policy, value in summary[metric_name].items()
        if policy.startswith("HILL-") and policy != matched_policy
    ]
    return max(others) if others else 0.0


# ---------------------------------------------------------------------------
# Figure 11 — hill-climbing vs the ideal learners
# ---------------------------------------------------------------------------

def fig11_vs_ideal(scale, two_thread=True, four_thread=True, workloads2=None,
                   workloads4=None):
    """2-thread: HILL-WIPC vs OFF-LINE; 4-thread: DCRA vs HILL-WIPC vs
    RAND-HILL; each row carries the workload's SM/LG label."""
    from repro.analysis.characteristics import workload_label

    metric = WeightedIPC()
    rows2 = []
    rows4 = []
    if two_thread:
        for workload in (workloads2 or select_workloads(TWO_THREAD_GROUPS, scale)):
            singles = solo_ipcs(workload, scale)
            hill = run_policy(workload, _hill_factory(WeightedIPC(), scale)(), scale)
            learner = run_offline(workload, scale)
            values = {
                "HILL": hill.weighted_ipc,
                "OFF-LINE": metric.value(learner.overall_ipcs(), singles),
            }
            behavior = classify_behavior(
                learner.epochs, scale.config.rename_int
            ).value if len(learner.epochs) >= 3 else "?"
            rows2.append((workload.name, workload.group, values,
                          workload_label(workload), behavior))
    if four_thread:
        for workload in (workloads4 or select_workloads(FOUR_THREAD_GROUPS, scale)):
            singles = solo_ipcs(workload, scale)
            hill = run_policy(workload, _hill_factory(WeightedIPC(), scale)(), scale)
            dcra_result = compare_policies(
                workload, {"DCRA": baseline_factories()["DCRA"]}, scale
            )["DCRA"]
            learner = run_rand_hill(workload, scale)
            values = {
                "DCRA": dcra_result.weighted_ipc,
                "HILL": hill.weighted_ipc,
                "RAND-HILL": metric.value(learner.overall_ipcs(), singles),
            }
            rows4.append((workload.name, workload.group, values,
                          workload_label(workload)))
    fraction_of_ideal_2t = mean([
        values["HILL"] / max(1e-9, values["OFF-LINE"])
        for __, __, values, __, __ in rows2
    ]) if rows2 else None
    fraction_of_ideal_4t = mean([
        values["HILL"] / max(1e-9, values["RAND-HILL"])
        for __, __, values, __ in rows4
    ]) if rows4 else None
    rand_vs_dcra = mean([
        pct_gain(values["RAND-HILL"], values["DCRA"])
        for __, __, values, __ in rows4
    ]) if rows4 else None
    return {
        "rows2": rows2,
        "rows4": rows4,
        "hill_fraction_of_offline": fraction_of_ideal_2t,
        "hill_fraction_of_rand_hill": fraction_of_ideal_4t,
        "rand_hill_gain_over_dcra": rand_vs_dcra,
    }


# ---------------------------------------------------------------------------
# Figure 12 — time-varying behaviours
# ---------------------------------------------------------------------------

def fig12_behaviors(scale, workloads=None):
    """Classify each workload's time-varying behaviour and return the
    HILL-vs-OFF-LINE series (the Figure 12 panels).

    Per the paper's Section 4.4, OFF-LINE is synchronized *to* the
    continuously learning hill climber: the climber's machine advances
    normally while OFF-LINE's exhaustive sweep replays every epoch from
    its checkpoints, yielding the gray-scale curve, the per-epoch best
    partitioning, and the climber's own trajectory.
    """
    from repro.experiments.sync import policy_synchronized_timeline

    selected = workloads or select_workloads(TWO_THREAD_GROUPS, scale)
    rows = []
    for workload in selected:
        timeline = policy_synchronized_timeline(
            workload, _hill_factory(WeightedIPC(), scale), scale
        )
        behavior = classify_behavior(
            timeline.offline_epochs, scale.config.rename_int
        )
        best_series = [
            epoch.best_shares[0] for epoch in timeline.offline_epochs
        ]
        rows.append({
            "workload": workload.name,
            "behavior": behavior.value,
            "series": timeline.series,
            "offline_best_shares": best_series,
            "hill_shares": timeline.policy_shares,
            "offline_epochs": timeline.offline_epochs,
            "hill_fraction": mean(timeline.series["HILL"]) /
                max(1e-9, mean(timeline.series["OFF-LINE"])),
        })
    return {"rows": rows}


# ---------------------------------------------------------------------------
# Section 5 — phase detection/prediction extension
# ---------------------------------------------------------------------------

def sec5_phase_hill(scale, groups=ALL_GROUPS, workloads=None, engine=None):
    """HILL vs PHASE-HILL; the paper reports a small overall boost
    concentrated in temporally-limited workloads."""
    selected = workloads or select_workloads(groups, scale)
    _prefetch(engine, selected, ["HILL", "PHASE-HILL"])
    rows = []
    for workload in selected:
        factories = {
            "HILL": _hill_factory(WeightedIPC(), scale),
            "PHASE-HILL": lambda: PhaseHillPolicy(
                metric=WeightedIPC(),
                software_cost=scale.hill_software_cost,
                sample_period=scale.hill_sample_period,
            ),
        }
        results = compare_policies(workload, factories, scale, engine=engine)
        rows.append((
            workload.name,
            workload.group,
            {name: result.weighted_ipc for name, result in results.items()},
        ))
    overall = mean([
        pct_gain(values["PHASE-HILL"], values["HILL"])
        for __, __, values in rows
    ])
    return {"rows": rows, "overall_boost_pct": overall}
