"""Result export: serialize experiment outputs to JSON or CSV.

The figure drivers return plain dicts/dataclasses; these helpers flatten
them into records a downstream notebook or plotting script can consume
without importing the simulator.
"""

import csv
import io
import json


def _jsonable(value):
    """Recursively coerce experiment results into JSON-compatible types."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if hasattr(value, "__dataclass_fields__"):
        return {
            name: _jsonable(getattr(value, name))
            for name in value.__dataclass_fields__
        }
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "value"):  # enums
        return value.value
    return repr(value)


def to_json(result, path=None, indent=2):
    """Serialize any experiment result to JSON (string, or file when
    ``path`` is given)."""
    text = json.dumps(_jsonable(result), indent=indent, sort_keys=True)
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text)
            handle.write("\n")
    return text


def rows_to_csv(headers, rows, path=None):
    """Write tabular rows (as produced by the figure drivers) to CSV."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    for row in rows:
        writer.writerow(row)
    text = buffer.getvalue()
    if path is not None:
        with open(path, "w", newline="") as handle:
            handle.write(text)
    return text


def figure_rows_to_records(rows):
    """Flatten the common ``(workload, group, {policy: value})`` row shape
    into one record per (workload, policy)."""
    records = []
    for entry in rows:
        name, group, values = entry[0], entry[1], entry[2]
        for policy, value in values.items():
            records.append({
                "workload": name,
                "group": group,
                "policy": policy,
                "value": value,
            })
    return records
