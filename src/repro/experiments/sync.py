"""Checkpoint-synchronized time-varying comparisons (Figures 5 and 12).

Comparing per-epoch IPCs across policies is only meaningful if every
policy starts each epoch from the same machine state.  Following
Section 3.3, the OFF-LINE learner's per-epoch checkpoints are reused:
each comparison policy replays the epoch from the same checkpoint, then
the reference learner advances the real machine.
"""

from dataclasses import dataclass

from repro.core.controller import EpochController, EpochResult
from repro.core.metrics import WeightedIPC
from repro.core.offline import (
    OfflineEpoch,
    OfflineExhaustiveLearner,
    exhaustive_curve,
)
from repro.pipeline.checkpoint import Checkpoint
from repro.policies.static_partition import StaticPartitionPolicy


@dataclass
class SyncTimeline:
    """Per-epoch metric values, synchronized to common execution points."""

    workload: str
    #: {policy name: [metric value per epoch]}; includes "OFF-LINE".
    series: dict
    #: The OFF-LINE epochs (carrying the full per-epoch curves).
    offline_epochs: list
    #: For policy-referenced timelines: the policy's first-thread share per
    #: epoch (None entries when unpartitioned).
    policy_shares: list = None

    def epoch_win_rate(self, name, against="OFF-LINE"):
        """Fraction of epochs where ``against`` beats ``name`` — the
        paper's "OFF-LINE outperforms X in N% of epochs" statistic."""
        wins = sum(
            1 for mine, theirs in zip(self.series[name], self.series[against])
            if theirs > mine
        )
        return wins / max(1, len(self.series[name]))


def _epoch_metric(proc, epoch_size, metric, single_ipcs):
    before = proc.stats.copy()
    proc.run(epoch_size)
    committed, cycles = proc.stats.delta_since(before)
    ipcs = [count / max(cycles, 1) for count in committed]
    if metric.needs_single_ipc:
        return metric.value(ipcs, single_ipcs)
    return metric.value(ipcs)


def synchronized_timeline(workload, policy_factories, scale, metric=None,
                          single_ipcs=None, epochs=None, learner=None):
    """Run OFF-LINE as the reference and replay each epoch under every
    comparison policy from the shared checkpoint.

    Parameters
    ----------
    workload:
        A :class:`~repro.workloads.mixes.Workload`.
    policy_factories:
        {name: factory} of policies to synchronize against OFF-LINE.
    scale:
        :class:`~repro.experiments.runner.ExperimentScale`.
    metric / single_ipcs:
        Metric for the per-epoch series (default weighted IPC, with solo
        IPCs computed on demand).
    learner:
        Optionally a pre-built learner (e.g. RAND-HILL) used as the
        reference in place of OFF-LINE.
    """
    from repro.experiments.runner import make_processor, solo_ipcs as solo

    metric = metric or WeightedIPC()
    if single_ipcs is None and metric.needs_single_ipc:
        single_ipcs = solo(workload, scale)
    if learner is None:
        proc = make_processor(workload, StaticPartitionPolicy(), scale)
        learner = OfflineExhaustiveLearner(
            proc, scale.epoch_size, metric=metric,
            single_ipcs=single_ipcs, stride=scale.stride,
        )
    epochs = epochs if epochs is not None else scale.epochs
    series = {name: [] for name in policy_factories}
    series["OFF-LINE"] = []
    offline_epochs = []
    for __ in range(epochs):
        checkpoint = Checkpoint(learner.proc)
        for name, factory in policy_factories.items():
            trial = checkpoint.materialize()
            policy = factory()
            trial.policy = policy
            policy.attach(trial)
            series[name].append(
                _epoch_metric(trial, scale.epoch_size, metric, single_ipcs)
            )
        epoch = learner.run_epoch()
        offline_epochs.append(epoch)
        ipcs = epoch.result.ipcs
        if metric.needs_single_ipc:
            series["OFF-LINE"].append(metric.value(ipcs, single_ipcs))
        else:
            series["OFF-LINE"].append(metric.value(ipcs))
    return SyncTimeline(
        workload=workload.name,
        series=series,
        offline_epochs=offline_epochs,
    )


def policy_synchronized_timeline(workload, policy_factory, scale,
                                 metric=None, single_ipcs=None, epochs=None,
                                 policy_name="HILL"):
    """Synchronize OFF-LINE *to a continuously running policy* (the
    Figure 12 methodology: "we synchronize OFF-LINE to HILL-WIPC").

    The policy's machine runs epoch after epoch, learning normally.  At
    every epoch boundary the machine is checkpointed and OFF-LINE's
    exhaustive sweep replays the upcoming epoch from that checkpoint —
    yielding, per epoch, both the policy's actual performance/partition
    and the full performance-vs-partitioning curve around it.

    Returns a :class:`SyncTimeline` whose ``offline_epochs`` carry the
    curves, plus a ``policy_shares`` list (the policy's first-thread share
    per epoch) stored on the timeline as an attribute.
    """
    from repro.experiments.runner import make_processor, solo_ipcs as solo

    metric = metric or WeightedIPC()
    if single_ipcs is None and metric.needs_single_ipc:
        single_ipcs = solo(workload, scale)
    proc = make_processor(workload, policy_factory(), scale)
    controller = EpochController(proc, epoch_size=scale.epoch_size)
    epochs = epochs if epochs is not None else scale.epochs
    series = {policy_name: [], "OFF-LINE": []}
    offline_epochs = []
    policy_shares = []
    for epoch_id in range(epochs):
        checkpoint = Checkpoint(controller.proc)
        curve, best_shares, best_value = exhaustive_curve(
            checkpoint, scale.epoch_size, metric, single_ipcs, scale.stride,
        )
        offline_epochs.append(OfflineEpoch(
            epoch_id=epoch_id,
            curve=curve,
            best_shares=best_shares,
            best_value=best_value,
            result=EpochResult(epoch_id=epoch_id, kind="normal",
                               committed=[0] * proc.num_threads, cycles=1,
                               shares=list(best_shares)),
        ))
        series["OFF-LINE"].append(best_value)
        shares = controller.proc.partitions.shares
        policy_shares.append(shares[0] if shares else None)
        result = controller.run_epoch()
        if metric.needs_single_ipc:
            series[policy_name].append(metric.value(result.ipcs, single_ipcs))
        else:
            series[policy_name].append(metric.value(result.ipcs))
    return SyncTimeline(
        workload=workload.name,
        series=series,
        offline_epochs=offline_epochs,
        policy_shares=policy_shares,
    )
