"""Batched sweep-cell execution: many cells, one process, one lockstep.

This is the pack layer of ``REPRO_CORE=batched`` (``repro sweep
--batch-cells N``).  :mod:`repro.pipeline.batched` knows how to advance
many processors through their run windows in lockstep; this module knows
how to turn a list of :class:`~repro.experiments.parallel.SweepCell`
requests into those processors and back into byte-identical
:class:`~repro.experiments.runner.RunResult` payloads:

* **Shared replay tapes.**  Cells that differ only in policy replay the
  *same* instruction streams.  A :class:`SharedTape` records the specs a
  recorder :class:`~repro.workloads.generator.SyntheticStream` produces,
  any number of :class:`ReplayStream` readers re-materialize
  :class:`~repro.workloads.generator.Instruction` objects from it, and
  the tape is trimmed to the slowest reader's frontier between lockstep
  rounds so memory stays proportional to the pack's divergence, not the
  run length.
* **Epoch-granular lockstep.**  Each round runs every live cell's
  :meth:`~repro.core.controller.EpochController.begin_epoch`, advances
  all their epoch windows through one
  :class:`~repro.pipeline.batched.BatchCore`, then runs every
  :meth:`~repro.core.controller.EpochController.finish_epoch` — the
  same call sequence per cell as a serial run, just interleaved across
  cells.
* **Shared SingleIPC runs.**  Solo (stand-alone IPC) runs go through the
  ordinary :func:`~repro.experiments.runner.solo_ipcs` cache, so a pack
  computes each (benchmark, config, seed) solo once instead of once per
  cell — in a fig4-style grid the dominant share of per-cell cost.

Fallback rules (docs/PERFORMANCE.md): packs carry no mid-run
checkpointing and no fault injection — divergence-risk cells (an
existing checkpoint to resume, a chaos plan, supervision) take the
per-cell resilient path instead, which the sweep engine and service
worker enforce by construction.  Results never depend on pack
composition: the equivalence suite packs all eleven policy families and
compares against serial runs byte for byte.
"""

from repro.core.controller import EpochController
from repro.experiments.parallel import policy_factory
from repro.experiments.runner import RunResult, solo_ipcs
from repro.pipeline.batched import BatchCore
from repro.pipeline.processor import SMTProcessor
from repro.reliability.supervisor import CellBootstrapError
from repro.workloads.generator import Instruction, SyntheticStream
from repro.workloads.mixes import get_workload

__all__ = ["SharedTape", "ReplayStream", "TapeDeck", "pack_cells",
           "run_pack"]


class SharedTape:
    """Append-only instruction-spec record of one synthetic stream.

    One recorder :class:`SyntheticStream` is the single source of truth;
    readers never touch it directly, so however many cells replay the
    tape, the stream's RNG advances exactly once per position and every
    reader sees the identical sequence a private stream would have
    produced.  Only the *static* instruction fields are recorded —
    dynamic pipeline state is (re)initialized by the
    :class:`Instruction` constructor, exactly as for a freshly generated
    instruction.
    """

    def __init__(self, profile, thread_id=0, seed=0, phase_period=None):
        self._recorder = SyntheticStream(profile, thread_id=thread_id,
                                         seed=seed,
                                         phase_period=phase_period)
        self.profile = profile
        self.thread_id = thread_id
        self.base = self._recorder._base
        self.readers = []
        self._specs = []
        self._offset = 0

    def attach(self):
        """A new :class:`ReplayStream` reading this tape from seq 0."""
        reader = ReplayStream(self)
        self.readers.append(reader)
        return reader

    def release(self, reader):
        """Detach a finished reader so it no longer pins the tape."""
        self.readers.remove(reader)

    def spec(self, seq):
        """The static spec tuple at position ``seq``, recording forward
        from the generator as needed."""
        index = seq - self._offset
        if index < 0:
            raise IndexError(
                "tape for %s/t%d trimmed past seq %d"
                % (self.profile.name, self.thread_id, seq))
        specs = self._specs
        append = specs.append
        recorder = self._recorder
        while index >= len(specs):
            instr = recorder.next_instruction()
            append((instr.thread, instr.seq, instr.op, instr.is_fp,
                    instr.srcs, instr.pc, instr.taken, instr.addr))
        return specs[index]

    @property
    def retained(self):
        """Spec count currently held (memory proportional to the pack's
        fastest-to-slowest reader spread, not the run length)."""
        return len(self._specs)

    def trim(self):
        """Drop specs every attached reader has consumed."""
        if not self.readers:
            return
        low = min(reader.seq for reader in self.readers)
        drop = low - self._offset
        if drop > 0:
            del self._specs[:drop]
            self._offset = low


class ReplayStream:
    """Stream interface over a :class:`SharedTape`.

    Duck-types the two things the pipeline needs from a stream:
    ``next_instruction()`` and the ``_base`` address-space offset
    (``SMTProcessor._warm_caches``).  The instructions it returns are
    fresh objects — cells sharing a tape never share mutable state.
    """

    __slots__ = ("tape", "seq", "profile", "thread_id", "_base")

    def __init__(self, tape):
        self.tape = tape
        self.seq = 0
        self.profile = tape.profile
        self.thread_id = tape.thread_id
        self._base = tape.base

    def next_instruction(self):
        seq = self.seq
        spec = self.tape.spec(seq)
        self.seq = seq + 1
        return Instruction(*spec)


class TapeDeck:
    """Registry of shared tapes for one pack, keyed by everything that
    determines a stream's content: (profile name, thread id, seed,
    phase period)."""

    def __init__(self):
        self._tapes = {}

    def stream(self, profile, thread_id, seed, phase_period=None):
        key = (profile.name, thread_id, seed, phase_period)
        tape = self._tapes.get(key)
        if tape is None:
            tape = SharedTape(profile, thread_id=thread_id, seed=seed,
                              phase_period=phase_period)
            self._tapes[key] = tape
        return tape.attach()

    def trim(self):
        for tape in self._tapes.values():
            tape.trim()

    @property
    def retained(self):
        """Total specs held across all tapes (tests assert trimming)."""
        return sum(tape.retained for tape in self._tapes.values())


class _CellState:
    """Per-cell bookkeeping while a pack is in flight."""

    __slots__ = ("cell", "workload", "seeded", "proc", "controller",
                 "streams", "remaining", "pending")

    def __init__(self, cell, workload, seeded, proc, controller, streams,
                 remaining):
        self.cell = cell
        self.workload = workload
        self.seeded = seeded
        self.proc = proc
        self.controller = controller
        self.streams = streams
        self.remaining = remaining
        self.pending = None


def pack_cells(cells, batch_cells):
    """Partition cells into packs of at most ``batch_cells``.

    Cells are stably grouped by (workload, seed) first so cells that can
    share replay tapes land in the same pack; within a group, request
    order is preserved.  Pack composition never affects results — only
    how much tape sharing a pack enjoys.
    """
    if batch_cells < 1:
        raise ValueError("batch_cells must be >= 1")
    cells = list(cells)
    order = sorted(range(len(cells)),
                   key=lambda i: (cells[i].workload, cells[i].seed, i))
    return [[cells[i] for i in order[start:start + batch_cells]]
            for start in range(0, len(order), batch_cells)]


def run_pack(cells, scale, budget=8192):
    """Simulate a pack of sweep cells in lockstep; returns one
    :class:`RunResult` per cell, in the pack's order, byte-identical to
    what :func:`~repro.experiments.runner.run_policy` produces serially.

    The window work itself always runs through :class:`BatchCore` (that
    *is* the batched lane — ``REPRO_CORE`` does not change what this
    function computes); the shared SingleIPC runs at the end go through
    ``proc.run`` under whatever core is selected, all of which are
    byte-identical.  Construction failures (unknown workload/policy)
    raise :class:`CellBootstrapError` like the per-cell worker.
    """
    cells = list(cells)
    if not cells:
        return []
    deck = TapeDeck()
    states = []
    for cell in cells:
        try:
            workload = get_workload(cell.workload)
            policy = policy_factory(cell.policy, scale)()
        except CellBootstrapError:
            raise
        except Exception as exc:
            raise CellBootstrapError(
                "cannot construct cell %s: %s: %s"
                % (cell.label, type(exc).__name__, exc)) from exc
        seeded = (scale if scale.seed == cell.seed
                  else scale.with_overrides(seed=cell.seed))
        streams = [deck.stream(profile, tid, seeded.seed)
                   for tid, profile in enumerate(workload.profiles)]
        proc = SMTProcessor(seeded.config, workload.profiles,
                            seed=seeded.seed, policy=policy,
                            streams=streams)
        remaining = cell.epochs if cell.epochs is not None \
            else seeded.epochs
        states.append(_CellState(cell, workload, seeded, proc, None,
                                 streams, remaining))
    core = BatchCore([state.proc for state in states], budget=budget)
    if scale.warmup:
        core.advance([(index, state.proc.cycle + state.seeded.warmup)
                      for index, state in enumerate(states)],
                     on_round=deck.trim)
    for state in states:
        # Controllers capture their whole-run accounting baseline at
        # construction, so they must be built *after* warmup — exactly
        # where run_policy builds them (make_processor warms first).
        state.controller = EpochController(state.proc,
                                           epoch_size=state.seeded.epoch_size)
    active = [index for index, state in enumerate(states)
              if state.remaining > 0]
    while active:
        windows = []
        for index in active:
            state = states[index]
            state.pending = state.controller.begin_epoch()
            windows.append((index, state.proc.cycle
                            + state.controller.epoch_size))
        core.advance(windows, on_round=deck.trim)
        still = []
        for index in active:
            state = states[index]
            state.controller.finish_epoch(*state.pending)
            state.pending = None
            state.remaining -= 1
            if state.remaining > 0:
                still.append(index)
            else:
                for reader in state.streams:
                    reader.tape.release(reader)
        deck.trim()
        active = still
    results = []
    for state in states:
        committed, cycles = state.controller.totals()
        results.append(RunResult(
            workload=state.workload.name,
            policy=state.proc.policy.name,
            ipcs=state.controller.overall_ipcs(),
            committed=committed,
            cycles=cycles,
            single_ipcs=solo_ipcs(state.workload, state.seeded),
            epoch_history=state.controller.history,
        ))
    return results


def _execute_pack(cells, scale):
    """Pool-friendly pack worker: ``[(RunResult, resumed), ...]`` with
    the same per-cell payload shape as
    :func:`~repro.experiments.parallel._execute_cell` (packed cells are
    never resumed — the fallback rules route resumable cells to the
    per-cell path)."""
    return [(result, False) for result in run_pack(cells, scale)]
