"""Batched sweep-cell execution: many cells, one process, one lockstep.

This is the pack layer of ``REPRO_CORE=batched`` (``repro sweep
--batch-cells N``).  :mod:`repro.pipeline.batched` knows how to advance
many processors through their run windows in lockstep; this module knows
how to turn a list of :class:`~repro.experiments.parallel.SweepCell`
requests into those processors and back into byte-identical
:class:`~repro.experiments.runner.RunResult` payloads:

* **Shared replay tapes.**  Cells that differ only in policy replay the
  *same* instruction streams.  A :class:`SharedTape` records the specs a
  recorder :class:`~repro.workloads.generator.SyntheticStream` produces,
  any number of :class:`ReplayStream` readers re-materialize
  :class:`~repro.workloads.generator.Instruction` objects from it, and
  the tape is trimmed to the slowest reader's frontier between lockstep
  rounds so memory stays proportional to the pack's divergence, not the
  run length.
* **Epoch-granular lockstep.**  Each round runs every live cell's
  :meth:`~repro.core.controller.EpochController.begin_epoch`, advances
  all their epoch windows through one
  :class:`~repro.pipeline.batched.BatchCore`, then runs every
  :meth:`~repro.core.controller.EpochController.finish_epoch` — the
  same call sequence per cell as a serial run, just interleaved across
  cells.
* **Shared SingleIPC runs.**  Solo (stand-alone IPC) runs go through the
  ordinary :func:`~repro.experiments.runner.solo_ipcs` cache, so a pack
  computes each (benchmark, config, seed) solo once instead of once per
  cell — in a fig4-style grid the dominant share of per-cell cost.

Supervision hooks (docs/RELIABILITY.md "Batched-lane supervision"):
:func:`run_pack` optionally checkpoints every cell per epoch through
the PR 1 :class:`~repro.reliability.guard.RunStore` (``run_dirs``),
touches per-pack and per-cell heartbeat files (``heartbeat`` /
``cell_heartbeats``), drives a chaos ``fault_plan``'s hooks at the same
points as the per-cell worker, and — under ``audit=True`` or
``REPRO_AUDIT=mirror`` — cross-checks the BatchCore SoA mirrors against
scalar processor state at every epoch boundary, evicting divergent
cells (their result slot is ``None``; the pack supervisor finishes them
on the scalar lane from their last good checkpoint).  Cells with an
existing checkpoint to *resume* still take the per-cell resilient path:
packs always start cells from epoch 0.  Results never depend on pack
composition: the equivalence suite packs all eleven policy families and
compares against serial runs byte for byte.
"""

from repro.core.controller import EpochController
from repro.experiments.parallel import policy_factory
from repro.experiments.runner import RunResult, solo_ipcs
from repro.pipeline.batched import BatchCore, audit_mirrors
from repro.pipeline.processor import SMTProcessor
from repro.reliability.packsup import touch_heartbeat, validate_batch_cells
from repro.reliability.supervisor import CellBootstrapError
from repro.workloads.generator import Instruction, SyntheticStream
from repro.workloads.mixes import get_workload

__all__ = ["SharedTape", "ReplayStream", "TapeDeck", "pack_cells",
           "run_pack"]


class SharedTape:
    """Append-only instruction-spec record of one synthetic stream.

    One recorder :class:`SyntheticStream` is the single source of truth;
    readers never touch it directly, so however many cells replay the
    tape, the stream's RNG advances exactly once per position and every
    reader sees the identical sequence a private stream would have
    produced.  Only the *static* instruction fields are recorded —
    dynamic pipeline state is (re)initialized by the
    :class:`Instruction` constructor, exactly as for a freshly generated
    instruction.
    """

    def __init__(self, profile, thread_id=0, seed=0, phase_period=None):
        self._recorder = SyntheticStream(profile, thread_id=thread_id,
                                         seed=seed,
                                         phase_period=phase_period)
        self.profile = profile
        self.thread_id = thread_id
        self.base = self._recorder._base
        self.readers = []
        self._specs = []
        self._offset = 0

    def attach(self):
        """A new :class:`ReplayStream` reading this tape from seq 0."""
        reader = ReplayStream(self)
        self.readers.append(reader)
        return reader

    def release(self, reader):
        """Detach a finished reader so it no longer pins the tape."""
        self.readers.remove(reader)

    def spec(self, seq):
        """The static spec tuple at position ``seq``, recording forward
        from the generator as needed."""
        index = seq - self._offset
        if index < 0:
            raise IndexError(
                "tape for %s/t%d trimmed past seq %d"
                % (self.profile.name, self.thread_id, seq))
        specs = self._specs
        append = specs.append
        recorder = self._recorder
        while index >= len(specs):
            instr = recorder.next_instruction()
            append((instr.thread, instr.seq, instr.op, instr.is_fp,
                    instr.srcs, instr.pc, instr.taken, instr.addr))
        return specs[index]

    @property
    def retained(self):
        """Spec count currently held (memory proportional to the pack's
        fastest-to-slowest reader spread, not the run length)."""
        return len(self._specs)

    def trim(self):
        """Drop specs every attached reader has consumed."""
        if not self.readers:
            return
        low = min(reader.seq for reader in self.readers)
        drop = low - self._offset
        if drop > 0:
            del self._specs[:drop]
            self._offset = low


class ReplayStream:
    """Stream interface over a :class:`SharedTape`.

    Duck-types the two things the pipeline needs from a stream:
    ``next_instruction()`` and the ``_base`` address-space offset
    (``SMTProcessor._warm_caches``).  The instructions it returns are
    fresh objects — cells sharing a tape never share mutable state.
    """

    __slots__ = ("tape", "seq", "profile", "thread_id", "_base")

    def __init__(self, tape):
        self.tape = tape
        self.seq = 0
        self.profile = tape.profile
        self.thread_id = tape.thread_id
        self._base = tape.base

    def next_instruction(self):
        seq = self.seq
        spec = self.tape.spec(seq)
        self.seq = seq + 1
        return Instruction(*spec)


class TapeDeck:
    """Registry of shared tapes for one pack, keyed by everything that
    determines a stream's content: (profile name, thread id, seed,
    phase period)."""

    def __init__(self):
        self._tapes = {}

    def stream(self, profile, thread_id, seed, phase_period=None):
        key = (profile.name, thread_id, seed, phase_period)
        tape = self._tapes.get(key)
        if tape is None:
            tape = SharedTape(profile, thread_id=thread_id, seed=seed,
                              phase_period=phase_period)
            self._tapes[key] = tape
        return tape.attach()

    def trim(self):
        for tape in self._tapes.values():
            tape.trim()

    @property
    def retained(self):
        """Total specs held across all tapes (tests assert trimming)."""
        return sum(tape.retained for tape in self._tapes.values())


class _CellState:
    """Per-cell bookkeeping while a pack is in flight."""

    __slots__ = ("cell", "workload", "seeded", "proc", "controller",
                 "streams", "remaining", "pending", "store", "heartbeat",
                 "evicted")

    def __init__(self, cell, workload, seeded, proc, controller, streams,
                 remaining):
        self.cell = cell
        self.workload = workload
        self.seeded = seeded
        self.proc = proc
        self.controller = controller
        self.streams = streams
        self.remaining = remaining
        self.pending = None
        self.store = None
        self.heartbeat = None
        self.evicted = None

    def release_streams(self):
        for reader in self.streams:
            reader.tape.release(reader)


def pack_cells(cells, batch_cells):
    """Partition cells into packs of at most ``batch_cells``.

    Cells are stably grouped by (workload, seed) first so cells that can
    share replay tapes land in the same pack; within a group, request
    order is preserved.  Pack composition never affects results — only
    how much tape sharing a pack enjoys.
    """
    validate_batch_cells(batch_cells)
    cells = list(cells)
    order = sorted(range(len(cells)),
                   key=lambda i: (cells[i].workload, cells[i].seed, i))
    return [[cells[i] for i in order[start:start + batch_cells]]
            for start in range(0, len(order), batch_cells)]


def run_pack(cells, scale, budget=8192, attempt=1, fault_plan=None,
             audit=False, run_dirs=None, heartbeat=None,
             cell_heartbeats=None):
    """Simulate a pack of sweep cells in lockstep; returns one
    :class:`RunResult` per cell, in the pack's order, byte-identical to
    what :func:`~repro.experiments.runner.run_policy` produces serially.

    The window work itself always runs through :class:`BatchCore` (that
    *is* the batched lane — ``REPRO_CORE`` does not change what this
    function computes); the shared SingleIPC runs at the end go through
    ``proc.run`` under whatever core is selected, all of which are
    byte-identical.  Construction failures (unknown workload/policy)
    raise :class:`CellBootstrapError` like the per-cell worker.

    Supervised packs pass the 1-based ``attempt``, an optional chaos
    ``fault_plan`` (hooked at the same points as the per-cell worker:
    ``before_cell`` before construction, ``on_epoch`` after each
    epoch's checkpoint/manifest writes, plus the pack-only
    ``on_pack_refresh`` between mirror refresh and audit), per-cell
    checkpoint directories (``run_dirs``, aligned with ``cells``,
    ``None`` entries disable checkpointing for that cell), a per-pack
    ``heartbeat`` file touched every scheduling round, and per-cell
    ``cell_heartbeats`` touched once per completed epoch.  With
    ``audit=True`` the SoA mirrors are re-checked against scalar
    processor state at every epoch boundary
    (:func:`~repro.pipeline.batched.audit_mirrors`); a divergent cell
    is *evicted* — its slot in the returned list is ``None``, its
    epoch-in-flight is never finished, and its last checkpoint (the
    previous epoch) stays valid for the scalar lane to resume from.
    """
    cells = list(cells)
    if not cells:
        return []
    if fault_plan is not None:
        # Outside the bootstrap-wrapping try on purpose: an injected
        # poison is a retryable worker crash, not a deterministic
        # construction failure (mirrors _execute_cell).
        for cell in cells:
            fault_plan.before_cell(cell, attempt)
    on_pack_refresh = getattr(fault_plan, "on_pack_refresh", None)
    deck = TapeDeck()
    states = []
    for cell in cells:
        try:
            workload = get_workload(cell.workload)
            policy = policy_factory(cell.policy, scale)()
        except CellBootstrapError:
            raise
        except Exception as exc:
            raise CellBootstrapError(
                "cannot construct cell %s: %s: %s"
                % (cell.label, type(exc).__name__, exc)) from exc
        seeded = (scale if scale.seed == cell.seed
                  else scale.with_overrides(seed=cell.seed))
        streams = [deck.stream(profile, tid, seeded.seed)
                   for tid, profile in enumerate(workload.profiles)]
        proc = SMTProcessor(seeded.config, workload.profiles,
                            seed=seeded.seed, policy=policy,
                            streams=streams)
        remaining = cell.epochs if cell.epochs is not None \
            else seeded.epochs
        states.append(_CellState(cell, workload, seeded, proc, None,
                                 streams, remaining))
    if cell_heartbeats is not None:
        for state, path in zip(states, cell_heartbeats):
            state.heartbeat = path
            if path is not None:
                touch_heartbeat(path)

    def tick():
        deck.trim()
        if heartbeat is not None:
            touch_heartbeat(heartbeat)

    tick()
    core = BatchCore([state.proc for state in states], budget=budget)
    if scale.warmup:
        core.advance([(index, state.proc.cycle + state.seeded.warmup)
                      for index, state in enumerate(states)],
                     on_round=tick)
    for state in states:
        # Controllers capture their whole-run accounting baseline at
        # construction, so they must be built *after* warmup — exactly
        # where run_policy builds them (make_processor warms first).
        state.controller = EpochController(state.proc,
                                           epoch_size=state.seeded.epoch_size)
    snapshot = None
    if run_dirs is not None:
        # Same ordering as run_policy_resilient: an initial checkpoint
        # at zero completed epochs, then one per completed epoch, so a
        # pack killed at any point leaves every cell resumable.
        from repro.reliability.guard import RunStore, _snapshot_controller

        snapshot = _snapshot_controller
        for state, run_dir in zip(states, run_dirs):
            if run_dir is None:
                continue
            state.store = RunStore(run_dir)
            state.store.save_checkpoint(
                state.controller.epoch_id, snapshot(state.controller))
    active = [index for index, state in enumerate(states)
              if state.remaining > 0]
    while active:
        windows = []
        for index in active:
            state = states[index]
            state.pending = state.controller.begin_epoch()
            windows.append((index, state.proc.cycle
                            + state.controller.epoch_size))
        core.advance(windows, on_round=tick)
        if on_pack_refresh is not None or audit:
            # Mirrors are legitimately stale after the final stepping
            # round (they are exact at *screen* time); re-run the
            # sanctioned refresh before injecting corruption or
            # auditing, so a clean run can never "diverge".
            core._refresh(active)
            if on_pack_refresh is not None:
                epoch = states[active[0]].controller.epoch_id + 1
                for index in active:
                    on_pack_refresh(states[index].cell, attempt, epoch,
                                    core, index)
            if audit:
                diverged = audit_mirrors(core, active)
                if diverged:
                    for index in sorted(diverged):
                        state = states[index]
                        state.evicted = diverged[index]
                        state.pending = None
                        state.release_streams()
                    active = [index for index in active
                              if index not in diverged]
        still = []
        for index in active:
            state = states[index]
            result = state.controller.finish_epoch(*state.pending)
            state.pending = None
            state.remaining -= 1
            if state.store is not None:
                state.store.save_checkpoint(
                    state.controller.epoch_id,
                    snapshot(state.controller))
                state.store.append_manifest({
                    "epoch_id": result.epoch_id,
                    "kind": result.kind,
                    "committed": list(result.committed),
                    "cycles": result.cycles,
                    "ipcs": list(result.ipcs),
                    "shares": result.shares,
                    "solo_thread": result.solo_thread,
                })
            if state.heartbeat is not None:
                touch_heartbeat(state.heartbeat)
            if fault_plan is not None:
                fault_plan.on_epoch(state.cell, attempt,
                                    state.controller.epoch_id)
            if state.remaining > 0:
                still.append(index)
            else:
                state.release_streams()
        deck.trim()
        active = still
    results = []
    for state in states:
        if state.evicted is not None:
            results.append(None)
            continue
        committed, cycles = state.controller.totals()
        result = RunResult(
            workload=state.workload.name,
            policy=state.proc.policy.name,
            ipcs=state.controller.overall_ipcs(),
            committed=committed,
            cycles=cycles,
            single_ipcs=solo_ipcs(state.workload, state.seeded),
            epoch_history=state.controller.history,
        )
        if state.store is not None:
            state.store.save_result(result)
        if fault_plan is not None:
            result = fault_plan.transform_result(state.cell, attempt, result)
        results.append(result)
    return results


def _execute_pack(cells, scale, audit=False):
    """Pool-friendly pack worker: ``[(RunResult, resumed), ...]`` with
    the same per-cell payload shape as
    :func:`~repro.experiments.parallel._execute_cell` (packed cells are
    never resumed — packs always start cells from epoch 0, so resumable
    cells take the per-cell path).  Audit-evicted slots stay ``None``.
    """
    return [None if result is None else (result, False)
            for result in run_pack(cells, scale, audit=audit)]
