"""Simulator throughput profiling: KIPS, skip ratios, stage accounting.

This is the wall-clock half of the core observability story.  The
in-simulator half — :class:`~repro.pipeline.profile.CoreProfile` — counts
cycles and skips without ever reading a clock, so it stays deterministic;
this harness wraps a run with ``time.perf_counter`` and turns the counters
into throughput numbers (KIPS = thousands of committed instructions per
wall second).

Two entry points:

* :func:`profile_run` — one (workload, policy, core) run, returning a flat
  JSON-ready record.  Construction and cache warming are *excluded* from
  the wall: they are identical for both cores and would dilute the
  fast/reference ratio that the record exists to expose.
* :func:`bench_document` — the ``BENCH_core.json`` builder: MEM-heavy
  Figure 4 cells under both cores at the paper's memory latency and at a
  far-memory stress latency, with per-cell speedups.  The stress latency
  exists because skip headroom scales with memory latency: at the paper's
  300 cycles the machine is rarely fully quiescent for long, while at
  2000 cycles (CXL/disaggregated-memory territory) MEM-bound workloads
  spend most of their cycles waiting and the fast core's advantage is
  large.  Reporting both keeps the headline number honest.

Wall-clock reads never feed back into simulation: a profiled run's stats
are byte-identical to an unprofiled one's (see
``tests/test_core_equivalence.py``).
"""

import time
from dataclasses import replace

from repro.core.controller import EpochController
from repro.experiments.runner import ExperimentScale, make_processor
from repro.pipeline.fastpath import CORE_MODES, forced_core
from repro.pipeline.profile import CoreProfile

__all__ = ["profile_run", "bench_document", "BENCH_CELLS",
           "STRESS_MEM_LATENCY"]

#: (workload, policy) cells benchmarked by :func:`bench_document`: the
#: MEM-heaviest Figure 4 cells (MEM2 group x the Figure 4 policy set),
#: where quiescence skipping has the most to say.
BENCH_CELLS = (
    ("art-mcf", "ICOUNT"),
    ("art-mcf", "FLUSH"),
    ("art-mcf", "DCRA"),
    ("art-twolf", "ICOUNT"),
    ("art-twolf", "FLUSH"),
    ("art-twolf", "DCRA"),
)

#: Far-memory stress latency (cycles) for the second bench column.  The
#: paper's machine uses 300; 2000 models a disaggregated/CXL-class memory
#: where MEM-bound threads are quiescent for most of their cycles.
STRESS_MEM_LATENCY = 2000


def profile_run(workload, policy, scale, core="fast", epochs=None):
    """Profile one (workload, policy) run under the given core.

    Runs warmup plus ``epochs`` measured epochs (defaults to the scale's)
    with a :class:`~repro.pipeline.profile.CoreProfile` attached, timing
    the run loop only — processor construction and cache warming cost the
    same under either core and are excluded so the fast/reference ratio
    reflects the loops being compared.

    Returns a flat dict: identity (workload/policy/core), work done
    (cycles/committed/ipc), throughput (wall_s/kips) and the profile
    counters (executed/skipped cycles, skip events, skip ratio, per-stage
    active-cycle counts).
    """
    if core not in CORE_MODES:
        raise ValueError("core must be one of %s, got %r"
                         % ("/".join(CORE_MODES), core))
    proc = make_processor(workload, policy, scale, warm=False)
    proc.profile = profile = CoreProfile()
    controller = EpochController(proc, epoch_size=scale.epoch_size)
    with forced_core(core):
        start = time.perf_counter()  # repro: allow-nondeterminism[ND101] (throughput measurement, not results)
        if scale.warmup:
            proc.run(scale.warmup)
        controller.run(scale.epochs if epochs is None else epochs)
        wall_s = time.perf_counter() - start  # repro: allow-nondeterminism[ND101] (throughput measurement, not results)
    committed = proc.stats.total_committed()
    cycles = proc.stats.cycles
    record = {
        "workload": workload.name,
        "policy": policy.name,
        "core": core,
        "cycles": cycles,
        "committed": committed,
        "ipc": committed / max(cycles, 1),
        "wall_s": wall_s,
        "kips": committed / 1000.0 / wall_s if wall_s > 0 else 0.0,
    }
    record.update(profile.to_dict())
    return record


def _bench_scale(base, mem_latency, epochs, warmup):
    """The bench scale: paper config with one latency knob turned."""
    return base.with_overrides(
        epochs=epochs, warmup=warmup,
        config=replace(base.config, mem_latency=mem_latency))


def bench_document(scale=None, epochs=2, warmup=10000, cells=BENCH_CELLS,
                   mem_latencies=None, progress=None):
    """Build the ``BENCH_core.json`` document.

    Every cell in ``cells`` runs under both cores at each memory latency
    (default: the base config's own latency plus the far-memory stress
    latency), on the paper machine config (``ExperimentScale.full()``)
    trimmed to ``epochs`` epochs after ``warmup`` cycles.  ``progress``,
    when given, is called with a one-line string before each run.
    """
    from repro.experiments.parallel import policy_factory
    from repro.workloads.mixes import get_workload

    base = ExperimentScale.full() if scale is None else scale
    if mem_latencies is None:
        mem_latencies = (base.config.mem_latency, STRESS_MEM_LATENCY)
    results = []
    for mem_latency in mem_latencies:
        cell_scale = _bench_scale(base, mem_latency, epochs, warmup)
        for workload_name, policy_name in cells:
            workload = get_workload(workload_name)
            cell = {"workload": workload_name, "policy": policy_name,
                    "mem_latency": mem_latency}
            for core in CORE_MODES:
                if progress is not None:
                    progress("%s / %s @ mem=%d [%s]"
                             % (workload_name, policy_name, mem_latency,
                                core))
                policy = policy_factory(policy_name, cell_scale)()
                record = profile_run(workload, policy, cell_scale,
                                     core=core)
                cell[core] = record
            fast_wall = cell["fast"]["wall_s"]
            cell["speedup"] = (cell["reference"]["wall_s"] / fast_wall
                               if fast_wall > 0 else 0.0)
            results.append(cell)
    return {
        "schema": "repro-bench-core/v1",
        "config": "paper",
        "epoch_size": base.epoch_size,
        "epochs": epochs,
        "warmup": warmup,
        "mem_latencies": list(mem_latencies),
        "cells": results,
    }
