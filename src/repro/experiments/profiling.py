"""Simulator throughput profiling: KIPS, skip ratios, stage accounting.

This is the wall-clock half of the core observability story.  The
in-simulator half — :class:`~repro.pipeline.profile.CoreProfile` — counts
cycles and skips without ever reading a clock, so it stays deterministic;
this harness wraps a run with ``time.perf_counter`` and turns the counters
into throughput numbers (KIPS = thousands of committed instructions per
wall second).

Two entry points:

* :func:`profile_run` — one (workload, policy, core) run, returning a flat
  JSON-ready record.  Construction and cache warming are *excluded* from
  the wall: they are identical for both cores and would dilute the
  fast/reference ratio that the record exists to expose.
* :func:`bench_document` — the ``BENCH_core.json`` builder: MEM-heavy
  Figure 4 cells under the fast and reference cores at the paper's
  memory latency and at a far-memory stress latency, with per-cell
  speedups.  The stress latency exists because skip headroom scales with
  memory latency: at the paper's 300 cycles the machine is rarely fully
  quiescent for long, while at 2000 cycles (CXL/disaggregated-memory
  territory) MEM-bound workloads spend most of their cycles waiting and
  the fast core's advantage is large.  Reporting both keeps the headline
  number honest.
* :func:`bench_grid` — the batched lane's benchmark (the ``"grid"``
  section of BENCH_core.json): a fig4-style sweep grid timed end to end
  under three lanes — per-cell hermetic fast (each cell re-deriving its
  SingleIPC runs, the wide-fanout/service cost model), per-cell serial
  fast sharing the in-process SingleIPC cache (the honesty row: how much
  of the batched win is just solo sharing), and one lockstep batched
  pack.  The batched lane is *not* timed per cell by
  :func:`bench_document` — a batch of one is the fast core by
  construction, so a per-cell row would only restate the fast column.

Wall-clock reads never feed back into simulation: a profiled run's stats
are byte-identical to an unprofiled one's (see
``tests/test_core_equivalence.py``), and :func:`bench_grid` asserts all
three lanes returned byte-identical results before reporting any
throughput.
"""

import json
import time
from dataclasses import replace

from repro.core.controller import EpochController
from repro.experiments.runner import ExperimentScale, make_processor
from repro.pipeline.fastpath import CORE_MODES, forced_core
from repro.pipeline.profile import CoreProfile

__all__ = ["profile_run", "bench_document", "bench_grid", "BENCH_CELLS",
           "GRID_GROUPS", "GRID_POLICIES", "STRESS_MEM_LATENCY"]

#: (workload, policy) cells benchmarked by :func:`bench_document`: the
#: MEM-heaviest Figure 4 cells (MEM2 group x the Figure 4 policy set),
#: where quiescence skipping has the most to say.
BENCH_CELLS = (
    ("art-mcf", "ICOUNT"),
    ("art-mcf", "FLUSH"),
    ("art-mcf", "DCRA"),
    ("art-twolf", "ICOUNT"),
    ("art-twolf", "FLUSH"),
    ("art-twolf", "DCRA"),
)

#: Far-memory stress latency (cycles) for the second bench column.  The
#: paper's machine uses 300; 2000 models a disaggregated/CXL-class memory
#: where MEM-bound threads are quiescent for most of their cycles.
STRESS_MEM_LATENCY = 2000

#: Default fig4-style grid for :func:`bench_grid`: one ILP-, one mixed-
#: and one MEM-bound Table 3 group (two workloads each) across the
#: sweep-default policy set — 24 cells, wide enough that tape/solo
#: sharing shows up and small enough to bench in minutes.  The hermetic
#: lane pays one SingleIPC derivation per *cell* while a pack pays one
#: per *workload*, so the sharing ratio scales with the policy count —
#: benching the default four-policy sweep grid, not a trimmed one,
#: keeps the reported speedup representative of real sweeps.
GRID_GROUPS = ("ILP2", "MIX2", "MEM2")
GRID_POLICIES = ("ICOUNT", "FLUSH", "DCRA", "HILL")


def profile_run(workload, policy, scale, core="fast", epochs=None):
    """Profile one (workload, policy) run under the given core.

    Runs warmup plus ``epochs`` measured epochs (defaults to the scale's)
    with a :class:`~repro.pipeline.profile.CoreProfile` attached, timing
    the run loop only — processor construction and cache warming cost the
    same under either core and are excluded so the fast/reference ratio
    reflects the loops being compared.

    Returns a flat dict: identity (workload/policy/core), work done
    (cycles/committed/ipc), throughput (wall_s/kips) and the profile
    counters (executed/skipped cycles, skip events, skip ratio, per-stage
    active-cycle counts).
    """
    if core not in CORE_MODES:
        raise ValueError("core must be one of %s, got %r"
                         % ("/".join(CORE_MODES), core))
    proc = make_processor(workload, policy, scale, warm=False)
    proc.profile = profile = CoreProfile()
    controller = EpochController(proc, epoch_size=scale.epoch_size)
    with forced_core(core):
        start = time.perf_counter()  # repro: allow-nondeterminism[ND101] (throughput measurement, not results)
        if scale.warmup:
            proc.run(scale.warmup)
        controller.run(scale.epochs if epochs is None else epochs)
        wall_s = time.perf_counter() - start  # repro: allow-nondeterminism[ND101] (throughput measurement, not results)
    committed = proc.stats.total_committed()
    cycles = proc.stats.cycles
    record = {
        "workload": workload.name,
        "policy": policy.name,
        "core": core,
        "cycles": cycles,
        "committed": committed,
        "ipc": committed / max(cycles, 1),
        "wall_s": wall_s,
        "kips": committed / 1000.0 / wall_s if wall_s > 0 else 0.0,
    }
    record.update(profile.to_dict())
    return record


def _bench_scale(base, mem_latency, epochs, warmup):
    """The bench scale: paper config with one latency knob turned."""
    return base.with_overrides(
        epochs=epochs, warmup=warmup,
        config=replace(base.config, mem_latency=mem_latency))


def bench_document(scale=None, epochs=2, warmup=10000, cells=BENCH_CELLS,
                   mem_latencies=None, progress=None, grid=True):
    """Build the ``BENCH_core.json`` document.

    Every cell in ``cells`` runs under the fast and reference cores at
    each memory latency (default: the base config's own latency plus the
    far-memory stress latency), on the paper machine config
    (``ExperimentScale.full()``) trimmed to ``epochs`` epochs after
    ``warmup`` cycles.  With ``grid`` true (the default) the document
    also carries a ``"grid"`` section from :func:`bench_grid` — the
    batched lane's throughput story.  ``progress``, when given, is
    called with a one-line string before each run.
    """
    from repro.experiments.parallel import policy_factory
    from repro.workloads.mixes import get_workload

    base = ExperimentScale.full() if scale is None else scale
    if mem_latencies is None:
        mem_latencies = (base.config.mem_latency, STRESS_MEM_LATENCY)
    results = []
    for mem_latency in mem_latencies:
        cell_scale = _bench_scale(base, mem_latency, epochs, warmup)
        for workload_name, policy_name in cells:
            workload = get_workload(workload_name)
            cell = {"workload": workload_name, "policy": policy_name,
                    "mem_latency": mem_latency}
            # Per-cell rows time fast vs reference only: a batch of one
            # IS the fast core, so a "batched" row here would restate
            # the fast column — the batched lane is timed on a grid by
            # :func:`bench_grid` instead.
            for core in ("fast", "reference"):
                if progress is not None:
                    progress("%s / %s @ mem=%d [%s]"
                             % (workload_name, policy_name, mem_latency,
                                core))
                policy = policy_factory(policy_name, cell_scale)()
                record = profile_run(workload, policy, cell_scale,
                                     core=core)
                cell[core] = record
            fast_wall = cell["fast"]["wall_s"]
            cell["speedup"] = (cell["reference"]["wall_s"] / fast_wall
                               if fast_wall > 0 else 0.0)
            results.append(cell)
    return {
        "schema": "repro-bench-core/v2",
        "config": "paper",
        "epoch_size": base.epoch_size,
        "epochs": epochs,
        "warmup": warmup,
        "mem_latencies": list(mem_latencies),
        "cells": results,
        "grid": (bench_grid(scale=base, epochs=epochs, warmup=warmup,
                            progress=progress)
                 if grid else None),
    }


def bench_grid(scale=None, epochs=2, warmup=10000, mem_latency=None,
               groups=GRID_GROUPS, policies=GRID_POLICIES,
               workloads_per_group=2, seeds=(0,), batch_cells=None,
               budget=8192, progress=None):
    """Time one fig4-style sweep grid under the three execution lanes.

    The lanes (same grid, identical simulated work, byte-identical
    results — asserted before any throughput is reported):

    ``fast``
        Per-cell hermetic runs: the SingleIPC cache is cleared before
        every cell, so each cell pays for its own solo runs.  This is
        the cost model of wide process fan-out and of service workers,
        where cells land in fresh processes.
    ``fast-serial``
        Per-cell runs sharing one in-process SingleIPC cache — the
        honesty row separating "the batched core is faster" from "the
        pack shares solo runs".
    ``batched``
        All cells in lockstep packs through
        :func:`repro.experiments.batchrun.run_pack` (``batch_cells``
        per pack; default: one pack holding the whole grid), sharing
        replay tapes and solo runs.

    Returns a JSON-ready dict: the grid identity, per-lane
    wall/committed-total/aggregate-KIPS records, and each non-fast
    lane's speedup over the hermetic ``fast`` lane.  Raises
    ``RuntimeError`` if any lane's results diverge — a throughput
    number for a wrong simulation is worse than no number.
    """
    from repro.experiments.batchrun import pack_cells, run_pack
    from repro.experiments.parallel import grid_cells, policy_factory
    from repro.experiments.runner import clear_solo_cache, run_policy
    from repro.workloads.mixes import get_workload

    base = ExperimentScale.full() if scale is None else scale
    if mem_latency is None:
        mem_latency = base.config.mem_latency
    grid_scale = _bench_scale(base, mem_latency, epochs, warmup)
    cells = grid_cells(groups=groups, policies=policies, seeds=seeds,
                       workloads_per_group=workloads_per_group)
    if batch_cells is None:
        batch_cells = len(cells)

    def seeded_for(cell):
        return (grid_scale if grid_scale.seed == cell.seed
                else grid_scale.with_overrides(seed=cell.seed))

    def per_cell_lane(hermetic):
        results = []
        clear_solo_cache()
        start = time.perf_counter()  # repro: allow-nondeterminism[ND101] (throughput measurement, not results)
        for cell in cells:
            if hermetic:
                clear_solo_cache()
            workload = get_workload(cell.workload)
            policy = policy_factory(cell.policy, grid_scale)()
            results.append(run_policy(workload, policy, seeded_for(cell),
                                      epochs=cell.epochs))
        wall = time.perf_counter() - start  # repro: allow-nondeterminism[ND101] (throughput measurement, not results)
        return results, wall

    def batched_lane():
        clear_solo_cache()
        by_cell = {}
        start = time.perf_counter()  # repro: allow-nondeterminism[ND101] (throughput measurement, not results)
        for pack in pack_cells(cells, batch_cells):
            for cell, result in zip(pack,
                                    run_pack(pack, grid_scale,
                                             budget=budget)):
                by_cell[id(cell)] = result
        wall = time.perf_counter() - start  # repro: allow-nondeterminism[ND101] (throughput measurement, not results)
        return [by_cell[id(cell)] for cell in cells], wall

    lanes = {}
    canonical = None
    for lane, runner in (("fast", lambda: per_cell_lane(True)),
                         ("fast-serial", lambda: per_cell_lane(False)),
                         ("batched", batched_lane)):
        if progress is not None:
            progress("grid lane %s: %d cells @ mem=%d"
                     % (lane, len(cells), mem_latency))
        results, wall = runner()
        encoded = [json.dumps(result.to_dict(), sort_keys=True)
                   for result in results]
        if canonical is None:
            canonical = encoded
        elif encoded != canonical:
            diverged = next(index for index in range(len(cells))
                            if encoded[index] != canonical[index])
            raise RuntimeError(
                "grid lane %r diverged from lane 'fast' on cell %s"
                % (lane, cells[diverged].label))
        committed = sum(sum(result.committed) for result in results)
        lanes[lane] = {
            "wall_s": wall,
            "committed": committed,
            "cycles": sum(result.cycles for result in results),
            "kips": committed / 1000.0 / wall if wall > 0 else 0.0,
        }
    fast_wall = lanes["fast"]["wall_s"]
    for lane in ("fast-serial", "batched"):
        lanes[lane]["speedup_vs_fast"] = (
            fast_wall / lanes[lane]["wall_s"]
            if lanes[lane]["wall_s"] > 0 else 0.0)
    clear_solo_cache()
    return {
        "groups": list(groups),
        "policies": list(policies),
        "workloads_per_group": workloads_per_group,
        "seeds": list(seeds),
        "cells": len(cells),
        "mem_latency": mem_latency,
        "epochs": epochs,
        "warmup": warmup,
        "batch_cells": batch_cells,
        "lanes": lanes,
    }
