"""Shared experiment machinery.

Everything here is deterministic given (scale, seed): warmup runs the
caches/predictors to steady state before measurement (the paper
fast-forwards to SimPoint regions instead), and stand-alone SingleIPC runs
are cached per (benchmark, config, seed) because every weighted metric
needs them.
"""

from collections import OrderedDict, namedtuple
from dataclasses import dataclass, field, replace

from repro.core.controller import EpochController, EpochResult
from repro.core.metrics import AvgIPC, HarmonicMeanWeightedIPC, WeightedIPC
from repro.pipeline.config import SMTConfig
from repro.pipeline.processor import SMTProcessor
from repro.policies.icount import ICountPolicy


@dataclass(frozen=True)
class ExperimentScale:
    """One knob bundle controlling experiment cost.

    The paper's scale (64K-cycle epochs, 1B-instruction windows, stride-2
    exhaustive search) is out of reach for a Python simulator, so every
    experiment takes a scale; EXPERIMENTS.md records which scale produced
    the reported numbers.
    """

    config: SMTConfig
    #: Epoch length in cycles.
    epoch_size: int = 4096
    #: Measured epochs per run.
    epochs: int = 24
    #: Unmeasured warmup cycles before the first epoch.
    warmup: int = 24000
    #: OFF-LINE / surface grid stride over the rename shares.
    stride: int = 16
    #: Workloads evaluated per Table 3 group (None: all seven).
    workloads_per_group: int = None
    #: RAND-HILL trial budget per epoch.
    rand_hill_budget: int = 32
    seed: int = 0

    def __post_init__(self):
        for name in ("epoch_size", "epochs", "stride"):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise ValueError(
                    "ExperimentScale.%s must be a positive int, got %r"
                    % (name, value))
        if not isinstance(self.warmup, int) or self.warmup < 0:
            raise ValueError(
                "ExperimentScale.warmup must be a non-negative int, got %r"
                % (self.warmup,))
        if self.workloads_per_group is not None and (
                not isinstance(self.workloads_per_group, int)
                or self.workloads_per_group < 1):
            raise ValueError(
                "ExperimentScale.workloads_per_group must be None or an "
                "int >= 1, got %r" % (self.workloads_per_group,))
        if not isinstance(self.rand_hill_budget, int) \
                or self.rand_hill_budget <= 0:
            raise ValueError(
                "ExperimentScale.rand_hill_budget must be a positive int, "
                "got %r" % (self.rand_hill_budget,))

    @classmethod
    def smoke(cls):
        """Unit-test scale: seconds per experiment."""
        return cls(config=SMTConfig.tiny(), epoch_size=1024, epochs=6,
                   warmup=2000, stride=8, workloads_per_group=2,
                   rand_hill_budget=8)

    @classmethod
    def bench(cls):
        """Benchmark-harness scale: the EXPERIMENTS.md numbers."""
        return cls(config=SMTConfig.fast(), epoch_size=4096, epochs=40,
                   warmup=12000, stride=16, workloads_per_group=None,
                   rand_hill_budget=32)

    @classmethod
    def full(cls):
        """Closest tractable approximation of the paper's scale."""
        return cls(config=SMTConfig.paper(), epoch_size=65536, epochs=32,
                   warmup=100000, stride=32, workloads_per_group=None,
                   rand_hill_budget=128)

    def with_overrides(self, **kwargs):
        return replace(self, **kwargs)

    @property
    def hill_software_cost(self):
        """Per-invocation software stall, scaled so it keeps the paper's
        proportion (200 cycles per 64K-cycle epoch)."""
        return max(1, 200 * self.epoch_size // 65536)

    @property
    def hill_sample_period(self):
        """SingleIPC sampling period: the paper's 40 epochs.

        Short scaled windows therefore take only one or two solo samples
        (rotating threads); unsampled threads keep the 1.0 default
        estimate.  Sampling more often measurably hurts — every solo epoch
        idles the other threads — which the sample-period ablation
        quantifies."""
        return 40


@dataclass
class RunResult:
    """Outcome of one (workload, policy) run."""

    workload: str
    policy: str
    ipcs: list
    committed: list
    cycles: int
    single_ipcs: list = None
    epoch_history: list = field(default_factory=list)
    #: Optional reliability report attached by
    #: :func:`repro.reliability.guard.run_policy_resilient` (retries,
    #: repairs, faults injected, resume point).
    reliability: dict = None

    def to_dict(self):
        """JSON-serializable form (floats round-trip exactly via repr)."""
        from dataclasses import asdict

        return {
            "workload": self.workload,
            "policy": self.policy,
            "ipcs": list(self.ipcs),
            "committed": list(self.committed),
            "cycles": self.cycles,
            "single_ipcs": None if self.single_ipcs is None
            else list(self.single_ipcs),
            "epoch_history": [asdict(epoch) for epoch in self.epoch_history],
            "reliability": self.reliability,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            workload=data["workload"],
            policy=data["policy"],
            ipcs=list(data["ipcs"]),
            committed=list(data["committed"]),
            cycles=data["cycles"],
            single_ipcs=None if data.get("single_ipcs") is None
            else list(data["single_ipcs"]),
            epoch_history=[EpochResult(**record)
                           for record in data.get("epoch_history", [])],
            reliability=data.get("reliability"),
        )

    @property
    def avg_ipc(self):
        return AvgIPC().value(self.ipcs)

    @property
    def weighted_ipc(self):
        return WeightedIPC().value(self.ipcs, self.single_ipcs)

    @property
    def harmonic_weighted_ipc(self):
        return HarmonicMeanWeightedIPC().value(self.ipcs, self.single_ipcs)

    def metric_value(self, metric):
        if metric.needs_single_ipc:
            return metric.value(self.ipcs, self.single_ipcs)
        return metric.value(self.ipcs)


CacheInfo = namedtuple("CacheInfo", "hits misses evictions maxsize currsize")

#: SingleIPC cache bound: generous for any realistic sweep (22 benchmarks x
#: a handful of scales/seeds) while keeping unbounded multi-config sweeps
#: from growing the cache without limit.
SOLO_CACHE_MAXSIZE = 512


class _LRUCache:
    """Small bounded LRU map with ``functools.lru_cache``-style counters."""

    def __init__(self, maxsize):
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data = OrderedDict()

    def get(self, key):
        try:
            self._data.move_to_end(key)
        except KeyError:
            self.misses += 1
            return None
        self.hits += 1
        return self._data[key]

    def put(self, key, value):
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def info(self):
        return CacheInfo(hits=self.hits, misses=self.misses,
                         evictions=self.evictions, maxsize=self.maxsize,
                         currsize=len(self._data))

    def clear(self):
        self._data.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self):
        return len(self._data)

    def __contains__(self, key):
        return key in self._data


_SOLO_CACHE = _LRUCache(SOLO_CACHE_MAXSIZE)


def solo_ipc(profile, scale):
    """Stand-alone IPC of one benchmark on the scaled machine (cached).

    Measured as an end-to-end run over ``epochs * epoch_size`` cycles after
    warmup — the paper's "SingleIPC from an end-to-end run".
    """
    key = (profile.name, scale.config, scale.epoch_size, scale.epochs,
           scale.warmup, scale.seed)
    cached = _SOLO_CACHE.get(key)
    if cached is not None:
        return cached
    proc = SMTProcessor(scale.config, [profile], seed=scale.seed,
                        policy=ICountPolicy())
    proc.run(scale.warmup)
    before = proc.stats.copy()
    proc.run(scale.epoch_size * scale.epochs)
    committed, cycles = proc.stats.delta_since(before)
    value = committed[0] / max(cycles, 1)
    _SOLO_CACHE.put(key, value)
    return value


def solo_ipcs(workload, scale):
    """SingleIPC_i for every thread of a workload."""
    return [solo_ipc(profile, scale) for profile in workload.profiles]


def solo_cache_info():
    """Hit/miss/eviction/size counters of the bounded SingleIPC cache."""
    return _SOLO_CACHE.info()


def clear_solo_cache():
    _SOLO_CACHE.clear()


def make_processor(workload, policy, scale, warm=True):
    """Build (and optionally warm) a processor for a workload + policy."""
    proc = SMTProcessor(scale.config, workload.profiles, seed=scale.seed,
                        policy=policy)
    if warm and scale.warmup:
        proc.run(scale.warmup)
    return proc


def run_policy(workload, policy, scale, epochs=None, checker=None,
               injector=None, sanitize_partitions=False):
    """Run one policy over a workload for the scaled window.

    Returns a :class:`RunResult` with SingleIPCs attached so every metric
    of Section 3.1.1 can be evaluated on it.  ``checker`` / ``injector`` /
    ``sanitize_partitions`` pass straight through to the
    :class:`~repro.core.controller.EpochController` (see
    :mod:`repro.reliability`); the guarded, resumable variant is
    :func:`repro.reliability.guard.run_policy_resilient`.
    """
    proc = make_processor(workload, policy, scale)
    controller = EpochController(proc, epoch_size=scale.epoch_size,
                                 checker=checker, injector=injector,
                                 sanitize_partitions=sanitize_partitions)
    controller.run(epochs if epochs is not None else scale.epochs)
    committed, cycles = controller.totals()
    return RunResult(
        workload=workload.name,
        policy=policy.name,
        ipcs=controller.overall_ipcs(),
        committed=committed,
        cycles=cycles,
        single_ipcs=solo_ipcs(workload, scale),
        epoch_history=controller.history,
    )


def run_policy_multi(workload, policy_factory, scale, seeds=(0, 1, 2),
                     epochs=None):
    """Run one policy across several workload seeds.

    Returns (results, summary) where ``summary`` maps each Section 3.1.1
    metric name to (mean, population stdev) across seeds — the variance a
    single-seed experiment hides.
    """
    import statistics

    results = []
    for seed in seeds:
        seeded = scale.with_overrides(seed=seed)
        results.append(run_policy(workload, policy_factory(), seeded,
                                  epochs=epochs))
    summary = {}
    for name, getter in (
        ("avg_ipc", lambda result: result.avg_ipc),
        ("weighted_ipc", lambda result: result.weighted_ipc),
        ("harmonic_weighted_ipc",
         lambda result: result.harmonic_weighted_ipc),
    ):
        values = [getter(result) for result in results]
        spread = statistics.pstdev(values) if len(values) > 1 else 0.0
        summary[name] = (statistics.mean(values), spread)
    return results, summary


def compare_policies(workload, policy_factories, scale, epochs=None,
                     engine=None):
    """Run several policies on one workload.

    ``policy_factories`` maps display name -> zero-argument callable
    returning a fresh policy (policies are stateful, one per run).
    Returns {name: RunResult}.

    With an ``engine`` (a :class:`~repro.experiments.parallel.SweepEngine`
    built at the same scale), the runs go through the parallel sweep
    layer instead: results come from the content-addressed cache when
    available and fan out over the worker pool otherwise.  The factory
    *names* must then be canonical policy specs (every name the CLI
    accepts qualifies); the callables are ignored because workers rebuild
    policies by name.
    """
    if engine is not None:
        return engine.compare_policies(workload, list(policy_factories),
                                       epochs=epochs)
    results = {}
    for name, factory in policy_factories.items():
        results[name] = run_policy(workload, factory(), scale, epochs=epochs)
    return results


def select_workloads(groups, scale):
    """The Table 3 workloads for the given groups, honouring the scale's
    per-group subset limit."""
    from repro.workloads.mixes import workloads_in_group

    selected = []
    for group in groups:
        members = workloads_in_group(group)
        if scale.workloads_per_group is not None:
            members = members[: scale.workloads_per_group]
        selected.extend(members)
    return selected


def baseline_factories():
    """The paper's three baselines (Figures 4/9/10)."""
    from repro.policies.dcra import DCRAPolicy  # repro: dispatch[DCRA]
    from repro.policies.flush import FlushPolicy  # repro: dispatch[FLUSH]

    return {
        "ICOUNT": ICountPolicy,
        "FLUSH": FlushPolicy,
        "DCRA": DCRAPolicy,
    }
