"""ASCII rendering of experiment results (the harness prints the same rows
and series the paper's tables/figures report)."""

import math


def format_table(headers, rows, float_digits=3):
    """Render a list of rows as an aligned ASCII table."""

    def cell(value):
        if isinstance(value, float):
            return "%.*f" % (float_digits, value)
        return str(value)

    text_rows = [[cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    line = "  ".join(header.ljust(width) for header, width in zip(headers, widths))
    separator = "-" * len(line)
    body = [
        "  ".join(value.ljust(width) for value, width in zip(row, widths))
        for row in text_rows
    ]
    return "\n".join([line, separator] + body)


def format_series(series, width=60, label_width=12):
    """Render {name: [values]} as small ASCII sparklines on a shared scale."""
    blocks = " .:-=+*#%@"
    flat = [value for values in series.values() for value in values]
    if not flat:
        return "(empty series)"
    low, high = min(flat), max(flat)
    span = (high - low) or 1.0
    lines = []
    for name, values in series.items():
        sampled = values[:width]
        marks = "".join(
            blocks[min(len(blocks) - 1, int((value - low) / span * (len(blocks) - 1)))]
            for value in sampled
        )
        lines.append("%s |%s| (%.3f..%.3f)" % (
            name.ljust(label_width), marks, min(values), max(values)))
    return "\n".join(lines)


def render_partition_heatmap(offline_epochs, hill_shares=None, width=2):
    """The Figure 12 view in ASCII: rows are partition settings, columns
    are epochs, shading is the OFF-LINE-measured performance of that
    partitioning in that epoch; ``O`` marks OFF-LINE's per-epoch best and
    ``+`` the hill climber's partitioning when provided.

    ``offline_epochs`` are :class:`~repro.core.offline.OfflineEpoch`;
    ``hill_shares`` is an optional per-epoch list of the hill climber's
    first-thread shares (same epoch indexing).
    """
    # Shade alphabet must not collide with the 'O' / '+' markers.
    blocks = " .,:;=*#%@"
    if not offline_epochs:
        return "(no epochs)"
    positions = [share for share, __ in
                 offline_epochs[0].curve_over_first_share()]
    values = {}
    low = high = None
    for column, epoch in enumerate(offline_epochs):
        for share, value in epoch.curve_over_first_share():
            values[(share, column)] = value
            low = value if low is None else min(low, value)
            high = value if high is None else max(high, value)
    span = (high - low) or 1.0

    def nearest(position_list, target):
        return min(position_list, key=lambda p: abs(p - target))

    lines = []
    for share in reversed(positions):
        cells = []
        for column, epoch in enumerate(offline_epochs):
            value = values.get((share, column))
            shade = blocks[int((value - low) / span * (len(blocks) - 1))] \
                if value is not None else " "
            mark = shade
            if nearest(positions, epoch.best_shares[0]) == share:
                mark = "O"
            if hill_shares is not None and column < len(hill_shares) and \
                    nearest(positions, hill_shares[column]) == share:
                mark = "+"
            cells.append(mark * width)
        lines.append("%4d |%s" % (share, "".join(cells)))
    lines.append("     +%s  (cols: epochs; O=OFF-LINE best, +=HILL)"
                 % ("-" * (width * len(offline_epochs))))
    return "\n".join(lines)


def pct_gain(new, base):
    """Percentage gain of ``new`` over ``base``."""
    if base == 0:
        return 0.0
    return 100.0 * (new - base) / base


def geomean(values):
    """Geometric mean (ignores non-positive values safely)."""
    positives = [value for value in values if value > 0]
    if not positives:
        return 0.0
    return math.exp(sum(math.log(value) for value in positives) / len(positives))


def mean(values):
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def summarize_gains(results_by_workload, subject, baselines):
    """Average % gain of ``subject`` over each baseline across workloads.

    ``results_by_workload`` is {workload: {policy: value}}.
    """
    gains = {}
    for baseline in baselines:
        per_workload = [
            pct_gain(values[subject], values[baseline])
            for values in results_by_workload.values()
            if values.get(baseline)
        ]
        gains[baseline] = mean(per_workload)
    return gains
