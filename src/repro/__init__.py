"""repro — Learning-Based SMT Processor Resource Distribution via
Hill-Climbing (Choi & Yeung, ISCA 2006) as a self-contained Python library.

Quick start::

    from repro import SMTConfig, SMTProcessor, EpochController
    from repro import HillClimbingPolicy, get_workload

    workload = get_workload("art-mcf")
    proc = SMTProcessor(SMTConfig.fast(), workload.profiles,
                        policy=HillClimbingPolicy())
    controller = EpochController(proc, epoch_size=8192)
    controller.run(32)
    print(controller.overall_ipcs())

Package map (see DESIGN.md for the full inventory):

* ``repro.pipeline`` — the cycle-level SMT processor substrate.
* ``repro.memory`` / ``repro.branch`` — cache hierarchy and predictors.
* ``repro.workloads`` — Table 2 synthetic benchmarks, Table 3 mixes.
* ``repro.policies`` — ICOUNT / FLUSH / STALL / DCRA / static baselines.
* ``repro.core`` — hill-climbing, OFF-LINE, RAND-HILL, phase-based
  learning, metrics, the epoch controller.
* ``repro.phase`` — BBV phase detection + Markov phase prediction.
* ``repro.analysis`` — hill-width, behaviour classification, surfaces.
* ``repro.experiments`` — per-figure/table experiment drivers.
"""

from repro.pipeline.config import SMTConfig
from repro.pipeline.processor import SMTProcessor
from repro.pipeline.checkpoint import Checkpoint
from repro.core.controller import EpochController, EpochResult
from repro.core.metrics import (
    AvgIPC,
    HarmonicMeanWeightedIPC,
    WeightedIPC,
    metric_by_name,
)
from repro.core.hill_climbing import HillClimbingPolicy, make_hill_policy
from repro.core.offline import OfflineExhaustiveLearner
from repro.core.rand_hill import RandHillLearner
from repro.core.phase_hill import PhaseHillPolicy
from repro.policies import (
    BASELINE_POLICIES,
    DCRAPolicy,
    DGPolicy,
    FlushPolicy,
    FPGPolicy,
    ICountPolicy,
    PDGPolicy,
    ResourcePolicy,
    StallFlushPolicy,
    StallPolicy,
    StaticPartitionPolicy,
)
from repro.workloads import (
    PROFILES,
    WORKLOADS,
    get_profile,
    get_workload,
    profile_names,
    workload_names,
    workloads_in_group,
)

__version__ = "1.0.0"

__all__ = [
    "SMTConfig",
    "SMTProcessor",
    "Checkpoint",
    "EpochController",
    "EpochResult",
    "AvgIPC",
    "WeightedIPC",
    "HarmonicMeanWeightedIPC",
    "metric_by_name",
    "HillClimbingPolicy",
    "make_hill_policy",
    "OfflineExhaustiveLearner",
    "RandHillLearner",
    "PhaseHillPolicy",
    "ResourcePolicy",
    "ICountPolicy",
    "FPGPolicy",
    "FlushPolicy",
    "StallPolicy",
    "StallFlushPolicy",
    "DGPolicy",
    "PDGPolicy",
    "DCRAPolicy",
    "StaticPartitionPolicy",
    "BASELINE_POLICIES",
    "PROFILES",
    "WORKLOADS",
    "get_profile",
    "get_workload",
    "profile_names",
    "workload_names",
    "workloads_in_group",
    "__version__",
]
