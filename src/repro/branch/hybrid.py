"""Hybrid (tournament) branch predictor: gshare + bimodal with a meta
chooser, the Table 1 configuration (8192-entry gshare, 2048-entry bimodal,
8192-entry meta table).
"""

from dataclasses import dataclass

from repro.branch.bimodal import BimodalPredictor, COUNTER_MAX, WEAKLY_TAKEN
from repro.branch.gshare import GsharePredictor


@dataclass(frozen=True)
class Prediction:
    """One hybrid prediction plus the state needed to train it later."""

    taken: bool
    gshare_taken: bool
    bimodal_taken: bool
    history_at_predict: int


class HybridPredictor:
    """Meta-chooser tournament predictor.

    ``predict`` returns a :class:`Prediction` token; the pipeline passes it
    back to :meth:`update` at branch resolution so the component that made
    each prediction is trained against the recorded global history.
    """

    def __init__(self, gshare_entries=8192, bimodal_entries=2048, meta_entries=8192):
        self.gshare = GsharePredictor(gshare_entries)
        self.bimodal = BimodalPredictor(bimodal_entries)
        self.meta_entries = meta_entries
        # Meta counter semantics: >= WEAKLY_TAKEN selects gshare.
        self.meta = [WEAKLY_TAKEN] * meta_entries
        self.mispredicts = 0
        self.lookups = 0

    def _meta_index(self, pc):
        return (pc >> 2) % self.meta_entries

    def predict(self, pc):
        """Predict the direction of the branch at ``pc``."""
        self.lookups += 1
        gshare_taken = self.gshare.predict(pc)
        bimodal_taken = self.bimodal.predict(pc)
        use_gshare = self.meta[self._meta_index(pc)] >= WEAKLY_TAKEN
        taken = gshare_taken if use_gshare else bimodal_taken
        prediction = Prediction(
            taken=taken,
            gshare_taken=gshare_taken,
            bimodal_taken=bimodal_taken,
            history_at_predict=self.gshare.history,
        )
        # Speculatively shift the predicted direction into the history, as
        # real front ends do.
        self.gshare.shift_history(taken)
        return prediction

    def update(self, pc, taken, prediction):
        """Train both components and the chooser with the resolved direction."""
        if prediction.taken != taken:
            self.mispredicts += 1
        self.gshare.update(pc, taken, prediction.history_at_predict)
        self.bimodal.update(pc, taken)
        gshare_correct = prediction.gshare_taken == taken
        bimodal_correct = prediction.bimodal_taken == taken
        if gshare_correct != bimodal_correct:
            index = self._meta_index(pc)
            counter = self.meta[index]
            if gshare_correct:
                if counter < COUNTER_MAX:
                    self.meta[index] = counter + 1
            elif counter > 0:
                self.meta[index] = counter - 1

    def repair_history(self, history):
        """Restore the global history after a squash (mispredict recovery)."""
        self.gshare.history = history & self.gshare.history_mask

    @property
    def mispredict_rate(self):
        if self.lookups == 0:
            return 0.0
        return self.mispredicts / self.lookups

    def snapshot(self):
        return (
            self.gshare.snapshot(),
            self.bimodal.snapshot(),
            list(self.meta),
            self.mispredicts,
            self.lookups,
        )

    def restore(self, state):
        gshare, bimodal, meta, mispredicts, lookups = state
        self.gshare.restore(gshare)
        self.bimodal.restore(bimodal)
        self.meta = list(meta)
        self.mispredicts = mispredicts
        self.lookups = lookups
