"""Return address stack (Table 1: 64 entries), with wrap-around overwrite on
overflow like a hardware circular stack."""


class ReturnAddressStack:
    """Fixed-depth circular return-address stack."""

    def __init__(self, depth=64):
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth
        self._stack = [0] * depth
        self._top = 0  # number of live entries, saturates at depth
        self._pos = 0  # next push slot

    def push(self, return_address):
        """Push the address following a call instruction."""
        self._stack[self._pos] = return_address
        self._pos = (self._pos + 1) % self.depth
        if self._top < self.depth:
            self._top += 1

    def pop(self):
        """Pop the predicted return target; returns None when empty."""
        if self._top == 0:
            return None
        self._pos = (self._pos - 1) % self.depth
        self._top -= 1
        return self._stack[self._pos]

    def __len__(self):
        return self._top

    def snapshot(self):
        return (list(self._stack), self._top, self._pos)

    def restore(self, state):
        stack, top, pos = state
        self._stack = list(stack)
        self._top = top
        self._pos = pos
