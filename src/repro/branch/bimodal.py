"""Bimodal branch predictor: a table of 2-bit saturating counters indexed by
the branch PC."""

WEAKLY_NOT_TAKEN = 1
WEAKLY_TAKEN = 2
COUNTER_MAX = 3


class BimodalPredictor:
    """PC-indexed table of 2-bit saturating counters.

    Counters start weakly-taken, matching the usual SimpleScalar
    initialisation.
    """

    def __init__(self, entries=2048):
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.entries = entries
        self.table = [WEAKLY_TAKEN] * entries

    def _index(self, pc):
        return (pc >> 2) % self.entries

    def predict(self, pc):
        """Return the predicted direction (True = taken)."""
        return self.table[self._index(pc)] >= WEAKLY_TAKEN

    def update(self, pc, taken):
        """Train the counter for ``pc`` with the resolved direction."""
        index = self._index(pc)
        counter = self.table[index]
        if taken:
            if counter < COUNTER_MAX:
                self.table[index] = counter + 1
        elif counter > 0:
            self.table[index] = counter - 1

    def snapshot(self):
        return list(self.table)

    def restore(self, state):
        self.table = list(state)
