"""Branch-prediction substrate: bimodal and gshare component predictors, a
meta chooser combining them (the Table 1 "hybrid 8192-entry gshare /
2048-entry bimodal" configuration), a set-associative BTB and a return
address stack.
"""

from repro.branch.bimodal import BimodalPredictor
from repro.branch.gshare import GsharePredictor
from repro.branch.hybrid import HybridPredictor
from repro.branch.btb import BranchTargetBuffer
from repro.branch.ras import ReturnAddressStack

__all__ = [
    "BimodalPredictor",
    "GsharePredictor",
    "HybridPredictor",
    "BranchTargetBuffer",
    "ReturnAddressStack",
]
