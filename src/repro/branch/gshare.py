"""Gshare branch predictor: 2-bit counters indexed by PC XOR global history."""

from repro.branch.bimodal import COUNTER_MAX, WEAKLY_TAKEN


class GsharePredictor:
    """Global-history predictor with XOR indexing.

    The speculative history register is updated at prediction time and is
    included in snapshots so checkpoint replay is exact.
    """

    def __init__(self, entries=8192):
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.entries = entries
        self.history_bits = entries.bit_length() - 1
        self.history_mask = (1 << self.history_bits) - 1
        self.table = [WEAKLY_TAKEN] * entries
        self.history = 0

    def _index(self, pc):
        return ((pc >> 2) ^ self.history) % self.entries

    def predict(self, pc):
        """Return the predicted direction (True = taken)."""
        return self.table[self._index(pc)] >= WEAKLY_TAKEN

    def update(self, pc, taken, history_at_predict=None):
        """Train the counter used for this branch.

        ``history_at_predict`` lets the caller train the entry that actually
        produced the prediction when updates happen out of order (at branch
        resolution rather than fetch).
        """
        if history_at_predict is None:
            index = self._index(pc)
        else:
            index = ((pc >> 2) ^ history_at_predict) % self.entries
        counter = self.table[index]
        if taken:
            if counter < COUNTER_MAX:
                self.table[index] = counter + 1
        elif counter > 0:
            self.table[index] = counter - 1

    def shift_history(self, taken):
        """Push the resolved/predicted direction into the history register."""
        self.history = ((self.history << 1) | int(taken)) & self.history_mask

    def snapshot(self):
        return (list(self.table), self.history)

    def restore(self, state):
        table, history = state
        self.table = list(table)
        self.history = history
