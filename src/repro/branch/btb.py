"""Branch target buffer: a small set-associative LRU tag store mapping branch
PCs to targets (Table 1: 2048 entries, 4-way)."""


class BranchTargetBuffer:
    """Set-associative BTB with LRU replacement."""

    def __init__(self, entries=2048, assoc=4):
        if entries % assoc:
            raise ValueError("entries must be a multiple of assoc")
        self.entries = entries
        self.assoc = assoc
        self.num_sets = entries // assoc
        self._sets = [dict() for __ in range(self.num_sets)]
        self._stamp = 0

    def _index_tag(self, pc):
        word = pc >> 2
        return word % self.num_sets, word // self.num_sets

    def lookup(self, pc):
        """Return the cached target for ``pc`` or None on a BTB miss."""
        index, tag = self._index_tag(pc)
        entry = self._sets[index].get(tag)
        if entry is None:
            return None
        self._stamp += 1
        target, __ = entry
        self._sets[index][tag] = (target, self._stamp)
        return target

    def insert(self, pc, target):
        """Record the resolved target for ``pc``."""
        index, tag = self._index_tag(pc)
        btb_set = self._sets[index]
        self._stamp += 1
        if tag not in btb_set and len(btb_set) >= self.assoc:
            victim = min(btb_set, key=lambda key: btb_set[key][1])
            del btb_set[victim]
        btb_set[tag] = (target, self._stamp)

    def snapshot(self):
        return ([dict(btb_set) for btb_set in self._sets], self._stamp)

    def restore(self, state):
        sets, stamp = state
        self._sets = [dict(btb_set) for btb_set in sets]
        self._stamp = stamp
