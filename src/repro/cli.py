"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list-workloads``
    Print the Table 3 workloads (optionally one group).
``list-benchmarks``
    Print the Table 2 benchmark profiles.
``run``
    Run one workload under one policy and report per-thread IPCs and the
    three Section 3.1.1 metrics.
``compare``
    Run several policies on one workload side by side.
``solo``
    Stand-alone IPC of a single benchmark (the SingleIPC measurement).
``surface``
    The Figure 2 three-thread distribution surface.
``verify``
    Reliability suite: clean-run pipeline invariants (including
    checkpoint-fidelity replays) plus the fault-injection matrix.
    Exits non-zero on any violation or unhandled failure.
``sweep``
    Run a (workload x policy x seed) grid over a process pool
    (``--jobs N``) with content-addressed on-disk result caching,
    JSONL progress events, optional crash-safe per-cell resume, and a
    deterministic merged-JSON export (see docs/PARALLEL.md).  Cells run
    under the sweep supervisor: per-cell heartbeat timeouts
    (``--cell-timeout``), retry with deterministic backoff
    (``--max-attempts``), pool rebuild after a worker death, quarantine
    of repeat offenders, and degrade-to-serial (``--no-degrade``
    disables; docs/RELIABILITY.md "Sweep supervision").  Exits 1 when
    cells were quarantined (partial results), 2 on a worker bootstrap
    failure.
``chaos``
    Fault-injection harness: run a tiny grid while injecting faults per
    ``--preset`` and verify the merged results converge to a fault-free
    serial reference.  Pool presets (kill-one-worker, kill-storm, ...)
    abuse the sweep supervisor; service presets (kill-worker,
    worker-storm, slow-client, queue-flood, split-result) abuse a live
    ``repro serve`` daemon and its worker fleet (docs/SERVICE.md).
    Exits non-zero when results diverge.
``serve``
    The sweep service daemon: accept sweep jobs over HTTP/JSON, shard
    cells across pull-based ``repro worker`` processes under leases
    with heartbeat renewal, apply backpressure (429 + Retry-After) and
    per-client quotas, stream live JSONL events, and drain gracefully
    on SIGTERM — the queue persists and resumes on restart.
``worker``
    One pull-based sweep worker: lease cells from a ``repro serve``
    daemon, simulate them, heartbeat, upload results.
``submit``
    Submit a sweep grid to a daemon, stream its progress events, and
    fetch the merged JSON (byte-identical to a local serial sweep).
    Exits 1 when cells were quarantined.
``loadtest``
    Hammer a daemon with many concurrent clients on a warm cache and
    report latency percentiles, throughput and throttle counts.
``profile``
    Simulator throughput: run one workload/policy under the fast
    and/or reference core and report wall time, KIPS, skip ratio and
    per-stage cycle activity (see docs/INTERNALS.md).
``cache``
    ``info``/``clear`` for the sweep result cache.

All simulation commands accept ``--scale smoke|bench|full`` plus explicit
``--epochs`` / ``--epoch-size`` / ``--seed`` overrides.  ``run`` and
``compare`` additionally accept ``--resilient`` / ``--resume-dir DIR``:
runs then execute under the reliability guard (watchdog, partition
sanitizing, retry-from-checkpoint) with crash-safe on-disk state, and
re-invoking the same command with the same ``--resume-dir`` after an
interruption completes the sweep with identical metrics.

Unknown workload, benchmark, or policy names print a one-line error with
the valid choices and exit with status 2.
"""

import argparse
import sys

from repro.experiments.report import format_table
from repro.experiments.runner import (
    ExperimentScale,
    compare_policies,
    run_policy,
    solo_ipc,
)
from repro.pipeline.fastpath import CORE_MODES
from repro.workloads.mixes import GROUPS, get_workload, workload_names
from repro.workloads.spec2000 import PROFILES, get_profile

_SCALES = {
    "smoke": ExperimentScale.smoke,
    "bench": ExperimentScale.bench,
    "full": ExperimentScale.full,
}


def _fail(message):
    """One-line usage error: print to stderr, exit with status 2."""
    print("error: %s" % message, file=sys.stderr)
    raise SystemExit(2)


def _get_workload_checked(name):
    try:
        return get_workload(name)
    except KeyError:
        _fail("unknown workload %r (valid: %s)"
              % (name, ", ".join(sorted(workload_names()))))


def _get_profile_checked(name):
    from repro.workloads.spec2000 import profile_names

    try:
        return get_profile(name)
    except KeyError:
        _fail("unknown benchmark %r (valid: %s)"
              % (name, ", ".join(sorted(profile_names()))))


def _policy_factory(name, scale):
    """Resolve a policy name (baselines + HILL[-metric] + PHASE-HILL).

    Name resolution lives in :mod:`repro.experiments.parallel` (the sweep
    workers share it); this wrapper only converts unknown names into the
    CLI's one-line exit-2 error.
    """
    from repro.experiments.parallel import policy_factory

    try:
        return policy_factory(name, scale)
    except ValueError as exc:
        _fail(str(exc))


def _scale_from(args):
    from repro.pipeline.fastpath import core_mode

    try:
        # Fail fast (exit 2) on a bad REPRO_CORE before any simulation
        # starts, instead of deep inside the first run() call.
        core_mode()
    except ValueError as exc:
        _fail(str(exc))
    scale = _SCALES[args.scale]()
    overrides = {}
    if args.epochs is not None:
        overrides["epochs"] = args.epochs
    if args.epoch_size is not None:
        overrides["epoch_size"] = args.epoch_size
    if args.seed is not None:
        overrides["seed"] = args.seed
    return scale.with_overrides(**overrides) if overrides else scale


def _add_scale_args(parser):
    parser.add_argument("--scale", choices=sorted(_SCALES), default="bench")
    parser.add_argument("--epochs", type=int, default=None)
    parser.add_argument("--epoch-size", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)


def _add_resilience_args(parser):
    parser.add_argument("--resilient", action="store_true",
                        help="run under the reliability guard (watchdog, "
                             "partition sanitizing, retry-from-checkpoint)")
    parser.add_argument("--resume-dir", default=None, metavar="DIR",
                        help="crash-safe run state directory; re-invoking "
                             "with the same DIR resumes an interrupted "
                             "sweep (implies --resilient)")


def cmd_list_workloads(args):
    names = workload_names(args.group)
    rows = []
    for name in names:
        workload = get_workload(name)
        rows.append([workload.name, workload.group, workload.num_threads,
                     workload.rsc_sum])
    print(format_table(["workload", "group", "threads", "Rsc sum"], rows))


def cmd_list_benchmarks(args):
    rows = [
        [profile.name,
         "%s %s" % ("FP" if profile.is_fp else "Int", profile.ctype),
         profile.rsc_hint, profile.freq.value]
        for profile in PROFILES.values()
    ]
    print(format_table(["benchmark", "type", "Rsc (paper)", "Freq"], rows))


def _report_result(result):
    print(format_table(
        ["thread", "IPC", "SingleIPC"],
        [[tid, ipc, single] for tid, (ipc, single)
         in enumerate(zip(result.ipcs, result.single_ipcs))],
    ))
    print()
    print(format_table(
        ["metric", "value"],
        [["avg IPC", result.avg_ipc],
         ["weighted IPC", result.weighted_ipc],
         ["harmonic weighted IPC", result.harmonic_weighted_ipc]],
    ))


def _resilient_requested(args):
    return args.resilient or args.resume_dir is not None


def _report_reliability(result):
    report = result.reliability or {}
    notes = []
    if report.get("resumed_from") is not None:
        notes.append("resumed from epoch %d" % report["resumed_from"])
    if report.get("retries"):
        notes.append("%d retries" % report["retries"])
    if report.get("partition_repairs"):
        notes.append("%d partition repairs" % report["partition_repairs"])
    faults = sum(report.get("faults_injected", {}).values())
    if faults:
        notes.append("%d faults injected" % faults)
    if notes:
        print("[resilient] " + ", ".join(notes))


def cmd_run(args):
    scale = _scale_from(args)
    workload = _get_workload_checked(args.workload)
    policy = _policy_factory(args.policy, scale)()
    print("running %s under %s (%d epochs x %d cycles)..."
          % (workload.name, policy.name, scale.epochs, scale.epoch_size))
    if _resilient_requested(args):
        from repro.reliability.guard import run_policy_resilient, run_slug

        run_dir = None
        if args.resume_dir is not None:
            import os

            run_dir = os.path.join(
                args.resume_dir,
                run_slug(workload.name, policy.name, scale.seed))
        result = run_policy_resilient(workload, policy, scale,
                                      run_dir=run_dir, resume=True,
                                      log=lambda msg: print("[resilient] %s"
                                                            % msg))
        _report_reliability(result)
    else:
        result = run_policy(workload, policy, scale)
    _report_result(result)


def cmd_compare(args):
    scale = _scale_from(args)
    workload = _get_workload_checked(args.workload)
    factories = {
        name: _policy_factory(name, scale) for name in args.policies
    }
    print("comparing %s on %s..." % (", ".join(factories), workload.name))
    if _resilient_requested(args):
        return _compare_resilient(args, scale, workload, factories)
    if len(args.seeds) > 1:
        from repro.experiments.runner import run_policy_multi

        rows = []
        for name, factory in factories.items():
            __, summary = run_policy_multi(workload, factory, scale,
                                           seeds=args.seeds)
            rows.append([name] + [
                "%.3f +/- %.3f" % summary[metric]
                for metric in ("avg_ipc", "weighted_ipc",
                               "harmonic_weighted_ipc")
            ])
        print(format_table(
            ["policy", "avg IPC", "weighted IPC", "harmonic weighted IPC"],
            rows,
        ))
        return
    results = compare_policies(workload, factories, scale)
    print(format_table(
        ["policy", "avg IPC", "weighted IPC", "harmonic weighted IPC"],
        [[name, result.avg_ipc, result.weighted_ipc,
          result.harmonic_weighted_ipc]
         for name, result in results.items()],
    ))


def _compare_resilient(args, scale, workload, factories):
    """``compare --resilient``: one resumable run directory per
    (workload, policy, seed); killed sweeps continue where they died."""
    import statistics
    import tempfile

    from repro.reliability.guard import compare_policies_resilient

    resume_dir = args.resume_dir
    if resume_dir is None:
        resume_dir = tempfile.mkdtemp(prefix="repro-resilient-")
        print("[resilient] no --resume-dir given; state in %s" % resume_dir)
    log = lambda msg: print("[resilient] %s" % msg)
    if len(args.seeds) > 1:
        rows = []
        for name, factory in factories.items():
            values = {"avg_ipc": [], "weighted_ipc": [],
                      "harmonic_weighted_ipc": []}
            for seed in args.seeds:
                seeded = scale.with_overrides(seed=seed)
                result = compare_policies_resilient(
                    workload, {name: factory}, seeded, resume_dir,
                    log=log)[name]
                values["avg_ipc"].append(result.avg_ipc)
                values["weighted_ipc"].append(result.weighted_ipc)
                values["harmonic_weighted_ipc"].append(
                    result.harmonic_weighted_ipc)
            rows.append([name] + [
                "%.3f +/- %.3f" % (statistics.mean(values[metric]),
                                   statistics.pstdev(values[metric]))
                for metric in ("avg_ipc", "weighted_ipc",
                               "harmonic_weighted_ipc")
            ])
        print(format_table(
            ["policy", "avg IPC", "weighted IPC", "harmonic weighted IPC"],
            rows,
        ))
        return
    results = compare_policies_resilient(workload, factories, scale,
                                         resume_dir, log=log)
    for result in results.values():
        _report_reliability(result)
    print(format_table(
        ["policy", "avg IPC", "weighted IPC", "harmonic weighted IPC"],
        [[name, result.avg_ipc, result.weighted_ipc,
          result.harmonic_weighted_ipc]
         for name, result in results.items()],
    ))


def cmd_solo(args):
    scale = _scale_from(args)
    profile = _get_profile_checked(args.benchmark)
    value = solo_ipc(profile, scale)
    print("%s stand-alone IPC: %.3f" % (profile.name, value))


def cmd_verify(args):
    from repro.reliability.verify import run_verification

    scale = _scale_from(args)
    workload = args.workload
    _get_workload_checked(workload)  # fail fast with the friendly message
    if args.fidelity_period is not None and args.fidelity_period <= 0:
        _fail("--fidelity-period must be a positive number of epochs, "
              "got %d" % args.fidelity_period)
    return run_verification(scale, workload_name=workload,
                            fidelity_period=args.fidelity_period)


def cmd_surface(args):
    from repro.experiments.figures import fig2_surface

    scale = _scale_from(args)
    surface = fig2_surface(scale, benchmarks=tuple(args.benchmarks))
    for share0, row in surface.rows():
        print("share0=%3d: %s" % (share0, " ".join(
            "%d:%.2f" % (share1, value) for share1, value in row)))
    print("peak %.3f at %s" % (surface.peak_ipc, surface.peak_shares))


#: One renderer per canonical sweep event (``SWEEP_EVENTS`` in
#: repro.reliability.supervisor) — ``None`` marks events that are
#: intentionally silent on the progress line.  A drift test pins this
#: table's keys to exactly the event-name table, so adding an event
#: without deciding how (or whether) to render it fails the suite.
_EVENT_RENDERERS = {
    "sweep-start": lambda r: (
        "[sweep] %d cells: %d cached, %d to simulate (%d workers)"
        % (r["total"], r["cached"], r["pending"], r["jobs"])),
    "cell-cached": None,
    "cell-start": None,
    "cell-done": lambda r: (
        "[sweep] %d/%d done (%d cached, %d running%s) — %s"
        % (r["done"], r["total"], r["cached"], r["running"],
           (", eta %ds" % r["eta_s"]) if "eta_s" in r else "", r["cell"])),
    "sweep-done": lambda r: (
        "[sweep] finished: %d cells (%d cached, %d simulated) in %.1fs"
        % (r["total"], r["cached"], r["simulated"], r["wall_s"])),
    "cell-retry": lambda r: (
        "[sweep] retrying %s (attempt %d in %.1fs): %s"
        % (r["cell"], r["attempt"], r["delay_s"], r["error"])),
    "cell-timeout": lambda r: (
        "[sweep] %s heartbeat stale for %.0fs — killing its worker"
        % (r["cell"], r["timeout_s"])),
    "cell-quarantined": lambda r: (
        "[sweep] quarantined %s after %d attempts: %s"
        % (r["cell"], r["attempts"], r["error"])),
    "pool-broken": lambda r: (
        "[sweep] worker pool broke (%d so far); rebuilding"
        % r["breaks"]),
    "pool-rebuilt": None,
    "sweep-degraded": lambda r: (
        "[sweep] degrading to in-process serial execution: %s"
        % r["reason"]),
    "pack-bisect": lambda r: (
        "[sweep] pack of %d cells failed (%s); bisecting into %d + %d"
        % (r["cells"], r["error"], r["left"], r["right"])),
    "cell-evicted": lambda r: (
        "[sweep] evicted %s from its pack to the scalar lane (%s)"
        % (r["cell"], r["reason"])),
}

#: Renderers for the service-tier events (``SERVICE_EVENTS`` in
#: repro.service.protocol), pinned by the same drift test.
_SERVICE_EVENT_RENDERERS = {
    "job-accepted": lambda r: (
        "[sweep] job %s accepted: %d cells (%d cached, %d to run)"
        % (r["job"], r["total"], r["cached"], r["pending"])),
    "job-done": None,
    "cell-leased": lambda r: (
        "[sweep] %s leased to %s (attempt %d)"
        % (r["cell"], r["worker"], r["attempt"])),
    "lease-expired": lambda r: (
        "[sweep] lease on %s expired (worker %s presumed dead)"
        % (r["cell"], r["worker"])),
    "cell-requeued": None,
    "worker-registered": lambda r: (
        "[sweep] worker %s joined" % r["worker"]),
    "worker-lost": lambda r: (
        "[sweep] worker %s lost" % r["worker"]),
    "service-draining": lambda r: (
        "[sweep] daemon draining; job will resume after restart"),
    "service-resumed": lambda r: (
        "[sweep] daemon resumed this job from its persisted queue "
        "(%d cells still pending)" % r["pending"]),
}


def _print_sweep_event(record):
    """One-line live progress for ``repro sweep`` / ``repro submit``."""
    renderer = _EVENT_RENDERERS.get(
        record["event"], _SERVICE_EVENT_RENDERERS.get(record["event"]))
    if renderer is not None:
        print(renderer(record))


def cmd_sweep(args):
    from repro.experiments.parallel import (
        DEFAULT_POLICIES,
        SWEEP_PRESETS,
        SweepEngine,
        grid_cells,
        merged_json,
    )
    from repro.reliability.packsup import audit_mode, validate_batch_cells
    from repro.reliability.supervisor import (
        CellBootstrapError,
        Supervision,
        SweepAborted,
    )

    scale = _scale_from(args)
    if args.cell_timeout is not None and args.cell_timeout <= 0:
        _fail("--cell-timeout must be a positive number of seconds")
    if args.max_attempts < 1:
        _fail("--max-attempts must be >= 1")
    try:
        # Packed sweeps are supervised: --batch-cells now composes with
        # --resume-dir and --cell-timeout (docs/RELIABILITY.md,
        # "Batched-lane supervision").
        validate_batch_cells(args.batch_cells)
        audit = args.audit_mirrors or audit_mode() == "mirror"
    except ValueError as exc:
        _fail(str(exc))
    groups = list(args.groups or [])
    policies = list(args.policies or [])
    if args.preset is not None:
        preset_groups, preset_policies = SWEEP_PRESETS[args.preset]
        groups = groups or list(preset_groups)
        policies = policies or list(preset_policies)
    if not args.workloads and not groups:
        _fail("sweep needs --workloads, --groups, or --preset")
    try:
        cells = grid_cells(
            workloads=args.workloads, groups=groups,
            policies=policies or DEFAULT_POLICIES,
            seeds=tuple(args.seeds), epochs=None,  # --epochs is in scale
            workloads_per_group=(args.workloads_per_group
                                 if args.workloads_per_group is not None
                                 else scale.workloads_per_group))
    except (KeyError, ValueError) as exc:
        # Both error paths already name the valid choices.
        _fail(exc.args[0] if exc.args else str(exc))
    engine = SweepEngine(
        scale, jobs=args.jobs, cache_dir=args.cache_dir,
        events_path=args.events, resume_dir=args.resume_dir,
        use_cache=not args.no_cache,
        supervision=Supervision(
            cell_timeout=args.cell_timeout,
            max_attempts=args.max_attempts,
            degrade=not args.no_degrade,
            seed=scale.seed),
        batch_cells=args.batch_cells,
        audit_mirrors=audit,
        on_event=None if args.quiet else _print_sweep_event)
    try:
        results = engine.run_cells(cells)
    except CellBootstrapError as exc:
        _fail(str(exc).splitlines()[0])
    except SweepAborted as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    rows = [
        [cell.workload, cell.policy, cell.seed, result.avg_ipc,
         result.weighted_ipc, result.harmonic_weighted_ipc]
        for cell, result in zip(cells, results) if result is not None
    ]
    print(format_table(
        ["workload", "policy", "seed", "avg IPC", "weighted IPC",
         "harmonic weighted IPC"], rows))
    if engine.quarantined:
        print("%d cell(s) quarantined after repeated failures "
              "(ledger: %s):" % (len(engine.quarantined),
                                 engine.quarantine_path))
        for cell, entry in engine.quarantined.items():
            error = entry.get("last_error", "").splitlines()
            print("  %s — %d attempts — %s"
                  % (cell.label, entry.get("attempts", 0),
                     error[0] if error else ""))
    if args.out is not None:
        import os

        out_dir = os.path.dirname(args.out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.out, "w") as handle:
            handle.write(merged_json(cells, results, scale,
                                     quarantined=engine.quarantined))
        print("merged results written to %s" % args.out)
    return 1 if engine.quarantined else 0


def _cmd_chaos_service(args):
    """Service-tier chaos presets: a live daemon + worker subprocesses."""
    from repro.service.chaos import run_service_chaos

    report = run_service_chaos(
        args.preset, scale_name=args.scale, keep=args.keep,
        work_dir=args.work_dir, epochs=args.epochs,
        log=None if args.quiet else (lambda msg: print("[chaos] %s" % msg)))
    print("[chaos] preset=%s cells=%d jobs=%d retries=%d "
          "lease_expiries=%d invalid_results=%d throttled=%d"
          % (report["preset"], len(report["cells"]), report["jobs"],
             report["retries"], report["lease_expiries"],
             report["invalid_results"], report["throttled"]))
    print("[chaos] quarantined: %d (expected %d)"
          % (report["quarantined"], report["expected_quarantined"]))
    print("[chaos] merged results %s the fault-free serial reference"
          % ("match" if report["identical"] else "DIVERGE from"))
    if report["work_dir"] is not None:
        print("[chaos] work dir kept at %s" % report["work_dir"])
    print("[chaos] %s" % ("OK" if report["ok"] else "FAILED"))
    return 0 if report["ok"] else 1


def cmd_chaos(args):
    from repro.reliability.chaos import CHAOS_PRESETS, run_chaos
    from repro.service.chaos import SERVICE_CHAOS_PRESETS

    scale = _scale_from(args)
    if args.preset in SERVICE_CHAOS_PRESETS:
        return _cmd_chaos_service(args)
    if args.cell_timeout is not None and args.cell_timeout <= 0:
        _fail("--cell-timeout must be a positive number of seconds")
    if args.max_attempts < 1:
        _fail("--max-attempts must be >= 1")
    if args.preset not in CHAOS_PRESETS:
        _fail("unknown chaos preset %r (valid: %s)"
              % (args.preset, ", ".join(sorted(CHAOS_PRESETS))))
    report = run_chaos(
        args.preset, scale, jobs=args.jobs, cell_timeout=args.cell_timeout,
        max_attempts=args.max_attempts, degrade=not args.no_degrade,
        keep=args.keep, work_dir=args.work_dir,
        log=None if args.quiet else (lambda msg: print("[chaos] %s" % msg)))
    print("[chaos] preset=%s cells=%d batch_cells=%d retries=%d "
          "timeouts=%d pool_breaks=%d degraded=%s bisections=%d "
          "evicted=%d resumed=%d"
          % (report["preset"], len(report["cells"]),
             report["batch_cells"], report["retries"],
             report["timeouts"], report["pool_breaks"],
             report["degraded"], report["bisections"],
             report["evicted"], report["resumed"]))
    print("[chaos] quarantined: %d (expected %d)%s"
          % (len(report["quarantined"]), report["expected_quarantined"],
             " — " + ", ".join(report["quarantined"])
             if report["quarantined"] else ""))
    print("[chaos] merged results %s the fault-free serial reference"
          % ("match" if report["identical"] else "DIVERGE from"))
    if report["work_dir"] is not None:
        print("[chaos] work dir kept at %s" % report["work_dir"])
    print("[chaos] %s" % ("OK" if report["ok"] else "FAILED"))
    return 0 if report["ok"] else 1


def cmd_profile(args):
    from repro.experiments.profiling import profile_run
    from repro.pipeline.profile import STAGES

    scale = _scale_from(args)
    workload = _get_workload_checked(args.workload)
    records = {}
    for core in args.cores:
        policy = _policy_factory(args.policy, scale)()
        print("profiling %s under %s [%s core]..."
              % (workload.name, policy.name, core))
        records[core] = profile_run(workload, policy, scale, core=core)
    print(format_table(
        ["core", "cycles", "committed", "IPC", "wall (s)", "KIPS",
         "skip ratio", "skips"],
        [[core, record["cycles"], record["committed"],
          "%.3f" % record["ipc"], "%.3f" % record["wall_s"],
          "%.1f" % record["kips"], "%.3f" % record["skip_ratio"],
          record["skip_events"]]
         for core, record in records.items()]))
    print()
    print(format_table(
        ["stage"] + ["%s active" % core for core in records],
        [[stage] + [record["stage_cycles"][stage]
                    for record in records.values()]
         for stage in STAGES]))
    if "fast" in records and "reference" in records:
        fast_wall = records["fast"]["wall_s"]
        if fast_wall > 0:
            print()
            print("fast-core speedup: %.2fx"
                  % (records["reference"]["wall_s"] / fast_wall))
    if args.out is not None:
        import json

        with open(args.out, "w") as handle:
            json.dump({"workload": workload.name, "policy": args.policy,
                       "records": records}, handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print("profile records written to %s" % args.out)


def cmd_cache(args):
    from repro.experiments.parallel import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.cache_command == "info":
        stats = cache.info()
        print(format_table(
            ["field", "value"],
            [["directory", stats.directory],
             ["entries", stats.entries],
             ["size", "%.1f KiB" % (stats.bytes / 1024.0)],
             ["corrupt entries", stats.corrupt],
             ["corrupt size", "%.1f KiB" % (stats.corrupt_bytes / 1024.0)]]))
    else:  # clear
        removed = cache.clear(corrupt_only=args.corrupt_only)
        what = "corrupt sidelined" if args.corrupt_only else "cached"
        print("removed %d %s result(s) from %s"
              % (removed, what, cache.directory))


def cmd_serve(args):
    import asyncio
    import os
    import signal

    from repro.service.server import ServiceConfig, SweepService

    try:
        config = ServiceConfig(
            host=args.host, port=args.port, cache_dir=args.cache_dir,
            state_dir=args.state_dir, queue_limit=args.queue_limit,
            client_quota=args.client_quota,
            lease_timeout=args.lease_timeout,
            max_attempts=args.max_attempts)
    except ValueError as exc:
        _fail(str(exc))
    service = SweepService(config)
    say = (lambda message: None) if args.quiet else (
        lambda message: print("[serve] %s" % message, file=sys.stderr))

    async def _amain():
        await service.start()
        if args.port_file is not None:
            port_dir = os.path.dirname(args.port_file)
            if port_dir:
                os.makedirs(port_dir, exist_ok=True)
            tmp = args.port_file + ".tmp"
            with open(tmp, "w") as handle:
                handle.write("%d\n" % service.port)
            os.replace(tmp, args.port_file)
        say("listening on http://%s:%d (state: %s)"
            % (config.host, service.port, config.state_dir))
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        await stop.wait()
        say("draining: waiting for in-flight leases, persisting queue")
        await service.shutdown(drain=True)
        say("drained; queue persisted to %s" % config.state_dir)

    asyncio.run(_amain())
    return 0


def cmd_worker(args):
    from repro.reliability.packsup import validate_batch_cells
    from repro.service.worker import run_worker

    if args.poll_interval <= 0:
        _fail("--poll-interval must be a positive number of seconds")
    try:
        validate_batch_cells(args.batch_cells)
    except ValueError as exc:
        _fail(str(exc))
    try:
        summary = run_worker(
            args.server, poll_interval=args.poll_interval,
            max_cells=args.max_cells, idle_exit=args.idle_exit,
            fault=args.fault, name=args.name,
            batch_cells=args.batch_cells,
            log=None if args.quiet else (
                lambda message: print("[worker] %s" % message,
                                      file=sys.stderr)))
    except (ValueError, RuntimeError) as exc:
        _fail(str(exc))
    if not args.quiet:
        print("[worker] served %d cell(s), %d failed attempt(s), "
              "%d lease(s) lost" % (summary["completed"],
                                    summary["failed"],
                                    summary["lease_lost"]),
              file=sys.stderr)
    return 0


def cmd_submit(args):
    import urllib.error

    from repro.service.client import ServiceClient, ServiceError

    if not args.workloads and not args.groups:
        _fail("submit needs --workloads or --groups")
    grid = {"seeds": args.seeds}
    if args.workloads:
        grid["workloads"] = args.workloads
    if args.groups:
        grid["groups"] = args.groups
    if args.policies:
        grid["policies"] = args.policies
    if args.workloads_per_group is not None:
        grid["workloads_per_group"] = args.workloads_per_group
    scale_spec = {"scale": args.scale}
    for field, value in (("epochs", args.epochs),
                         ("epoch_size", args.epoch_size),
                         ("seed", args.seed)):
        if value is not None:
            scale_spec[field] = value
    client = ServiceClient(args.server, client=args.client,
                           timeout=args.timeout)
    try:
        record = client.submit(grid=grid, scale=scale_spec,
                               deadline=args.timeout)
    except ServiceError as exc:
        _fail("submit to %s failed — %s" % (args.server, exc))
    except (urllib.error.URLError, OSError) as exc:
        _fail("cannot reach %s: %s" % (args.server, exc))
    job_id = record["job"]
    if args.no_wait:
        print(job_id)
        return 0
    try:
        for event in client.events(job_id):
            if not args.quiet:
                _print_sweep_event(event)
    except (urllib.error.URLError, OSError, ValueError):
        pass  # stream dropped (daemon draining); wait() takes over
    status = client.wait(job_id, deadline=args.timeout)
    text = client.result(job_id)
    if args.out is not None:
        import os

        out_dir = os.path.dirname(args.out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.out, "w") as handle:
            handle.write(text)
        print("merged results written to %s" % args.out)
    else:
        print(text, end="")
    if status["quarantined"]:
        print("%d cell(s) quarantined on the service side"
              % status["quarantined"], file=sys.stderr)
        return 1
    return 0


def cmd_loadtest(args):
    from repro.service.loadtest import run_loadtest

    if args.clients < 1 or args.requests < 1:
        _fail("--clients and --requests must be >= 1")
    report = run_loadtest(
        clients=args.clients, requests=args.requests,
        workers=args.workers, server_url=args.server,
        scale_name=args.scale, epochs=args.epochs,
        log=None if args.quiet else (
            lambda message: print("[loadtest] %s" % message)))
    print(format_table(
        ["field", "value"],
        [["clients x requests", "%d x %d" % (report["clients"],
                                             report["requests_per_client"])],
         ["ok / errors / mismatched", "%d / %d / %d"
          % (report["ok"], report["errors"], report["mismatched"])],
         ["throttled (429)", report["throttled"]],
         ["warm sweep", "%.1fs" % report["warm_s"]],
         ["wall", "%.1fs" % report["wall_s"]],
         ["throughput", "%.1f jobs/s" % report["rps"]],
         ["latency p50/p95/max",
          "%.0f / %.0f / %.0f ms" % (report["latency_ms"]["p50"],
                                     report["latency_ms"]["p95"],
                                     report["latency_ms"]["max"])]]))
    if args.out is not None:
        import json

        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("loadtest report written to %s" % args.out)
    return 0 if report["identical"] and report["errors"] == 0 else 1


def _split_codes(tokens):
    """Flatten ``--select AS,MC`` and ``--select AS MC`` alike."""
    codes = []
    for token in tokens or ():
        codes.extend(part for part in token.split(",") if part)
    return tuple(codes)


def cmd_lint(args):
    from repro.analysis.lint import engine

    if args.explain is not None:
        if args.explain == "all":
            print(engine.explain_all())
            return 0
        try:
            print(engine.explain(args.explain))
        except KeyError:
            _fail("unknown rule %r (known: all, %s)"
                  % (args.explain,
                     ", ".join(sorted(engine.RULES))))
        return 0
    try:
        findings = engine.run_repo_lint(select=_split_codes(args.select),
                                        ignore=_split_codes(args.ignore))
        rendered = (engine.render_json(findings) if args.format == "json"
                    else engine.render_text(findings))
    except Exception as exc:  # internal error: exit 2, not a finding list
        _fail("lint pass crashed: %s: %s" % (type(exc).__name__, exc))
    print(rendered, end="" if rendered.endswith("\n") else "\n")
    return 1 if findings else 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Learning-based SMT resource distribution (ISCA 2006 "
                    "reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    sub = commands.add_parser("list-workloads",
                              help="the 42 Table 3 workloads")
    sub.add_argument("--group", choices=GROUPS, default=None)
    sub.set_defaults(func=cmd_list_workloads)

    sub = commands.add_parser("list-benchmarks",
                              help="the 22 Table 2 benchmarks")
    sub.set_defaults(func=cmd_list_benchmarks)

    sub = commands.add_parser("run", help="one workload under one policy")
    sub.add_argument("--workload", required=True)
    sub.add_argument("--policy", default="HILL")
    _add_scale_args(sub)
    _add_resilience_args(sub)
    sub.set_defaults(func=cmd_run)

    sub = commands.add_parser("compare", help="several policies side by side")
    sub.add_argument("--workload", required=True)
    sub.add_argument("--policies", nargs="+",
                     default=["ICOUNT", "FLUSH", "DCRA", "HILL"])
    sub.add_argument("--seeds", nargs="+", type=int, default=[0],
                     help="evaluate across several seeds (reports mean "
                          "+/- stdev)")
    _add_scale_args(sub)
    _add_resilience_args(sub)
    sub.set_defaults(func=cmd_compare)

    sub = commands.add_parser("solo", help="stand-alone IPC of a benchmark")
    sub.add_argument("--benchmark", required=True)
    _add_scale_args(sub)
    sub.set_defaults(func=cmd_solo)

    sub = commands.add_parser("surface",
                              help="Figure 2 three-thread surface")
    sub.add_argument("--benchmarks", nargs=3,
                     default=["mesa", "vortex", "fma3d"])
    _add_scale_args(sub)
    sub.set_defaults(func=cmd_surface)

    sub = commands.add_parser(
        "verify",
        help="reliability suite: clean invariants + fault matrix "
             "(non-zero exit on violation)")
    sub.add_argument("--workload", default="art-mcf")
    sub.add_argument("--fidelity-period", type=int, default=2,
                     help="checkpoint-fidelity replay every N epochs")
    _add_scale_args(sub)
    # The matrix is ~10 guarded runs; smoke scale keeps it interactive.
    sub.set_defaults(func=cmd_verify, scale="smoke")

    sub = commands.add_parser(
        "sweep",
        help="run a (workload x policy x seed) grid over a process pool "
             "with on-disk result caching")
    sub.add_argument("--workloads", nargs="+", default=None,
                     help="explicit workload names")
    sub.add_argument("--groups", nargs="+", choices=GROUPS, default=None,
                     help="Table 3 groups to sweep")
    sub.add_argument("--preset", choices=("fig4", "fig9", "fig10", "sec5"),
                     default=None,
                     help="shorthand for a figure's grid (groups + policies)")
    sub.add_argument("--policies", nargs="+", default=None,
                     help="policies per workload (default: ICOUNT FLUSH "
                          "DCRA HILL)")
    sub.add_argument("--seeds", nargs="+", type=int, default=[0])
    sub.add_argument("--workloads-per-group", type=int, default=None,
                     metavar="N", help="first N workloads of each group")
    sub.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="worker processes (1 = serial; results are "
                          "byte-identical either way)")
    sub.add_argument("--cache-dir", default=None, metavar="DIR",
                     help="result cache (default: $REPRO_CACHE_DIR or "
                          "~/.cache/repro-sweeps)")
    sub.add_argument("--no-cache", action="store_true",
                     help="bypass the result cache entirely")
    sub.add_argument("--out", default=None, metavar="FILE",
                     help="write merged results JSON here")
    sub.add_argument("--events", default=None, metavar="FILE",
                     help="append JSONL progress events here")
    sub.add_argument("--resume-dir", default=None, metavar="DIR",
                     help="per-cell crash-safe checkpoints; re-running "
                          "after a kill resumes mid-cell")
    sub.add_argument("--cell-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="kill and retry a cell whose per-epoch "
                          "heartbeat goes stale this long (default: no "
                          "timeout)")
    sub.add_argument("--max-attempts", type=int, default=3, metavar="N",
                     help="attempts per cell before it is quarantined "
                          "(default: 3)")
    sub.add_argument("--no-degrade", action="store_true",
                     help="abort instead of falling back to in-process "
                          "serial execution when the worker pool keeps "
                          "collapsing")
    sub.add_argument("--batch-cells", type=int, default=1, metavar="N",
                     help="pack up to N cells per process through the "
                          "batched core lane (byte-identical results, "
                          "shared replay tapes + SingleIPC runs); packs "
                          "run supervised, so --resume-dir and "
                          "--cell-timeout compose with batching "
                          "(default: 1 = per-cell)")
    sub.add_argument("--audit-mirrors", action="store_true",
                     help="cross-check the batched core's SoA mirrors "
                          "against scalar state at every epoch boundary "
                          "and evict divergent cells to the scalar lane "
                          "(also: REPRO_AUDIT=mirror)")
    sub.add_argument("--quiet", action="store_true",
                     help="suppress live progress lines")
    _add_scale_args(sub)
    sub.set_defaults(func=cmd_sweep)

    sub = commands.add_parser(
        "chaos",
        help="fault-injection harness for the sweep supervisor: inject "
             "worker kills/hangs/corruption and verify convergence")
    sub.add_argument("--preset", default="kill-one-worker",
                     choices=("corrupt-result", "flaky-cells",
                              "hang-one-cell", "hang-pack",
                              "kill-one-worker", "kill-storm",
                              "kill-worker", "mirror-corrupt",
                              "poison-cell", "poison-pack-cell",
                              "queue-flood", "slow-client",
                              "split-result", "worker-storm"),
                     help="fault scenario: pool presets (see repro."
                          "reliability.chaos.CHAOS_PRESETS) or service "
                          "presets (repro.service.chaos."
                          "SERVICE_CHAOS_PRESETS)")
    sub.add_argument("--jobs", type=int, default=2, metavar="N",
                     help="worker processes for the chaos sweep")
    sub.add_argument("--cell-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="override the preset's heartbeat timeout")
    sub.add_argument("--max-attempts", type=int, default=3, metavar="N")
    sub.add_argument("--no-degrade", action="store_true",
                     help="abort instead of degrading to serial when "
                          "the pool keeps collapsing")
    sub.add_argument("--keep", action="store_true",
                     help="keep the chaos work directory (cache, "
                          "events.jsonl, quarantine ledger)")
    sub.add_argument("--work-dir", default=None, metavar="DIR",
                     help="run inside DIR instead of a fresh tempdir")
    sub.add_argument("--quiet", action="store_true",
                     help="suppress per-fault progress lines")
    _add_scale_args(sub)
    # The grid is 4 smoke-or-larger cells run twice (chaos + reference);
    # smoke keeps it interactive, like `verify`.
    sub.set_defaults(func=cmd_chaos, scale="smoke")

    sub = commands.add_parser(
        "profile",
        help="simulator throughput: wall time, KIPS, skip ratio and "
             "per-stage activity under each core")
    sub.add_argument("--workload", default="art-mcf")
    sub.add_argument("--policy", default="ICOUNT")
    sub.add_argument("--cores", nargs="+", choices=CORE_MODES,
                     default=["fast", "reference"],
                     help="which run-loop cores to time: %s "
                          "(default: fast reference; batched times a "
                          "batch-of-one — pack throughput is the grid "
                          "section of scripts/bench_core.py)"
                          % " ".join(CORE_MODES))
    sub.add_argument("--out", default=None, metavar="FILE",
                     help="write the profile records as JSON here")
    _add_scale_args(sub)
    sub.set_defaults(func=cmd_profile)

    sub = commands.add_parser(
        "lint",
        help="static self-analysis: fingerprint coverage, determinism, "
             "policy contracts, async safety, mirror coverage (exit 1 "
             "on findings)")
    sub.add_argument("--format", choices=("text", "json"), default="text")
    sub.add_argument("--select", nargs="+", default=None, metavar="CODE",
                     help="only rules with these code prefixes; "
                          "space- or comma-separated (e.g. FP ND1 "
                          "PC203, or AS,MC)")
    sub.add_argument("--ignore", nargs="+", default=None, metavar="CODE",
                     help="drop rules with these code prefixes")
    sub.add_argument("--explain", default=None, metavar="RULE",
                     help="print one rule's documentation and exit "
                          "('all' lists the whole catalogue)")
    sub.set_defaults(func=cmd_lint)

    sub = commands.add_parser(
        "cache", help="inspect or empty the sweep result cache")
    cache_commands = sub.add_subparsers(dest="cache_command", required=True)
    cache_sub = cache_commands.add_parser(
        "info", help="entry count, size, corrupt entries, directory")
    cache_sub.add_argument("--cache-dir", default=None, metavar="DIR")
    cache_sub.set_defaults(func=cmd_cache, corrupt_only=False)
    cache_sub = cache_commands.add_parser(
        "clear", help="delete every cached result")
    cache_sub.add_argument("--cache-dir", default=None, metavar="DIR")
    cache_sub.add_argument("--corrupt-only", action="store_true",
                           help="remove only sidelined .corrupt entries, "
                                "keep every valid result")
    cache_sub.set_defaults(func=cmd_cache)

    sub = commands.add_parser(
        "serve",
        help="sweep service daemon: HTTP job queue with leases, quotas "
             "and graceful drain (docs/SERVICE.md)")
    sub.add_argument("--host", default="127.0.0.1")
    sub.add_argument("--port", type=int, default=0,
                     help="TCP port (0 = ephemeral; see --port-file)")
    sub.add_argument("--port-file", default=None, metavar="FILE",
                     help="write the bound port here once listening "
                          "(race-free startup with --port 0)")
    sub.add_argument("--cache-dir", default=None, metavar="DIR",
                     help="result cache served to clients (default: "
                          "$REPRO_CACHE_DIR or ~/.cache/repro-sweeps)")
    sub.add_argument("--state-dir", default=None, metavar="DIR",
                     help="job journal, queue snapshot, quarantine "
                          "ledger and shared resume checkpoints")
    sub.add_argument("--queue-limit", type=int, default=1024, metavar="N",
                     help="max backlog cells before submits get 429")
    sub.add_argument("--client-quota", type=int, default=256, metavar="N",
                     help="max pending cells per client id")
    sub.add_argument("--lease-timeout", type=float, default=30.0,
                     metavar="SECONDS",
                     help="heartbeat staleness after which a worker's "
                          "cell is reclaimed and requeued")
    sub.add_argument("--max-attempts", type=int, default=3, metavar="N",
                     help="attempts per cell before quarantine")
    sub.add_argument("--quiet", action="store_true",
                     help="suppress daemon log lines")
    sub.set_defaults(func=cmd_serve)

    sub = commands.add_parser(
        "worker",
        help="pull-based sweep worker: lease cells from a daemon, "
             "simulate, heartbeat, upload")
    sub.add_argument("--server", required=True, metavar="URL",
                     help="daemon base URL, e.g. http://127.0.0.1:8732")
    sub.add_argument("--name", default=None,
                     help="worker display name in daemon events")
    sub.add_argument("--poll-interval", type=float, default=0.25,
                     metavar="SECONDS",
                     help="idle sleep between lease attempts")
    sub.add_argument("--max-cells", type=int, default=None, metavar="N",
                     help="exit after resolving N cells")
    sub.add_argument("--idle-exit", type=float, default=None,
                     metavar="SECONDS",
                     help="exit after this long without work (or with "
                          "the daemon unreachable)")
    sub.add_argument("--fault", default=None, metavar="SPEC",
                     help="chaos hook, e.g. split-result:2 (corrupt the "
                          "first 2 result uploads)")
    sub.add_argument("--batch-cells", type=int, default=1, metavar="N",
                     help="lease up to N cells per loop and pack the "
                          "fresh ones through the batched core lane; "
                          "cells with a checkpoint to resume keep the "
                          "per-cell path (default: 1)")
    sub.add_argument("--quiet", action="store_true",
                     help="suppress worker log lines")
    sub.set_defaults(func=cmd_worker)

    sub = commands.add_parser(
        "submit",
        help="submit a sweep grid to a daemon, stream progress, fetch "
             "the merged JSON")
    sub.add_argument("--server", required=True, metavar="URL")
    sub.add_argument("--client", default="cli",
                     help="client id for the daemon's per-client quota")
    sub.add_argument("--workloads", nargs="+", default=None,
                     help="explicit workload names")
    sub.add_argument("--groups", nargs="+", choices=GROUPS, default=None,
                     help="Table 3 groups to sweep")
    sub.add_argument("--policies", nargs="+", default=None,
                     help="policies per workload (default: ICOUNT FLUSH "
                          "DCRA HILL)")
    sub.add_argument("--seeds", nargs="+", type=int, default=[0])
    sub.add_argument("--workloads-per-group", type=int, default=None,
                     metavar="N", help="first N workloads of each group")
    sub.add_argument("--out", default=None, metavar="FILE",
                     help="write merged results JSON here (default: "
                          "stdout)")
    sub.add_argument("--no-wait", action="store_true",
                     help="print the job id and exit without waiting")
    sub.add_argument("--timeout", type=float, default=600.0,
                     metavar="SECONDS",
                     help="overall submit-and-wait deadline")
    sub.add_argument("--quiet", action="store_true",
                     help="suppress live progress lines")
    _add_scale_args(sub)
    sub.set_defaults(func=cmd_submit, scale="smoke")

    sub = commands.add_parser(
        "loadtest",
        help="many concurrent clients against a warm cache: latency "
             "percentiles, throughput, throttle counts")
    sub.add_argument("--server", default=None, metavar="URL",
                     help="target daemon (default: self-host a daemon "
                          "plus --workers worker processes)")
    sub.add_argument("--clients", type=int, default=20, metavar="N",
                     help="concurrent client threads")
    sub.add_argument("--requests", type=int, default=5, metavar="N",
                     help="submits per client")
    sub.add_argument("--workers", type=int, default=1, metavar="N",
                     help="worker processes when self-hosting")
    sub.add_argument("--out", default=None, metavar="FILE",
                     help="write the report JSON here")
    sub.add_argument("--quiet", action="store_true",
                     help="suppress progress lines")
    _add_scale_args(sub)
    sub.set_defaults(func=cmd_loadtest, scale="smoke")

    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args) or 0


if __name__ == "__main__":
    sys.exit(main())
