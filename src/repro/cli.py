"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list-workloads``
    Print the Table 3 workloads (optionally one group).
``list-benchmarks``
    Print the Table 2 benchmark profiles.
``run``
    Run one workload under one policy and report per-thread IPCs and the
    three Section 3.1.1 metrics.
``compare``
    Run several policies on one workload side by side.
``solo``
    Stand-alone IPC of a single benchmark (the SingleIPC measurement).
``surface``
    The Figure 2 three-thread distribution surface.
``verify``
    Reliability suite: clean-run pipeline invariants (including
    checkpoint-fidelity replays) plus the fault-injection matrix.
    Exits non-zero on any violation or unhandled failure.
``sweep``
    Run a (workload x policy x seed) grid over a process pool
    (``--jobs N``) with content-addressed on-disk result caching,
    JSONL progress events, optional crash-safe per-cell resume, and a
    deterministic merged-JSON export (see docs/PARALLEL.md).  Cells run
    under the sweep supervisor: per-cell heartbeat timeouts
    (``--cell-timeout``), retry with deterministic backoff
    (``--max-attempts``), pool rebuild after a worker death, quarantine
    of repeat offenders, and degrade-to-serial (``--no-degrade``
    disables; docs/RELIABILITY.md "Sweep supervision").  Exits 1 when
    cells were quarantined (partial results), 2 on a worker bootstrap
    failure.
``chaos``
    Fault-injection harness for the sweep supervisor: run a tiny grid
    while SIGKILLing/hanging/corrupting workers per ``--preset`` and
    verify the merged results converge to a fault-free serial
    reference.  Exits non-zero when they do not.
``profile``
    Simulator throughput: run one workload/policy under the fast
    and/or reference core and report wall time, KIPS, skip ratio and
    per-stage cycle activity (see docs/INTERNALS.md).
``cache``
    ``info``/``clear`` for the sweep result cache.

All simulation commands accept ``--scale smoke|bench|full`` plus explicit
``--epochs`` / ``--epoch-size`` / ``--seed`` overrides.  ``run`` and
``compare`` additionally accept ``--resilient`` / ``--resume-dir DIR``:
runs then execute under the reliability guard (watchdog, partition
sanitizing, retry-from-checkpoint) with crash-safe on-disk state, and
re-invoking the same command with the same ``--resume-dir`` after an
interruption completes the sweep with identical metrics.

Unknown workload, benchmark, or policy names print a one-line error with
the valid choices and exit with status 2.
"""

import argparse
import sys

from repro.experiments.report import format_table
from repro.experiments.runner import (
    ExperimentScale,
    compare_policies,
    run_policy,
    solo_ipc,
)
from repro.workloads.mixes import GROUPS, get_workload, workload_names
from repro.workloads.spec2000 import PROFILES, get_profile

_SCALES = {
    "smoke": ExperimentScale.smoke,
    "bench": ExperimentScale.bench,
    "full": ExperimentScale.full,
}


def _fail(message):
    """One-line usage error: print to stderr, exit with status 2."""
    print("error: %s" % message, file=sys.stderr)
    raise SystemExit(2)


def _get_workload_checked(name):
    try:
        return get_workload(name)
    except KeyError:
        _fail("unknown workload %r (valid: %s)"
              % (name, ", ".join(sorted(workload_names()))))


def _get_profile_checked(name):
    from repro.workloads.spec2000 import profile_names

    try:
        return get_profile(name)
    except KeyError:
        _fail("unknown benchmark %r (valid: %s)"
              % (name, ", ".join(sorted(profile_names()))))


def _policy_factory(name, scale):
    """Resolve a policy name (baselines + HILL[-metric] + PHASE-HILL).

    Name resolution lives in :mod:`repro.experiments.parallel` (the sweep
    workers share it); this wrapper only converts unknown names into the
    CLI's one-line exit-2 error.
    """
    from repro.experiments.parallel import policy_factory

    try:
        return policy_factory(name, scale)
    except ValueError as exc:
        _fail(str(exc))


def _scale_from(args):
    from repro.pipeline.fastpath import core_mode

    try:
        # Fail fast (exit 2) on a bad REPRO_CORE before any simulation
        # starts, instead of deep inside the first run() call.
        core_mode()
    except ValueError as exc:
        _fail(str(exc))
    scale = _SCALES[args.scale]()
    overrides = {}
    if args.epochs is not None:
        overrides["epochs"] = args.epochs
    if args.epoch_size is not None:
        overrides["epoch_size"] = args.epoch_size
    if args.seed is not None:
        overrides["seed"] = args.seed
    return scale.with_overrides(**overrides) if overrides else scale


def _add_scale_args(parser):
    parser.add_argument("--scale", choices=sorted(_SCALES), default="bench")
    parser.add_argument("--epochs", type=int, default=None)
    parser.add_argument("--epoch-size", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)


def _add_resilience_args(parser):
    parser.add_argument("--resilient", action="store_true",
                        help="run under the reliability guard (watchdog, "
                             "partition sanitizing, retry-from-checkpoint)")
    parser.add_argument("--resume-dir", default=None, metavar="DIR",
                        help="crash-safe run state directory; re-invoking "
                             "with the same DIR resumes an interrupted "
                             "sweep (implies --resilient)")


def cmd_list_workloads(args):
    names = workload_names(args.group)
    rows = []
    for name in names:
        workload = get_workload(name)
        rows.append([workload.name, workload.group, workload.num_threads,
                     workload.rsc_sum])
    print(format_table(["workload", "group", "threads", "Rsc sum"], rows))


def cmd_list_benchmarks(args):
    rows = [
        [profile.name,
         "%s %s" % ("FP" if profile.is_fp else "Int", profile.ctype),
         profile.rsc_hint, profile.freq.value]
        for profile in PROFILES.values()
    ]
    print(format_table(["benchmark", "type", "Rsc (paper)", "Freq"], rows))


def _report_result(result):
    print(format_table(
        ["thread", "IPC", "SingleIPC"],
        [[tid, ipc, single] for tid, (ipc, single)
         in enumerate(zip(result.ipcs, result.single_ipcs))],
    ))
    print()
    print(format_table(
        ["metric", "value"],
        [["avg IPC", result.avg_ipc],
         ["weighted IPC", result.weighted_ipc],
         ["harmonic weighted IPC", result.harmonic_weighted_ipc]],
    ))


def _resilient_requested(args):
    return args.resilient or args.resume_dir is not None


def _report_reliability(result):
    report = result.reliability or {}
    notes = []
    if report.get("resumed_from") is not None:
        notes.append("resumed from epoch %d" % report["resumed_from"])
    if report.get("retries"):
        notes.append("%d retries" % report["retries"])
    if report.get("partition_repairs"):
        notes.append("%d partition repairs" % report["partition_repairs"])
    faults = sum(report.get("faults_injected", {}).values())
    if faults:
        notes.append("%d faults injected" % faults)
    if notes:
        print("[resilient] " + ", ".join(notes))


def cmd_run(args):
    scale = _scale_from(args)
    workload = _get_workload_checked(args.workload)
    policy = _policy_factory(args.policy, scale)()
    print("running %s under %s (%d epochs x %d cycles)..."
          % (workload.name, policy.name, scale.epochs, scale.epoch_size))
    if _resilient_requested(args):
        from repro.reliability.guard import run_policy_resilient, run_slug

        run_dir = None
        if args.resume_dir is not None:
            import os

            run_dir = os.path.join(
                args.resume_dir,
                run_slug(workload.name, policy.name, scale.seed))
        result = run_policy_resilient(workload, policy, scale,
                                      run_dir=run_dir, resume=True,
                                      log=lambda msg: print("[resilient] %s"
                                                            % msg))
        _report_reliability(result)
    else:
        result = run_policy(workload, policy, scale)
    _report_result(result)


def cmd_compare(args):
    scale = _scale_from(args)
    workload = _get_workload_checked(args.workload)
    factories = {
        name: _policy_factory(name, scale) for name in args.policies
    }
    print("comparing %s on %s..." % (", ".join(factories), workload.name))
    if _resilient_requested(args):
        return _compare_resilient(args, scale, workload, factories)
    if len(args.seeds) > 1:
        from repro.experiments.runner import run_policy_multi

        rows = []
        for name, factory in factories.items():
            __, summary = run_policy_multi(workload, factory, scale,
                                           seeds=args.seeds)
            rows.append([name] + [
                "%.3f +/- %.3f" % summary[metric]
                for metric in ("avg_ipc", "weighted_ipc",
                               "harmonic_weighted_ipc")
            ])
        print(format_table(
            ["policy", "avg IPC", "weighted IPC", "harmonic weighted IPC"],
            rows,
        ))
        return
    results = compare_policies(workload, factories, scale)
    print(format_table(
        ["policy", "avg IPC", "weighted IPC", "harmonic weighted IPC"],
        [[name, result.avg_ipc, result.weighted_ipc,
          result.harmonic_weighted_ipc]
         for name, result in results.items()],
    ))


def _compare_resilient(args, scale, workload, factories):
    """``compare --resilient``: one resumable run directory per
    (workload, policy, seed); killed sweeps continue where they died."""
    import statistics
    import tempfile

    from repro.reliability.guard import compare_policies_resilient

    resume_dir = args.resume_dir
    if resume_dir is None:
        resume_dir = tempfile.mkdtemp(prefix="repro-resilient-")
        print("[resilient] no --resume-dir given; state in %s" % resume_dir)
    log = lambda msg: print("[resilient] %s" % msg)
    if len(args.seeds) > 1:
        rows = []
        for name, factory in factories.items():
            values = {"avg_ipc": [], "weighted_ipc": [],
                      "harmonic_weighted_ipc": []}
            for seed in args.seeds:
                seeded = scale.with_overrides(seed=seed)
                result = compare_policies_resilient(
                    workload, {name: factory}, seeded, resume_dir,
                    log=log)[name]
                values["avg_ipc"].append(result.avg_ipc)
                values["weighted_ipc"].append(result.weighted_ipc)
                values["harmonic_weighted_ipc"].append(
                    result.harmonic_weighted_ipc)
            rows.append([name] + [
                "%.3f +/- %.3f" % (statistics.mean(values[metric]),
                                   statistics.pstdev(values[metric]))
                for metric in ("avg_ipc", "weighted_ipc",
                               "harmonic_weighted_ipc")
            ])
        print(format_table(
            ["policy", "avg IPC", "weighted IPC", "harmonic weighted IPC"],
            rows,
        ))
        return
    results = compare_policies_resilient(workload, factories, scale,
                                         resume_dir, log=log)
    for result in results.values():
        _report_reliability(result)
    print(format_table(
        ["policy", "avg IPC", "weighted IPC", "harmonic weighted IPC"],
        [[name, result.avg_ipc, result.weighted_ipc,
          result.harmonic_weighted_ipc]
         for name, result in results.items()],
    ))


def cmd_solo(args):
    scale = _scale_from(args)
    profile = _get_profile_checked(args.benchmark)
    value = solo_ipc(profile, scale)
    print("%s stand-alone IPC: %.3f" % (profile.name, value))


def cmd_verify(args):
    from repro.reliability.verify import run_verification

    scale = _scale_from(args)
    workload = args.workload
    _get_workload_checked(workload)  # fail fast with the friendly message
    if args.fidelity_period is not None and args.fidelity_period <= 0:
        _fail("--fidelity-period must be a positive number of epochs, "
              "got %d" % args.fidelity_period)
    return run_verification(scale, workload_name=workload,
                            fidelity_period=args.fidelity_period)


def cmd_surface(args):
    from repro.experiments.figures import fig2_surface

    scale = _scale_from(args)
    surface = fig2_surface(scale, benchmarks=tuple(args.benchmarks))
    for share0, row in surface.rows():
        print("share0=%3d: %s" % (share0, " ".join(
            "%d:%.2f" % (share1, value) for share1, value in row)))
    print("peak %.3f at %s" % (surface.peak_ipc, surface.peak_shares))


def _print_sweep_event(record):
    """One-line live progress for ``repro sweep``."""
    event = record["event"]
    if event == "sweep-start":
        print("[sweep] %d cells: %d cached, %d to simulate (%d workers)"
              % (record["total"], record["cached"], record["pending"],
                 record["jobs"]))
    elif event == "cell-done":
        eta = (", eta %ds" % record["eta_s"]) if "eta_s" in record else ""
        print("[sweep] %d/%d done (%d cached, %d running%s) — %s"
              % (record["done"], record["total"], record["cached"],
                 record["running"], eta, record["cell"]))
    elif event == "sweep-done":
        print("[sweep] finished: %d cells (%d cached, %d simulated) "
              "in %.1fs" % (record["total"], record["cached"],
                            record["simulated"], record["wall_s"]))
    elif event == "cell-retry":
        print("[sweep] retrying %s (attempt %d in %.1fs): %s"
              % (record["cell"], record["attempt"], record["delay_s"],
                 record["error"]))
    elif event == "cell-timeout":
        print("[sweep] %s heartbeat stale for %.0fs — killing its worker"
              % (record["cell"], record["timeout_s"]))
    elif event == "cell-quarantined":
        print("[sweep] quarantined %s after %d attempts: %s"
              % (record["cell"], record["attempts"], record["error"]))
    elif event == "pool-broken":
        print("[sweep] worker pool broke (%d so far); rebuilding"
              % record["breaks"])
    elif event == "sweep-degraded":
        print("[sweep] degrading to in-process serial execution: %s"
              % record["reason"])


def cmd_sweep(args):
    from repro.experiments.parallel import (
        DEFAULT_POLICIES,
        SWEEP_PRESETS,
        SweepEngine,
        grid_cells,
        merged_json,
    )
    from repro.reliability.supervisor import (
        CellBootstrapError,
        Supervision,
        SweepAborted,
    )

    scale = _scale_from(args)
    if args.cell_timeout is not None and args.cell_timeout <= 0:
        _fail("--cell-timeout must be a positive number of seconds")
    if args.max_attempts < 1:
        _fail("--max-attempts must be >= 1")
    groups = list(args.groups or [])
    policies = list(args.policies or [])
    if args.preset is not None:
        preset_groups, preset_policies = SWEEP_PRESETS[args.preset]
        groups = groups or list(preset_groups)
        policies = policies or list(preset_policies)
    if not args.workloads and not groups:
        _fail("sweep needs --workloads, --groups, or --preset")
    try:
        cells = grid_cells(
            workloads=args.workloads, groups=groups,
            policies=policies or DEFAULT_POLICIES,
            seeds=tuple(args.seeds), epochs=None,  # --epochs is in scale
            workloads_per_group=(args.workloads_per_group
                                 if args.workloads_per_group is not None
                                 else scale.workloads_per_group))
    except (KeyError, ValueError) as exc:
        # Both error paths already name the valid choices.
        _fail(exc.args[0] if exc.args else str(exc))
    engine = SweepEngine(
        scale, jobs=args.jobs, cache_dir=args.cache_dir,
        events_path=args.events, resume_dir=args.resume_dir,
        use_cache=not args.no_cache,
        supervision=Supervision(cell_timeout=args.cell_timeout,
                                max_attempts=args.max_attempts,
                                degrade=not args.no_degrade,
                                seed=scale.seed),
        on_event=None if args.quiet else _print_sweep_event)
    try:
        results = engine.run_cells(cells)
    except CellBootstrapError as exc:
        _fail(str(exc).splitlines()[0])
    except SweepAborted as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    rows = [
        [cell.workload, cell.policy, cell.seed, result.avg_ipc,
         result.weighted_ipc, result.harmonic_weighted_ipc]
        for cell, result in zip(cells, results) if result is not None
    ]
    print(format_table(
        ["workload", "policy", "seed", "avg IPC", "weighted IPC",
         "harmonic weighted IPC"], rows))
    if engine.quarantined:
        print("%d cell(s) quarantined after repeated failures "
              "(ledger: %s):" % (len(engine.quarantined),
                                 engine.quarantine_path))
        for cell, entry in engine.quarantined.items():
            error = entry.get("last_error", "").splitlines()
            print("  %s — %d attempts — %s"
                  % (cell.label, entry.get("attempts", 0),
                     error[0] if error else ""))
    if args.out is not None:
        import os

        out_dir = os.path.dirname(args.out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.out, "w") as handle:
            handle.write(merged_json(cells, results, scale,
                                     quarantined=engine.quarantined))
        print("merged results written to %s" % args.out)
    return 1 if engine.quarantined else 0


def cmd_chaos(args):
    from repro.reliability.chaos import CHAOS_PRESETS, run_chaos

    scale = _scale_from(args)
    if args.cell_timeout is not None and args.cell_timeout <= 0:
        _fail("--cell-timeout must be a positive number of seconds")
    if args.max_attempts < 1:
        _fail("--max-attempts must be >= 1")
    if args.preset not in CHAOS_PRESETS:
        _fail("unknown chaos preset %r (valid: %s)"
              % (args.preset, ", ".join(sorted(CHAOS_PRESETS))))
    report = run_chaos(
        args.preset, scale, jobs=args.jobs, cell_timeout=args.cell_timeout,
        max_attempts=args.max_attempts, degrade=not args.no_degrade,
        keep=args.keep, work_dir=args.work_dir,
        log=None if args.quiet else (lambda msg: print("[chaos] %s" % msg)))
    print("[chaos] preset=%s cells=%d retries=%d timeouts=%d "
          "pool_breaks=%d degraded=%s resumed=%d"
          % (report["preset"], len(report["cells"]), report["retries"],
             report["timeouts"], report["pool_breaks"],
             report["degraded"], report["resumed"]))
    print("[chaos] quarantined: %d (expected %d)%s"
          % (len(report["quarantined"]), report["expected_quarantined"],
             " — " + ", ".join(report["quarantined"])
             if report["quarantined"] else ""))
    print("[chaos] merged results %s the fault-free serial reference"
          % ("match" if report["identical"] else "DIVERGE from"))
    if report["work_dir"] is not None:
        print("[chaos] work dir kept at %s" % report["work_dir"])
    print("[chaos] %s" % ("OK" if report["ok"] else "FAILED"))
    return 0 if report["ok"] else 1


def cmd_profile(args):
    from repro.experiments.profiling import profile_run
    from repro.pipeline.profile import STAGES

    scale = _scale_from(args)
    workload = _get_workload_checked(args.workload)
    records = {}
    for core in args.cores:
        policy = _policy_factory(args.policy, scale)()
        print("profiling %s under %s [%s core]..."
              % (workload.name, policy.name, core))
        records[core] = profile_run(workload, policy, scale, core=core)
    print(format_table(
        ["core", "cycles", "committed", "IPC", "wall (s)", "KIPS",
         "skip ratio", "skips"],
        [[core, record["cycles"], record["committed"],
          "%.3f" % record["ipc"], "%.3f" % record["wall_s"],
          "%.1f" % record["kips"], "%.3f" % record["skip_ratio"],
          record["skip_events"]]
         for core, record in records.items()]))
    print()
    print(format_table(
        ["stage"] + ["%s active" % core for core in records],
        [[stage] + [record["stage_cycles"][stage]
                    for record in records.values()]
         for stage in STAGES]))
    if "fast" in records and "reference" in records:
        fast_wall = records["fast"]["wall_s"]
        if fast_wall > 0:
            print()
            print("fast-core speedup: %.2fx"
                  % (records["reference"]["wall_s"] / fast_wall))
    if args.out is not None:
        import json

        with open(args.out, "w") as handle:
            json.dump({"workload": workload.name, "policy": args.policy,
                       "records": records}, handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print("profile records written to %s" % args.out)


def cmd_cache(args):
    from repro.experiments.parallel import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.cache_command == "info":
        stats = cache.info()
        print(format_table(
            ["field", "value"],
            [["directory", stats.directory],
             ["entries", stats.entries],
             ["size", "%.1f KiB" % (stats.bytes / 1024.0)]]))
    else:  # clear
        removed = cache.clear()
        print("removed %d cached result(s) from %s"
              % (removed, cache.directory))


def cmd_lint(args):
    from repro.analysis.lint import engine

    if args.explain is not None:
        try:
            print(engine.explain(args.explain))
        except KeyError:
            _fail("unknown rule %r (known: %s)"
                  % (args.explain,
                     ", ".join(sorted(engine.RULES))))
        return 0
    try:
        findings = engine.run_repo_lint(select=tuple(args.select or ()),
                                        ignore=tuple(args.ignore or ()))
        rendered = (engine.render_json(findings) if args.format == "json"
                    else engine.render_text(findings))
    except Exception as exc:  # internal error: exit 2, not a finding list
        _fail("lint pass crashed: %s: %s" % (type(exc).__name__, exc))
    print(rendered, end="" if rendered.endswith("\n") else "\n")
    return 1 if findings else 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Learning-based SMT resource distribution (ISCA 2006 "
                    "reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    sub = commands.add_parser("list-workloads",
                              help="the 42 Table 3 workloads")
    sub.add_argument("--group", choices=GROUPS, default=None)
    sub.set_defaults(func=cmd_list_workloads)

    sub = commands.add_parser("list-benchmarks",
                              help="the 22 Table 2 benchmarks")
    sub.set_defaults(func=cmd_list_benchmarks)

    sub = commands.add_parser("run", help="one workload under one policy")
    sub.add_argument("--workload", required=True)
    sub.add_argument("--policy", default="HILL")
    _add_scale_args(sub)
    _add_resilience_args(sub)
    sub.set_defaults(func=cmd_run)

    sub = commands.add_parser("compare", help="several policies side by side")
    sub.add_argument("--workload", required=True)
    sub.add_argument("--policies", nargs="+",
                     default=["ICOUNT", "FLUSH", "DCRA", "HILL"])
    sub.add_argument("--seeds", nargs="+", type=int, default=[0],
                     help="evaluate across several seeds (reports mean "
                          "+/- stdev)")
    _add_scale_args(sub)
    _add_resilience_args(sub)
    sub.set_defaults(func=cmd_compare)

    sub = commands.add_parser("solo", help="stand-alone IPC of a benchmark")
    sub.add_argument("--benchmark", required=True)
    _add_scale_args(sub)
    sub.set_defaults(func=cmd_solo)

    sub = commands.add_parser("surface",
                              help="Figure 2 three-thread surface")
    sub.add_argument("--benchmarks", nargs=3,
                     default=["mesa", "vortex", "fma3d"])
    _add_scale_args(sub)
    sub.set_defaults(func=cmd_surface)

    sub = commands.add_parser(
        "verify",
        help="reliability suite: clean invariants + fault matrix "
             "(non-zero exit on violation)")
    sub.add_argument("--workload", default="art-mcf")
    sub.add_argument("--fidelity-period", type=int, default=2,
                     help="checkpoint-fidelity replay every N epochs")
    _add_scale_args(sub)
    # The matrix is ~10 guarded runs; smoke scale keeps it interactive.
    sub.set_defaults(func=cmd_verify, scale="smoke")

    sub = commands.add_parser(
        "sweep",
        help="run a (workload x policy x seed) grid over a process pool "
             "with on-disk result caching")
    sub.add_argument("--workloads", nargs="+", default=None,
                     help="explicit workload names")
    sub.add_argument("--groups", nargs="+", choices=GROUPS, default=None,
                     help="Table 3 groups to sweep")
    sub.add_argument("--preset", choices=("fig4", "fig9", "fig10", "sec5"),
                     default=None,
                     help="shorthand for a figure's grid (groups + policies)")
    sub.add_argument("--policies", nargs="+", default=None,
                     help="policies per workload (default: ICOUNT FLUSH "
                          "DCRA HILL)")
    sub.add_argument("--seeds", nargs="+", type=int, default=[0])
    sub.add_argument("--workloads-per-group", type=int, default=None,
                     metavar="N", help="first N workloads of each group")
    sub.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="worker processes (1 = serial; results are "
                          "byte-identical either way)")
    sub.add_argument("--cache-dir", default=None, metavar="DIR",
                     help="result cache (default: $REPRO_CACHE_DIR or "
                          "~/.cache/repro-sweeps)")
    sub.add_argument("--no-cache", action="store_true",
                     help="bypass the result cache entirely")
    sub.add_argument("--out", default=None, metavar="FILE",
                     help="write merged results JSON here")
    sub.add_argument("--events", default=None, metavar="FILE",
                     help="append JSONL progress events here")
    sub.add_argument("--resume-dir", default=None, metavar="DIR",
                     help="per-cell crash-safe checkpoints; re-running "
                          "after a kill resumes mid-cell")
    sub.add_argument("--cell-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="kill and retry a cell whose per-epoch "
                          "heartbeat goes stale this long (default: no "
                          "timeout)")
    sub.add_argument("--max-attempts", type=int, default=3, metavar="N",
                     help="attempts per cell before it is quarantined "
                          "(default: 3)")
    sub.add_argument("--no-degrade", action="store_true",
                     help="abort instead of falling back to in-process "
                          "serial execution when the worker pool keeps "
                          "collapsing")
    sub.add_argument("--quiet", action="store_true",
                     help="suppress live progress lines")
    _add_scale_args(sub)
    sub.set_defaults(func=cmd_sweep)

    sub = commands.add_parser(
        "chaos",
        help="fault-injection harness for the sweep supervisor: inject "
             "worker kills/hangs/corruption and verify convergence")
    sub.add_argument("--preset", default="kill-one-worker",
                     choices=("corrupt-result", "flaky-cells",
                              "hang-one-cell", "kill-one-worker",
                              "kill-storm", "poison-cell"),
                     help="fault scenario (see repro.reliability.chaos."
                          "CHAOS_PRESETS)")
    sub.add_argument("--jobs", type=int, default=2, metavar="N",
                     help="worker processes for the chaos sweep")
    sub.add_argument("--cell-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="override the preset's heartbeat timeout")
    sub.add_argument("--max-attempts", type=int, default=3, metavar="N")
    sub.add_argument("--no-degrade", action="store_true",
                     help="abort instead of degrading to serial when "
                          "the pool keeps collapsing")
    sub.add_argument("--keep", action="store_true",
                     help="keep the chaos work directory (cache, "
                          "events.jsonl, quarantine ledger)")
    sub.add_argument("--work-dir", default=None, metavar="DIR",
                     help="run inside DIR instead of a fresh tempdir")
    sub.add_argument("--quiet", action="store_true",
                     help="suppress per-fault progress lines")
    _add_scale_args(sub)
    # The grid is 4 smoke-or-larger cells run twice (chaos + reference);
    # smoke keeps it interactive, like `verify`.
    sub.set_defaults(func=cmd_chaos, scale="smoke")

    sub = commands.add_parser(
        "profile",
        help="simulator throughput: wall time, KIPS, skip ratio and "
             "per-stage activity under each core")
    sub.add_argument("--workload", default="art-mcf")
    sub.add_argument("--policy", default="ICOUNT")
    sub.add_argument("--cores", nargs="+", choices=("fast", "reference"),
                     default=["fast", "reference"],
                     help="which run-loop cores to time")
    sub.add_argument("--out", default=None, metavar="FILE",
                     help="write the profile records as JSON here")
    _add_scale_args(sub)
    sub.set_defaults(func=cmd_profile)

    sub = commands.add_parser(
        "lint",
        help="static self-analysis: fingerprint coverage, determinism, "
             "policy contracts (exit 1 on findings)")
    sub.add_argument("--format", choices=("text", "json"), default="text")
    sub.add_argument("--select", nargs="+", default=None, metavar="CODE",
                     help="only rules with these code prefixes "
                          "(e.g. FP ND1 PC203)")
    sub.add_argument("--ignore", nargs="+", default=None, metavar="CODE",
                     help="drop rules with these code prefixes")
    sub.add_argument("--explain", default=None, metavar="RULE",
                     help="print one rule's documentation and exit")
    sub.set_defaults(func=cmd_lint)

    sub = commands.add_parser(
        "cache", help="inspect or empty the sweep result cache")
    cache_commands = sub.add_subparsers(dest="cache_command", required=True)
    for name, help_text in (("info", "entry count, size, directory"),
                            ("clear", "delete every cached result")):
        cache_sub = cache_commands.add_parser(name, help=help_text)
        cache_sub.add_argument("--cache-dir", default=None, metavar="DIR")
        cache_sub.set_defaults(func=cmd_cache)

    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args) or 0


if __name__ == "__main__":
    sys.exit(main())
