"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list-workloads``
    Print the Table 3 workloads (optionally one group).
``list-benchmarks``
    Print the Table 2 benchmark profiles.
``run``
    Run one workload under one policy and report per-thread IPCs and the
    three Section 3.1.1 metrics.
``compare``
    Run several policies on one workload side by side.
``solo``
    Stand-alone IPC of a single benchmark (the SingleIPC measurement).
``surface``
    The Figure 2 three-thread distribution surface.
``verify``
    Reliability suite: clean-run pipeline invariants (including
    checkpoint-fidelity replays) plus the fault-injection matrix.
    Exits non-zero on any violation or unhandled failure.

All simulation commands accept ``--scale smoke|bench|full`` plus explicit
``--epochs`` / ``--epoch-size`` / ``--seed`` overrides.  ``run`` and
``compare`` additionally accept ``--resilient`` / ``--resume-dir DIR``:
runs then execute under the reliability guard (watchdog, partition
sanitizing, retry-from-checkpoint) with crash-safe on-disk state, and
re-invoking the same command with the same ``--resume-dir`` after an
interruption completes the sweep with identical metrics.

Unknown workload, benchmark, or policy names print a one-line error with
the valid choices and exit with status 2.
"""

import argparse
import sys

from repro.core.hill_climbing import HillClimbingPolicy
from repro.core.metrics import metric_by_name
from repro.core.phase_hill import PhaseHillPolicy
from repro.experiments.report import format_table
from repro.experiments.runner import (
    ExperimentScale,
    compare_policies,
    run_policy,
    solo_ipc,
)
from repro.policies import BASELINE_POLICIES
from repro.workloads.mixes import GROUPS, get_workload, workload_names
from repro.workloads.spec2000 import PROFILES, get_profile

_SCALES = {
    "smoke": ExperimentScale.smoke,
    "bench": ExperimentScale.bench,
    "full": ExperimentScale.full,
}


def _fail(message):
    """One-line usage error: print to stderr, exit with status 2."""
    print("error: %s" % message, file=sys.stderr)
    raise SystemExit(2)


def _get_workload_checked(name):
    try:
        return get_workload(name)
    except KeyError:
        _fail("unknown workload %r (valid: %s)"
              % (name, ", ".join(sorted(workload_names()))))


def _get_profile_checked(name):
    from repro.workloads.spec2000 import profile_names

    try:
        return get_profile(name)
    except KeyError:
        _fail("unknown benchmark %r (valid: %s)"
              % (name, ", ".join(sorted(profile_names()))))


def _policy_factory(name, scale):
    """Resolve a policy name (baselines + HILL[-metric] + PHASE-HILL)."""
    upper = name.upper()
    if upper in BASELINE_POLICIES:
        return BASELINE_POLICIES[upper]
    if upper.startswith("PHASE-HILL") or upper.startswith("HILL"):
        metric_name = "wipc"
        if "-" in upper:
            suffix = upper.split("-")[-1]
            if suffix in ("IPC", "WIPC", "HWIPC"):
                metric_name = suffix.lower()
        cls = PhaseHillPolicy if upper.startswith("PHASE") else \
            HillClimbingPolicy
        return lambda: cls(metric=metric_by_name(metric_name),
                           software_cost=scale.hill_software_cost,
                           sample_period=scale.hill_sample_period)
    _fail("unknown policy %r (valid: %s, HILL[-IPC|-WIPC|-HWIPC], "
          "PHASE-HILL)" % (name, ", ".join(sorted(BASELINE_POLICIES))))


def _scale_from(args):
    scale = _SCALES[args.scale]()
    overrides = {}
    if args.epochs is not None:
        overrides["epochs"] = args.epochs
    if args.epoch_size is not None:
        overrides["epoch_size"] = args.epoch_size
    if args.seed is not None:
        overrides["seed"] = args.seed
    return scale.with_overrides(**overrides) if overrides else scale


def _add_scale_args(parser):
    parser.add_argument("--scale", choices=sorted(_SCALES), default="bench")
    parser.add_argument("--epochs", type=int, default=None)
    parser.add_argument("--epoch-size", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)


def _add_resilience_args(parser):
    parser.add_argument("--resilient", action="store_true",
                        help="run under the reliability guard (watchdog, "
                             "partition sanitizing, retry-from-checkpoint)")
    parser.add_argument("--resume-dir", default=None, metavar="DIR",
                        help="crash-safe run state directory; re-invoking "
                             "with the same DIR resumes an interrupted "
                             "sweep (implies --resilient)")


def cmd_list_workloads(args):
    names = workload_names(args.group)
    rows = []
    for name in names:
        workload = get_workload(name)
        rows.append([workload.name, workload.group, workload.num_threads,
                     workload.rsc_sum])
    print(format_table(["workload", "group", "threads", "Rsc sum"], rows))


def cmd_list_benchmarks(args):
    rows = [
        [profile.name,
         "%s %s" % ("FP" if profile.is_fp else "Int", profile.ctype),
         profile.rsc_hint, profile.freq.value]
        for profile in PROFILES.values()
    ]
    print(format_table(["benchmark", "type", "Rsc (paper)", "Freq"], rows))


def _report_result(result):
    print(format_table(
        ["thread", "IPC", "SingleIPC"],
        [[tid, ipc, single] for tid, (ipc, single)
         in enumerate(zip(result.ipcs, result.single_ipcs))],
    ))
    print()
    print(format_table(
        ["metric", "value"],
        [["avg IPC", result.avg_ipc],
         ["weighted IPC", result.weighted_ipc],
         ["harmonic weighted IPC", result.harmonic_weighted_ipc]],
    ))


def _resilient_requested(args):
    return args.resilient or args.resume_dir is not None


def _report_reliability(result):
    report = result.reliability or {}
    notes = []
    if report.get("resumed_from") is not None:
        notes.append("resumed from epoch %d" % report["resumed_from"])
    if report.get("retries"):
        notes.append("%d retries" % report["retries"])
    if report.get("partition_repairs"):
        notes.append("%d partition repairs" % report["partition_repairs"])
    faults = sum(report.get("faults_injected", {}).values())
    if faults:
        notes.append("%d faults injected" % faults)
    if notes:
        print("[resilient] " + ", ".join(notes))


def cmd_run(args):
    scale = _scale_from(args)
    workload = _get_workload_checked(args.workload)
    policy = _policy_factory(args.policy, scale)()
    print("running %s under %s (%d epochs x %d cycles)..."
          % (workload.name, policy.name, scale.epochs, scale.epoch_size))
    if _resilient_requested(args):
        from repro.reliability.guard import run_policy_resilient, run_slug

        run_dir = None
        if args.resume_dir is not None:
            import os

            run_dir = os.path.join(
                args.resume_dir,
                run_slug(workload.name, policy.name, scale.seed))
        result = run_policy_resilient(workload, policy, scale,
                                      run_dir=run_dir, resume=True,
                                      log=lambda msg: print("[resilient] %s"
                                                            % msg))
        _report_reliability(result)
    else:
        result = run_policy(workload, policy, scale)
    _report_result(result)


def cmd_compare(args):
    scale = _scale_from(args)
    workload = _get_workload_checked(args.workload)
    factories = {
        name: _policy_factory(name, scale) for name in args.policies
    }
    print("comparing %s on %s..." % (", ".join(factories), workload.name))
    if _resilient_requested(args):
        return _compare_resilient(args, scale, workload, factories)
    if len(args.seeds) > 1:
        from repro.experiments.runner import run_policy_multi

        rows = []
        for name, factory in factories.items():
            __, summary = run_policy_multi(workload, factory, scale,
                                           seeds=args.seeds)
            rows.append([name] + [
                "%.3f +/- %.3f" % summary[metric]
                for metric in ("avg_ipc", "weighted_ipc",
                               "harmonic_weighted_ipc")
            ])
        print(format_table(
            ["policy", "avg IPC", "weighted IPC", "harmonic weighted IPC"],
            rows,
        ))
        return
    results = compare_policies(workload, factories, scale)
    print(format_table(
        ["policy", "avg IPC", "weighted IPC", "harmonic weighted IPC"],
        [[name, result.avg_ipc, result.weighted_ipc,
          result.harmonic_weighted_ipc]
         for name, result in results.items()],
    ))


def _compare_resilient(args, scale, workload, factories):
    """``compare --resilient``: one resumable run directory per
    (workload, policy, seed); killed sweeps continue where they died."""
    import statistics
    import tempfile

    from repro.reliability.guard import compare_policies_resilient

    resume_dir = args.resume_dir
    if resume_dir is None:
        resume_dir = tempfile.mkdtemp(prefix="repro-resilient-")
        print("[resilient] no --resume-dir given; state in %s" % resume_dir)
    log = lambda msg: print("[resilient] %s" % msg)
    if len(args.seeds) > 1:
        rows = []
        for name, factory in factories.items():
            values = {"avg_ipc": [], "weighted_ipc": [],
                      "harmonic_weighted_ipc": []}
            for seed in args.seeds:
                seeded = scale.with_overrides(seed=seed)
                result = compare_policies_resilient(
                    workload, {name: factory}, seeded, resume_dir,
                    log=log)[name]
                values["avg_ipc"].append(result.avg_ipc)
                values["weighted_ipc"].append(result.weighted_ipc)
                values["harmonic_weighted_ipc"].append(
                    result.harmonic_weighted_ipc)
            rows.append([name] + [
                "%.3f +/- %.3f" % (statistics.mean(values[metric]),
                                   statistics.pstdev(values[metric]))
                for metric in ("avg_ipc", "weighted_ipc",
                               "harmonic_weighted_ipc")
            ])
        print(format_table(
            ["policy", "avg IPC", "weighted IPC", "harmonic weighted IPC"],
            rows,
        ))
        return
    results = compare_policies_resilient(workload, factories, scale,
                                         resume_dir, log=log)
    for result in results.values():
        _report_reliability(result)
    print(format_table(
        ["policy", "avg IPC", "weighted IPC", "harmonic weighted IPC"],
        [[name, result.avg_ipc, result.weighted_ipc,
          result.harmonic_weighted_ipc]
         for name, result in results.items()],
    ))


def cmd_solo(args):
    scale = _scale_from(args)
    profile = _get_profile_checked(args.benchmark)
    value = solo_ipc(profile, scale)
    print("%s stand-alone IPC: %.3f" % (profile.name, value))


def cmd_verify(args):
    from repro.reliability.verify import run_verification

    scale = _scale_from(args)
    workload = args.workload
    _get_workload_checked(workload)  # fail fast with the friendly message
    if args.fidelity_period is not None and args.fidelity_period <= 0:
        _fail("--fidelity-period must be a positive number of epochs, "
              "got %d" % args.fidelity_period)
    return run_verification(scale, workload_name=workload,
                            fidelity_period=args.fidelity_period)


def cmd_surface(args):
    from repro.experiments.figures import fig2_surface

    scale = _scale_from(args)
    surface = fig2_surface(scale, benchmarks=tuple(args.benchmarks))
    for share0, row in surface.rows():
        print("share0=%3d: %s" % (share0, " ".join(
            "%d:%.2f" % (share1, value) for share1, value in row)))
    print("peak %.3f at %s" % (surface.peak_ipc, surface.peak_shares))


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Learning-based SMT resource distribution (ISCA 2006 "
                    "reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    sub = commands.add_parser("list-workloads",
                              help="the 42 Table 3 workloads")
    sub.add_argument("--group", choices=GROUPS, default=None)
    sub.set_defaults(func=cmd_list_workloads)

    sub = commands.add_parser("list-benchmarks",
                              help="the 22 Table 2 benchmarks")
    sub.set_defaults(func=cmd_list_benchmarks)

    sub = commands.add_parser("run", help="one workload under one policy")
    sub.add_argument("--workload", required=True)
    sub.add_argument("--policy", default="HILL")
    _add_scale_args(sub)
    _add_resilience_args(sub)
    sub.set_defaults(func=cmd_run)

    sub = commands.add_parser("compare", help="several policies side by side")
    sub.add_argument("--workload", required=True)
    sub.add_argument("--policies", nargs="+",
                     default=["ICOUNT", "FLUSH", "DCRA", "HILL"])
    sub.add_argument("--seeds", nargs="+", type=int, default=[0],
                     help="evaluate across several seeds (reports mean "
                          "+/- stdev)")
    _add_scale_args(sub)
    _add_resilience_args(sub)
    sub.set_defaults(func=cmd_compare)

    sub = commands.add_parser("solo", help="stand-alone IPC of a benchmark")
    sub.add_argument("--benchmark", required=True)
    _add_scale_args(sub)
    sub.set_defaults(func=cmd_solo)

    sub = commands.add_parser("surface",
                              help="Figure 2 three-thread surface")
    sub.add_argument("--benchmarks", nargs=3,
                     default=["mesa", "vortex", "fma3d"])
    _add_scale_args(sub)
    sub.set_defaults(func=cmd_surface)

    sub = commands.add_parser(
        "verify",
        help="reliability suite: clean invariants + fault matrix "
             "(non-zero exit on violation)")
    sub.add_argument("--workload", default="art-mcf")
    sub.add_argument("--fidelity-period", type=int, default=2,
                     help="checkpoint-fidelity replay every N epochs")
    _add_scale_args(sub)
    # The matrix is ~10 guarded runs; smoke scale keeps it interactive.
    sub.set_defaults(func=cmd_verify, scale="smoke")

    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args) or 0


if __name__ == "__main__":
    sys.exit(main())
