"""A set-associative cache with true-LRU replacement.

This is a functional (hit/miss) model: it tracks tag state only, not data.
It is deterministic and snapshottable, which the OFF-LINE learner relies on
to replay an epoch from a checkpoint bit-identically.
"""

from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Running hit/miss counters for one cache."""

    accesses: int = 0
    misses: int = 0

    @property
    def hits(self):
        return self.accesses - self.misses

    @property
    def miss_rate(self):
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def copy(self):
        return CacheStats(self.accesses, self.misses)


@dataclass
class Cache:
    """Set-associative cache with LRU replacement and fill-time tracking.

    A line allocated on a miss is tagged with the *fill time* the caller
    supplies (via :meth:`set_fill`): until that cycle, further accesses to
    the line "hit under fill" and must wait for the remaining fill latency,
    like loads merged into an MSHR.  Without this, a load squashed after
    issue would find its line magically present on re-execution, making
    flush-style policies nearly free.

    Parameters
    ----------
    name:
        Label used in reports (e.g. ``"DL1"``).
    size_bytes:
        Total capacity in bytes.
    block_bytes:
        Line size in bytes; must be a power of two.
    assoc:
        Associativity (ways per set).
    latency:
        Hit latency in cycles (reported by the hierarchy, not used here).
    """

    name: str
    size_bytes: int
    block_bytes: int
    assoc: int
    latency: int
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self):
        if self.block_bytes & (self.block_bytes - 1):
            raise ValueError("block_bytes must be a power of two")
        self.num_sets = self.size_bytes // (self.block_bytes * self.assoc)
        if self.num_sets < 1:
            raise ValueError(
                "cache %s has no sets: size=%d block=%d assoc=%d"
                % (self.name, self.size_bytes, self.block_bytes, self.assoc)
            )
        self._block_shift = self.block_bytes.bit_length() - 1
        # One dict per set mapping tag -> [last-use stamp, fill time].  The
        # dict is both the presence test and, via the stamps, the LRU order.
        self._sets = [dict() for __ in range(self.num_sets)]
        self._stamp = 0

    def _index_tag(self, addr):
        block = addr >> self._block_shift
        return block % self.num_sets, block // self.num_sets

    def access(self, addr, now=0):
        """Look up ``addr``; allocate on miss.

        Returns (hit, wait): ``hit`` is True when the line was present;
        ``wait`` is the remaining fill delay when the line is still in
        flight (0 for a settled line or a fresh miss — the caller assigns
        the new line's fill time via :meth:`set_fill`).
        """
        # _index_tag inlined: this is the hottest method in the memory
        # model (one call per load/store/fetch-block probe).
        block = addr >> self._block_shift
        num_sets = self.num_sets
        cache_set = self._sets[block % num_sets]
        tag = block // num_sets
        stamp = self._stamp + 1
        self._stamp = stamp
        stats = self.stats
        stats.accesses += 1
        entry = cache_set.get(tag)
        if entry is not None:
            entry[0] = stamp
            wait = entry[1] - now
            return True, wait if wait > 0 else 0
        stats.misses += 1
        if len(cache_set) >= self.assoc:
            victim = min(cache_set, key=lambda key: cache_set[key][0])
            del cache_set[victim]
        cache_set[tag] = [stamp, now]
        return False, 0

    def set_fill(self, addr, fill_time):
        """Record when the (just-allocated) line's data arrives."""
        index, tag = self._index_tag(addr)
        entry = self._sets[index].get(tag)
        if entry is not None:
            entry[1] = fill_time

    def probe(self, addr):
        """Check for presence without updating LRU state or stats."""
        index, tag = self._index_tag(addr)
        return tag in self._sets[index]

    def flush(self):
        """Invalidate every line (stats are preserved)."""
        for cache_set in self._sets:
            cache_set.clear()

    # -- checkpointing -----------------------------------------------------

    def snapshot(self):
        """Capture tag state + stats for later :meth:`restore`."""
        return (
            [{tag: list(entry) for tag, entry in cache_set.items()}
             for cache_set in self._sets],
            self._stamp,
            self.stats.copy(),
        )

    def restore(self, state):
        sets, stamp, stats = state
        self._sets = [
            {tag: list(entry) for tag, entry in cache_set.items()}
            for cache_set in sets
        ]
        self._stamp = stamp
        self.stats = stats.copy()
