"""Memory-hierarchy substrate: set-associative caches and a three-level
hierarchy (IL1 / DL1 / unified L2 / main memory) matching Table 1 of the
paper.

The hierarchy is the source of the long-latency load behaviour that the
paper's resource-distribution policies react to (resource clog, FLUSH
triggers, DCRA fast/slow classification, cache-miss clustering).
"""

from repro.memory.cache import Cache, CacheStats
from repro.memory.hierarchy import AccessResult, MemoryHierarchy

__all__ = ["Cache", "CacheStats", "MemoryHierarchy", "AccessResult"]
