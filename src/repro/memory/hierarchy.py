"""Three-level memory hierarchy: IL1 + DL1 backed by a unified L2 and main
memory, with the Table 1 latencies (1-cycle L1, 20-cycle L2, 300-cycle
memory first chunk).

Loads return an :class:`AccessResult` carrying the total latency and where
the access was satisfied; the pipeline uses ``missed_l2`` to drive the FLUSH
and STALL policies and DCRA's fast/slow classification.
"""

from repro.memory.cache import Cache

L1_LEVEL = "L1"
L2_LEVEL = "L2"
MEM_LEVEL = "MEM"


class AccessResult:
    """Outcome of one memory access.

    A plain ``__slots__`` record rather than a dataclass: one is built per
    memory access, which makes construction cost part of the simulator's
    per-instruction budget, and the miss flags are precomputed for the
    same reason.
    """

    __slots__ = ("latency", "level", "missed_l1", "missed_l2")

    def __init__(self, latency, level):
        self.latency = latency
        self.level = level  # L1_LEVEL, L2_LEVEL or MEM_LEVEL
        self.missed_l1 = level != L1_LEVEL
        self.missed_l2 = level == MEM_LEVEL

    def __repr__(self):
        return "AccessResult(latency=%r, level=%r)" % (self.latency, self.level)


class MemoryHierarchy:
    """IL1/DL1 + unified L2 + main memory.

    Parameters come from :class:`repro.pipeline.config.SMTConfig`; this class
    only needs the cache geometries and latencies.
    """

    def __init__(self, il1, dl1, ul2, mem_latency):
        if not (isinstance(il1, Cache) and isinstance(dl1, Cache) and isinstance(ul2, Cache)):
            raise TypeError("il1, dl1 and ul2 must be Cache instances")
        self.il1 = il1
        self.dl1 = dl1
        self.ul2 = ul2
        self.mem_latency = mem_latency

    def _access(self, l1, addr, now):
        hit, wait = l1.access(addr, now)
        if hit:
            # A hit on an in-flight line waits for the remaining fill (the
            # MSHR-merge case); a settled hit costs the L1 latency.
            return AccessResult(max(l1.latency, wait), L1_LEVEL)
        l2_hit, l2_wait = self.ul2.access(addr, now)
        if l2_hit:
            latency = l1.latency + max(self.ul2.latency, l2_wait)
            l1.set_fill(addr, now + latency)
            return AccessResult(latency, L2_LEVEL)
        latency = l1.latency + self.ul2.latency + self.mem_latency
        self.ul2.set_fill(addr, now + latency)
        l1.set_fill(addr, now + latency)
        return AccessResult(latency, MEM_LEVEL)

    def load(self, addr, now=0):
        """Data load through DL1 -> UL2 -> memory at cycle ``now``."""
        return self._access(self.dl1, addr, now)

    def store(self, addr, now=0):
        """Stores use the same lookup path as loads (write-allocate)."""
        return self._access(self.dl1, addr, now)

    def ifetch(self, addr, now=0):
        """Instruction fetch through IL1 -> UL2 -> memory."""
        return self._access(self.il1, addr, now)

    # -- checkpointing -----------------------------------------------------

    def snapshot(self):
        return (self.il1.snapshot(), self.dl1.snapshot(), self.ul2.snapshot())

    def restore(self, state):
        il1, dl1, ul2 = state
        self.il1.restore(il1)
        self.dl1.restore(dl1)
        self.ul2.restore(ul2)
