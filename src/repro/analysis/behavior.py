"""Time-varying behaviour classification (Section 4.4.1, Figure 12).

The paper identifies five representative behaviours of the best
partitioning over time:

* **TS** (temporally stable): the best partitioning barely moves.
* **SS** (spatially stable): it moves rapidly, but over wide hills, so any
  settled partitioning performs close to the best.
* **TL** (temporally limited): long stable regimes separated by occasional
  large regime changes (the learning-time failure mode).
* **SL** (spatially limited): persistent multi-peak curves trap the
  climber on a local maximum.
* **JL** (jitter limited): a stable best with transient inter-epoch jitter
  that fools the gradient.

``classify_behavior`` reproduces this taxonomy heuristically from an
OFF-LINE run's per-epoch curves and best partitionings.  The thresholds
are documented constants, chosen to reproduce the paper's qualitative
groupings, not tuned per workload.
"""

import enum
import statistics


class BehaviorClass(enum.Enum):
    TEMPORALLY_STABLE = "TS"
    SPATIALLY_STABLE = "SS"
    TEMPORALLY_LIMITED = "TL"
    SPATIALLY_LIMITED = "SL"
    JITTER_LIMITED = "JL"


#: A move of more than this fraction of the total resource between epochs
#: counts as a jump of the best partitioning.
JUMP_FRACTION = 1.0 / 16.0
#: Best-partition jump rate below which a workload is "temporally stable".
STABLE_JUMP_RATE = 0.08
#: Hill-width_0.97 (as a fraction of total) above which hills are "wide".
WIDE_HILL_FRACTION = 0.25
#: Fraction of epochs with multi-peak curves for the SL label.
MULTIMODAL_RATE = 0.5
#: Jump rate above which movement is "rapid" rather than episodic.
RAPID_JUMP_RATE = 0.35


def classify_behavior(offline_epochs, total):
    """Classify an OFF-LINE run into one of the five behaviours.

    Parameters
    ----------
    offline_epochs:
        Sequence of :class:`~repro.core.offline.OfflineEpoch`.
    total:
        Total partitioned units (``config.rename_int``).
    """
    if len(offline_epochs) < 3:
        raise ValueError("need at least three epochs to classify behaviour")
    from repro.analysis.hill_width import hill_width, peak_count

    best = [epoch.best_shares[0] for epoch in offline_epochs]
    jumps = [
        abs(after - before) > JUMP_FRACTION * total
        for before, after in zip(best, best[1:])
    ]
    jump_rate = sum(jumps) / len(jumps)

    widths = []
    multimodal = 0
    for epoch in offline_epochs:
        curve = epoch.curve_over_first_share()
        widths.append(hill_width(curve, 0.97) / total)
        if peak_count(curve, prominence=0.03) >= 2:
            multimodal += 1
    mean_width = statistics.mean(widths)
    multimodal_rate = multimodal / len(offline_epochs)

    # A jump is "persistent" (a regime change, not jitter) when the best
    # stays near the landing point for the following epochs.
    persistent = 0
    jump_count = 0
    for index, jumped in enumerate(jumps):
        if not jumped:
            continue
        jump_count += 1
        landing = best[index + 1]
        horizon = best[index + 2: index + 5]
        if horizon and all(
            abs(value - landing) <= JUMP_FRACTION * total for value in horizon
        ):
            persistent += 1

    if jump_rate <= STABLE_JUMP_RATE:
        if multimodal_rate >= MULTIMODAL_RATE:
            return BehaviorClass.SPATIALLY_LIMITED
        if persistent >= 1 and mean_width < WIDE_HILL_FRACTION:
            # Rare but lasting regime changes over sharp hills: the
            # learning-time-limited case even though movement is rare.
            return BehaviorClass.TEMPORALLY_LIMITED
        return BehaviorClass.TEMPORALLY_STABLE
    if jump_rate >= RAPID_JUMP_RATE:
        if mean_width >= WIDE_HILL_FRACTION:
            return BehaviorClass.SPATIALLY_STABLE
        return BehaviorClass.JITTER_LIMITED
    # Episodic movement: regime changes (TL) vs transient jitter (JL).
    if jump_count and persistent / jump_count >= 0.5:
        return BehaviorClass.TEMPORALLY_LIMITED
    return BehaviorClass.JITTER_LIMITED
