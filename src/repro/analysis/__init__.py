"""Analysis tools over simulation results.

* :mod:`repro.analysis.hill_width` — hill-width_N of an epoch's
  performance-vs-partitioning curve (Figures 6/7).
* :mod:`repro.analysis.behavior` — classify a workload's time-varying
  behaviour into the paper's five cases TS/SS/TL/SL/JL (Figure 12).
* :mod:`repro.analysis.characteristics` — re-derive the Table 2 "Rsc" and
  "Freq" columns from stand-alone runs, and the SM/LG(H/L) workload labels
  of Figure 11.
* :mod:`repro.analysis.surface` — the Figure 2 IPC-vs-distribution surface
  for three threads.
"""

from repro.analysis.hill_width import hill_width, hill_widths, peak_count
from repro.analysis.behavior import BehaviorClass, classify_behavior
from repro.analysis.characteristics import (
    derive_freq_label,
    requirement_series,
    resource_requirement,
    workload_label,
)
from repro.analysis.surface import distribution_surface

__all__ = [
    "hill_width",
    "hill_widths",
    "peak_count",
    "BehaviorClass",
    "classify_behavior",
    "resource_requirement",
    "requirement_series",
    "derive_freq_label",
    "workload_label",
    "distribution_surface",
]
