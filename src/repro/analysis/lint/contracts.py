"""Policy-contract checker: every ``ResourcePolicy`` subclass must play
by the hook API declared in ``policies/base.py`` (rules PC201–PC204).

The base class is parsed (never imported) to extract the hook catalogue —
method names and positional arities — so the checker tracks the real
contract automatically.  Subclasses are discovered package-wide by
resolving class bases through each module's imports, transitively
(``PhaseHillPolicy(HillClimbingPolicy)`` counts because
``HillClimbingPolicy(ResourcePolicy)`` does).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass

from repro.analysis.lint.findings import Finding, allowed_codes

__all__ = ["BaseContract", "check_tree", "parse_base_contract"]

#: Method-name shapes reserved for controller hooks.
_HOOK_PREFIXES = ("on_", "plan_", "fetch_")


@dataclass(frozen=True)
class _Hook:
    name: str
    arity: int                  # positional parameters, including self
    params: tuple[str, ...]     # positional parameter names


@dataclass(frozen=True)
class BaseContract:
    """The hook API extracted from the policy base class."""

    module_rel: str
    class_name: str
    hooks: dict[str, _Hook]
    class_attrs: frozenset[str]   # sanctioned overridable class attributes

    def is_hook_shaped(self, name: str) -> bool:
        if name.startswith("_"):
            return False
        return name == "attach" or name.startswith(_HOOK_PREFIXES)


def _positional_params(args: ast.arguments) -> tuple[str, ...]:
    return tuple(arg.arg for arg in args.posonlyargs + args.args)


def parse_base_contract(root: str, module_rel: str,
                        class_name: str) -> BaseContract:
    """Extract the hook catalogue from the base class definition."""
    with open(os.path.join(root, module_rel), encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=module_rel)
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            hooks: dict[str, _Hook] = {}
            attrs: set[str] = set()
            for item in node.body:
                if isinstance(item, ast.FunctionDef) \
                        and not item.name.startswith("__"):
                    params = _positional_params(item.args)
                    hooks[item.name] = _Hook(item.name, len(params), params)
                elif isinstance(item, ast.Assign):
                    for target in item.targets:
                        if isinstance(target, ast.Name):
                            attrs.add(target.id)
                elif isinstance(item, ast.AnnAssign) \
                        and isinstance(item.target, ast.Name):
                    attrs.add(item.target.id)
            return BaseContract(module_rel=module_rel, class_name=class_name,
                                hooks=hooks, class_attrs=frozenset(attrs))
    raise ValueError("class %s not found in %s" % (class_name, module_rel))


# ----------------------------------------------------------------------
# Subclass discovery
# ----------------------------------------------------------------------


@dataclass
class _ClassInfo:
    rel: str
    node: ast.ClassDef
    bases: tuple[str, ...]   # resolved "module_rel:ClassName" or bare name


def _collect_classes(root: str,
                     rels: tuple[str, ...]) -> dict[str, _ClassInfo]:
    """{module_rel:ClassName -> info} with bases resolved through each
    module's imports where possible."""
    classes: dict[str, _ClassInfo] = {}
    for rel in rels:
        with open(os.path.join(root, rel), encoding="utf-8") as handle:
            tree = ast.parse(handle.read(), filename=rel)
        # name -> qualified "module.path:Class" hints from imports
        imported: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    imported[alias.asname or alias.name] = \
                        "%s:%s" % (node.module, alias.name)
        local_names = {n.name for n in tree.body
                       if isinstance(n, ast.ClassDef)}
        for node in tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            bases = []
            for base in node.bases:
                if isinstance(base, ast.Name):
                    if base.id in local_names:
                        bases.append("%s:%s" % (rel, base.id))
                    elif base.id in imported:
                        bases.append(imported[base.id])
                    else:
                        bases.append(base.id)
                elif isinstance(base, ast.Attribute):
                    chain = []
                    cur: ast.expr = base
                    while isinstance(cur, ast.Attribute):
                        chain.append(cur.attr)
                        cur = cur.value
                    if isinstance(cur, ast.Name):
                        chain.append(cur.id)
                        chain.reverse()
                        bases.append("%s:%s" % (".".join(chain[:-1]),
                                                chain[-1]))
            classes["%s:%s" % (rel, node.name)] = _ClassInfo(
                rel=rel, node=node, bases=tuple(bases))
    return classes


def _module_key(rel: str) -> str:
    """``policies/base.py`` -> dotted suffix ``policies.base``."""
    return rel[:-3].replace("/", ".") if rel.endswith(".py") else rel


def _module_matches(module: str, rel: str) -> bool:
    """Does a dotted module reference plausibly name the file ``rel``?

    Handles absolute (``repro.policies.base``), package-relative
    (``policies.base``) and relative (``base``) spellings with
    dot-boundary suffix matching.
    """
    key = _module_key(rel)
    return (module == key or module == rel
            or module.endswith("." + key)
            or key.endswith("." + module))


def _find_subclasses(classes: dict[str, _ClassInfo], base_rel: str,
                     base_class: str) -> dict[str, _ClassInfo]:
    """Transitive subclasses of the base class, by fixpoint iteration."""

    def matches_base(ref: str, members: set[str]) -> bool:
        if ":" not in ref:
            return False  # bare name that resolved to nothing known
        module, name = ref.rsplit(":", 1)
        if name == base_class and _module_matches(module, base_rel):
            return True
        # reference to an already-known subclass
        for key in members:
            krel, kname = key.rsplit(":", 1)
            if kname == name and (module == krel
                                  or _module_matches(module, krel)):
                return True
        return False

    members: set[str] = set()
    changed = True
    while changed:
        changed = False
        for key, info in classes.items():
            if key in members:
                continue
            if any(matches_base(ref, members) for ref in info.bases):
                members.add(key)
                changed = True
    return {key: classes[key] for key in sorted(members)}


# ----------------------------------------------------------------------
# Checks
# ----------------------------------------------------------------------


class _PrivateWriteScanner(ast.NodeVisitor):
    """Flags assignments to underscore attributes reached from a given
    parameter name (the processor / shared-resources argument)."""

    def __init__(self, param: str) -> None:
        self.param = param
        self.hits: list[tuple[int, str]] = []

    def _private_chain(self, node: ast.expr) -> str | None:
        """Dotted description when the target is rooted at the parameter
        and contains a private attribute segment; else None."""
        parts: list[str] = []
        private = False
        cur = node
        while True:
            if isinstance(cur, ast.Attribute):
                parts.append(cur.attr)
                if cur.attr.startswith("_"):
                    private = True
                cur = cur.value
            elif isinstance(cur, ast.Subscript):
                parts.append("[...]")
                cur = cur.value
            elif isinstance(cur, ast.Name):
                if cur.id == self.param and private:
                    parts.append(cur.id)
                    parts.reverse()
                    return ".".join(parts).replace(".[...]", "[...]")
                return None
            else:
                return None

    def _check_target(self, target: ast.expr, lineno: int) -> None:
        if isinstance(target, ast.Attribute):
            described = self._private_chain(target)
            if described is not None:
                self.hits.append((lineno, described))
        elif isinstance(target, ast.Subscript):
            # a store into e.g. ``proc.stats._counts["x"]``
            self._check_target(target.value, lineno)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_target(element, lineno)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target, node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_target(node.target, node.lineno)
        self.generic_visit(node)


def _check_class(info: _ClassInfo, contract: BaseContract,
                 lines: list[str]) -> list[Finding]:
    findings: list[Finding] = []

    def allowed(lineno: int) -> frozenset[str]:
        if 1 <= lineno <= len(lines):
            return allowed_codes(lines[lineno - 1])
        return frozenset()

    def report(code: str, lineno: int, message: str) -> None:
        if code not in allowed(lineno):
            findings.append(Finding(rule=code, path=info.rel, line=lineno,
                                    message=message))

    for item in info.node.body:
        if isinstance(item, ast.FunctionDef):
            name = item.name
            hook = contract.hooks.get(name)
            is_property = any(
                isinstance(dec, ast.Name) and dec.id == "property"
                for dec in item.decorator_list)
            if hook is None and contract.is_hook_shaped(name) \
                    and not is_property \
                    and name not in contract.class_attrs:
                report("PC201", item.lineno,
                       "%s.%s() looks like a controller hook but %s "
                       "declares no such hook — typo? (hooks: %s)"
                       % (info.node.name, name, contract.class_name,
                          ", ".join(sorted(contract.hooks))))
            elif hook is not None and not is_property:
                if item.args.vararg is None:
                    params = _positional_params(item.args)
                    if len(params) != hook.arity:
                        report("PC202", item.lineno,
                               "%s.%s() takes %d positional parameter(s) "
                               "but the base hook declares %d (%s)"
                               % (info.node.name, name, len(params),
                                  hook.arity, ", ".join(hook.params)))
                        continue
                # private writes through the hook's proc-like params
                for index, base_param in enumerate(hook.params):
                    if base_param == "self" or item.args.vararg is not None:
                        continue
                    override_params = _positional_params(item.args)
                    if index >= len(override_params):
                        continue
                    scanner = _PrivateWriteScanner(override_params[index])
                    for statement in item.body:
                        scanner.visit(statement)
                    for lineno, described in scanner.hits:
                        report("PC203", lineno,
                               "%s.%s() writes private attribute `%s` — "
                               "use the sanctioned policy API instead"
                               % (info.node.name, name, described))
        elif isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name) \
                        and target.id in contract.hooks:
                    report("PC204", item.lineno,
                           "%s.%s is assigned a non-function value, "
                           "shadowing the base hook"
                           % (info.node.name, target.id))
    return findings


def check_tree(root: str, rels: tuple[str, ...], base_rel: str,
               base_class: str) -> list[Finding]:
    """Contract findings for every subclass of the base policy class
    found in ``rels`` (package-relative files under ``root``)."""
    contract = parse_base_contract(root, base_rel, base_class)
    classes = _collect_classes(root, rels)
    findings: list[Finding] = []
    for info in _find_subclasses(classes, base_rel, base_class).values():
        with open(os.path.join(root, info.rel), encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        findings.extend(_check_class(info, contract, lines))
    return findings
